#include "circuit/verilog_io.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace mpe::circuit {

namespace {

struct Token {
  std::string text;
  std::size_t line;
};

[[noreturn]] void verilog_error(std::size_t line, const std::string& what) {
  throw std::runtime_error("verilog parse error at line " +
                           std::to_string(line) + ": " + what);
}

/// Tokenizes: identifiers, and the punctuation ( ) , ; as single tokens.
/// Strips // line comments and /* */ block comments.
std::vector<Token> tokenize(std::istream& in) {
  std::vector<Token> tokens;
  std::string line;
  std::size_t line_no = 0;
  bool in_block_comment = false;
  while (std::getline(in, line)) {
    ++line_no;
    std::string cur;
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (in_block_comment) {
        if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block_comment = false;
          ++i;
        }
        continue;
      }
      const char c = line[i];
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block_comment = true;
        ++i;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        if (!cur.empty()) {
          tokens.push_back({cur, line_no});
          cur.clear();
        }
        continue;
      }
      if (c == '(' || c == ')' || c == ',' || c == ';') {
        if (!cur.empty()) {
          tokens.push_back({cur, line_no});
          cur.clear();
        }
        tokens.push_back({std::string(1, c), line_no});
        continue;
      }
      cur += c;
    }
    if (!cur.empty()) tokens.push_back({cur, line_no});
  }
  return tokens;
}

bool is_primitive(const std::string& word) {
  return word == "and" || word == "nand" || word == "or" || word == "nor" ||
         word == "xor" || word == "xnor" || word == "not" || word == "buf";
}

bool valid_identifier(const std::string& s) {
  if (s.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_')) {
    return false;
  }
  for (char c : s) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '$')) {
      return false;
    }
  }
  return true;
}

}  // namespace

Netlist read_verilog(std::istream& in) {
  const auto tokens = tokenize(in);
  std::size_t pos = 0;
  auto peek = [&]() -> const Token& {
    if (pos >= tokens.size()) {
      verilog_error(tokens.empty() ? 1 : tokens.back().line,
                    "unexpected end of file");
    }
    return tokens[pos];
  };
  auto next = [&]() -> const Token& {
    const Token& t = peek();
    ++pos;
    return t;
  };
  auto expect = [&](const std::string& want) {
    const Token& t = next();
    if (t.text != want) {
      verilog_error(t.line, "expected '" + want + "', got '" + t.text + "'");
    }
  };

  if (peek().text != "module") {
    verilog_error(peek().line, "expected 'module'");
  }
  next();
  const std::string module_name = next().text;
  Netlist nl(module_name);

  // Port list (names only; directions come from declarations).
  expect("(");
  while (peek().text != ")") {
    next();  // port name; nothing to do yet
    if (peek().text == ",") next();
  }
  expect(")");
  expect(";");

  std::unordered_set<std::string> declared;
  std::vector<std::string> output_names;

  while (peek().text != "endmodule") {
    const Token head = next();
    if (head.text == "input" || head.text == "output" ||
        head.text == "wire") {
      for (;;) {
        const Token name = next();
        if (name.text == "[") {
          verilog_error(name.line, "vector ports are not supported");
        }
        if (!valid_identifier(name.text)) {
          verilog_error(name.line, "bad identifier '" + name.text + "'");
        }
        declared.insert(name.text);
        if (head.text == "input") {
          nl.add_input(name.text);
        } else if (head.text == "output") {
          output_names.push_back(name.text);
        } else {
          nl.declare(name.text);
        }
        const Token sep = next();
        if (sep.text == ";") break;
        if (sep.text != ",") {
          verilog_error(sep.line, "expected ',' or ';' in declaration");
        }
      }
      continue;
    }
    if (head.text == "assign") {
      verilog_error(head.line,
                    "assign statements are not supported (structural "
                    "primitives only)");
    }
    if (!is_primitive(head.text)) {
      verilog_error(head.line, "unsupported construct '" + head.text +
                                   "' (expected a primitive gate)");
    }
    // Primitive instance: TYPE [instname] ( out, in... ) ;
    GateType type = gate_type_from_string(head.text);
    Token t = next();
    if (t.text != "(") {
      // instance name present
      if (!valid_identifier(t.text)) {
        verilog_error(t.line, "bad instance name '" + t.text + "'");
      }
      expect("(");
    }
    std::vector<std::string> pins;
    for (;;) {
      const Token pin = next();
      if (!valid_identifier(pin.text)) {
        verilog_error(pin.line, "bad signal name '" + pin.text + "'");
      }
      if (declared.count(pin.text) == 0) {
        verilog_error(pin.line, "undeclared signal '" + pin.text + "'");
      }
      pins.push_back(pin.text);
      const Token sep = next();
      if (sep.text == ")") break;
      if (sep.text != ",") {
        verilog_error(sep.line, "expected ',' or ')' in pin list");
      }
    }
    expect(";");
    if (pins.size() < 2) {
      verilog_error(head.line, "primitive needs an output and inputs");
    }
    const std::string out = pins.front();
    pins.erase(pins.begin());
    try {
      nl.add_gate(type, out, pins);
    } catch (const std::exception& e) {
      verilog_error(head.line, e.what());
    }
  }

  for (const auto& name : output_names) nl.mark_output(name);
  nl.finalize();
  return nl;
}

Netlist read_verilog_string(const std::string& text) {
  std::istringstream in(text);
  return read_verilog(in);
}

Netlist read_verilog_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open verilog file: " + path);
  return read_verilog(in);
}

void write_verilog(std::ostream& out, const Netlist& netlist) {
  // Name table: keep valid identifiers, replace the rest deterministically.
  std::vector<std::string> name(netlist.num_nodes());
  std::unordered_set<std::string> used;
  for (NodeId n = 0; n < netlist.num_nodes(); ++n) {
    std::string candidate = netlist.node_name(n);
    if (!valid_identifier(candidate)) {
      candidate = "sig_" + std::to_string(n);
    }
    while (used.count(candidate)) candidate += "_";
    used.insert(candidate);
    name[n] = candidate;
  }

  std::string module = netlist.name();
  if (!valid_identifier(module)) module = "top";

  // An output port that is also a primary input needs a buffer alias.
  std::vector<std::pair<std::string, NodeId>> aliased_outputs;
  std::vector<NodeId> plain_outputs;
  for (NodeId o : netlist.outputs()) {
    if (netlist.is_input(o)) {
      aliased_outputs.emplace_back(name[o] + "_out", o);
    } else {
      plain_outputs.push_back(o);
    }
  }

  out << "// " << netlist.name() << " — written by mpe\n";
  out << "module " << module << " (";
  bool first = true;
  for (NodeId i : netlist.inputs()) {
    out << (first ? "" : ", ") << name[i];
    first = false;
  }
  for (NodeId o : plain_outputs) {
    out << (first ? "" : ", ") << name[o];
    first = false;
  }
  for (const auto& [alias, node] : aliased_outputs) {
    (void)node;
    out << (first ? "" : ", ") << alias;
    first = false;
  }
  out << ");\n";

  for (NodeId i : netlist.inputs()) {
    out << "  input " << name[i] << ";\n";
  }
  for (NodeId o : plain_outputs) {
    out << "  output " << name[o] << ";\n";
  }
  for (const auto& [alias, node] : aliased_outputs) {
    (void)node;
    out << "  output " << alias << ";\n";
  }
  for (NodeId n = 0; n < netlist.num_nodes(); ++n) {
    if (netlist.is_input(n)) continue;
    bool is_plain_output = false;
    for (NodeId o : plain_outputs) {
      if (o == n) {
        is_plain_output = true;
        break;
      }
    }
    if (!is_plain_output) out << "  wire " << name[n] << ";\n";
  }
  out << '\n';

  std::size_t inst = 0;
  for (const Gate& g : netlist.gates()) {
    out << "  " << to_string(g.type) << " g" << inst++ << " ("
        << name[g.output];
    for (NodeId in : g.inputs) out << ", " << name[in];
    out << ");\n";
  }
  for (const auto& [alias, node] : aliased_outputs) {
    out << "  buf g" << inst++ << " (" << alias << ", " << name[node]
        << ");\n";
  }
  out << "endmodule\n";
}

std::string write_verilog_string(const Netlist& netlist) {
  std::ostringstream os;
  write_verilog(os, netlist);
  return os.str();
}

}  // namespace mpe::circuit
