// Structural (gate-level) Verilog reader/writer for the primitive-gate
// subset every synthesis flow can emit:
//
//   module top (a, b, y);
//     input a, b;
//     output y;
//     wire n1;
//     nand g1 (n1, a, b);   // output first, then inputs
//     not  g2 (y, n1);
//   endmodule
//
// Supported primitives: and, nand, or, nor, xor, xnor, not, buf. One module
// per file; vectors/parameters/assign are not supported (this is a netlist
// interchange path, not a Verilog frontend) and raise a parse error with a
// line number.
#pragma once

#include <iosfwd>
#include <string>

#include "circuit/netlist.hpp"

namespace mpe::circuit {

/// Parses a structural Verilog module from a stream. The returned netlist
/// is finalized and named after the module.
Netlist read_verilog(std::istream& in);

/// Parses from a string.
Netlist read_verilog_string(const std::string& text);

/// Parses from a file.
Netlist read_verilog_file(const std::string& path);

/// Writes the netlist as a structural Verilog module.
void write_verilog(std::ostream& out, const Netlist& netlist);

/// Renders to a string.
std::string write_verilog_string(const Netlist& netlist);

}  // namespace mpe::circuit
