file(REMOVE_RECURSE
  "CMakeFiles/test_power_db.dir/test_power_db.cpp.o"
  "CMakeFiles/test_power_db.dir/test_power_db.cpp.o.d"
  "test_power_db"
  "test_power_db.pdb"
  "test_power_db[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
