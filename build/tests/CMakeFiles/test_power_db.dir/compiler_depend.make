# Empty compiler generated dependencies file for test_power_db.
# This may be replaced when dependencies are built.
