file(REMOVE_RECURSE
  "CMakeFiles/test_hyper_sample.dir/test_hyper_sample.cpp.o"
  "CMakeFiles/test_hyper_sample.dir/test_hyper_sample.cpp.o.d"
  "test_hyper_sample"
  "test_hyper_sample.pdb"
  "test_hyper_sample[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hyper_sample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
