# Empty dependencies file for test_hyper_sample.
# This may be replaced when dependencies are built.
