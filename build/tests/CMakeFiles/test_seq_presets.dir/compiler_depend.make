# Empty compiler generated dependencies file for test_seq_presets.
# This may be replaced when dependencies are built.
