file(REMOVE_RECURSE
  "CMakeFiles/test_seq_presets.dir/test_seq_presets.cpp.o"
  "CMakeFiles/test_seq_presets.dir/test_seq_presets.cpp.o.d"
  "test_seq_presets"
  "test_seq_presets.pdb"
  "test_seq_presets[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seq_presets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
