file(REMOVE_RECURSE
  "CMakeFiles/test_roundtrip_fuzz.dir/test_roundtrip_fuzz.cpp.o"
  "CMakeFiles/test_roundtrip_fuzz.dir/test_roundtrip_fuzz.cpp.o.d"
  "test_roundtrip_fuzz"
  "test_roundtrip_fuzz.pdb"
  "test_roundtrip_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_roundtrip_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
