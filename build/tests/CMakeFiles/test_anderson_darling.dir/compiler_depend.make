# Empty compiler generated dependencies file for test_anderson_darling.
# This may be replaced when dependencies are built.
