file(REMOVE_RECURSE
  "CMakeFiles/test_zero_delay_sim.dir/test_zero_delay_sim.cpp.o"
  "CMakeFiles/test_zero_delay_sim.dir/test_zero_delay_sim.cpp.o.d"
  "test_zero_delay_sim"
  "test_zero_delay_sim.pdb"
  "test_zero_delay_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zero_delay_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
