# Empty compiler generated dependencies file for test_zero_delay_sim.
# This may be replaced when dependencies are built.
