# Empty dependencies file for test_random_dag.
# This may be replaced when dependencies are built.
