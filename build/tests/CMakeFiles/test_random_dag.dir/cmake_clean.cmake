file(REMOVE_RECURSE
  "CMakeFiles/test_random_dag.dir/test_random_dag.cpp.o"
  "CMakeFiles/test_random_dag.dir/test_random_dag.cpp.o.d"
  "test_random_dag"
  "test_random_dag.pdb"
  "test_random_dag[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
