# Empty dependencies file for test_srs.
# This may be replaced when dependencies are built.
