file(REMOVE_RECURSE
  "CMakeFiles/test_srs.dir/test_srs.cpp.o"
  "CMakeFiles/test_srs.dir/test_srs.cpp.o.d"
  "test_srs"
  "test_srs.pdb"
  "test_srs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_srs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
