# Empty dependencies file for test_seq_bench_io.
# This may be replaced when dependencies are built.
