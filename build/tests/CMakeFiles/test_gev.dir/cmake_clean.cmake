file(REMOVE_RECURSE
  "CMakeFiles/test_gev.dir/test_gev.cpp.o"
  "CMakeFiles/test_gev.dir/test_gev.cpp.o.d"
  "test_gev"
  "test_gev.pdb"
  "test_gev[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
