# Empty compiler generated dependencies file for test_gev.
# This may be replaced when dependencies are built.
