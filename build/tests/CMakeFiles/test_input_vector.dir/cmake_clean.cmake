file(REMOVE_RECURSE
  "CMakeFiles/test_input_vector.dir/test_input_vector.cpp.o"
  "CMakeFiles/test_input_vector.dir/test_input_vector.cpp.o.d"
  "test_input_vector"
  "test_input_vector.pdb"
  "test_input_vector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_input_vector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
