file(REMOVE_RECURSE
  "CMakeFiles/test_prob_analysis.dir/test_prob_analysis.cpp.o"
  "CMakeFiles/test_prob_analysis.dir/test_prob_analysis.cpp.o.d"
  "test_prob_analysis"
  "test_prob_analysis.pdb"
  "test_prob_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prob_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
