file(REMOVE_RECURSE
  "CMakeFiles/test_block_maxima.dir/test_block_maxima.cpp.o"
  "CMakeFiles/test_block_maxima.dir/test_block_maxima.cpp.o.d"
  "test_block_maxima"
  "test_block_maxima.pdb"
  "test_block_maxima[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_block_maxima.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
