# Empty compiler generated dependencies file for test_block_maxima.
# This may be replaced when dependencies are built.
