# Empty compiler generated dependencies file for test_search_baselines.
# This may be replaced when dependencies are built.
