file(REMOVE_RECURSE
  "CMakeFiles/test_search_baselines.dir/test_search_baselines.cpp.o"
  "CMakeFiles/test_search_baselines.dir/test_search_baselines.cpp.o.d"
  "test_search_baselines"
  "test_search_baselines.pdb"
  "test_search_baselines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_search_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
