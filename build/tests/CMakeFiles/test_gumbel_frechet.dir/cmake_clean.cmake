file(REMOVE_RECURSE
  "CMakeFiles/test_gumbel_frechet.dir/test_gumbel_frechet.cpp.o"
  "CMakeFiles/test_gumbel_frechet.dir/test_gumbel_frechet.cpp.o.d"
  "test_gumbel_frechet"
  "test_gumbel_frechet.pdb"
  "test_gumbel_frechet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gumbel_frechet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
