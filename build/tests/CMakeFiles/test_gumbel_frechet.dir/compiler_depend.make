# Empty compiler generated dependencies file for test_gumbel_frechet.
# This may be replaced when dependencies are built.
