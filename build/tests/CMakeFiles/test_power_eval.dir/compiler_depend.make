# Empty compiler generated dependencies file for test_power_eval.
# This may be replaced when dependencies are built.
