file(REMOVE_RECURSE
  "CMakeFiles/test_power_eval.dir/test_power_eval.cpp.o"
  "CMakeFiles/test_power_eval.dir/test_power_eval.cpp.o.d"
  "test_power_eval"
  "test_power_eval.pdb"
  "test_power_eval[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
