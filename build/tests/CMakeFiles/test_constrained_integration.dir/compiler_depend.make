# Empty compiler generated dependencies file for test_constrained_integration.
# This may be replaced when dependencies are built.
