file(REMOVE_RECURSE
  "CMakeFiles/test_constrained_integration.dir/test_constrained_integration.cpp.o"
  "CMakeFiles/test_constrained_integration.dir/test_constrained_integration.cpp.o.d"
  "test_constrained_integration"
  "test_constrained_integration.pdb"
  "test_constrained_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_constrained_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
