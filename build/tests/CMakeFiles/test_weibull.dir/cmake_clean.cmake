file(REMOVE_RECURSE
  "CMakeFiles/test_weibull.dir/test_weibull.cpp.o"
  "CMakeFiles/test_weibull.dir/test_weibull.cpp.o.d"
  "test_weibull"
  "test_weibull.pdb"
  "test_weibull[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_weibull.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
