file(REMOVE_RECURSE
  "CMakeFiles/test_fisher.dir/test_fisher.cpp.o"
  "CMakeFiles/test_fisher.dir/test_fisher.cpp.o.d"
  "test_fisher"
  "test_fisher.pdb"
  "test_fisher[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fisher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
