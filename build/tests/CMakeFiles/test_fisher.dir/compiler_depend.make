# Empty compiler generated dependencies file for test_fisher.
# This may be replaced when dependencies are built.
