file(REMOVE_RECURSE
  "CMakeFiles/test_maxdelay.dir/test_maxdelay.cpp.o"
  "CMakeFiles/test_maxdelay.dir/test_maxdelay.cpp.o.d"
  "test_maxdelay"
  "test_maxdelay.pdb"
  "test_maxdelay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_maxdelay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
