# Empty compiler generated dependencies file for test_maxdelay.
# This may be replaced when dependencies are built.
