file(REMOVE_RECURSE
  "CMakeFiles/test_bit_parallel.dir/test_bit_parallel.cpp.o"
  "CMakeFiles/test_bit_parallel.dir/test_bit_parallel.cpp.o.d"
  "test_bit_parallel"
  "test_bit_parallel.pdb"
  "test_bit_parallel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bit_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
