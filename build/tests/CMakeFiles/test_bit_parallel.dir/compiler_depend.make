# Empty compiler generated dependencies file for test_bit_parallel.
# This may be replaced when dependencies are built.
