file(REMOVE_RECURSE
  "CMakeFiles/test_weibull_mle.dir/test_weibull_mle.cpp.o"
  "CMakeFiles/test_weibull_mle.dir/test_weibull_mle.cpp.o.d"
  "test_weibull_mle"
  "test_weibull_mle.pdb"
  "test_weibull_mle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_weibull_mle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
