# Empty dependencies file for test_chi_squared.
# This may be replaced when dependencies are built.
