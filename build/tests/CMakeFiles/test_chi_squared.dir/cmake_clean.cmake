file(REMOVE_RECURSE
  "CMakeFiles/test_chi_squared.dir/test_chi_squared.cpp.o"
  "CMakeFiles/test_chi_squared.dir/test_chi_squared.cpp.o.d"
  "test_chi_squared"
  "test_chi_squared.pdb"
  "test_chi_squared[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chi_squared.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
