file(REMOVE_RECURSE
  "CMakeFiles/test_quantile_baseline.dir/test_quantile_baseline.cpp.o"
  "CMakeFiles/test_quantile_baseline.dir/test_quantile_baseline.cpp.o.d"
  "test_quantile_baseline"
  "test_quantile_baseline.pdb"
  "test_quantile_baseline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quantile_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
