# Empty compiler generated dependencies file for test_quantile_baseline.
# This may be replaced when dependencies are built.
