file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_db.dir/test_parallel_db.cpp.o"
  "CMakeFiles/test_parallel_db.dir/test_parallel_db.cpp.o.d"
  "test_parallel_db"
  "test_parallel_db.pdb"
  "test_parallel_db[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
