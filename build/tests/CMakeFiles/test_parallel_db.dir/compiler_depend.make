# Empty compiler generated dependencies file for test_parallel_db.
# This may be replaced when dependencies are built.
