file(REMOVE_RECURSE
  "CMakeFiles/test_pwm.dir/test_pwm.cpp.o"
  "CMakeFiles/test_pwm.dir/test_pwm.cpp.o.d"
  "test_pwm"
  "test_pwm.pdb"
  "test_pwm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pwm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
