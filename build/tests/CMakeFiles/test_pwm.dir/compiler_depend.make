# Empty compiler generated dependencies file for test_pwm.
# This may be replaced when dependencies are built.
