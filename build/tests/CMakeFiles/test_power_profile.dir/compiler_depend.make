# Empty compiler generated dependencies file for test_power_profile.
# This may be replaced when dependencies are built.
