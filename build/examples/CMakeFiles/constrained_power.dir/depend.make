# Empty dependencies file for constrained_power.
# This may be replaced when dependencies are built.
