file(REMOVE_RECURSE
  "CMakeFiles/constrained_power.dir/constrained_power.cpp.o"
  "CMakeFiles/constrained_power.dir/constrained_power.cpp.o.d"
  "constrained_power"
  "constrained_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constrained_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
