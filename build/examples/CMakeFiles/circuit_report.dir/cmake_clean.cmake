file(REMOVE_RECURSE
  "CMakeFiles/circuit_report.dir/circuit_report.cpp.o"
  "CMakeFiles/circuit_report.dir/circuit_report.cpp.o.d"
  "circuit_report"
  "circuit_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuit_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
