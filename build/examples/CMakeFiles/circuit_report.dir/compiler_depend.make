# Empty compiler generated dependencies file for circuit_report.
# This may be replaced when dependencies are built.
