# Empty compiler generated dependencies file for ecc_power.
# This may be replaced when dependencies are built.
