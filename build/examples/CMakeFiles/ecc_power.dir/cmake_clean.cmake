file(REMOVE_RECURSE
  "CMakeFiles/ecc_power.dir/ecc_power.cpp.o"
  "CMakeFiles/ecc_power.dir/ecc_power.cpp.o.d"
  "ecc_power"
  "ecc_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecc_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
