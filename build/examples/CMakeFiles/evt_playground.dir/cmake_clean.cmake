file(REMOVE_RECURSE
  "CMakeFiles/evt_playground.dir/evt_playground.cpp.o"
  "CMakeFiles/evt_playground.dir/evt_playground.cpp.o.d"
  "evt_playground"
  "evt_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evt_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
