# Empty compiler generated dependencies file for evt_playground.
# This may be replaced when dependencies are built.
