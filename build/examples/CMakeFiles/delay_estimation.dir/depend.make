# Empty dependencies file for delay_estimation.
# This may be replaced when dependencies are built.
