file(REMOVE_RECURSE
  "CMakeFiles/delay_estimation.dir/delay_estimation.cpp.o"
  "CMakeFiles/delay_estimation.dir/delay_estimation.cpp.o.d"
  "delay_estimation"
  "delay_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delay_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
