# Empty compiler generated dependencies file for sequential_power.
# This may be replaced when dependencies are built.
