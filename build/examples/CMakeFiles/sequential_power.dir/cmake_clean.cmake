file(REMOVE_RECURSE
  "CMakeFiles/sequential_power.dir/sequential_power.cpp.o"
  "CMakeFiles/sequential_power.dir/sequential_power.cpp.o.d"
  "sequential_power"
  "sequential_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequential_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
