# Empty dependencies file for mpe.
# This may be replaced when dependencies are built.
