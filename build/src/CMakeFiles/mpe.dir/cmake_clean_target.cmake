file(REMOVE_RECURSE
  "libmpe.a"
)
