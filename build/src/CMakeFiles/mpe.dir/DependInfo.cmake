
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/analysis.cpp" "src/CMakeFiles/mpe.dir/circuit/analysis.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/circuit/analysis.cpp.o.d"
  "/root/repo/src/circuit/bench_io.cpp" "src/CMakeFiles/mpe.dir/circuit/bench_io.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/circuit/bench_io.cpp.o.d"
  "/root/repo/src/circuit/builder.cpp" "src/CMakeFiles/mpe.dir/circuit/builder.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/circuit/builder.cpp.o.d"
  "/root/repo/src/circuit/gate.cpp" "src/CMakeFiles/mpe.dir/circuit/gate.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/circuit/gate.cpp.o.d"
  "/root/repo/src/circuit/netlist.cpp" "src/CMakeFiles/mpe.dir/circuit/netlist.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/circuit/netlist.cpp.o.d"
  "/root/repo/src/circuit/prob_analysis.cpp" "src/CMakeFiles/mpe.dir/circuit/prob_analysis.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/circuit/prob_analysis.cpp.o.d"
  "/root/repo/src/circuit/verilog_io.cpp" "src/CMakeFiles/mpe.dir/circuit/verilog_io.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/circuit/verilog_io.cpp.o.d"
  "/root/repo/src/evt/block_maxima.cpp" "src/CMakeFiles/mpe.dir/evt/block_maxima.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/evt/block_maxima.cpp.o.d"
  "/root/repo/src/evt/bootstrap.cpp" "src/CMakeFiles/mpe.dir/evt/bootstrap.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/evt/bootstrap.cpp.o.d"
  "/root/repo/src/evt/confidence.cpp" "src/CMakeFiles/mpe.dir/evt/confidence.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/evt/confidence.cpp.o.d"
  "/root/repo/src/evt/domain.cpp" "src/CMakeFiles/mpe.dir/evt/domain.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/evt/domain.cpp.o.d"
  "/root/repo/src/evt/fisher.cpp" "src/CMakeFiles/mpe.dir/evt/fisher.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/evt/fisher.cpp.o.d"
  "/root/repo/src/evt/pwm.cpp" "src/CMakeFiles/mpe.dir/evt/pwm.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/evt/pwm.cpp.o.d"
  "/root/repo/src/evt/weibull_mle.cpp" "src/CMakeFiles/mpe.dir/evt/weibull_mle.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/evt/weibull_mle.cpp.o.d"
  "/root/repo/src/gen/arithmetic.cpp" "src/CMakeFiles/mpe.dir/gen/arithmetic.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/gen/arithmetic.cpp.o.d"
  "/root/repo/src/gen/datapath.cpp" "src/CMakeFiles/mpe.dir/gen/datapath.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/gen/datapath.cpp.o.d"
  "/root/repo/src/gen/ecc.cpp" "src/CMakeFiles/mpe.dir/gen/ecc.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/gen/ecc.cpp.o.d"
  "/root/repo/src/gen/presets.cpp" "src/CMakeFiles/mpe.dir/gen/presets.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/gen/presets.cpp.o.d"
  "/root/repo/src/gen/random_dag.cpp" "src/CMakeFiles/mpe.dir/gen/random_dag.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/gen/random_dag.cpp.o.d"
  "/root/repo/src/gen/trees.cpp" "src/CMakeFiles/mpe.dir/gen/trees.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/gen/trees.cpp.o.d"
  "/root/repo/src/maxdelay/delay_estimator.cpp" "src/CMakeFiles/mpe.dir/maxdelay/delay_estimator.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/maxdelay/delay_estimator.cpp.o.d"
  "/root/repo/src/maxpower/bounds.cpp" "src/CMakeFiles/mpe.dir/maxpower/bounds.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/maxpower/bounds.cpp.o.d"
  "/root/repo/src/maxpower/estimator.cpp" "src/CMakeFiles/mpe.dir/maxpower/estimator.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/maxpower/estimator.cpp.o.d"
  "/root/repo/src/maxpower/hyper_sample.cpp" "src/CMakeFiles/mpe.dir/maxpower/hyper_sample.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/maxpower/hyper_sample.cpp.o.d"
  "/root/repo/src/maxpower/quantile_baseline.cpp" "src/CMakeFiles/mpe.dir/maxpower/quantile_baseline.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/maxpower/quantile_baseline.cpp.o.d"
  "/root/repo/src/maxpower/search_baselines.cpp" "src/CMakeFiles/mpe.dir/maxpower/search_baselines.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/maxpower/search_baselines.cpp.o.d"
  "/root/repo/src/maxpower/srs.cpp" "src/CMakeFiles/mpe.dir/maxpower/srs.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/maxpower/srs.cpp.o.d"
  "/root/repo/src/maxpower/theory.cpp" "src/CMakeFiles/mpe.dir/maxpower/theory.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/maxpower/theory.cpp.o.d"
  "/root/repo/src/seq/seq_bench_io.cpp" "src/CMakeFiles/mpe.dir/seq/seq_bench_io.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/seq/seq_bench_io.cpp.o.d"
  "/root/repo/src/seq/seq_gen.cpp" "src/CMakeFiles/mpe.dir/seq/seq_gen.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/seq/seq_gen.cpp.o.d"
  "/root/repo/src/seq/seq_netlist.cpp" "src/CMakeFiles/mpe.dir/seq/seq_netlist.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/seq/seq_netlist.cpp.o.d"
  "/root/repo/src/seq/seq_presets.cpp" "src/CMakeFiles/mpe.dir/seq/seq_presets.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/seq/seq_presets.cpp.o.d"
  "/root/repo/src/seq/seq_sim.cpp" "src/CMakeFiles/mpe.dir/seq/seq_sim.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/seq/seq_sim.cpp.o.d"
  "/root/repo/src/sim/bit_parallel_sim.cpp" "src/CMakeFiles/mpe.dir/sim/bit_parallel_sim.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/sim/bit_parallel_sim.cpp.o.d"
  "/root/repo/src/sim/delay.cpp" "src/CMakeFiles/mpe.dir/sim/delay.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/sim/delay.cpp.o.d"
  "/root/repo/src/sim/event_sim.cpp" "src/CMakeFiles/mpe.dir/sim/event_sim.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/sim/event_sim.cpp.o.d"
  "/root/repo/src/sim/power_eval.cpp" "src/CMakeFiles/mpe.dir/sim/power_eval.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/sim/power_eval.cpp.o.d"
  "/root/repo/src/sim/power_profile.cpp" "src/CMakeFiles/mpe.dir/sim/power_profile.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/sim/power_profile.cpp.o.d"
  "/root/repo/src/sim/technology.cpp" "src/CMakeFiles/mpe.dir/sim/technology.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/sim/technology.cpp.o.d"
  "/root/repo/src/sim/timing.cpp" "src/CMakeFiles/mpe.dir/sim/timing.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/sim/timing.cpp.o.d"
  "/root/repo/src/sim/vcd.cpp" "src/CMakeFiles/mpe.dir/sim/vcd.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/sim/vcd.cpp.o.d"
  "/root/repo/src/sim/zero_delay_sim.cpp" "src/CMakeFiles/mpe.dir/sim/zero_delay_sim.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/sim/zero_delay_sim.cpp.o.d"
  "/root/repo/src/stats/anderson_darling.cpp" "src/CMakeFiles/mpe.dir/stats/anderson_darling.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/stats/anderson_darling.cpp.o.d"
  "/root/repo/src/stats/chi_squared.cpp" "src/CMakeFiles/mpe.dir/stats/chi_squared.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/stats/chi_squared.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/CMakeFiles/mpe.dir/stats/descriptive.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/stats/descriptive.cpp.o.d"
  "/root/repo/src/stats/ecdf.cpp" "src/CMakeFiles/mpe.dir/stats/ecdf.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/stats/ecdf.cpp.o.d"
  "/root/repo/src/stats/frechet.cpp" "src/CMakeFiles/mpe.dir/stats/frechet.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/stats/frechet.cpp.o.d"
  "/root/repo/src/stats/gev.cpp" "src/CMakeFiles/mpe.dir/stats/gev.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/stats/gev.cpp.o.d"
  "/root/repo/src/stats/gumbel.cpp" "src/CMakeFiles/mpe.dir/stats/gumbel.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/stats/gumbel.cpp.o.d"
  "/root/repo/src/stats/ks.cpp" "src/CMakeFiles/mpe.dir/stats/ks.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/stats/ks.cpp.o.d"
  "/root/repo/src/stats/least_squares.cpp" "src/CMakeFiles/mpe.dir/stats/least_squares.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/stats/least_squares.cpp.o.d"
  "/root/repo/src/stats/normal.cpp" "src/CMakeFiles/mpe.dir/stats/normal.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/stats/normal.cpp.o.d"
  "/root/repo/src/stats/optimize.cpp" "src/CMakeFiles/mpe.dir/stats/optimize.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/stats/optimize.cpp.o.d"
  "/root/repo/src/stats/student_t.cpp" "src/CMakeFiles/mpe.dir/stats/student_t.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/stats/student_t.cpp.o.d"
  "/root/repo/src/stats/weibull.cpp" "src/CMakeFiles/mpe.dir/stats/weibull.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/stats/weibull.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/mpe.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/math.cpp" "src/CMakeFiles/mpe.dir/util/math.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/util/math.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/mpe.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/mpe.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/util/table.cpp.o.d"
  "/root/repo/src/vectors/generators.cpp" "src/CMakeFiles/mpe.dir/vectors/generators.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/vectors/generators.cpp.o.d"
  "/root/repo/src/vectors/input_vector.cpp" "src/CMakeFiles/mpe.dir/vectors/input_vector.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/vectors/input_vector.cpp.o.d"
  "/root/repo/src/vectors/markov.cpp" "src/CMakeFiles/mpe.dir/vectors/markov.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/vectors/markov.cpp.o.d"
  "/root/repo/src/vectors/parallel_db.cpp" "src/CMakeFiles/mpe.dir/vectors/parallel_db.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/vectors/parallel_db.cpp.o.d"
  "/root/repo/src/vectors/population.cpp" "src/CMakeFiles/mpe.dir/vectors/population.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/vectors/population.cpp.o.d"
  "/root/repo/src/vectors/power_db.cpp" "src/CMakeFiles/mpe.dir/vectors/power_db.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/vectors/power_db.cpp.o.d"
  "/root/repo/src/vectors/serialize.cpp" "src/CMakeFiles/mpe.dir/vectors/serialize.cpp.o" "gcc" "src/CMakeFiles/mpe.dir/vectors/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
