# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_report "/root/repo/build/tools/mpe_cli" "report" "--circuit" "c432")
set_tests_properties(cli_report PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_estimate "/root/repo/build/tools/mpe_cli" "estimate" "--circuit" "c432" "--epsilon" "0.15" "--seed" "3")
set_tests_properties(cli_estimate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_timing "/root/repo/build/tools/mpe_cli" "timing" "--circuit" "c432" "--model" "unit")
set_tests_properties(cli_timing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_vcd "/root/repo/build/tools/mpe_cli" "vcd" "--circuit" "c432" "--out" "cli_test.vcd" "--cycles" "2")
set_tests_properties(cli_vcd PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_maxdelay "/root/repo/build/tools/mpe_cli" "maxdelay" "--circuit" "c432" "--epsilon" "0.2")
set_tests_properties(cli_maxdelay PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/tools/mpe_cli" "bogus")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
