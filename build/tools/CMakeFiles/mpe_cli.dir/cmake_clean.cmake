file(REMOVE_RECURSE
  "CMakeFiles/mpe_cli.dir/mpe_cli.cpp.o"
  "CMakeFiles/mpe_cli.dir/mpe_cli.cpp.o.d"
  "mpe_cli"
  "mpe_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpe_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
