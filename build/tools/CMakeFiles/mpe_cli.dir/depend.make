# Empty dependencies file for mpe_cli.
# This may be replaced when dependencies are built.
