file(REMOVE_RECURSE
  "CMakeFiles/table1_unconstrained_efficiency.dir/table1_unconstrained_efficiency.cpp.o"
  "CMakeFiles/table1_unconstrained_efficiency.dir/table1_unconstrained_efficiency.cpp.o.d"
  "table1_unconstrained_efficiency"
  "table1_unconstrained_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_unconstrained_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
