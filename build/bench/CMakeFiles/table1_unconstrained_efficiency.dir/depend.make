# Empty dependencies file for table1_unconstrained_efficiency.
# This may be replaced when dependencies are built.
