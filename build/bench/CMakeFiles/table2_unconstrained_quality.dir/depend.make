# Empty dependencies file for table2_unconstrained_quality.
# This may be replaced when dependencies are built.
