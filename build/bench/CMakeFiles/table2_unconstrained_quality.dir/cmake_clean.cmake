file(REMOVE_RECURSE
  "CMakeFiles/table2_unconstrained_quality.dir/table2_unconstrained_quality.cpp.o"
  "CMakeFiles/table2_unconstrained_quality.dir/table2_unconstrained_quality.cpp.o.d"
  "table2_unconstrained_quality"
  "table2_unconstrained_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_unconstrained_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
