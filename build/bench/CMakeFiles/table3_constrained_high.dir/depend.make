# Empty dependencies file for table3_constrained_high.
# This may be replaced when dependencies are built.
