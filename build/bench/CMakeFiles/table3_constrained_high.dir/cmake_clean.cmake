file(REMOVE_RECURSE
  "CMakeFiles/table3_constrained_high.dir/table3_constrained_high.cpp.o"
  "CMakeFiles/table3_constrained_high.dir/table3_constrained_high.cpp.o.d"
  "table3_constrained_high"
  "table3_constrained_high.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_constrained_high.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
