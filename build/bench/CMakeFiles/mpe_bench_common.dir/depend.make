# Empty dependencies file for mpe_bench_common.
# This may be replaced when dependencies are built.
