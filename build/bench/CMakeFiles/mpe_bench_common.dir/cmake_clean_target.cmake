file(REMOVE_RECURSE
  "libmpe_bench_common.a"
)
