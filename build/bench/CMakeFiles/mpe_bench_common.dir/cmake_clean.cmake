file(REMOVE_RECURSE
  "CMakeFiles/mpe_bench_common.dir/common.cpp.o"
  "CMakeFiles/mpe_bench_common.dir/common.cpp.o.d"
  "libmpe_bench_common.a"
  "libmpe_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpe_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
