# Empty compiler generated dependencies file for seq_power_extension.
# This may be replaced when dependencies are built.
