file(REMOVE_RECURSE
  "CMakeFiles/seq_power_extension.dir/seq_power_extension.cpp.o"
  "CMakeFiles/seq_power_extension.dir/seq_power_extension.cpp.o.d"
  "seq_power_extension"
  "seq_power_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_power_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
