# Empty compiler generated dependencies file for fig2_estimator_normality.
# This may be replaced when dependencies are built.
