file(REMOVE_RECURSE
  "CMakeFiles/fig2_estimator_normality.dir/fig2_estimator_normality.cpp.o"
  "CMakeFiles/fig2_estimator_normality.dir/fig2_estimator_normality.cpp.o.d"
  "fig2_estimator_normality"
  "fig2_estimator_normality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_estimator_normality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
