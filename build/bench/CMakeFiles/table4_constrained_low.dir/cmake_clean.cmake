file(REMOVE_RECURSE
  "CMakeFiles/table4_constrained_low.dir/table4_constrained_low.cpp.o"
  "CMakeFiles/table4_constrained_low.dir/table4_constrained_low.cpp.o.d"
  "table4_constrained_low"
  "table4_constrained_low.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_constrained_low.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
