# Empty compiler generated dependencies file for table4_constrained_low.
# This may be replaced when dependencies are built.
