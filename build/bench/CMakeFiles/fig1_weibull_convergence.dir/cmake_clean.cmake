file(REMOVE_RECURSE
  "CMakeFiles/fig1_weibull_convergence.dir/fig1_weibull_convergence.cpp.o"
  "CMakeFiles/fig1_weibull_convergence.dir/fig1_weibull_convergence.cpp.o.d"
  "fig1_weibull_convergence"
  "fig1_weibull_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_weibull_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
