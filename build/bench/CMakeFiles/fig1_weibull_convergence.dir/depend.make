# Empty dependencies file for fig1_weibull_convergence.
# This may be replaced when dependencies are built.
