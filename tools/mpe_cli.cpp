// mpe_cli — command-line front end to the library:
//
//   mpe_cli estimate  --circuit c880 [--epsilon 0.05] [--confidence 0.9]
//                     [--tprob 0.5] [--seed 1]
//   mpe_cli report    --circuit c3540 | --bench f.bench | --verilog f.v
//   mpe_cli convert   --in f.bench --out f.v       (format by extension)
//   mpe_cli timing    --circuit c1908 [--model zero|unit|loaded]
//   mpe_cli vcd       --circuit c432 --out wave.vcd [--cycles 4] [--seed 1]
//   mpe_cli maxdelay  --circuit c1908 [--epsilon 0.08]
//   mpe_cli campaign  --manifest jobs.jsonl --state-dir dir [--retries N]
//
// Distributed campaigns (docs/ROBUSTNESS.md, "Distributed campaigns"):
//
//   mpe_cli campaign-coordinator --manifest jobs.jsonl --state-dir dir
//                                --socket /path/sock [--lease-ms N] ...
//   mpe_cli campaign-worker      --socket /path/sock --state-dir dir
//                                --worker-id w0 [--threads N] ...
//   mpe_cli ledger-audit         --report campaign.jsonl [--merged-out F|-]
//
// Circuits come from the built-in presets (--circuit), an ISCAS-85 .bench
// file (--bench), or a structural Verilog file (--verilog).
//
// SIGINT/SIGTERM trip a cooperative cancellation token: in-flight
// estimation winds down at the next hyper-sample boundary, the final
// checkpoint and any report output are flushed, and the process exits with
// the cancelled exit code (8). A second signal force-exits immediately.
#include <sys/stat.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <map>

#include "mpe.hpp"

namespace {

using namespace mpe;

// Signal -> cooperative cancellation. The token is created live before
// main() dispatches, so the handler only ever touches a fully constructed
// shared atomic flag (an async-signal-safe store).
util::CancellationToken g_cancel = util::CancellationToken::create();
volatile std::sig_atomic_t g_signal_count = 0;

void handle_signal(int) {
  const std::sig_atomic_t prior = g_signal_count;
  g_signal_count = prior + 1;  // ++ on volatile is deprecated in C++20
  if (prior > 0) std::_Exit(8 /* exit_code(kCancelled) */);
  g_cancel.request_stop();
}

void install_signal_handlers() {
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
}

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: mpe_cli <estimate|report|convert|timing|vcd|maxdelay|campaign|"
      "campaign-coordinator|campaign-worker|ledger-audit|serve|submit> "
      "[flags]\n"
      "  common circuit flags: --circuit <preset> | --bench <file> | "
      "--verilog <file>, --seed N\n"
      "  estimate: --epsilon E --confidence L [--tprob P | --activity A]\n"
      "            [--deadline-ms N] [--fit-policy use|pwm|redraw]\n"
      "            [--fitter mle|pwm|gev] [--stop t|bootstrap]\n"
      "            [--max-hyper K] [--metrics-out FILE|-] [--trace]\n"
      "            [--checkpoint FILE [--checkpoint-every K] "
      "[--threads N]]\n"
      "            [--delay zero|unit|loaded] "
      "[--sim-backend auto|scalar|interp|compiled]\n"
      "  convert : --in <file.bench|file.v> --out <file.bench|file.v>\n"
      "  timing  : --model zero|unit|loaded\n"
      "  vcd     : --out <file.vcd> [--cycles N]\n"
      "  maxdelay: --epsilon E\n"
      "  campaign: --manifest <jobs.jsonl> --state-dir <dir> [--report F]\n"
      "            [--retries N] [--threads N] [--deadline-ms N]\n"
      "            [--checkpoint-every K]\n"
      "  campaign-coordinator: --manifest <jobs.jsonl> --state-dir <dir>\n"
      "            --socket <path> | --tcp-port N [--host H]\n"
      "            [--report F] [--lease-ms N] [--job-deadline-ms N]\n"
      "            [--max-assign N] [--shard-size K|auto] [--straggler-ms N]\n"
      "            [--shard-floor N] [--shard-ceiling N] "
      "[--shard-target-ms N]\n"
      "  campaign-worker: --socket <path> | --tcp HOST:PORT\n"
      "            --state-dir <dir> --worker-id ID\n"
      "            [--threads N] [--retries N] [--heartbeat-ms N]\n"
      "            [--checkpoint-every K]\n"
      "  ledger-audit: --report <campaign.jsonl> [--merged-out FILE|-]\n"
      "            [--strict]\n"
      "  serve   : --socket <path> and/or --tcp-port N [--host H]\n"
      "            [--state-dir DIR] [--cache-cap N] [--max-active N]\n"
      "            [--max-queue N] [--queue-per-client N] [--threads N]\n"
      "            [--job-deadline-ms N] [--max-deadline-ms N]\n"
      "            [--drain-grace-ms N] [--poll-ms N] [--trace-capacity N]\n"
      "            fleet mode (jobs run on campaign workers):\n"
      "            --fleet --worker-socket <path> | --worker-port N\n"
      "            [--worker-host H] [--lease-ms N] [--max-assign N]\n"
      "            [--shard-size K|auto] [--shard-floor N] "
      "[--shard-ceiling N]\n"
      "            [--shard-target-ms N] [--straggler-ms N]\n"
      "  submit  : --socket <path> | --port N [--host H]\n"
      "            --job ID + estimate-style job flags, or --manifest F\n"
      "            [--deadline-ms N] [--report-dir DIR] [--timeout-ms N]\n"
      "            [--events] | --stats | --scrape\n"
      "exit codes: 0 ok, 1 non-convergence, 2 usage, 3 parse, 4 io,\n"
      "            5 bad data, 6 precondition, 7 deadline, 8 cancelled,\n"
      "            9 injected fault, 10 internal, 11 corrupt data,\n"
      "            12 jobs failed, 13 resource exhausted\n");
  std::exit(exit_code(ErrorCode::kUsage));
}

circuit::Netlist load_circuit(const Cli& cli, std::uint64_t seed) {
  if (cli.has("bench")) return circuit::read_bench_file(cli.get("bench", ""));
  if (cli.has("verilog")) {
    return circuit::read_verilog_file(cli.get("verilog", ""));
  }
  return gen::build_preset(cli.get("circuit", "c432"), seed);
}

int cmd_estimate(const Cli& cli) {
  cli.check_known({"circuit", "bench", "verilog", "seed", "epsilon",
                   "confidence", "tprob", "activity", "max-hyper",
                   "fit-policy", "fitter", "stop", "deadline-ms",
                   "metrics-out", "trace", "checkpoint", "checkpoint-every",
                   "threads", "delay", "sim-backend"});
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  auto netlist = load_circuit(cli, seed);

  // --delay picks the simulation delay model for the streaming population
  // (default loaded, matching prior releases). Batched backends require
  // zero delay: only a zero-delay cycle vectorizes across lanes.
  sim::PowerEvalOptions eval_opt;
  const std::string delay_name = cli.get("delay", "loaded");
  if (delay_name == "zero") {
    eval_opt.delay_model = sim::DelayModel::kZero;
  } else if (delay_name == "unit") {
    eval_opt.delay_model = sim::DelayModel::kUnit;
  } else if (delay_name != "loaded") {
    throw Error(ErrorCode::kUsage, "unknown --delay (zero|unit|loaded)",
                ErrorContext{}.kv("value", delay_name).str());
  }
  sim::CyclePowerEvaluator evaluator(netlist, eval_opt);

  std::unique_ptr<vec::PairGenerator> pairs;
  if (cli.has("tprob")) {
    pairs = std::make_unique<vec::TransitionProbPairGenerator>(
        netlist.num_inputs(), cli.get_double("tprob", 0.5));
  } else if (cli.has("activity")) {
    pairs = std::make_unique<vec::HighActivityPairGenerator>(
        netlist.num_inputs(), cli.get_double("activity", 0.3));
  } else {
    pairs = std::make_unique<vec::UniformPairGenerator>(netlist.num_inputs());
  }
  vec::StreamingPopulation population(*pairs, evaluator);

  // --sim-backend picks how batches are evaluated. All backends produce
  // bit-identical value streams for a seed; this is purely a speed knob.
  //   auto     — compiled tape when the delay model is zero, else scalar
  //   scalar   — per-unit scalar simulation (the reference path)
  //   interp   — 64-lane bit-parallel interpreter (zero delay only)
  //   compiled — SoA gate tape + widest SIMD kernel (zero delay only)
  const std::string backend = cli.get("sim-backend", "auto");
  if (backend == "auto") {
    if (eval_opt.delay_model == sim::DelayModel::kZero &&
        !population.enable_compiled()) {
      population.enable_bit_parallel();
    }
  } else if (backend == "interp") {
    if (!population.enable_bit_parallel()) {
      throw Error(ErrorCode::kUsage,
                  "--sim-backend interp requires --delay zero",
                  ErrorContext{}.kv("delay", delay_name).str());
    }
  } else if (backend == "compiled") {
    if (!population.enable_compiled()) {
      throw Error(ErrorCode::kUsage,
                  "--sim-backend compiled requires --delay zero",
                  ErrorContext{}.kv("delay", delay_name).str());
    }
  } else if (backend != "scalar") {
    throw Error(ErrorCode::kUsage,
                "unknown --sim-backend (auto|scalar|interp|compiled)",
                ErrorContext{}.kv("value", backend).str());
  }

  maxpower::EstimatorOptions options;
  options.epsilon = cli.get_double("epsilon", 0.05);
  options.confidence = cli.get_double("confidence", 0.90);
  options.max_hyper_samples =
      static_cast<std::size_t>(cli.get_int("max-hyper", 500));
  const std::string policy = cli.get("fit-policy", "use");
  if (policy == "pwm") {
    options.hyper.degenerate_policy =
        maxpower::DegenerateFitPolicy::kPwmFallback;
  } else if (policy == "redraw") {
    options.hyper.degenerate_policy =
        maxpower::DegenerateFitPolicy::kDiscardRedraw;
  } else if (policy != "use") {
    throw Error(ErrorCode::kUsage, "unknown --fit-policy (use|pwm|redraw)",
                ErrorContext{}.kv("value", policy).str());
  }
  // Engine strategy selection: --stop picks the interval/stopping rule,
  // --fitter swaps the tail fitter (maxpower/engine.hpp). "mle" maps to the
  // default (null) fitter so it does not perturb checkpoint fingerprints.
  maxpower::EngineConfig engine_cfg;
  const std::string stop_name = cli.get("stop", "");
  if (!stop_name.empty()) {
    const auto kind = maxpower::interval_kind_from_name(stop_name);
    if (!kind) {
      throw Error(ErrorCode::kUsage, "unknown --stop (t|bootstrap)",
                  ErrorContext{}.kv("value", stop_name).str());
    }
    options.interval = *kind;
  }
  const std::string fitter_name = cli.get("fitter", "");
  if (!fitter_name.empty()) {
    const auto kind = maxpower::tail_fitter_kind_from_name(fitter_name);
    if (!kind) {
      throw Error(ErrorCode::kUsage, "unknown --fitter (mle|pwm|gev)",
                  ErrorContext{}.kv("value", fitter_name).str());
    }
    if (*kind != maxpower::TailFitterKind::kWeibullMle) {
      engine_cfg.fitter = maxpower::make_tail_fitter(*kind);
    }
  }
  const auto deadline_ms = cli.get_int("deadline-ms", 0);
  if (deadline_ms > 0) {
    options.control.deadline =
        util::Deadline::after(std::chrono::milliseconds(deadline_ms));
  }
  // SIGINT/SIGTERM wind the run down cooperatively (see file header).
  options.control.cancel = g_cancel;
  // Durable run state: --checkpoint FILE persists progress atomically and
  // resumes from an existing checkpoint (docs/ROBUSTNESS.md).
  options.checkpoint_path = cli.get("checkpoint", "");
  if (cli.has("checkpoint-every")) {
    options.checkpoint_every_k = static_cast<std::size_t>(
        std::max<long long>(1, cli.get_int("checkpoint-every", 1)));
  }

  // Observability: --metrics-out FILE (or `-` for stdout) writes the JSONL
  // run report; --trace additionally captures per-hyper-sample events into
  // it and prints the diagnostics JSON to stderr. Neither flag changes the
  // estimate (instrumentation is read-only; see docs/OBSERVABILITY.md).
  const std::string metrics_out = cli.get("metrics-out", "");
  const bool trace_on = cli.has("trace");
  util::Tracer tracer(trace_on || !metrics_out.empty() ? 4096 : 0);
  if (tracer.enabled()) options.tracer = &tracer;
  if (!metrics_out.empty()) util::MetricRegistry::global().enable(true);

  // --threads selects the pipelined estimator (bit-identical across thread
  // counts, so a checkpoint taken at --threads 8 resumes at --threads 1 and
  // vice versa); without it the sequential reference path runs.
  engine_cfg.options = options;
  const maxpower::Engine engine(engine_cfg);
  maxpower::EstimationResult r;
  if (cli.has("threads") || !options.checkpoint_path.empty()) {
    maxpower::ParallelOptions par;
    par.threads = static_cast<unsigned>(
        std::max<long long>(0, cli.get_int("threads", 1)));
    r = engine.run(population, seed, par);
  } else {
    Rng rng(seed);
    r = engine.run(population, rng);
  }

  if (!metrics_out.empty()) {
    maxpower::RunReportOptions ropt;
    ropt.tracer = &tracer;
    ropt.metrics = &util::MetricRegistry::global();
    const std::string pop_desc = population.description();
    ropt.population = pop_desc;
    if (metrics_out == "-") {
      maxpower::write_run_report(std::cout, r, options, ropt);
    } else {
      std::ofstream out(metrics_out);
      if (!out) {
        throw Error(ErrorCode::kIo, "cannot open metrics output for write",
                    ErrorContext{}.kv("path", metrics_out).str());
      }
      maxpower::write_run_report(out, r, options, ropt);
      if (!out.good()) {
        throw Error(ErrorCode::kIo, "metrics output write failed",
                    ErrorContext{}.kv("path", metrics_out).str());
      }
    }
  }
  if (trace_on) {
    std::fprintf(stderr, "diagnostics: %s\n", r.diagnostics.to_json().c_str());
  }

  std::printf("circuit           : %s (%zu gates)\n", netlist.name().c_str(),
              netlist.num_gates());
  std::printf("input model       : %s\n", pairs->description().c_str());
  const char* backend_name =
      population.backend() == vec::StreamingPopulation::Backend::kCompiled
          ? sim::to_string(population.compiled_kernel())
      : population.backend() == vec::StreamingPopulation::Backend::kBitParallel
          ? "bit-parallel x64"
          : "scalar";
  std::printf("sim backend       : %s (%s delay)\n", backend_name,
              sim::to_string(eval_opt.delay_model));
  std::printf("estimated max     : %.4f mW\n", r.estimate);
  std::printf("confidence interval: [%.4f, %.4f] mW @ %.0f%%\n", r.ci.lower,
              r.ci.upper, options.confidence * 100.0);
  std::printf("rel. error bound  : %.2f%% (target %.2f%%)\n",
              r.relative_error_bound * 100.0, options.epsilon * 100.0);
  std::printf("vector pairs used : %zu (%zu hyper-samples)\n", r.units_used,
              r.hyper_samples);
  std::printf("converged         : %s (%s)\n", r.converged ? "yes" : "no",
              std::string(maxpower::to_string(r.stop_reason)).c_str());
  const auto& diag = r.diagnostics;
  if (diag.degenerate_fits || diag.pwm_refits || diag.constant_samples ||
      diag.discarded_hyper_samples || diag.nonfinite_units ||
      diag.small_population) {
    std::printf(
        "fit health        : %zu degenerate, %zu pwm-refit, %zu constant, "
        "%zu discarded, %zu non-finite units%s\n",
        diag.degenerate_fits, diag.pwm_refits, diag.constant_samples,
        diag.discarded_hyper_samples, diag.nonfinite_units,
        diag.small_population ? ", small population" : "");
  }
  for (const auto& record : diag.records) {
    std::fprintf(stderr, "%s\n", format(record).c_str());
  }
  if (r.converged) return 0;
  switch (r.stop_reason) {
    case maxpower::StopReason::kDeadlineExceeded:
      return exit_code(ErrorCode::kDeadline);
    case maxpower::StopReason::kCancelled:
      return exit_code(ErrorCode::kCancelled);
    case maxpower::StopReason::kDataFault:
      return exit_code(ErrorCode::kBadData);
    default:
      return exit_code(ErrorCode::kNonConvergence);
  }
}

int cmd_campaign(const Cli& cli) {
  cli.check_known({"manifest", "state-dir", "report", "retries", "threads",
                   "deadline-ms", "checkpoint-every", "seed"});
  const std::string manifest = cli.get("manifest", "");
  maxpower::CampaignOptions options;
  options.state_dir = cli.get("state-dir", "");
  if (manifest.empty() || options.state_dir.empty()) usage();
  options.report_path = cli.get("report", "");
  options.retry.max_attempts = static_cast<std::size_t>(
      std::max<long long>(1, cli.get_int("retries", 3)));
  options.threads = static_cast<unsigned>(
      std::max<long long>(0, cli.get_int("threads", 1)));
  if (cli.has("checkpoint-every")) {
    options.checkpoint_every_k = static_cast<std::size_t>(
        std::max<long long>(1, cli.get_int("checkpoint-every", 1)));
  }
  const auto deadline_ms = cli.get_int("deadline-ms", 0);
  if (deadline_ms > 0) {
    options.control.deadline =
        util::Deadline::after(std::chrono::milliseconds(deadline_ms));
  }
  options.control.cancel = g_cancel;

  auto jobs = maxpower::load_campaign_manifest(manifest);
  const auto result = maxpower::run_campaign(jobs, options);

  for (const auto& job : result.jobs) {
    if (job.status == maxpower::JobStatus::kDone) {
      std::printf("%-20s done     %.4f mW (%zu hyper-samples, %zu attempts)\n",
                  job.name.c_str(), job.result.estimate,
                  job.result.hyper_samples, job.attempts);
    } else if (job.status == maxpower::JobStatus::kSkipped) {
      std::printf("%-20s skipped  (already done per report)\n",
                  job.name.c_str());
    } else {
      std::printf("%-20s %-8s [%s] after %zu attempt(s)\n", job.name.c_str(),
                  std::string(maxpower::to_string(job.status)).c_str(),
                  std::string(to_string(job.error)).c_str(), job.attempts);
    }
  }
  std::printf("campaign: %zu done, %zu skipped, %zu failed of %zu jobs\n",
              result.done, result.skipped, result.failed, result.jobs.size());

  if (result.stopped == util::StopCause::kCancelled) {
    return exit_code(ErrorCode::kCancelled);
  }
  if (result.stopped == util::StopCause::kDeadline) {
    return exit_code(ErrorCode::kDeadline);
  }
  // Any fatally-failed job surfaces as the dedicated "jobs failed" exit
  // code (12): distinct from per-job causes (those live in the ledger) and
  // from campaign-level interruptions, so orchestration can branch on $?.
  if (result.failed > 0) return exit_code(ErrorCode::kJobsFailed);
  return 0;
}

/// Parses --shard-size K|auto (plus --shard-floor / --shard-ceiling /
/// --shard-target-ms) into the coordinator-style sizing knobs. Shared by
/// campaign-coordinator and serve --fleet.
void parse_shard_sizing(const Cli& cli, std::size_t& shard_size,
                        bool& shard_auto, std::size_t& floor,
                        std::size_t& ceiling,
                        std::chrono::milliseconds& target) {
  if (cli.get("shard-size", "") == "auto") {
    shard_auto = true;
    shard_size = 0;
  } else if (cli.has("shard-size")) {
    shard_auto = false;
    shard_size = static_cast<std::size_t>(
        std::max<long long>(0, cli.get_int("shard-size", 0)));
  }
  floor = static_cast<std::size_t>(std::max<long long>(
      1, cli.get_int("shard-floor", static_cast<std::int64_t>(floor))));
  ceiling = static_cast<std::size_t>(std::max<long long>(
      static_cast<long long>(floor),
      cli.get_int("shard-ceiling", static_cast<std::int64_t>(ceiling))));
  const auto target_ms = cli.get_int("shard-target-ms", 0);
  if (target_ms > 0) target = std::chrono::milliseconds(target_ms);
}

int cmd_campaign_coordinator(const Cli& cli) {
  cli.check_known({"manifest", "state-dir", "socket", "tcp-port", "host",
                   "report", "lease-ms", "job-deadline-ms", "max-assign",
                   "shard-size", "shard-floor", "shard-ceiling",
                   "shard-target-ms", "straggler-ms", "drain-grace-ms"});
  dist::CoordinatorConfig config;
  const std::string manifest = cli.get("manifest", "");
  config.state_dir = cli.get("state-dir", "");
  const std::string socket_path = cli.get("socket", "");
  const bool tcp = cli.has("tcp-port");
  if (manifest.empty() || config.state_dir.empty() ||
      (socket_path.empty() && !tcp)) {
    usage();
  }
  config.report_path = cli.get("report", "");
  config.lease = std::chrono::milliseconds(
      std::max<long long>(100, cli.get_int("lease-ms", 5000)));
  const auto job_deadline_ms = cli.get_int("job-deadline-ms", 0);
  if (job_deadline_ms > 0) {
    config.job_deadline = std::chrono::milliseconds(job_deadline_ms);
  }
  config.max_assignments = static_cast<std::size_t>(
      std::max<long long>(1, cli.get_int("max-assign", 5)));
  parse_shard_sizing(cli, config.shard_size, config.shard_auto,
                     config.shard_size_floor, config.shard_size_ceiling,
                     config.shard_target_latency);
  const auto straggler_ms = cli.get_int("straggler-ms", 0);
  if (straggler_ms > 0) {
    config.straggler_after = std::chrono::milliseconds(straggler_ms);
  }
  config.jobs = maxpower::load_campaign_manifest(manifest);

  dist::CoordinatorCore core(std::move(config));
  dist::CoordinatorServerOptions server;
  server.socket_path = socket_path;
  server.control.cancel = g_cancel;  // SIGINT/SIGTERM -> graceful drain
  const auto drain_grace_ms = cli.get_int("drain-grace-ms", 0);
  if (drain_grace_ms > 0) {
    server.drain_grace = std::chrono::milliseconds(drain_grace_ms);
  }

  maxpower::CampaignResult result;
  if (tcp) {
    const std::string host = cli.get("host", "127.0.0.1");
    dist::TcpListener listener(
        static_cast<std::uint16_t>(cli.get_int("tcp-port", 0)), host);
    std::printf("listening tcp %s:%u\n", host.c_str(),
                static_cast<unsigned>(listener.port()));
    std::fflush(stdout);  // workers parse the port from this line
    result = dist::serve_campaign(core, listener, server);
  } else {
    result = dist::serve_campaign(core, server);
  }

  std::printf(
      "coordinator: %zu done, %zu skipped, %zu failed; %zu leases granted, "
      "%zu shards done\n",
      result.done, result.skipped, result.failed, core.leases_granted(),
      core.shards_done());
  if (result.stopped == util::StopCause::kCancelled) {
    return exit_code(ErrorCode::kCancelled);
  }
  if (result.stopped == util::StopCause::kDeadline) {
    return exit_code(ErrorCode::kDeadline);
  }
  if (result.failed > 0) return exit_code(ErrorCode::kJobsFailed);
  return 0;
}

int cmd_campaign_worker(const Cli& cli) {
  cli.check_known({"socket", "tcp", "state-dir", "worker-id", "threads",
                   "retries", "heartbeat-ms", "checkpoint-every",
                   "deadline-ms"});
  dist::WorkerConfig config;
  config.socket_path = cli.get("socket", "");
  const std::string tcp = cli.get("tcp", "");
  if (!tcp.empty()) {
    const auto colon = tcp.rfind(':');
    const std::string port_str =
        colon == std::string::npos ? tcp : tcp.substr(colon + 1);
    if (colon != std::string::npos && colon > 0) {
      config.tcp_host = tcp.substr(0, colon);
    }
    config.tcp_port =
        static_cast<std::uint16_t>(std::atoi(port_str.c_str()));
    if (config.tcp_port == 0) usage();
  }
  config.state_dir = cli.get("state-dir", "");
  config.worker_id = cli.get("worker-id", "");
  if ((config.socket_path.empty() && config.tcp_port == 0) ||
      config.state_dir.empty() || config.worker_id.empty()) {
    usage();
  }
  config.threads = static_cast<unsigned>(
      std::max<long long>(0, cli.get_int("threads", 1)));
  config.job_retry.max_attempts = static_cast<std::size_t>(
      std::max<long long>(1, cli.get_int("retries", 3)));
  config.heartbeat = std::chrono::milliseconds(
      std::max<long long>(50, cli.get_int("heartbeat-ms", 1000)));
  if (cli.has("checkpoint-every")) {
    config.checkpoint_every_k = static_cast<std::size_t>(
        std::max<long long>(1, cli.get_int("checkpoint-every", 1)));
  }
  const auto deadline_ms = cli.get_int("deadline-ms", 0);
  if (deadline_ms > 0) {
    config.control.deadline =
        util::Deadline::after(std::chrono::milliseconds(deadline_ms));
  }
  config.control.cancel = g_cancel;

  const auto summary = dist::run_worker(config);
  std::printf(
      "worker %s: %zu leases, %zu shards, %zu done, %zu failed, "
      "%zu stopped%s\n",
      config.worker_id.c_str(), summary.leases, summary.shards, summary.done,
      summary.failed, summary.stopped, summary.drained ? " (drained)" : "");
  if (summary.exit_error != ErrorCode::kOk) {
    return exit_code(summary.exit_error);
  }
  return 0;
}

int cmd_ledger_audit(const Cli& cli) {
  cli.check_known({"report", "merged-out", "strict"});
  const std::string report = cli.get("report", "");
  if (report.empty()) usage();

  const auto ledger = maxpower::read_ledger_file(report);
  const auto audit = maxpower::audit_ledger(ledger);
  std::printf(
      "ledger: %zu records (%zu legacy), %zu corrupt, %zu ignored; "
      "%zu done, %zu failed, %zu duplicate-done\n",
      ledger.records.size(), ledger.legacy, ledger.corrupt.size(),
      ledger.ignored, audit.done_jobs, audit.failed_jobs,
      audit.duplicate_done);
  for (const auto& violation : audit.violations) {
    std::fprintf(stderr, "violation: %s\n", violation.c_str());
  }

  const std::string merged_out = cli.get("merged-out", "");
  if (!merged_out.empty()) {
    const std::string merged = maxpower::merge_ledger(ledger);
    if (merged_out == "-") {
      std::fwrite(merged.data(), 1, merged.size(), stdout);
    } else {
      util::atomic_write_file(merged_out, merged);
    }
  }

  if (!audit.ok()) return exit_code(ErrorCode::kCorruptData);
  if (cli.has("strict") && !ledger.corrupt.empty()) {
    return exit_code(ErrorCode::kCorruptData);
  }
  return 0;
}

int cmd_serve(const Cli& cli) {
  cli.check_known({"socket", "tcp-port", "host", "state-dir", "cache-cap",
                   "max-active", "max-queue", "queue-per-client", "threads",
                   "job-deadline-ms", "max-deadline-ms", "drain-grace-ms",
                   "poll-ms", "trace-capacity", "fleet", "worker-socket",
                   "worker-port", "worker-host", "lease-ms", "max-assign",
                   "shard-size", "shard-floor", "shard-ceiling",
                   "shard-target-ms", "straggler-ms"});
  server::ServerOptions opt;
  opt.unix_socket = cli.get("socket", "");
  if (cli.has("tcp-port")) {
    opt.tcp = true;
    opt.tcp_port =
        static_cast<std::uint16_t>(cli.get_int("tcp-port", 0));
  }
  opt.tcp_host = cli.get("host", "127.0.0.1");
  if (opt.unix_socket.empty() && !opt.tcp) usage();
  opt.state_dir = cli.get("state-dir", "");
  if (!opt.state_dir.empty() &&
      ::mkdir(opt.state_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    throw Error(ErrorCode::kIo, "cannot create server state directory",
                ErrorContext{}.kv("path", opt.state_dir).str());
  }
  opt.cache_capacity = static_cast<std::size_t>(
      std::max<long long>(1, cli.get_int("cache-cap", 16)));
  opt.scheduler.max_active = static_cast<std::size_t>(
      std::max<long long>(1, cli.get_int("max-active", 2)));
  opt.scheduler.max_queued_per_client = static_cast<std::size_t>(
      std::max<long long>(1, cli.get_int("queue-per-client", 8)));
  opt.scheduler.max_queued_total = static_cast<std::size_t>(
      std::max<long long>(1, cli.get_int("max-queue", 64)));
  opt.scheduler.threads_per_job = static_cast<unsigned>(
      std::max<long long>(1, cli.get_int("threads", 1)));
  const auto job_deadline_ms = cli.get_int("job-deadline-ms", 0);
  if (job_deadline_ms > 0) {
    opt.scheduler.default_deadline = std::chrono::milliseconds(job_deadline_ms);
  }
  const auto max_deadline_ms = cli.get_int("max-deadline-ms", 0);
  if (max_deadline_ms > 0) {
    opt.scheduler.max_deadline = std::chrono::milliseconds(max_deadline_ms);
  }
  const auto drain_grace_ms = cli.get_int("drain-grace-ms", 0);
  if (drain_grace_ms > 0) {
    opt.drain_grace = std::chrono::milliseconds(drain_grace_ms);
  }
  const auto poll_ms = cli.get_int("poll-ms", 0);
  if (poll_ms > 0) opt.poll = std::chrono::milliseconds(poll_ms);
  if (cli.has("trace-capacity")) {
    opt.trace_capacity = static_cast<std::size_t>(
        std::max<long long>(0, cli.get_int("trace-capacity", 256)));
  }
  if (cli.has("fleet") || cli.has("worker-socket") || cli.has("worker-port")) {
    opt.fleet.enabled = true;
    opt.fleet.worker_socket = cli.get("worker-socket", "");
    if (cli.has("worker-port")) {
      opt.fleet.worker_tcp = true;
      opt.fleet.worker_tcp_port =
          static_cast<std::uint16_t>(cli.get_int("worker-port", 0));
    }
    opt.fleet.worker_tcp_host = cli.get("worker-host", "127.0.0.1");
    if (opt.fleet.worker_socket.empty() && !opt.fleet.worker_tcp) usage();
    if (opt.state_dir.empty()) usage();  // the fleet ledger lives under it
    opt.fleet.lease = std::chrono::milliseconds(
        std::max<long long>(100, cli.get_int("lease-ms", 5000)));
    opt.fleet.max_assignments = static_cast<std::size_t>(
        std::max<long long>(1, cli.get_int("max-assign", 5)));
    // FleetOptions encodes "auto" as shard_size == 0 (the default).
    bool shard_auto = opt.fleet.shard_size == 0;
    parse_shard_sizing(cli, opt.fleet.shard_size, shard_auto,
                       opt.fleet.shard_size_floor, opt.fleet.shard_size_ceiling,
                       opt.fleet.shard_target_latency);
    if (shard_auto) opt.fleet.shard_size = 0;
    const auto straggler_ms = cli.get_int("straggler-ms", 0);
    if (straggler_ms > 0) {
      opt.fleet.straggler_after = std::chrono::milliseconds(straggler_ms);
    }
  }
  opt.control.cancel = g_cancel;  // SIGINT/SIGTERM -> graceful drain
  util::MetricRegistry::global().enable(true);  // feeds the scrape endpoint

  server::Server server(opt);
  if (!opt.unix_socket.empty()) {
    std::printf("listening unix %s\n", opt.unix_socket.c_str());
  }
  if (opt.tcp) {
    std::printf("listening tcp %s:%u\n", opt.tcp_host.c_str(),
                static_cast<unsigned>(server.tcp_port()));
  }
  if (opt.fleet.enabled && !opt.fleet.worker_socket.empty()) {
    std::printf("listening worker unix %s\n", opt.fleet.worker_socket.c_str());
  }
  if (opt.fleet.enabled && opt.fleet.worker_tcp) {
    std::printf("listening worker tcp %s:%u\n",
                opt.fleet.worker_tcp_host.c_str(),
                static_cast<unsigned>(server.worker_tcp_port()));
  }
  std::fflush(stdout);  // clients parse the port from this line

  const auto report = server.serve();
  const auto& s = report.stats;
  std::printf(
      "server: %llu connections; %llu accepted, %llu rejected; "
      "%llu done, %llu failed, %llu stopped; cache %llu hits, %llu misses, "
      "%llu evictions%s\n",
      static_cast<unsigned long long>(report.connections),
      static_cast<unsigned long long>(s.accepted),
      static_cast<unsigned long long>(s.rejected),
      static_cast<unsigned long long>(s.done),
      static_cast<unsigned long long>(s.failed),
      static_cast<unsigned long long>(s.stopped),
      static_cast<unsigned long long>(s.cache_hits),
      static_cast<unsigned long long>(s.cache_misses),
      static_cast<unsigned long long>(s.cache_evictions),
      report.drained ? " (drained)" : " (drain grace expired)");
  return report.drained ? 0 : exit_code(ErrorCode::kCancelled);
}

/// Builds the single inline job described by submit's estimate-style flags.
maxpower::CampaignJob submit_job_from_flags(const Cli& cli) {
  maxpower::CampaignJob job;
  job.name = cli.get("job", "");
  job.circuit = cli.get("circuit", "");
  job.bench = cli.get("bench", "");
  job.verilog = cli.get("verilog", "");
  job.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  job.epsilon = cli.get_double("epsilon", 0.05);
  job.confidence = cli.get_double("confidence", 0.90);
  job.tprob = cli.get_double("tprob", 0.5);
  if (cli.has("activity")) job.activity = cli.get_double("activity", 0.3);
  job.max_hyper_samples =
      static_cast<std::size_t>(cli.get_int("max-hyper", 500));
  job.fitter = cli.get("fitter", "");
  job.stop = cli.get("stop", "");
  job.delay = cli.get("delay", "");
  return job;
}

int cmd_submit(const Cli& cli) {
  cli.check_known({"socket", "host", "port", "stats", "scrape", "manifest",
                   "job", "circuit", "bench", "verilog", "seed", "epsilon",
                   "confidence", "tprob", "activity", "max-hyper", "fitter",
                   "stop", "delay", "deadline-ms", "report-dir", "timeout-ms",
                   "client-id", "events"});
  std::unique_ptr<dist::LineChannel> channel;
  const std::string socket_path = cli.get("socket", "");
  if (!socket_path.empty()) {
    channel = dist::connect_unix(socket_path);
  } else if (cli.has("port")) {
    channel = dist::connect_tcp(
        cli.get("host", "127.0.0.1"),
        static_cast<std::uint16_t>(cli.get_int("port", 0)));
  } else {
    usage();
  }
  if (channel == nullptr) {
    throw Error(ErrorCode::kIo, "cannot connect to server",
                ErrorContext{}.kv("socket", socket_path).str());
  }
  const auto recv_timeout = std::chrono::milliseconds(200);
  const auto overall = std::chrono::milliseconds(
      std::max<long long>(1000, cli.get_int("timeout-ms", 300000)));
  const auto deadline = std::chrono::steady_clock::now() + overall;
  const auto recv_reply = [&](server::ServerMessage& msg) {
    std::string line;
    while (std::chrono::steady_clock::now() < deadline &&
           g_signal_count == 0) {
      const auto status = channel->recv_line(line, recv_timeout);
      if (status == dist::LineChannel::RecvStatus::kClosed) {
        throw Error(ErrorCode::kIo, "server closed the connection");
      }
      if (status == dist::LineChannel::RecvStatus::kTimeout) continue;
      msg = server::decode_server_message(line);
      return true;
    }
    return false;
  };

  channel->send_line(server::encode_hello(cli.get("client-id", "mpe_cli")));
  server::ServerMessage msg;
  if (!recv_reply(msg) || msg.kind != server::ServerMessageKind::kWelcome) {
    throw Error(ErrorCode::kIo, "server handshake failed",
                ErrorContext{}
                    .kv("reply", msg.kind == server::ServerMessageKind::kError
                                     ? msg.detail
                                     : "timeout")
                    .str());
  }

  if (cli.has("scrape")) {
    channel->send_line(server::encode_scrape());
    if (!recv_reply(msg) || msg.kind != server::ServerMessageKind::kMetrics) {
      throw Error(ErrorCode::kIo, "scrape failed");
    }
    std::fwrite(msg.text.data(), 1, msg.text.size(), stdout);
    return 0;
  }
  if (cli.has("stats")) {
    channel->send_line(server::encode_stats());
    if (!recv_reply(msg) ||
        msg.kind != server::ServerMessageKind::kServerStats) {
      throw Error(ErrorCode::kIo, "stats failed");
    }
    std::fwrite(server::encode_server_stats(msg.stats).data(), 1,
                server::encode_server_stats(msg.stats).size(), stdout);
    std::printf("\n");
    return 0;
  }

  std::vector<maxpower::CampaignJob> jobs;
  const std::string manifest = cli.get("manifest", "");
  if (!manifest.empty()) {
    jobs = maxpower::load_campaign_manifest(manifest);
  } else {
    jobs.push_back(submit_job_from_flags(cli));
    if (jobs.back().name.empty()) usage();
  }
  const auto deadline_ms = static_cast<std::uint64_t>(
      std::max<long long>(0, cli.get_int("deadline-ms", 0)));
  const std::string report_dir = cli.get("report-dir", "");
  const bool show_events = cli.has("events");

  std::map<std::string, bool> pending;  // id -> still waiting for a verdict
  for (const auto& job : jobs) {
    channel->send_line(server::encode_submit(
        job.name, maxpower::campaign_job_to_json(job), deadline_ms));
    pending[job.name] = true;
  }

  bool resource_exhausted = false;
  bool failed = false;
  std::size_t remaining = pending.size();
  while (remaining > 0) {
    if (!recv_reply(msg)) {
      throw Error(ErrorCode::kDeadline, "timed out waiting for results",
                  ErrorContext{}.kv("pending", remaining).str());
    }
    switch (msg.kind) {
      case server::ServerMessageKind::kAccepted:
        break;  // a result will follow
      case server::ServerMessageKind::kRejected: {
        std::printf("%-20s rejected [%s] %s\n", msg.id.c_str(),
                    std::string(to_string(msg.code)).c_str(),
                    msg.detail.c_str());
        if (msg.code == ErrorCode::kResourceExhausted) {
          resource_exhausted = true;
        } else {
          failed = true;
        }
        if (pending.count(msg.id) != 0 && pending[msg.id]) {
          pending[msg.id] = false;
          --remaining;
        }
        break;
      }
      case server::ServerMessageKind::kEvent:
        if (show_events) {
          std::fprintf(stderr, "event %s #%llu %s {%s}\n", msg.id.c_str(),
                       static_cast<unsigned long long>(msg.seq),
                       msg.name.c_str(), msg.fields.c_str());
        }
        break;
      case server::ServerMessageKind::kResult: {
        if (msg.status == maxpower::JobStatus::kDone) {
          // Full-precision numbers: scripts byte-compare these against the
          // batch CLI for the determinism guarantee.
          std::printf(
              "%-20s done     estimate=%.17g ci=[%.17g,%.17g] "
              "hyper=%llu units=%llu%s\n",
              msg.id.c_str(), msg.estimate, msg.ci_lower, msg.ci_upper,
              static_cast<unsigned long long>(msg.hyper_samples),
              static_cast<unsigned long long>(msg.units),
              msg.converged ? "" : " (not converged)");
        } else {
          std::printf("%-20s %-8s [%s]\n", msg.id.c_str(),
                      std::string(maxpower::to_string(msg.status)).c_str(),
                      std::string(to_string(msg.code)).c_str());
          failed = true;
        }
        if (!report_dir.empty() && !msg.text.empty()) {
          const std::string path = report_dir + "/" + msg.id + ".jsonl";
          std::ofstream out(path);
          if (out) out << msg.text;
        }
        if (pending.count(msg.id) != 0 && pending[msg.id]) {
          pending[msg.id] = false;
          --remaining;
        }
        break;
      }
      case server::ServerMessageKind::kDrain:
        std::fprintf(stderr, "server draining\n");
        break;
      case server::ServerMessageKind::kError:
        throw Error(ErrorCode::kBadData, "server reported a protocol error",
                    ErrorContext{}.kv("detail", msg.detail).str());
      default:
        break;  // tolerate unknown-but-valid replies
    }
  }
  if (resource_exhausted && !failed) {
    return exit_code(ErrorCode::kResourceExhausted);
  }
  if (failed || resource_exhausted) return exit_code(ErrorCode::kJobsFailed);
  return 0;
}

int cmd_report(const Cli& cli) {
  cli.check_known({"circuit", "bench", "verilog", "seed"});
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  auto netlist = load_circuit(cli, seed);
  const auto st = netlist.stats();
  std::printf("%s: %zu inputs, %zu outputs, %zu gates, depth %zu\n",
              netlist.name().c_str(), st.num_inputs, st.num_outputs,
              st.num_gates, st.depth);
  std::printf("max fanin %zu, max fanout %zu, avg fanout %.2f\n",
              st.max_fanin, st.max_fanout, st.avg_fanout);
  for (std::size_t t = 0; t < circuit::kNumGateTypes; ++t) {
    if (st.gates_by_type[t] == 0) continue;
    std::printf("  %-5s %zu\n",
                circuit::to_string(static_cast<circuit::GateType>(t)).c_str(),
                st.gates_by_type[t]);
  }
  const auto timing = sim::analyze_timing(netlist);
  std::printf("topological critical delay: %.3f ns\n", timing.critical_delay);

  const vec::UniformPairGenerator pairs(netlist.num_inputs());
  Rng rng(seed);
  const auto prof = sim::profile_power(netlist, pairs, 300, {}, rng);
  std::printf("avg power %.4f mW, sampled max %.4f mW; top consumers:\n",
              prof.avg_power_mw, prof.max_power_mw);
  for (std::size_t i = 0; i < std::min<std::size_t>(5, prof.by_node.size());
       ++i) {
    std::printf("  %-16s %5.1f%% of energy\n",
                netlist.node_name(prof.by_node[i].node).c_str(),
                prof.by_node[i].share * 100.0);
  }
  return 0;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

int cmd_convert(const Cli& cli) {
  cli.check_known({"in", "out"});
  const std::string in_path = cli.get("in", "");
  const std::string out_path = cli.get("out", "");
  if (in_path.empty() || out_path.empty()) usage();

  circuit::Netlist netlist =
      ends_with(in_path, ".v") ? circuit::read_verilog_file(in_path)
                               : circuit::read_bench_file(in_path);
  std::ofstream out(out_path);
  if (!out) {
    throw Error(ErrorCode::kIo, "cannot open for write",
                ErrorContext{}.kv("path", out_path).str());
  }
  if (ends_with(out_path, ".v")) {
    circuit::write_verilog(out, netlist);
  } else {
    circuit::write_bench(out, netlist);
  }
  std::printf("%s (%zu gates) -> %s\n", in_path.c_str(), netlist.num_gates(),
              out_path.c_str());
  return 0;
}

int cmd_timing(const Cli& cli) {
  cli.check_known({"circuit", "bench", "verilog", "seed", "model"});
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  auto netlist = load_circuit(cli, seed);
  const std::string model = cli.get("model", "loaded");
  sim::DelayModel dm = sim::DelayModel::kFanoutLoaded;
  if (model == "zero") dm = sim::DelayModel::kZero;
  else if (model == "unit") dm = sim::DelayModel::kUnit;
  else if (model != "loaded") usage();

  const auto t = sim::analyze_timing(netlist, sim::Technology{}, dm);
  std::printf("critical delay (%s model): %.3f ns\n",
              sim::to_string(dm), t.critical_delay);
  std::printf("critical path (%zu nodes):\n", t.critical_path.size());
  for (auto n : t.critical_path) {
    std::printf("  %-20s arrival %.3f ns\n",
                netlist.node_name(n).c_str(), t.arrival[n]);
  }
  return 0;
}

int cmd_vcd(const Cli& cli) {
  cli.check_known({"circuit", "bench", "verilog", "seed", "out", "cycles"});
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const auto cycles = static_cast<std::size_t>(cli.get_int("cycles", 4));
  const std::string out_path = cli.get("out", "");
  if (out_path.empty()) usage();

  auto netlist = load_circuit(cli, seed);
  sim::VcdRecorder recorder(netlist);
  Rng rng(seed);
  auto v1 = vec::random_vector(netlist.num_inputs(), rng);
  double total_mw = 0.0;
  for (std::size_t c = 0; c < cycles; ++c) {
    const auto v2 = vec::random_vector(netlist.num_inputs(), rng);
    total_mw += recorder.record_cycle(v1, v2).power_mw;
    v1 = v2;
  }
  std::ofstream out(out_path);
  if (!out) {
    throw Error(ErrorCode::kIo, "cannot open for write",
                ErrorContext{}.kv("path", out_path).str());
  }
  recorder.write(out);
  std::printf("wrote %s: %zu cycles, %zu transitions, avg power %.4f mW\n",
              out_path.c_str(), recorder.cycles(), recorder.events().size(),
              total_mw / static_cast<double>(cycles));
  return 0;
}

int cmd_maxdelay(const Cli& cli) {
  cli.check_known({"circuit", "bench", "verilog", "seed", "epsilon"});
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  auto netlist = load_circuit(cli, seed);
  sim::EventSimOptions options;
  sim::EventSimulator simulator(netlist, options);
  const vec::UniformPairGenerator pairs(netlist.num_inputs());
  maxpower::EstimatorOptions est;
  est.epsilon = cli.get_double("epsilon", 0.08);
  Rng rng(seed);
  const auto r = maxdelay::estimate_max_delay(pairs, simulator, est, rng);
  const auto t = sim::analyze_timing(netlist);
  std::printf("EVT max sensitizable delay: %.3f ns  [%.3f, %.3f] @ 90%%\n",
              r.estimate, r.ci.lower, r.ci.upper);
  std::printf("topological bound         : %.3f ns\n", t.critical_delay);
  std::printf("vector pairs used         : %zu\n", r.units_used);
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  install_signal_handlers();
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  const Cli cli(argc - 1, argv + 1);
  if (cmd == "estimate") return cmd_estimate(cli);
  if (cmd == "campaign") return cmd_campaign(cli);
  if (cmd == "campaign-coordinator") return cmd_campaign_coordinator(cli);
  if (cmd == "campaign-worker") return cmd_campaign_worker(cli);
  if (cmd == "ledger-audit") return cmd_ledger_audit(cli);
  if (cmd == "serve") return cmd_serve(cli);
  if (cmd == "submit") return cmd_submit(cli);
  if (cmd == "report") return cmd_report(cli);
  if (cmd == "convert") return cmd_convert(cli);
  if (cmd == "timing") return cmd_timing(cli);
  if (cmd == "vcd") return cmd_vcd(cli);
  if (cmd == "maxdelay") return cmd_maxdelay(cli);
  usage();
} catch (const std::exception& e) {
  // Structured report + stable exit code for every escaping failure:
  // usage/parse/io/bad-data each land on their own code so scripts can
  // branch on $? instead of scraping stderr.
  const mpe::Diagnostic d = mpe::classify_exception(e);
  std::fprintf(stderr, "mpe_cli: %s\n", mpe::format(d).c_str());
  return mpe::exit_code(d.code);
}
