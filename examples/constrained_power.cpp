// Constrained maximum power (the paper's category I.2): estimate the
// maximum cycle power when the input statistics are constrained to a given
// per-line transition probability — e.g. a bus that switches rarely versus
// a hot datapath — and show how the maximum scales with input activity.
//
//   ./constrained_power [--circuit c432] [--seed 1] [--epsilon 0.05]
#include <cstdio>
#include <exception>
#include <iostream>

#include "mpe.hpp"

int main(int argc, char** argv) try {
  const mpe::Cli cli(argc, argv);
  cli.check_known({"circuit", "seed", "epsilon"});
  const std::string circuit = cli.get("circuit", "c432");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const double epsilon = cli.get_double("epsilon", 0.05);

  auto netlist = mpe::gen::build_preset(circuit, seed);
  std::printf("constrained maximum power on %s (%zu gates)\n",
              netlist.name().c_str(), netlist.num_gates());

  mpe::Table table({"transition prob", "est. max power (mW)",
                    "90% CI (mW)", "avg power (mW)", "units"});

  for (double tp : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    mpe::sim::CyclePowerEvaluator evaluator(netlist);
    const mpe::vec::TransitionProbPairGenerator pairs(netlist.num_inputs(),
                                                      tp);
    mpe::vec::StreamingPopulation population(pairs, evaluator);

    mpe::maxpower::EstimatorOptions options;
    options.epsilon = epsilon;
    mpe::Rng rng(seed);
    const auto r =
        mpe::maxpower::estimate_max_power(population, options, rng);

    // Also report the average power over a quick random sample, to show
    // how far the maximum sits above the mean at each activity level.
    mpe::Rng rng2(seed + 1);
    double avg = 0.0;
    const int avg_n = 500;
    for (int i = 0; i < avg_n; ++i) avg += population.draw(rng2);
    avg /= avg_n;

    table.add_row({mpe::Table::num(tp, 1), mpe::Table::num(r.estimate, 3),
                   "[" + mpe::Table::num(r.ci.lower, 3) + ", " +
                       mpe::Table::num(r.ci.upper, 3) + "]",
                   mpe::Table::num(avg, 3),
                   mpe::Table::integer(static_cast<long long>(r.units_used))});
  }
  std::cout << table;
  std::printf(
      "\nThe maximum power scales with the constrained input activity —\n"
      "the estimator answers 'how bad can it get under MY input statistics',\n"
      "which vector-search methods for the unconstrained problem cannot.\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
