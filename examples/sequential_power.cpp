// Sequential maximum-power estimation: the EVT estimator applied to
// per-cycle power of clocked circuits (counters, LFSRs, accumulators) under
// random input streams — extending the paper's combinational setting to the
// sequential problem its related work ([4]) targets.
//
//   ./sequential_power [--bits 16] [--epsilon 0.08] [--seed 1]
#include <cstdio>
#include <exception>
#include <iostream>

#include "mpe.hpp"

namespace {

void run_one(const char* label, mpe::seq::SequentialNetlist netlist,
             double epsilon, std::uint64_t seed, mpe::Table& table) {
  mpe::seq::SequentialSimulator simulator(netlist);
  mpe::seq::SequencePopulation population(simulator);

  // Direct sampling for context: average power over a random stream.
  mpe::Rng probe_rng(seed + 1);
  double avg = 0.0;
  const int probe_n = 400;
  for (int i = 0; i < probe_n; ++i) avg += population.draw(probe_rng);
  avg /= probe_n;

  mpe::seq::SequentialSimulator est_sim(netlist);
  mpe::seq::SequencePopulation est_pop(est_sim);
  mpe::maxpower::EstimatorOptions options;
  options.epsilon = epsilon;
  mpe::Rng rng(seed);
  const auto r = mpe::maxpower::estimate_max_power(est_pop, options, rng);

  table.add_row(
      {label,
       mpe::Table::integer(
           static_cast<long long>(netlist.num_state_bits())),
       mpe::Table::integer(
           static_cast<long long>(netlist.core().num_gates())),
       mpe::Table::num(avg, 4), mpe::Table::num(r.estimate, 4),
       "[" + mpe::Table::num(r.ci.lower, 3) + ", " +
           mpe::Table::num(r.ci.upper, 3) + "]",
       mpe::Table::integer(static_cast<long long>(r.units_used))});
}

}  // namespace

int main(int argc, char** argv) try {
  const mpe::Cli cli(argc, argv);
  cli.check_known({"bits", "epsilon", "seed"});
  const auto bits =
      static_cast<std::size_t>(cli.get_int("bits", 16));
  const double epsilon = cli.get_double("epsilon", 0.08);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  std::printf(
      "EVT maximum cycle-power estimation on sequential circuits "
      "(%zu-bit, eps = %.0f%% @ 90%%)\n\n",
      bits, epsilon * 100.0);

  mpe::Table table({"circuit", "FFs", "gates", "avg power (mW)",
                    "est. max power (mW)", "90% CI (mW)", "cycles"});
  run_one("binary counter", mpe::seq::make_counter(bits), epsilon, seed,
          table);
  run_one("LFSR (x^16+x^14+x^13+x^11+1)",
          mpe::seq::make_lfsr(16, {16, 14, 13, 11}), epsilon, seed, table);
  run_one("shift register", mpe::seq::make_shift_register(bits), epsilon,
          seed, table);
  run_one("accumulator", mpe::seq::make_accumulator(bits), epsilon, seed,
          table);
  std::cout << table;
  std::printf(
      "\nPer-cycle powers along a random input stream are state-correlated; "
      "the\nblock-maxima construction (n = 30 cycles per sample) remains "
      "valid for such\nmixing sequences, which is what lets the "
      "combinational method carry over.\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
