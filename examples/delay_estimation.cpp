// Maximum-delay estimation (the extension suggested in the paper's
// conclusion): apply the same extreme-value machinery to the per-cycle
// settle time of the event-driven simulator, statistically estimating the
// longest sensitizable path delay — and compare against the structural
// (topological) bound, which ignores sensitization and is pessimistic.
//
//   ./delay_estimation [--circuit c1908] [--seed 1] [--epsilon 0.05]
#include <cstdio>
#include <exception>

#include "mpe.hpp"

int main(int argc, char** argv) try {
  const mpe::Cli cli(argc, argv);
  cli.check_known({"circuit", "seed", "epsilon"});
  const std::string circuit = cli.get("circuit", "c1908");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const double epsilon = cli.get_double("epsilon", 0.05);

  auto netlist = mpe::gen::build_preset(circuit, seed);

  mpe::sim::EventSimOptions sim_options;
  sim_options.delay_model = mpe::sim::DelayModel::kFanoutLoaded;
  mpe::sim::EventSimulator simulator(netlist, sim_options);

  // Structural upper bound: sum the worst gate delay along the deepest
  // path. Cheap proxy: depth * max gate delay (very pessimistic), plus the
  // tighter per-level longest-path accumulation.
  double max_gate_delay = 0.0;
  for (double d : simulator.gate_delay()) {
    max_gate_delay = std::max(max_gate_delay, d);
  }
  const double crude_bound =
      static_cast<double>(netlist.depth()) * max_gate_delay;

  // Longest structural path under the real per-gate delays.
  std::vector<double> arrival(netlist.num_nodes(), 0.0);
  double topo_bound = 0.0;
  for (auto g : netlist.topo_order()) {
    const auto& gate = netlist.gate(g);
    double in_arrival = 0.0;
    for (auto n : gate.inputs) in_arrival = std::max(in_arrival, arrival[n]);
    arrival[gate.output] = in_arrival + simulator.gate_delay()[g];
    topo_bound = std::max(topo_bound, arrival[gate.output]);
  }

  std::printf("circuit %s: depth %zu, topological delay bound %.3f ns\n",
              netlist.name().c_str(), netlist.depth(), topo_bound);

  const mpe::vec::UniformPairGenerator pairs(netlist.num_inputs());
  mpe::maxpower::EstimatorOptions options;
  options.epsilon = epsilon;
  mpe::Rng rng(seed);
  const auto r =
      mpe::maxdelay::estimate_max_delay(pairs, simulator, options, rng);

  std::printf(
      "\nEVT estimate of max sensitizable delay : %.3f ns\n"
      "confidence interval                    : [%.3f, %.3f] ns\n"
      "topological (structural) bound         : %.3f ns\n"
      "crude depth x max-gate bound           : %.3f ns\n"
      "vector pairs simulated                 : %zu\n"
      "converged                              : %s\n\n"
      "The statistical estimate <= the topological bound; the gap is the\n"
      "pessimism of purely structural timing (false paths, rare\n"
      "sensitization) that the paper's conclusion points at.\n",
      r.estimate, r.ci.lower, r.ci.upper, topo_bound, crude_bound,
      r.units_used, r.converged ? "yes" : "no");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
