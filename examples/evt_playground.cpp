// EVT playground: demonstrates the statistical machinery on synthetic data
// where the truth is known —
//   1. block maxima of a bounded parent converge to the reversed Weibull,
//   2. which Fisher–Tippett domain a sample belongs to,
//   3. endpoint recovery by the Smith MLE versus PWM,
//   4. how the finite-population quantile correction removes the bias.
//
//   ./evt_playground [--seed 7]
#include <algorithm>
#include <cstdio>
#include <exception>
#include <iostream>

#include "mpe.hpp"

int main(int argc, char** argv) try {
  const mpe::Cli cli(argc, argv);
  cli.check_known({"seed"});
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  mpe::Rng rng(seed);

  // ---- 1. Convergence of block maxima ------------------------------------
  std::printf("1) block maxima of U(0,1): fitted Weibull endpoint vs n\n");
  mpe::Table conv({"block size n", "fitted endpoint mu", "fitted shape",
                   "KS distance"});
  for (std::size_t n : {2u, 10u, 30u, 50u}) {
    std::vector<double> maxima(500);
    for (auto& m : maxima) {
      double best = 0.0;
      for (std::size_t j = 0; j < n; ++j) best = std::max(best, rng.uniform());
      m = best;
    }
    const auto fit = mpe::evt::fit_weibull_mle(maxima);
    const mpe::stats::ReversedWeibull g(fit.params);
    const auto ks =
        mpe::stats::ks_test(maxima, [&](double x) { return g.cdf(x); });
    conv.add_row({mpe::Table::integer(static_cast<long long>(n)),
                  mpe::Table::num(fit.params.mu, 4),
                  mpe::Table::num(fit.params.alpha, 3),
                  mpe::Table::num(ks.statistic, 4)});
  }
  std::cout << conv;
  std::printf("   (true endpoint is 1.0; the fit tightens as n grows)\n\n");

  // ---- 2. Domain-of-attraction classification ----------------------------
  std::printf("2) domain classification of three synthetic samples\n");
  auto classify = [&](const char* label, std::vector<double> xs) {
    const auto c = mpe::evt::classify_domain(xs);
    std::printf("   %-24s -> %-8s (PWM shape xi = %+.3f)\n", label,
                mpe::evt::to_string(c.best).c_str(), c.pwm_xi);
  };
  {
    const mpe::stats::ReversedWeibull g(3.0, 1.0, 5.0);
    std::vector<double> xs(1500);
    for (auto& x : xs) x = g.sample(rng);
    classify("bounded (Weibull)", std::move(xs));
  }
  {
    const mpe::stats::Gumbel g(0.0, 1.0);
    std::vector<double> xs(1500);
    for (auto& x : xs) x = g.sample(rng);
    classify("exponential-tail (Gumbel)", std::move(xs));
  }
  {
    const mpe::stats::Frechet g(1.5, 1.0);
    std::vector<double> xs(1500);
    for (auto& x : xs) x = g.sample(rng);
    classify("power-tail (Frechet)", std::move(xs));
  }

  // ---- 3. MLE vs PWM endpoint recovery ------------------------------------
  std::printf("\n3) endpoint recovery, true mu = 10 (m = 50 maxima)\n");
  const mpe::stats::ReversedWeibull truth(3.5, 1.0, 10.0);
  std::vector<double> sample(50);
  for (auto& x : sample) x = truth.sample(rng);
  const auto mle = mpe::evt::fit_weibull_mle(sample);
  const auto pwm = mpe::evt::fit_gev_pwm(sample);
  std::printf("   Smith MLE : mu = %.4f (alpha = %.2f)\n", mle.params.mu,
              mle.params.alpha);
  if (pwm.valid && pwm.params.xi < 0.0) {
    std::printf("   PWM       : mu = %.4f (xi = %.3f)\n",
                mpe::stats::Gev(pwm.params).right_endpoint(), pwm.params.xi);
  }

  // ---- 4. Finite-population correction ------------------------------------
  std::printf("\n4) finite-population correction (|V| = 20000)\n");
  std::vector<double> values(20000);
  for (auto& v : values) v = truth.sample(rng);
  mpe::vec::FinitePopulation population(std::move(values), "synthetic");
  mpe::maxpower::HyperSampleOptions raw;
  raw.finite_correction = false;
  raw.endpoint_ridge_tolerance = 0.0;
  mpe::maxpower::HyperSampleOptions corrected;
  double raw_mean = 0.0, corrected_mean = 0.0;
  const int reps = 60;
  mpe::Rng r1(seed + 1), r2(seed + 1);
  for (int i = 0; i < reps; ++i) {
    raw_mean += draw_hyper_sample(population, raw, r1).estimate;
    corrected_mean += draw_hyper_sample(population, corrected, r2).estimate;
  }
  std::printf(
      "   population max          : %.4f\n"
      "   mean raw mu-hat         : %.4f  (biased high)\n"
      "   mean corrected estimate : %.4f  (the paper's Section 3.4 fix)\n",
      population.true_max(), raw_mean / reps, corrected_mean / reps);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
