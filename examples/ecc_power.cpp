// ECC datapath power: maximum cycle power of a Hamming decoder under three
// traffic models — clean codewords, codewords with single-bit errors, and
// raw random inputs. Error traffic lights up the correction cones, shifting
// both average and maximum power: a concrete instance of the paper's
// category I.2 (the achievable maximum depends on the input constraint).
//
//   ./ecc_power [--data 16] [--epsilon 0.08] [--seed 1]
#include <cstdio>
#include <exception>
#include <iostream>

#include "mpe.hpp"

namespace {

using namespace mpe;

/// Generates consecutive codeword pairs for the decoder: each cycle carries
/// a fresh random data word, optionally corrupted in one random bit.
class CodewordPairGenerator final : public vec::PairGenerator {
 public:
  CodewordPairGenerator(const circuit::Netlist& encoder, std::size_t n,
                        bool inject_error)
      : encoder_(encoder), n_(n), inject_error_(inject_error) {}

  vec::VectorPair generate(Rng& rng) const override {
    vec::VectorPair p;
    p.first = codeword(rng);
    p.second = codeword(rng);
    return p;
  }
  std::size_t width() const override { return n_; }
  std::string description() const override {
    return inject_error_ ? "codewords with single-bit errors"
                         : "clean codewords";
  }

 private:
  vec::InputVector codeword(Rng& rng) const {
    vec::InputVector data(encoder_.num_inputs());
    for (auto& b : data) b = rng.bernoulli(0.5) ? 1 : 0;
    const auto values = circuit::evaluate(encoder_, data);
    vec::InputVector code(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      code[i] = values[encoder_.outputs()[i]];
    }
    if (inject_error_) code[rng.below(n_)] ^= 1;
    return code;
  }

  const circuit::Netlist& encoder_;
  std::size_t n_;
  bool inject_error_;
};

}  // namespace

int main(int argc, char** argv) try {
  const Cli cli(argc, argv);
  cli.check_known({"data", "epsilon", "seed"});
  const auto k = static_cast<std::size_t>(cli.get_int("data", 16));
  const double epsilon = cli.get_double("epsilon", 0.08);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  auto encoder = gen::hamming_encoder(k, "enc");
  auto decoder = gen::hamming_decoder(k, "dec");
  const std::size_t n = k + gen::hamming_parity_bits(k);
  std::printf(
      "Hamming(%zu,%zu) decoder power under constrained traffic "
      "(%zu gates)\n\n",
      n, k, decoder.num_gates());

  Table table({"traffic", "avg power (mW)", "est. max power (mW)",
               "90% CI (mW)", "units"});
  auto run = [&](const vec::PairGenerator& gen_ref) {
    sim::CyclePowerEvaluator evaluator(decoder);
    vec::StreamingPopulation population(gen_ref, evaluator);
    Rng probe_rng(seed + 1);
    double avg = 0.0;
    const int probe_n = 400;
    for (int i = 0; i < probe_n; ++i) avg += population.draw(probe_rng);
    avg /= probe_n;

    maxpower::EstimatorOptions options;
    options.epsilon = epsilon;
    Rng rng(seed);
    const auto r = maxpower::estimate_max_power(population, options, rng);
    table.add_row({gen_ref.description(), Table::num(avg, 4),
                   Table::num(r.estimate, 4),
                   "[" + Table::num(r.ci.lower, 3) + ", " +
                       Table::num(r.ci.upper, 3) + "]",
                   Table::integer(static_cast<long long>(r.units_used))});
  };

  const CodewordPairGenerator clean(encoder, n, false);
  const CodewordPairGenerator errors(encoder, n, true);
  const vec::UniformPairGenerator uniform(n);
  run(clean);
  run(errors);
  run(uniform);
  std::cout << table;
  std::printf(
      "\nClean traffic keeps the syndrome cones quiet. Injected errors fire "
      "the\ncorrection logic every single cycle, pushing the maximum above "
      "even raw\nrandom inputs (which are only sometimes invalid) — the "
      "realistic worst case\nis a property of the input constraint, which "
      "is exactly what the paper's\ncategory I.2 formulation captures.\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
