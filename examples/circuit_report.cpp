// Circuit report: structural and electrical profile of a netlist — gate mix,
// level histogram, Monte-Carlo signal activity, node capacitance summary,
// and a cycle power distribution sketch. Also round-trips the netlist
// through the ISCAS-85 .bench format.
//
//   ./circuit_report [--circuit c3540] [--seed 1] [--bench file.bench]
//                    [--export out.bench]
#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>

#include "mpe.hpp"

int main(int argc, char** argv) try {
  const mpe::Cli cli(argc, argv);
  cli.check_known({"circuit", "seed", "bench", "export"});
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  mpe::circuit::Netlist netlist =
      cli.has("bench")
          ? mpe::circuit::read_bench_file(cli.get("bench", ""))
          : mpe::gen::build_preset(cli.get("circuit", "c3540"), seed);

  const auto st = netlist.stats();
  std::printf("== %s ==\n", netlist.name().c_str());
  std::printf("inputs %zu | outputs %zu | gates %zu | depth %zu\n",
              st.num_inputs, st.num_outputs, st.num_gates, st.depth);
  std::printf("max fanin %zu | max fanout %zu | avg fanout %.2f\n\n",
              st.max_fanin, st.max_fanout, st.avg_fanout);

  mpe::Table mix({"gate type", "count", "share"});
  for (std::size_t t = 0; t < mpe::circuit::kNumGateTypes; ++t) {
    if (st.gates_by_type[t] == 0) continue;
    mix.add_row(
        {mpe::circuit::to_string(static_cast<mpe::circuit::GateType>(t)),
         mpe::Table::integer(static_cast<long long>(st.gates_by_type[t])),
         mpe::Table::pct(static_cast<double>(st.gates_by_type[t]) /
                         static_cast<double>(st.num_gates))});
  }
  std::cout << mix << '\n';

  // Level histogram (textual sparkline).
  const auto hist = mpe::circuit::level_histogram(netlist);
  std::size_t peak = 1;
  for (auto h : hist) peak = std::max(peak, h);
  std::printf("logic-level histogram (level: nodes)\n");
  for (std::size_t lvl = 0; lvl < hist.size(); ++lvl) {
    const int bar = static_cast<int>(40.0 * static_cast<double>(hist[lvl]) /
                                     static_cast<double>(peak));
    std::printf("  %3zu: %5zu |%.*s\n", lvl, hist[lvl], bar,
                "########################################");
  }

  // Monte-Carlo activity under uniform inputs.
  mpe::Rng rng(seed);
  const auto prof =
      mpe::circuit::estimate_activity(netlist, 2000, 0.5, 0.5, rng);
  std::printf("\navg node toggle probability (uniform pairs): %.3f\n",
              prof.avg_activity);

  // Power distribution sketch over 2000 random pairs.
  mpe::sim::CyclePowerEvaluator evaluator(netlist);
  const mpe::vec::UniformPairGenerator pairs(netlist.num_inputs());
  std::vector<double> power(2000);
  for (auto& p : power) {
    const auto vp = pairs.generate(rng);
    p = evaluator.power_mw(vp.first, vp.second);
  }
  const auto s = mpe::stats::summarize(power);
  std::printf(
      "cycle power over %zu random pairs [mW]: min %.3f | q25 %.3f | "
      "median %.3f | q75 %.3f | max %.3f (mean %.3f, sd %.3f)\n",
      s.count, s.min, s.q25, s.median, s.q75, s.max, s.mean, s.stddev);

  // Closed-form figures: analytic average power (transition-density
  // propagation) and the functional (zero-delay) switching ceiling.
  const auto bounds =
      mpe::maxpower::power_bounds(netlist, mpe::sim::Technology{});
  std::printf(
      "\nanalytic average power (independence model): %.4f mW\n"
      "zero-delay switching ceiling (all nodes toggle): %.4f mW\n",
      bounds.analytic_average_mw, bounds.zero_delay_upper_mw);

  // Static timing: critical path under the fanout-loaded delay model.
  const auto timing = mpe::sim::analyze_timing(netlist);
  std::printf("\ntopological critical delay: %.3f ns over %zu nodes:\n  ",
              timing.critical_delay, timing.critical_path.size());
  for (std::size_t i = 0; i < timing.critical_path.size(); ++i) {
    if (i) std::printf(" -> ");
    if (i >= 6 && timing.critical_path.size() > 8) {
      std::printf("... -> %s",
                  netlist.node_name(timing.critical_path.back()).c_str());
      break;
    }
    std::printf("%s", netlist.node_name(timing.critical_path[i]).c_str());
  }
  std::printf("\n");

  // Power profile: which nodes burn the energy.
  mpe::Rng prof_rng(seed + 7);
  const auto pp =
      mpe::sim::profile_power(netlist, pairs, 500, {}, prof_rng);
  std::printf("\ntop power nodes (over 500 random pairs, avg %.3f mW):\n",
              pp.avg_power_mw);
  mpe::Table top({"node", "share of energy", "toggles/cycle"});
  for (std::size_t i = 0; i < std::min<std::size_t>(10, pp.by_node.size());
       ++i) {
    const auto& np = pp.by_node[i];
    top.add_row({netlist.node_name(np.node), mpe::Table::pct(np.share),
                 mpe::Table::num(np.toggles, 2)});
  }
  std::cout << top;

  if (cli.has("export")) {
    const std::string path = cli.get("export", "");
    std::ofstream out(path);
    mpe::circuit::write_bench(out, netlist);
    std::printf("\nwrote %s\n", path.c_str());
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
