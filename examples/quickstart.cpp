// Quickstart: estimate the maximum cycle power of a circuit to a
// user-specified error and confidence level — the paper's headline use case.
//
//   ./quickstart [--circuit c880] [--epsilon 0.05] [--confidence 0.9]
//                [--seed 1]
//
// The circuit is an ISCAS-85-scale generated stand-in (or pass --bench
// path/to/file.bench to use a real netlist). Estimation streams fresh
// random vector pairs through the event-driven power simulator; no
// population is materialized and no ground truth is needed.
#include <cstdio>
#include <exception>

#include "mpe.hpp"

int main(int argc, char** argv) try {
  const mpe::Cli cli(argc, argv);
  cli.check_known({"circuit", "epsilon", "confidence", "seed", "bench"});
  const std::string circuit = cli.get("circuit", "c880");
  const double epsilon = cli.get_double("epsilon", 0.05);
  const double confidence = cli.get_double("confidence", 0.90);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  // 1. Get a circuit: a named preset stand-in, or a real .bench file.
  mpe::circuit::Netlist netlist =
      cli.has("bench") ? mpe::circuit::read_bench_file(cli.get("bench", ""))
                       : mpe::gen::build_preset(circuit, seed);
  const auto st = netlist.stats();
  std::printf("circuit %s: %zu inputs, %zu outputs, %zu gates, depth %zu\n",
              netlist.name().c_str(), st.num_inputs, st.num_outputs,
              st.num_gates, st.depth);

  // 2. Wire up the simulator (fanout-loaded delays, inertial glitch
  //    filtering, 3.3V @ 50 MHz defaults) and a vector-pair source.
  mpe::sim::CyclePowerEvaluator evaluator(netlist);
  const mpe::vec::UniformPairGenerator pairs(netlist.num_inputs());
  mpe::vec::StreamingPopulation population(pairs, evaluator);

  // 3. Run the DAC'98 iterative estimator.
  mpe::maxpower::EstimatorOptions options;
  options.epsilon = epsilon;
  options.confidence = confidence;
  mpe::Rng rng(seed);
  const auto result =
      mpe::maxpower::estimate_max_power(population, options, rng);

  std::printf(
      "\nestimated maximum power : %.4f mW\n"
      "confidence interval     : [%.4f, %.4f] mW at %.0f%% confidence\n"
      "relative error bound    : %.2f%% (target %.2f%%)\n"
      "vector pairs simulated  : %zu (%zu hyper-samples)\n"
      "converged               : %s\n",
      result.estimate, result.ci.lower, result.ci.upper, confidence * 100.0,
      result.relative_error_bound * 100.0, epsilon * 100.0,
      result.units_used, result.hyper_samples,
      result.converged ? "yes" : "no");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
