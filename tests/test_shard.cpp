// maxpower/shard: wave-index partition math, the shard-sample JSON codec
// (bit-exact doubles, non-finite estimates), checkpointed shard execution,
// and the headline guarantee — computing a job as shards on "different
// workers" and folding them back through assemble_job yields a result
// byte-identical to the single-process run, for every shard size.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <system_error>
#include <vector>

#include "maxpower/campaign.hpp"
#include "maxpower/ledger.hpp"
#include "maxpower/shard.hpp"
#include "util/atomic_file.hpp"
#include "util/rng.hpp"

namespace {

namespace mp = mpe::maxpower;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir, ec);
  return dir;
}

mp::CampaignJob tiny_job(const std::string& name, std::uint64_t seed,
                         double epsilon = 0.2) {
  mp::CampaignJob job;
  job.name = name;
  job.circuit = "c432";
  job.seed = seed;
  job.epsilon = epsilon;
  job.confidence = 0.8;
  job.max_hyper_samples = 12;
  return job;
}

/// Computes every shard of `job` under `shard_size` and returns the full
/// sample sequence, shard by shard (what a fleet would deliver).
std::vector<mp::ShardSample> compute_all_shards(const mp::CampaignJob& job,
                                                std::uint64_t shard_size,
                                                const std::string& state_dir) {
  const std::uint64_t attempts = mp::job_attempt_budget(job);
  mp::ShardRunOptions options;
  options.state_dir = state_dir;
  std::vector<mp::ShardSample> all;
  for (std::size_t k = 0; k < mp::shard_count(attempts, shard_size); ++k) {
    const mp::ShardRange range = mp::shard_range(attempts, shard_size, k);
    const mp::ShardOutcome out =
        mp::run_campaign_shard(job, k, range.lo, range.hi, options);
    EXPECT_EQ(out.status, mp::JobStatus::kDone);
    all.insert(all.end(), out.samples.begin(), out.samples.end());
  }
  return all;
}

// ---------------------------------------------------------------- partition

TEST(ShardPartition, CoversTheAttemptBudgetExactlyOnce) {
  const mp::CampaignJob job = tiny_job("p", 1);
  const std::uint64_t attempts = mp::job_attempt_budget(job);
  EXPECT_EQ(attempts, job.max_hyper_samples +
                          mp::EstimatorOptions{}.max_redraws);
  for (const std::uint64_t size :
       {std::uint64_t{1}, std::uint64_t{3}, std::uint64_t{8}, attempts,
        std::uint64_t{1000}}) {
    const std::size_t n = mp::shard_count(attempts, size);
    std::uint64_t next = 0;
    for (std::size_t k = 0; k < n; ++k) {
      const mp::ShardRange r = mp::shard_range(attempts, size, k);
      EXPECT_EQ(r.lo, next) << "size " << size << " shard " << k;
      EXPECT_LT(r.lo, r.hi);
      next = r.hi;
    }
    EXPECT_EQ(next, attempts) << "size " << size;
  }
  // shard_size 0 means whole-job: one shard spanning everything.
  EXPECT_EQ(mp::shard_count(attempts, 0), 1u);
  EXPECT_EQ(mp::shard_range(attempts, 0, 0).hi, attempts);
  EXPECT_THROW((void)mp::shard_range(attempts, 8, 1000), mpe::Error);
}

// -------------------------------------------------------------------- codec

TEST(ShardCodec, RoundTripsBitExactlyIncludingNonFiniteEstimates) {
  std::vector<mp::ShardSample> samples(3);
  samples[0].index = 7;
  samples[0].estimate = 0.1 + 0.2;  // famously non-representable
  samples[0].units = 4250;
  samples[0].valid = true;
  samples[0].mle_converged = true;
  samples[1].index = 8;
  samples[1].estimate = std::nan("");
  samples[1].nonfinite_units = 3;
  samples[1].degenerate = true;
  samples[2].index = 9;
  samples[2].estimate = -std::numeric_limits<double>::infinity();
  samples[2].used_pwm = true;
  samples[2].constant_sample = true;

  const auto decoded =
      mp::decode_shard_samples(mp::encode_shard_samples(samples));
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded[0], samples[0]);  // bit-exact double round trip
  EXPECT_TRUE(std::isnan(decoded[1].estimate));
  EXPECT_EQ(decoded[1].nonfinite_units, 3u);
  EXPECT_TRUE(decoded[1].degenerate);
  EXPECT_EQ(decoded[2], samples[2]);

  EXPECT_THROW((void)mp::decode_shard_samples("not json"), mpe::Error);
  EXPECT_THROW((void)mp::decode_shard_samples(R"({"i":1})"), mpe::Error);
  EXPECT_THROW((void)mp::decode_shard_samples(R"([{"i":1}])"), mpe::Error);
}

// ------------------------------------------------- compute + assemble == run

TEST(ShardAssembly, EveryShardSizeReproducesTheSingleProcessRunExactly) {
  for (const std::uint64_t seed : {3ull, 11ull}) {
    mp::CampaignJob job = tiny_job("solo", seed);
    mp::JobRunOptions solo_options;
    solo_options.state_dir = fresh_dir("shard_solo");
    mpe::Rng jitter(1);
    const mp::CampaignJobOutcome solo =
        mp::run_campaign_job(job, solo_options, jitter);
    ASSERT_EQ(solo.status, mp::JobStatus::kDone);

    for (const std::uint64_t size : {1ull, 3ull, 8ull, 100ull}) {
      const mp::CampaignJob sharded_job = tiny_job("solo", seed);
      const std::string dir = fresh_dir("shard_fleet");
      const auto all = compute_all_shards(sharded_job, size, dir);
      const mp::AssembledJob assembled = mp::assemble_job(sharded_job, all);
      ASSERT_TRUE(assembled.terminal) << "size " << size;
      // Ledger-visible payload must be byte-identical to the solo run.
      EXPECT_EQ(assembled.result.estimate, solo.result.estimate)
          << "seed " << seed << " size " << size;
      EXPECT_EQ(assembled.result.hyper_samples, solo.result.hyper_samples);
      EXPECT_EQ(assembled.result.units_used, solo.result.units_used);
      EXPECT_EQ(assembled.result.converged, solo.result.converged);
      const mp::CampaignJobOutcome outcome =
          mp::assembled_outcome(sharded_job, assembled.result);
      EXPECT_EQ(outcome.status, mp::JobStatus::kDone);
    }
  }
}

TEST(ShardAssembly, ShortPrefixOfAConvergingJobIsTerminalEarly) {
  // With identical conditions the job converges well inside its budget, so
  // the contiguous prefix becomes terminal before every shard is in — the
  // coordinator never waits for (or leases) work past the stopping point.
  const mp::CampaignJob job = tiny_job("early", 3);
  const std::string dir = fresh_dir("shard_early");
  const auto all = compute_all_shards(job, 8, dir);
  const mp::AssembledJob full = mp::assemble_job(job, all);
  ASSERT_TRUE(full.terminal);
  ASSERT_TRUE(full.result.converged);

  std::vector<mp::ShardSample> first_shard(all.begin(), all.begin() + 8);
  const mp::AssembledJob early = mp::assemble_job(job, first_shard);
  if (full.result.hyper_samples <= 8) {
    EXPECT_TRUE(early.terminal);
    EXPECT_EQ(early.result.estimate, full.result.estimate);
  }
  // A one-sample prefix cannot have converged (min_hyper_samples > 1).
  std::vector<mp::ShardSample> one(all.begin(), all.begin() + 1);
  EXPECT_FALSE(mp::assemble_job(job, one).terminal);
}

TEST(ShardAssembly, NonContiguousPrefixThrows) {
  const mp::CampaignJob job = tiny_job("gap", 3);
  const std::string dir = fresh_dir("shard_gap");
  auto all = compute_all_shards(job, 8, dir);
  all.erase(all.begin() + 2);  // hole at index 2
  EXPECT_THROW((void)mp::assemble_job(job, all), mpe::Error);
}

// -------------------------------------------------------------- checkpoints

TEST(ShardCheckpoint, TruncatedCheckpointResumesToTheSameSamples) {
  const mp::CampaignJob job = tiny_job("ckpt", 5);
  const std::string dir = fresh_dir("shard_ckpt");
  mp::ShardRunOptions options;
  options.state_dir = dir;
  const mp::ShardOutcome first = mp::run_campaign_shard(job, 0, 0, 8, options);
  ASSERT_EQ(first.status, mp::JobStatus::kDone);
  ASSERT_EQ(first.samples.size(), 8u);

  // kill -9 mid-flush: keep the header + first two sample lines, tearing
  // the third in half. The CRC catches the torn line; the contiguous
  // prefix survives and the rest recomputes deterministically.
  const std::string ckpt = dir + "/ckpt.shard0.ckpt";
  std::string text = mpe::util::read_file(ckpt);
  std::size_t keep = 0;
  for (int lines = 0; lines < 3; ++lines) {
    keep = text.find('\n', keep) + 1;
  }
  mpe::util::atomic_write_file(ckpt, text.substr(0, keep + 10));

  const mp::ShardOutcome second = mp::run_campaign_shard(job, 0, 0, 8, options);
  ASSERT_EQ(second.status, mp::JobStatus::kDone);
  EXPECT_EQ(second.samples, first.samples);
}

TEST(ShardCheckpoint, ForeignSpecHeaderIsDiscardedNotResumed) {
  const mp::CampaignJob job = tiny_job("spec", 5);
  const std::string dir = fresh_dir("shard_spec");
  mp::ShardRunOptions options;
  options.state_dir = dir;
  const mp::ShardOutcome first = mp::run_campaign_shard(job, 0, 0, 8, options);
  ASSERT_EQ(first.status, mp::JobStatus::kDone);

  // Same job name, different seed: the sealed header pins the spec, so the
  // stale checkpoint must be ignored (resuming it would corrupt results).
  mp::CampaignJob reseeded = tiny_job("spec", 6);
  const mp::ShardOutcome other =
      mp::run_campaign_shard(reseeded, 0, 0, 8, options);
  ASSERT_EQ(other.status, mp::JobStatus::kDone);
  EXPECT_NE(other.samples[0].estimate, first.samples[0].estimate);
  // And rerunning the reseeded job now resumes its own rewritten file.
  const mp::ShardOutcome again =
      mp::run_campaign_shard(reseeded, 0, 0, 8, options);
  EXPECT_EQ(again.samples, other.samples);
}

TEST(ShardRun, RunControlStopKeepsPartialProgress) {
  const mp::CampaignJob job = tiny_job("stop", 5);
  const std::string dir = fresh_dir("shard_stop");
  mp::ShardRunOptions options;
  options.state_dir = dir;
  const auto cancel = mpe::util::CancellationToken::create();
  options.control.cancel = cancel;
  cancel.request_stop();
  const mp::ShardOutcome stopped =
      mp::run_campaign_shard(job, 0, 0, 8, options);
  EXPECT_EQ(stopped.status, mp::JobStatus::kStopped);
  EXPECT_EQ(stopped.error, mpe::ErrorCode::kCancelled);

  mp::ShardRunOptions clean;
  clean.state_dir = dir;
  const mp::ShardOutcome resumed = mp::run_campaign_shard(job, 0, 0, 8, clean);
  EXPECT_EQ(resumed.status, mp::JobStatus::kDone);
  EXPECT_EQ(resumed.samples.size(), 8u);
}

// ------------------------------------------------------------ ledger record

TEST(ShardRecord, RoundTripsThroughTheLedgerSealed) {
  const mp::CampaignJob job = tiny_job("rec", 3);
  const std::string dir = fresh_dir("shard_rec");
  mp::ShardRunOptions options;
  options.state_dir = dir;
  const mp::ShardOutcome out = mp::run_campaign_shard(job, 1, 8, 16, options);
  ASSERT_EQ(out.status, mp::JobStatus::kDone);

  const std::string line =
      mp::shard_record_line("rec", 1, 8, 16, "w0", out.samples);
  EXPECT_TRUE(mp::verify_ledger_line(line));
  const auto ledger = mp::read_ledger_text(line + "\n");
  ASSERT_EQ(ledger.records.size(), 1u);
  const mp::LedgerRecord& rec = ledger.records[0];
  EXPECT_TRUE(rec.is_shard);
  EXPECT_EQ(rec.shard, 1u);
  EXPECT_EQ(rec.lo, 8u);
  EXPECT_EQ(rec.hi, 16u);
  EXPECT_EQ(mp::decode_shard_samples(rec.samples), out.samples);
  // A done shard must never read as a done job.
  EXPECT_TRUE(ledger.final_status().empty());
}

}  // namespace
