#include "stats/least_squares.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "stats/weibull.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

namespace st = mpe::stats;

std::vector<double> weibull_sample(const st::WeibullParams& p, int n,
                                   std::uint64_t seed) {
  const st::ReversedWeibull g(p);
  mpe::Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = g.sample(rng);
  return xs;
}

TEST(WeibullLsq, RecoversEndpointFromLargeSample) {
  const st::WeibullParams truth{3.0, 1.0, 5.0};
  const auto xs = weibull_sample(truth, 4000, 42);
  const auto fit = st::fit_weibull_lsq(xs);
  // The CDF fit should be tight and the endpoint near the truth.
  EXPECT_LT(fit.quality.rmse, 0.02);
  EXPECT_NEAR(fit.params.mu, truth.mu, 0.35);
}

TEST(WeibullLsq, FittedCdfTracksEcdf) {
  const st::WeibullParams truth{4.0, 2.0, 1.0};
  const auto xs = weibull_sample(truth, 2000, 7);
  const auto fit = st::fit_weibull_lsq(xs);
  EXPECT_LT(fit.quality.max_abs, 0.06);
}

TEST(WeibullLsq, EndpointNeverBelowSampleMax) {
  const st::WeibullParams truth{2.5, 1.0, 0.0};
  const auto xs = weibull_sample(truth, 500, 11);
  const auto fit = st::fit_weibull_lsq(xs);
  const double xmax = *std::max_element(xs.begin(), xs.end());
  EXPECT_GT(fit.params.mu, xmax);
}

TEST(WeibullLsq, RequiresMinimumSample) {
  const std::vector<double> tiny = {1.0, 2.0};
  EXPECT_THROW(st::fit_weibull_lsq(tiny), mpe::ContractViolation);
}

TEST(NormalLsq, RecoversParameters) {
  mpe::Rng rng(99);
  std::vector<double> xs(3000);
  for (auto& x : xs) x = rng.normal(4.0, 1.5);
  const auto fit = st::fit_normal_lsq(xs);
  EXPECT_NEAR(fit.mean, 4.0, 0.1);
  EXPECT_NEAR(fit.stddev, 1.5, 0.1);
  EXPECT_LT(fit.quality.rmse, 0.02);
}

TEST(NormalLsq, WorksOnShiftedScaledData) {
  mpe::Rng rng(123);
  std::vector<double> xs(2000);
  for (auto& x : xs) x = rng.normal(-100.0, 0.01);
  const auto fit = st::fit_normal_lsq(xs);
  EXPECT_NEAR(fit.mean, -100.0, 0.001);
  EXPECT_NEAR(fit.stddev, 0.01, 0.002);
}

class WeibullLsqSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(WeibullLsqSweep, FitQualityAcrossShapes) {
  const auto [alpha, mu] = GetParam();
  const st::WeibullParams truth{alpha, 1.0, mu};
  const auto xs = weibull_sample(truth, 1500, 1000 + static_cast<int>(alpha));
  const auto fit = st::fit_weibull_lsq(xs);
  EXPECT_LT(fit.quality.rmse, 0.03)
      << "alpha=" << alpha << " mu=" << mu;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, WeibullLsqSweep,
    ::testing::Combine(::testing::Values(2.2, 3.0, 5.0, 8.0),
                       ::testing::Values(0.0, 10.0)));

}  // namespace
