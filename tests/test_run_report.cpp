// Schema contract of the JSONL run report (stable envelope + field names,
// gap-free sequence numbers, version pinning), RunDiagnostics round-trip,
// and the observability no-perturbation guarantee: results are bit-identical
// with metrics and tracing on or off, at any thread count.
#include "maxpower/run_report.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "maxpower/estimator.hpp"
#include "stats/weibull.hpp"
#include "util/jsonl.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"
#include "util/trace.hpp"
#include "vectors/population.hpp"

namespace {

namespace mp = mpe::maxpower;
using mpe::util::JsonValue;
using mpe::util::parse_json;

mpe::vec::FinitePopulation weibull_population(std::size_t size,
                                              std::uint64_t seed) {
  const mpe::stats::ReversedWeibull g(3.0, 1.0, 10.0);
  mpe::Rng rng(seed);
  std::vector<double> vals(size);
  for (auto& v : vals) v = g.sample(rng);
  return mpe::vec::FinitePopulation(std::move(vals), "synthetic weibull");
}

/// One traced, metered run plus its serialized report, parsed line by line.
struct ReportFixture {
  mp::EstimationResult result;
  std::vector<JsonValue> lines;

  explicit ReportFixture(bool with_metrics = true) {
    auto pop = weibull_population(20000, 101);
    mp::EstimatorOptions opt;
    mpe::util::Tracer tracer(256);
    opt.tracer = &tracer;
    // Library instrumentation reports to the global registry; enable it for
    // the duration of the run so the report has metric lines to carry.
    auto& reg = mpe::util::MetricRegistry::global();
    const bool was_enabled = reg.enabled();
    reg.enable(true);
    mpe::Rng rng(14);
    result = mp::estimate_max_power(pop, opt, rng);
    reg.enable(was_enabled);

    mp::RunReportOptions ropt;
    ropt.tracer = &tracer;
    if (with_metrics) ropt.metrics = &reg;
    ropt.population = pop.description();
    std::ostringstream out;
    mp::write_run_report(out, result, opt, ropt);
    std::istringstream in(out.str());
    std::string line;
    while (std::getline(in, line)) lines.push_back(parse_json(line));
  }
};

// Renaming or removing an emitted field breaks report consumers; this pin
// forces whoever does it to bump kRunReportSchemaVersion (and update the
// golden field sets below) deliberately.
TEST(RunReport, SchemaVersionIsPinned) {
  EXPECT_EQ(mp::kRunReportSchemaVersion, 1);
}

TEST(RunReport, EnvelopeOnEveryLine) {
  const ReportFixture fx;
  ASSERT_FALSE(fx.lines.empty());
  for (std::size_t i = 0; i < fx.lines.size(); ++i) {
    const JsonValue& v = fx.lines[i];
    ASSERT_TRUE(v.is_object()) << "line " << i;
    EXPECT_EQ(v.find("schema")->as_string(), "mpe.run_report");
    EXPECT_EQ(v.find("v")->as_number(), mp::kRunReportSchemaVersion);
    // seq is gap-free from 0: a consumer can detect truncated reports.
    EXPECT_EQ(v.find("seq")->as_number(), static_cast<double>(i));
    ASSERT_TRUE(v.has("type"));
  }
  EXPECT_EQ(fx.lines.front().find("type")->as_string(), "run_header");
  EXPECT_EQ(fx.lines.back().find("type")->as_string(), "result");
}

// Golden field sets, one per line type. These are the schema: a missing
// name here means a consumer-visible field was renamed or dropped — bump
// kRunReportSchemaVersion when changing them. (New fields are additive and
// must simply be appended here.)
TEST(RunReport, GoldenFieldNamesPerType) {
  const std::vector<std::string> envelope{"schema", "seq", "type", "v"};
  auto with_envelope = [&envelope](std::vector<std::string> extra) {
    extra.insert(extra.end(), envelope.begin(), envelope.end());
    std::sort(extra.begin(), extra.end());
    return extra;
  };
  const auto header_fields = with_envelope(
      {"epsilon", "confidence", "interval", "n", "m", "min_hyper_samples",
       "max_hyper_samples", "finite_correction", "population",
       "trace_total_events", "trace_dropped"});
  const auto diagnostics_fields = with_envelope({"diagnostics"});
  const auto metric_fields = with_envelope(
      {"kind", "name", "labels", "value"});
  const auto metric_histogram_fields = with_envelope(
      {"kind", "name", "labels", "value", "count", "sum", "mean", "buckets"});
  const auto result_fields = with_envelope(
      {"estimate", "ci_lower", "ci_upper", "ci_confidence",
       "relative_error_bound", "units_used", "hyper_samples", "converged",
       "stop_reason", "degenerate_fits", "hyper_values"});

  const ReportFixture fx;
  std::set<std::string> seen_types;
  for (const JsonValue& v : fx.lines) {
    const std::string type = v.find("type")->as_string();
    seen_types.insert(type);
    if (type == "run_header") {
      EXPECT_EQ(v.keys(), header_fields);
    } else if (type == "diagnostics") {
      EXPECT_EQ(v.keys(), diagnostics_fields);
    } else if (type == "metric") {
      const bool hist = v.find("kind")->as_string() == "histogram";
      EXPECT_EQ(v.keys(), hist ? metric_histogram_fields : metric_fields);
    } else if (type == "result") {
      EXPECT_EQ(v.keys(), result_fields);
    } else {
      // Events: envelope + t_seq/name/wall_ns, optional dur_ns/cpu_ns/data.
      ASSERT_EQ(type, "event");
      EXPECT_TRUE(v.has("t_seq"));
      EXPECT_TRUE(v.has("name"));
      EXPECT_TRUE(v.has("wall_ns"));
    }
  }
  EXPECT_EQ(seen_types, (std::set<std::string>{
                            "run_header", "event", "diagnostics", "metric",
                            "result"}));
}

TEST(RunReport, EventsPreserveTracerOrderAndCarryHyperSamples) {
  const ReportFixture fx;
  double prev_t_seq = -1.0;
  std::size_t hyper_events = 0;
  bool saw_run_config = false;
  bool saw_run_span = false;
  for (const JsonValue& v : fx.lines) {
    if (v.find("type")->as_string() != "event") continue;
    const double t_seq = v.find("t_seq")->as_number();
    EXPECT_GT(t_seq, prev_t_seq);  // tracer order, no duplicates
    prev_t_seq = t_seq;
    const std::string name = v.find("name")->as_string();
    if (name == "run_config") saw_run_config = true;
    if (name == "run") {
      saw_run_span = true;
      EXPECT_GE(v.find("dur_ns")->as_number(), 0.0);
    }
    if (name == "hyper_sample") {
      ++hyper_events;
      const JsonValue* data = v.find("data");
      ASSERT_NE(data, nullptr);
      EXPECT_TRUE(data->has("k"));
      EXPECT_TRUE(data->has("estimate"));
      EXPECT_TRUE(data->has("mle_converged"));
    }
  }
  EXPECT_TRUE(saw_run_config);
  EXPECT_TRUE(saw_run_span);
  EXPECT_EQ(hyper_events, fx.result.hyper_samples);
}

TEST(RunReport, ResultLineMatchesEstimationResult) {
  const ReportFixture fx;
  const JsonValue& line = fx.lines.back();
  EXPECT_EQ(line.find("estimate")->as_number(), fx.result.estimate);
  EXPECT_EQ(line.find("ci_lower")->as_number(), fx.result.ci.lower);
  EXPECT_EQ(line.find("ci_upper")->as_number(), fx.result.ci.upper);
  EXPECT_EQ(line.find("units_used")->as_number(),
            static_cast<double>(fx.result.units_used));
  EXPECT_EQ(line.find("converged")->as_bool(), fx.result.converged);
  ASSERT_TRUE(line.find("hyper_values")->is_array());
  const auto& values = line.find("hyper_values")->as_array();
  ASSERT_EQ(values.size(), fx.result.hyper_values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i].as_number(), fx.result.hyper_values[i]);
  }
}

TEST(RunReport, MetricLinesIncludeEstimatorSeries) {
  const ReportFixture fx;
  std::set<std::string> names;
  for (const JsonValue& v : fx.lines) {
    if (v.find("type")->as_string() == "metric") {
      names.insert(v.find("name")->as_string());
    }
  }
  EXPECT_TRUE(names.count("mpe_estimator_runs_total"));
  EXPECT_TRUE(names.count("mpe_estimator_hyper_samples_total"));
  EXPECT_TRUE(names.count("mpe_estimator_run_wall_ns"));
}

TEST(RunReport, GlobalMetricsFlowIntoReport) {
  auto& reg = mpe::util::MetricRegistry::global();
  reg.reset();
  const bool was_enabled = reg.enabled();
  reg.enable(true);
  auto pop = weibull_population(20000, 101);
  mp::EstimatorOptions opt;
  mpe::Rng rng(14);
  const auto result = mp::estimate_max_power(pop, opt, rng);
  reg.enable(was_enabled);

  mp::RunReportOptions ropt;
  ropt.metrics = &reg;
  std::ostringstream out;
  mp::write_run_report(out, result, opt, ropt);

  std::set<std::string> names;
  std::istringstream in(out.str());
  std::string line;
  while (std::getline(in, line)) {
    const JsonValue v = parse_json(line);
    if (v.find("type")->as_string() == "metric") {
      names.insert(v.find("name")->as_string());
    }
  }
  EXPECT_TRUE(names.count("mpe_estimator_runs_total"));
  EXPECT_TRUE(names.count("mpe_estimator_hyper_samples_total"));
  EXPECT_TRUE(names.count("mpe_mle_fits_total"));
  EXPECT_TRUE(names.count("mpe_hyper_draws_total"));
  EXPECT_TRUE(names.count("mpe_population_units_total"));
}

TEST(RunReport, DiagnosticsJsonRoundTrips) {
  mp::RunDiagnostics d;
  d.degenerate_fits = 3;
  d.pwm_refits = 1;
  d.constant_samples = 2;
  d.discarded_hyper_samples = 4;
  d.nonfinite_units = 17;
  d.small_population = true;
  d.note(mpe::Severity::kWarning, mpe::ErrorCode::kBadData,
         "message with \"quotes\"", "k=v");
  d.note(mpe::Severity::kError, mpe::ErrorCode::kFaultInjected, "fault", "");

  const mp::RunDiagnostics back = mp::run_diagnostics_from_json(d.to_json());
  EXPECT_EQ(back.degenerate_fits, d.degenerate_fits);
  EXPECT_EQ(back.pwm_refits, d.pwm_refits);
  EXPECT_EQ(back.constant_samples, d.constant_samples);
  EXPECT_EQ(back.discarded_hyper_samples, d.discarded_hyper_samples);
  EXPECT_EQ(back.nonfinite_units, d.nonfinite_units);
  EXPECT_EQ(back.small_population, d.small_population);
  ASSERT_EQ(back.records.size(), d.records.size());
  for (std::size_t i = 0; i < back.records.size(); ++i) {
    EXPECT_EQ(back.records[i].severity, d.records[i].severity);
    EXPECT_EQ(back.records[i].code, d.records[i].code);
    EXPECT_EQ(back.records[i].message, d.records[i].message);
    EXPECT_EQ(back.records[i].context, d.records[i].context);
  }
}

TEST(RunReport, DiagnosticsFromJsonRejectsMalformed) {
  EXPECT_THROW(mp::run_diagnostics_from_json("{"), mpe::Error);
}

void expect_identical(const mp::EstimationResult& a,
                      const mp::EstimationResult& b) {
  EXPECT_EQ(a.estimate, b.estimate);
  EXPECT_EQ(a.ci.lower, b.ci.lower);
  EXPECT_EQ(a.ci.upper, b.ci.upper);
  EXPECT_EQ(a.relative_error_bound, b.relative_error_bound);
  EXPECT_EQ(a.units_used, b.units_used);
  EXPECT_EQ(a.hyper_samples, b.hyper_samples);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.stop_reason, b.stop_reason);
  ASSERT_EQ(a.hyper_values.size(), b.hyper_values.size());
  for (std::size_t i = 0; i < a.hyper_values.size(); ++i) {
    EXPECT_EQ(a.hyper_values[i], b.hyper_values[i]) << "hyper value " << i;
  }
}

// The acceptance gate of the observability layer: instrumentation is a pure
// observer. Turning on the global metrics registry and a tracer must leave
// every result bit-identical to the uninstrumented run, at every thread
// count (worker threads emit no trace events; metrics never touch RNG).
TEST(RunReport, InstrumentationDoesNotPerturbResults) {
  auto pop = weibull_population(40000, 31);
  const std::uint64_t seed = 77;

  mp::EstimatorOptions plain;
  std::vector<mp::EstimationResult> baselines;
  for (unsigned threads : {1u, 2u, 8u}) {
    mp::ParallelOptions par;
    par.threads = threads;
    baselines.push_back(mp::estimate_max_power(pop, plain, seed, par));
  }

  auto& reg = mpe::util::MetricRegistry::global();
  const bool was_enabled = reg.enabled();
  reg.enable(true);
  std::size_t i = 0;
  for (unsigned threads : {1u, 2u, 8u}) {
    mpe::util::Tracer tracer(1024);
    mp::EstimatorOptions instrumented;
    instrumented.tracer = &tracer;
    mp::ParallelOptions par;
    par.threads = threads;
    const auto r = mp::estimate_max_power(pop, instrumented, seed, par);
    expect_identical(baselines[i], r);
    EXPECT_EQ(baselines[0].estimate, r.estimate);  // and across counts
    EXPECT_GT(tracer.total_events(), 0u);
    ++i;
  }
  reg.enable(was_enabled);

  // Serial reference path too.
  mpe::Rng rng_a(14);
  mpe::Rng rng_b(14);
  auto pop2 = weibull_population(20000, 101);
  const auto plain_r = mp::estimate_max_power(pop2, plain, rng_a);
  reg.enable(true);
  mpe::util::Tracer tracer(1024);
  mp::EstimatorOptions instrumented;
  instrumented.tracer = &tracer;
  const auto traced_r = mp::estimate_max_power(pop2, instrumented, rng_b);
  reg.enable(was_enabled);
  expect_identical(plain_r, traced_r);
  EXPECT_EQ(traced_r.estimate, 9.8196310902247124);  // the seed golden
}

TEST(RunReport, WriteFailureThrowsIoError) {
  const ReportFixture fx;
  std::ostringstream out;
  out.setstate(std::ios::failbit);
  mp::EstimatorOptions opt;
  EXPECT_THROW(mp::write_run_report(out, fx.result, opt, {}), mpe::Error);
}

}  // namespace
