#include "maxpower/estimator.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <limits>

#include "stats/weibull.hpp"
#include "util/contracts.hpp"
#include "util/deadline.hpp"
#include "util/rng.hpp"
#include "vectors/population.hpp"

namespace {

namespace mp = mpe::maxpower;

mpe::vec::FinitePopulation weibull_population(std::size_t size,
                                              std::uint64_t seed,
                                              double alpha = 3.0,
                                              double mu = 10.0) {
  const mpe::stats::ReversedWeibull g(alpha, 1.0, mu);
  mpe::Rng rng(seed);
  std::vector<double> vals(size);
  for (auto& v : vals) v = g.sample(rng);
  return mpe::vec::FinitePopulation(std::move(vals), "synthetic weibull");
}

TEST(Estimator, ConvergesOnSyntheticPopulation) {
  auto pop = weibull_population(40000, 1);
  mp::EstimatorOptions opt;
  mpe::Rng rng(2);
  const auto r = mp::estimate_max_power(pop, opt, rng);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.relative_error_bound, opt.epsilon);
  EXPECT_EQ(r.units_used, r.hyper_samples * 300u);
  EXPECT_GE(r.hyper_samples, 2u);
  EXPECT_EQ(r.hyper_values.size(), r.hyper_samples);
}

TEST(Estimator, EstimateWithinErrorBandMostOfTheTime) {
  // 90% confidence at 5% error: over many runs the estimate should land
  // within ~5% of the truth in the vast majority of cases.
  auto pop = weibull_population(40000, 3);
  mp::EstimatorOptions opt;
  mpe::Rng rng(4);
  int within = 0;
  const int reps = 60;
  for (int i = 0; i < reps; ++i) {
    const auto r = mp::estimate_max_power(pop, opt, rng);
    const double rel_err =
        std::fabs(r.estimate - pop.true_max()) / pop.true_max();
    if (rel_err <= 0.08) ++within;  // small slack over the 5% target
  }
  EXPECT_GE(within, reps * 80 / 100);
}

TEST(Estimator, UnitCountsInPaperRange) {
  // The paper's Table 1 reports 600..5400 units (k in [2, 18]) per run.
  auto pop = weibull_population(40000, 5);
  mp::EstimatorOptions opt;
  mpe::Rng rng(6);
  for (int i = 0; i < 20; ++i) {
    const auto r = mp::estimate_max_power(pop, opt, rng);
    EXPECT_GE(r.units_used, 600u);
    EXPECT_LE(r.units_used, 30000u);
  }
}

TEST(Estimator, TighterEpsilonNeedsMoreUnits) {
  auto pop = weibull_population(40000, 7);
  mp::EstimatorOptions loose;
  loose.epsilon = 0.10;
  mp::EstimatorOptions tight;
  tight.epsilon = 0.02;
  mpe::Rng r1(8), r2(8);
  std::size_t units_loose = 0, units_tight = 0;
  for (int i = 0; i < 15; ++i) {
    units_loose += mp::estimate_max_power(pop, loose, r1).units_used;
    units_tight += mp::estimate_max_power(pop, tight, r2).units_used;
  }
  EXPECT_GT(units_tight, units_loose);
}

TEST(Estimator, HigherConfidenceWidensInterval) {
  auto pop = weibull_population(40000, 9);
  mp::EstimatorOptions low;
  low.confidence = 0.80;
  low.max_hyper_samples = 6;  // force same k for comparison
  low.epsilon = 1e-9;         // never converges early
  mp::EstimatorOptions high = low;
  high.confidence = 0.99;
  mpe::Rng r1(10), r2(10);
  const auto a = mp::estimate_max_power(pop, low, r1);
  const auto b = mp::estimate_max_power(pop, high, r2);
  EXPECT_GT(b.ci.half_width, a.ci.half_width);
}

TEST(Estimator, NonConvergenceReportedHonestly) {
  auto pop = weibull_population(5000, 11);
  mp::EstimatorOptions opt;
  opt.epsilon = 1e-9;  // unattainable
  opt.max_hyper_samples = 5;
  mpe::Rng rng(12);
  const auto r = mp::estimate_max_power(pop, opt, rng);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.hyper_samples, 5u);
  EXPECT_GT(r.relative_error_bound, opt.epsilon);
  EXPECT_GT(r.estimate, 0.0);  // still reports the best available estimate
}

TEST(Estimator, DeterministicGivenSeed) {
  auto pop = weibull_population(20000, 13);
  mp::EstimatorOptions opt;
  mpe::Rng r1(14), r2(14);
  const auto a = mp::estimate_max_power(pop, opt, r1);
  const auto b = mp::estimate_max_power(pop, opt, r2);
  EXPECT_DOUBLE_EQ(a.estimate, b.estimate);
  EXPECT_EQ(a.units_used, b.units_used);
}

TEST(Estimator, WorksAcrossShapeParameters) {
  for (double alpha : {2.5, 4.0, 6.0}) {
    auto pop = weibull_population(30000, 15, alpha, 5.0);
    mp::EstimatorOptions opt;
    mpe::Rng rng(16);
    const auto r = mp::estimate_max_power(pop, opt, rng);
    const double rel_err =
        std::fabs(r.estimate - pop.true_max()) / pop.true_max();
    EXPECT_LT(rel_err, 0.15) << "alpha=" << alpha;
  }
}

TEST(Estimator, BootstrapIntervalModeConverges) {
  auto pop = weibull_population(30000, 21);
  mp::EstimatorOptions opt;
  opt.interval = mp::IntervalKind::kBootstrap;
  mpe::Rng rng(22);
  const auto r = mp::estimate_max_power(pop, opt, rng);
  EXPECT_TRUE(r.converged);
  const double rel =
      std::fabs(r.estimate - pop.true_max()) / pop.true_max();
  EXPECT_LT(rel, 0.15);
  // Bootstrap intervals need not be symmetric around the mean.
  EXPECT_LE(r.ci.lower, r.estimate);
  EXPECT_GE(r.ci.upper, r.estimate);
}

TEST(Estimator, BootstrapAndTTrackEachOther) {
  auto pop = weibull_population(30000, 23);
  mp::EstimatorOptions t_opt;
  mp::EstimatorOptions b_opt;
  b_opt.interval = mp::IntervalKind::kBootstrap;
  mpe::Rng r1(24), r2(24);
  const auto rt = mp::estimate_max_power(pop, t_opt, r1);
  const auto rb = mp::estimate_max_power(pop, b_opt, r2);
  // Same population, same seed stream: estimates agree to within a few
  // percent even though the stopping rules differ.
  EXPECT_NEAR(rb.estimate, rt.estimate, 0.1 * rt.estimate);
}

// --- Graceful degradation ---------------------------------------------------

TEST(Estimator, ConstantPopulationConvergesToCommonValueFlagged) {
  // Zero-spread population: every hyper-sample is constant, the fit is
  // skipped, and the mean of identical values converges trivially — the run
  // must finish with the common value and loud diagnostics, not NaN.
  mpe::vec::FinitePopulation pop(std::vector<double>(500, 7.5), "stuck");
  mp::EstimatorOptions opt;
  mpe::Rng rng(31);
  const auto r = mp::estimate_max_power(pop, opt, rng);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.estimate, 7.5);
  EXPECT_EQ(r.stop_reason, mp::StopReason::kConverged);
  EXPECT_GT(r.diagnostics.constant_samples, 0u);
  EXPECT_GT(r.diagnostics.degenerate_fits, 0u);
}

TEST(Estimator, SmallPopulationFlaggedButStillEstimates) {
  // 100 < n*m = 300: the samples overlap heavily, so the result must carry
  // the small-population warning while still producing a finite estimate.
  auto pop = weibull_population(100, 33);
  mp::EstimatorOptions opt;
  mpe::Rng rng(34);
  const auto r = mp::estimate_max_power(pop, opt, rng);
  EXPECT_TRUE(r.diagnostics.small_population);
  EXPECT_TRUE(std::isfinite(r.estimate));
  EXPECT_FALSE(r.diagnostics.records.empty());
}

TEST(Estimator, HeavyTailWithPwmPolicyStaysFinite) {
  // alpha = 1.2 <= 2: Smith's MLE conditions fail on most hyper-samples.
  // The PWM policy must keep every folded value finite and count its work.
  auto pop = weibull_population(30000, 35, /*alpha=*/1.2, /*mu=*/10.0);
  mp::EstimatorOptions opt;
  opt.hyper.degenerate_policy = mp::DegenerateFitPolicy::kPwmFallback;
  opt.epsilon = 1e-9;  // unattainable: fold max_hyper_samples values
  opt.max_hyper_samples = 10;
  mpe::Rng rng(36);
  const auto r = mp::estimate_max_power(pop, opt, rng);
  EXPECT_EQ(r.hyper_samples, 10u);
  EXPECT_TRUE(std::isfinite(r.estimate));
  for (double v : r.hyper_values) EXPECT_TRUE(std::isfinite(v));
  EXPECT_GT(r.diagnostics.degenerate_fits, 0u);
  EXPECT_GT(r.diagnostics.pwm_refits, 0u);
}

TEST(Estimator, DiscardRedrawExhaustsBudgetOnHopelessPopulation) {
  // Every hyper-sample from a constant population is degenerate, so the
  // redraw policy can never accept one: the run must stop at the redraw
  // budget with an explicit data-fault stop reason — not loop forever.
  mpe::vec::FinitePopulation pop(std::vector<double>(500, 3.0), "stuck");
  mp::EstimatorOptions opt;
  opt.hyper.degenerate_policy = mp::DegenerateFitPolicy::kDiscardRedraw;
  opt.max_hyper_samples = 4;
  opt.max_redraws = 2;
  mpe::Rng rng(37);
  const auto r = mp::estimate_max_power(pop, opt, rng);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.hyper_samples, 0u);
  EXPECT_EQ(r.stop_reason, mp::StopReason::kDataFault);
  EXPECT_EQ(r.diagnostics.discarded_hyper_samples, 6u);  // max + redraws
}

TEST(Estimator, DiscardRedrawStillConvergesOnHealthyPopulation) {
  auto pop = weibull_population(40000, 39);
  mp::EstimatorOptions opt;
  opt.hyper.degenerate_policy = mp::DegenerateFitPolicy::kDiscardRedraw;
  mpe::Rng rng(40);
  const auto r = mp::estimate_max_power(pop, opt, rng);
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(std::isfinite(r.estimate));
}

TEST(Estimator, ExpiredDeadlineReturnsPartialResult) {
  auto pop = weibull_population(20000, 41);
  mp::EstimatorOptions opt;
  opt.control.deadline = mpe::util::Deadline::after(std::chrono::nanoseconds{0});
  mpe::Rng rng(42);
  const auto r = mp::estimate_max_power(pop, opt, rng);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.stop_reason, mp::StopReason::kDeadlineExceeded);
  EXPECT_EQ(r.hyper_samples, 0u);
  EXPECT_FALSE(r.diagnostics.records.empty());
}

TEST(Estimator, PreCancelledRunReturnsImmediately) {
  auto pop = weibull_population(20000, 43);
  mp::EstimatorOptions opt;
  opt.control.cancel = mpe::util::CancellationToken::create();
  opt.control.cancel.request_stop();
  mpe::Rng rng(44);
  const auto r = mp::estimate_max_power(pop, opt, rng);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.stop_reason, mp::StopReason::kCancelled);
  EXPECT_EQ(r.hyper_samples, 0u);
}

TEST(Estimator, ParallelDeadlineReturnsPartialResult) {
  auto pop = weibull_population(20000, 45);
  mp::EstimatorOptions opt;
  opt.control.deadline = mpe::util::Deadline::after(std::chrono::nanoseconds{0});
  mp::ParallelOptions par;
  par.threads = 4;
  const auto r = mp::estimate_max_power(pop, opt, std::uint64_t{46}, par);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.stop_reason, mp::StopReason::kDeadlineExceeded);
}

TEST(Estimator, ParallelCancellationReturnsPartialResult) {
  auto pop = weibull_population(20000, 47);
  mp::EstimatorOptions opt;
  opt.control.cancel = mpe::util::CancellationToken::create();
  opt.control.cancel.request_stop();
  mp::ParallelOptions par;
  par.threads = 4;
  const auto r = mp::estimate_max_power(pop, opt, std::uint64_t{48}, par);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.stop_reason, mp::StopReason::kCancelled);
  EXPECT_EQ(r.hyper_samples, 0u);
}

TEST(Estimator, PartlyPoisonedPopulationStillConverges) {
  mpe::Rng gen(49);
  std::vector<double> vals(30000);
  for (std::size_t i = 0; i < vals.size(); ++i) {
    vals[i] = (i % 20 == 19) ? std::numeric_limits<double>::quiet_NaN()
                             : 10.0 - std::pow(gen.uniform(0.0, 1.0), 1.5);
  }
  mpe::vec::FinitePopulation pop(std::move(vals), "partly poisoned");
  mp::EstimatorOptions opt;
  mpe::Rng rng(50);
  const auto r = mp::estimate_max_power(pop, opt, rng);
  EXPECT_TRUE(std::isfinite(r.estimate));
  EXPECT_GT(r.diagnostics.nonfinite_units, 0u);
  for (double v : r.hyper_values) EXPECT_TRUE(std::isfinite(v));
}

TEST(Estimator, ContractChecks) {
  auto pop = weibull_population(1000, 17);
  mpe::Rng rng(18);
  mp::EstimatorOptions bad;
  bad.epsilon = 0.0;
  EXPECT_THROW(mp::estimate_max_power(pop, bad, rng),
               mpe::ContractViolation);
  bad = {};
  bad.min_hyper_samples = 1;
  EXPECT_THROW(mp::estimate_max_power(pop, bad, rng),
               mpe::ContractViolation);
  bad = {};
  bad.max_hyper_samples = 1;
  EXPECT_THROW(mp::estimate_max_power(pop, bad, rng),
               mpe::ContractViolation);
}

}  // namespace
