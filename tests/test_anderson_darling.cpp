#include "stats/anderson_darling.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "stats/normal.hpp"
#include "stats/weibull.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

namespace st = mpe::stats;

TEST(AdCdf, LimitsAndKnownValues) {
  EXPECT_DOUBLE_EQ(st::ad_cdf(0.0), 0.0);
  EXPECT_NEAR(st::ad_cdf(100.0), 1.0, 1e-9);
  // Classic critical values for the fully-specified null:
  // P(A^2 < 2.492) ~ 0.95, P(A^2 < 3.857) ~ 0.99.
  EXPECT_NEAR(st::ad_cdf(2.492), 0.95, 0.005);
  EXPECT_NEAR(st::ad_cdf(3.857), 0.99, 0.004);
  EXPECT_NEAR(st::ad_cdf(1.933), 0.90, 0.005);
}

TEST(AdCdf, Monotone) {
  double prev = 0.0;
  for (double z = 0.05; z < 6.0; z += 0.05) {
    const double c = st::ad_cdf(z);
    EXPECT_GE(c, prev - 1e-12);
    prev = c;
  }
}

TEST(AndersonDarling, CorrectModelAccepted) {
  mpe::Rng rng(5);
  std::vector<double> xs(1500);
  for (auto& x : xs) x = rng.normal();
  const auto r = st::anderson_darling(
      xs, [](double x) { return st::Normal::std_cdf(x); });
  EXPECT_LT(r.statistic, 2.5);
  EXPECT_GT(r.p_value, 0.02);
}

TEST(AndersonDarling, ShiftedModelRejected) {
  mpe::Rng rng(5);
  std::vector<double> xs(1500);
  for (auto& x : xs) x = rng.normal(0.3, 1.0);
  const auto r = st::anderson_darling(
      xs, [](double x) { return st::Normal::std_cdf(x); });
  EXPECT_GT(r.statistic, 10.0);
  EXPECT_LT(r.p_value, 1e-4);
}

TEST(AndersonDarling, MoreTailSensitiveThanBody) {
  // Contaminate only the upper tail: a handful of far outliers should
  // raise A^2 well above the clean sample's value even though they barely
  // move the body of the distribution.
  mpe::Rng rng(7);
  std::vector<double> xs(1000);
  for (auto& x : xs) x = rng.normal();
  const auto clean = st::anderson_darling(
      xs, [](double x) { return st::Normal::std_cdf(x); });
  for (int i = 0; i < 8; ++i) xs[static_cast<std::size_t>(i)] = 6.0 + i;
  const auto dirty = st::anderson_darling(
      xs, [](double x) { return st::Normal::std_cdf(x); });
  EXPECT_GT(dirty.statistic, clean.statistic + 0.8);
  EXPECT_LT(dirty.p_value, clean.p_value);
}

TEST(AndersonDarling, WorksOnWeibullFitDiagnostics) {
  const st::ReversedWeibull g(3.0, 1.0, 5.0);
  mpe::Rng rng(9);
  std::vector<double> xs(800);
  for (auto& x : xs) x = g.sample(rng);
  const auto good = st::anderson_darling(
      xs, [&](double x) { return g.cdf(x); });
  EXPECT_GT(good.p_value, 0.02);
  // Wrong endpoint: clearly rejected.
  const st::ReversedWeibull bad(3.0, 1.0, 5.6);
  const auto r = st::anderson_darling(
      xs, [&](double x) { return bad.cdf(x); });
  EXPECT_LT(r.p_value, 0.01);
}

TEST(AndersonDarling, ContractChecks) {
  const std::vector<double> one = {1.0};
  EXPECT_THROW(st::anderson_darling(one, [](double) { return 0.5; }),
               mpe::ContractViolation);
}

}  // namespace
