#include "util/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace {

using mpe::util::Counter;
using mpe::util::Gauge;
using mpe::util::Histogram;
using mpe::util::HistogramData;
using mpe::util::MetricKind;
using mpe::util::MetricRegistry;
using mpe::util::MetricsSnapshot;

TEST(Metrics, DisabledByDefaultAndUpdatesAreDropped) {
  MetricRegistry reg;
  EXPECT_FALSE(reg.enabled());
  Counter c = reg.counter("mpe_test_total");
  c.inc(5);
  EXPECT_EQ(reg.snapshot().value("mpe_test_total"), 0.0);
}

TEST(Metrics, DefaultConstructedHandlesNoOp) {
  Counter c;
  Gauge g;
  Histogram h;
  c.inc();
  g.add(3);
  h.observe(1);  // must not crash
}

TEST(Metrics, CounterAccumulates) {
  MetricRegistry reg;
  reg.enable(true);
  Counter c = reg.counter("mpe_test_total");
  c.inc();
  c.inc(41);
  EXPECT_EQ(reg.snapshot().value("mpe_test_total"), 42.0);
}

TEST(Metrics, LabelsSeparateSeries) {
  MetricRegistry reg;
  reg.enable(true);
  Counter a = reg.counter("mpe_test_total", "kind=a");
  Counter b = reg.counter("mpe_test_total", "kind=b");
  a.inc(1);
  b.inc(2);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.value("mpe_test_total", "kind=a"), 1.0);
  EXPECT_EQ(snap.value("mpe_test_total", "kind=b"), 2.0);
  EXPECT_EQ(snap.find("mpe_test_total", "kind=missing"), nullptr);
}

TEST(Metrics, SameIdentityYieldsSameSeries) {
  MetricRegistry reg;
  reg.enable(true);
  Counter a = reg.counter("mpe_test_total");
  Counter b = reg.counter("mpe_test_total");
  a.inc();
  b.inc();
  EXPECT_EQ(reg.snapshot().value("mpe_test_total"), 2.0);
  EXPECT_EQ(reg.series_count(), 1u);
}

TEST(Metrics, GaugeTracksSignedLevel) {
  MetricRegistry reg;
  reg.enable(true);
  Gauge g = reg.gauge("mpe_test_depth");
  g.add(5);
  g.sub(2);
  EXPECT_EQ(reg.snapshot().value("mpe_test_depth"), 3.0);
  g.sub(4);  // below zero: deltas stay exact through wraparound
  EXPECT_EQ(reg.snapshot().value("mpe_test_depth"), -1.0);
}

TEST(Metrics, HistogramBucketsByLog2) {
  MetricRegistry reg;
  reg.enable(true);
  Histogram h = reg.histogram("mpe_test_ns");
  h.observe(0);   // bucket 0
  h.observe(1);   // bucket 1: [1, 2)
  h.observe(2);   // bucket 2: [2, 4)
  h.observe(3);   // bucket 2
  h.observe(1024);  // bucket 11: [1024, 2048)
  const MetricsSnapshot snap = reg.snapshot();
  const auto* s = snap.find("mpe_test_ns");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->kind, MetricKind::kHistogram);
  EXPECT_EQ(s->histogram.count, 5u);
  EXPECT_EQ(s->histogram.sum, 1030u);
  EXPECT_EQ(s->histogram.buckets[0], 1u);
  EXPECT_EQ(s->histogram.buckets[1], 1u);
  EXPECT_EQ(s->histogram.buckets[2], 2u);
  EXPECT_EQ(s->histogram.buckets[11], 1u);
  EXPECT_DOUBLE_EQ(s->histogram.mean(), 206.0);
}

TEST(Metrics, ResetZeroesValuesButKeepsSeries) {
  MetricRegistry reg;
  reg.enable(true);
  Counter c = reg.counter("mpe_test_total");
  c.inc(9);
  reg.reset();
  EXPECT_EQ(reg.series_count(), 1u);
  EXPECT_EQ(reg.snapshot().value("mpe_test_total"), 0.0);
  c.inc();  // handle survives reset
  EXPECT_EQ(reg.snapshot().value("mpe_test_total"), 1.0);
}

TEST(Metrics, EnableToggleStopsAndResumesRecording) {
  MetricRegistry reg;
  reg.enable(true);
  Counter c = reg.counter("mpe_test_total");
  c.inc();
  reg.enable(false);
  c.inc(100);
  reg.enable(true);
  c.inc();
  EXPECT_EQ(reg.snapshot().value("mpe_test_total"), 2.0);
}

TEST(Metrics, ConcurrentWritersMergeExactly) {
  MetricRegistry reg;
  reg.enable(true);
  Counter c = reg.counter("mpe_test_total");
  Histogram h = reg.histogram("mpe_test_hist");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c, &h] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.inc();
        h.observe(i % 7);
      }
    });
  }
  for (auto& w : workers) w.join();
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.value("mpe_test_total"), kThreads * kPerThread);
  EXPECT_EQ(snap.find("mpe_test_hist")->histogram.count,
            kThreads * kPerThread);
}

TEST(Metrics, TwoRegistriesAreIndependent) {
  MetricRegistry a;
  MetricRegistry b;
  a.enable(true);
  b.enable(true);
  Counter ca = a.counter("mpe_test_total");
  Counter cb = b.counter("mpe_test_total");
  ca.inc(1);
  cb.inc(2);
  EXPECT_EQ(a.snapshot().value("mpe_test_total"), 1.0);
  EXPECT_EQ(b.snapshot().value("mpe_test_total"), 2.0);
}

TEST(Metrics, GlobalRegistryIsSingleton) {
  EXPECT_EQ(&MetricRegistry::global(), &MetricRegistry::global());
}

TEST(Metrics, SnapshotCarriesKindNameLabels) {
  MetricRegistry reg;
  reg.enable(true);
  (void)reg.counter("mpe_a_total", "x=1");
  (void)reg.gauge("mpe_b_depth");
  (void)reg.histogram("mpe_c_ns");
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.series.size(), 3u);
  EXPECT_EQ(snap.series[0].kind, MetricKind::kCounter);
  EXPECT_EQ(snap.series[0].name, "mpe_a_total");
  EXPECT_EQ(snap.series[0].labels, "x=1");
  EXPECT_EQ(snap.series[1].kind, MetricKind::kGauge);
  EXPECT_EQ(snap.series[2].kind, MetricKind::kHistogram);
}

TEST(Metrics, KindNamesAreStable) {
  EXPECT_EQ(mpe::util::to_string(MetricKind::kCounter), "counter");
  EXPECT_EQ(mpe::util::to_string(MetricKind::kGauge), "gauge");
  EXPECT_EQ(mpe::util::to_string(MetricKind::kHistogram), "histogram");
}

}  // namespace
