// util/retry: deterministic seeded jitter, backoff growth and cap,
// bounded attempts, fatal-vs-retryable classification, and prompt
// cancellation of backoff sleeps.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>

#include "util/retry.hpp"

namespace {

using namespace std::chrono_literals;
namespace ut = mpe::util;

TEST(RetryBackoff, DeterministicForSameSeed) {
  ut::RetryPolicy policy;
  mpe::Rng a(42), b(42);
  for (std::size_t f = 1; f <= 6; ++f) {
    EXPECT_EQ(ut::backoff_delay(policy, f, a).count(),
              ut::backoff_delay(policy, f, b).count())
        << "failure " << f;
  }
}

TEST(RetryBackoff, GrowsExponentiallyWithinJitterBand) {
  ut::RetryPolicy policy;  // 100ms initial, x2, 10% jitter, 5s cap
  mpe::Rng rng(7);
  for (std::size_t f = 1; f <= 5; ++f) {
    const auto d = ut::backoff_delay(policy, f, rng);
    const double nominal = 100e6 * std::pow(2.0, static_cast<double>(f - 1));
    EXPECT_GE(static_cast<double>(d.count()), 0.9 * nominal) << f;
    EXPECT_LE(static_cast<double>(d.count()), 1.1 * nominal) << f;
  }
}

TEST(RetryBackoff, CappedAtMaxBackoffEvenWithJitter) {
  ut::RetryPolicy policy;
  policy.max_backoff = 400ms;
  mpe::Rng rng(11);
  for (std::size_t f = 1; f <= 20; ++f) {
    const auto d = ut::backoff_delay(policy, f, rng);
    EXPECT_LE(d, policy.max_backoff) << "failure " << f;
  }
  // Far past the cap the nominal delay saturates exactly (minus jitter).
  const auto deep = ut::backoff_delay(policy, 50, rng);
  EXPECT_GE(static_cast<double>(deep.count()),
            0.9 * static_cast<double>(policy.max_backoff.count()));
}

TEST(RetryBackoff, ZeroJitterConsumesNoRandomness) {
  ut::RetryPolicy policy;
  policy.jitter = 0.0;
  mpe::Rng used(5), untouched(5);
  const auto d = ut::backoff_delay(policy, 3, used);
  EXPECT_EQ(d, 400ms);  // 100ms * 2^2, exact: no jitter applied
  // The rng was not drawn from: both streams still produce the same next
  // value (the draw count is part of the deterministic-replay contract).
  EXPECT_EQ(used.uniform(0.0, 1.0), untouched.uniform(0.0, 1.0));
}

TEST(RetryBackoff, ZeroFailuresMeansNoDelay) {
  ut::RetryPolicy policy;
  mpe::Rng rng(1);
  EXPECT_EQ(ut::backoff_delay(policy, 0, rng).count(), 0);
}

TEST(RetryBackoff, ExactlyOneJitterDrawPerCall) {
  // The deterministic-replay contract is stronger than "same seed, same
  // delays": each jittered call consumes exactly one uniform draw, so a
  // replay that interleaves other rng users stays aligned.
  ut::RetryPolicy policy;  // jitter 0.1
  mpe::Rng used(21), mirror(21);
  (void)ut::backoff_delay(policy, 4, used);
  (void)mirror.uniform();  // advance the mirror by hand: one draw
  EXPECT_EQ(used(), mirror());
}

TEST(RetryBackoff, CapSaturationAtTheBoundaryAttempt) {
  // 100ms * 2^(f-1) with a 400ms cap: failure 3 lands exactly ON the cap
  // (uncapped nominal == max_backoff) and failure 4 is the first past it.
  // Both must yield precisely max_backoff with jitter disabled.
  ut::RetryPolicy policy;
  policy.max_backoff = 400ms;
  policy.jitter = 0.0;
  mpe::Rng rng(1);
  EXPECT_EQ(ut::backoff_delay(policy, 2, rng), 200ms);  // below the cap
  EXPECT_EQ(ut::backoff_delay(policy, 3, rng), 400ms);  // boundary: == cap
  EXPECT_EQ(ut::backoff_delay(policy, 4, rng), 400ms);  // first saturated
  EXPECT_EQ(ut::backoff_delay(policy, 63, rng), 400ms); // deep saturation
}

TEST(RetryBackoff, UpwardJitterAtTheBoundaryIsRecapped) {
  // At the boundary attempt the nominal delay already equals the cap, so
  // any upward jitter would exceed it — the post-jitter re-cap must clamp.
  ut::RetryPolicy policy;
  policy.max_backoff = 400ms;
  policy.jitter = 0.5;  // up to +50%
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    mpe::Rng rng(seed);
    EXPECT_LE(ut::backoff_delay(policy, 3, rng), policy.max_backoff) << seed;
  }
}

TEST(RetryClassification, DefaultRetryableIsTransientOnly) {
  EXPECT_TRUE(ut::default_retryable(mpe::ErrorCode::kIo));
  EXPECT_TRUE(ut::default_retryable(mpe::ErrorCode::kFaultInjected));
  EXPECT_FALSE(ut::default_retryable(mpe::ErrorCode::kParse));
  EXPECT_FALSE(ut::default_retryable(mpe::ErrorCode::kBadData));
  EXPECT_FALSE(ut::default_retryable(mpe::ErrorCode::kPrecondition));
  EXPECT_FALSE(ut::default_retryable(mpe::ErrorCode::kCorruptData));
  EXPECT_FALSE(ut::default_retryable(mpe::ErrorCode::kCancelled));
  EXPECT_FALSE(ut::default_retryable(mpe::ErrorCode::kDeadline));
  EXPECT_FALSE(ut::default_retryable(mpe::ErrorCode::kInternal));
}

ut::RetryPolicy fast_policy() {
  ut::RetryPolicy p;
  p.initial_backoff = 1ms;
  p.max_backoff = 2ms;
  return p;
}

TEST(RetryLoop, GivesUpAfterMaxAttempts) {
  mpe::Rng rng(3);
  std::size_t calls = 0;
  const auto outcome = ut::retry_with_backoff(
      fast_policy(), {}, rng, [&] {
        ++calls;
        return mpe::ErrorCode::kIo;  // always retryable, never succeeds
      });
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.attempts, 3u);
  EXPECT_EQ(calls, 3u);
  EXPECT_EQ(outcome.last_error, mpe::ErrorCode::kIo);
  EXPECT_EQ(outcome.stopped, ut::StopCause::kNone);
}

TEST(RetryLoop, FatalErrorStopsImmediately) {
  mpe::Rng rng(3);
  std::size_t calls = 0;
  const auto outcome = ut::retry_with_backoff(
      fast_policy(), {}, rng, [&] {
        ++calls;
        return mpe::ErrorCode::kParse;  // fatal by default
      });
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(outcome.last_error, mpe::ErrorCode::kParse);
}

TEST(RetryLoop, TransientFailureSucceedsOnRetry) {
  mpe::Rng rng(3);
  std::size_t calls = 0;
  const auto outcome = ut::retry_with_backoff(
      fast_policy(), {}, rng, [&] {
        return ++calls < 2 ? mpe::ErrorCode::kFaultInjected
                           : mpe::ErrorCode::kOk;
      });
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.attempts, 2u);
  EXPECT_EQ(outcome.last_error, mpe::ErrorCode::kOk);
}

TEST(RetryLoop, CustomClassifierOverridesDefault) {
  mpe::Rng rng(3);
  std::size_t calls = 0;
  const auto outcome = ut::retry_with_backoff(
      fast_policy(), {}, rng,
      [&] {
        ++calls;
        return mpe::ErrorCode::kBadData;
      },
      [](mpe::ErrorCode code) { return code == mpe::ErrorCode::kBadData; });
  EXPECT_EQ(calls, 3u);  // retried despite being fatal by default
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.last_error, mpe::ErrorCode::kBadData);
}

TEST(RetryLoop, CancellationAbortsBackoffSleepPromptly) {
  ut::RetryPolicy slow;
  slow.initial_backoff = 30s;  // would stall the test if not interruptible
  slow.max_backoff = 30s;
  ut::RunControl control;
  control.cancel = ut::CancellationToken::create();
  mpe::Rng rng(3);
  const auto t0 = std::chrono::steady_clock::now();
  std::thread canceller([&] {
    std::this_thread::sleep_for(50ms);
    control.cancel.request_stop();
  });
  const auto outcome = ut::retry_with_backoff(
      slow, control, rng, [&] { return mpe::ErrorCode::kIo; });
  canceller.join();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, 5s) << "backoff sleep ignored cancellation";
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.stopped, ut::StopCause::kCancelled);
  EXPECT_EQ(outcome.attempts, 1u);
}

TEST(RetryLoop, ExpiredDeadlineSkipsTheFirstAttempt) {
  ut::RunControl control;
  control.deadline = ut::Deadline::after(0ns);
  mpe::Rng rng(3);
  std::size_t calls = 0;
  const auto outcome = ut::retry_with_backoff(
      fast_policy(), control, rng, [&] {
        ++calls;
        return mpe::ErrorCode::kOk;
      });
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(calls, 0u);
  EXPECT_EQ(outcome.stopped, ut::StopCause::kDeadline);
}

TEST(InterruptibleSleep, RunsToCompletionWhenUncontested) {
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(ut::interruptible_sleep(20ms, {}), ut::StopCause::kNone);
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 20ms);
}

TEST(InterruptibleSleep, AlreadyCancelledReturnsImmediately) {
  ut::RunControl control;
  control.cancel = ut::CancellationToken::create();
  control.cancel.request_stop();
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(ut::interruptible_sleep(30s, control), ut::StopCause::kCancelled);
  // An already-tripped token must short-circuit before the first slice —
  // well under the ~10ms polling granularity, let alone the full duration.
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 1s);
}

TEST(InterruptibleSleep, AlreadyExpiredDeadlineReturnsImmediately) {
  ut::RunControl control;
  control.deadline = ut::Deadline::after(0ns);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(ut::interruptible_sleep(30s, control), ut::StopCause::kDeadline);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 1s);
}

TEST(InterruptibleSleep, MidSleepCancellationWakesWithinASlice) {
  ut::RunControl control;
  control.cancel = ut::CancellationToken::create();
  std::thread canceller([&] {
    std::this_thread::sleep_for(30ms);
    control.cancel.request_stop();
  });
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(ut::interruptible_sleep(30s, control), ut::StopCause::kCancelled);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  canceller.join();
  // Wakeup latency after the trip is bounded by the polling slice, not the
  // requested duration; 5s leaves three orders of magnitude of headroom on
  // a loaded CI box.
  EXPECT_LT(elapsed, 5s);
  EXPECT_GE(elapsed, 25ms);  // but it did sleep until the trip
}

}  // namespace
