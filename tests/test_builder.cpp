#include "circuit/builder.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "circuit/analysis.hpp"
#include "util/contracts.hpp"

namespace {

namespace ckt = mpe::circuit;
using ckt::GateType;
using ckt::Netlist;
using ckt::NetlistBuilder;
using ckt::NodeId;

// Evaluates a single-output builder netlist for the given input bits.
bool run1(Netlist& nl, std::vector<std::uint8_t> in) {
  if (!nl.finalized()) nl.finalize();
  const auto values = ckt::evaluate(nl, in);
  return values[nl.outputs().at(0)] != 0;
}

TEST(Builder, BinaryHelpersComputeCorrectFunctions) {
  struct Case {
    GateType t;
    std::array<int, 4> expect;
  };
  const std::vector<Case> cases = {
      {GateType::kAnd, {0, 0, 0, 1}}, {GateType::kNand, {1, 1, 1, 0}},
      {GateType::kOr, {0, 1, 1, 1}},  {GateType::kNor, {1, 0, 0, 0}},
      {GateType::kXor, {0, 1, 1, 0}}, {GateType::kXnor, {1, 0, 0, 1}},
  };
  for (const auto& c : cases) {
    Netlist nl("t");
    NetlistBuilder b(nl);
    const NodeId a = b.input("a");
    const NodeId bb = b.input("b");
    NodeId out;
    switch (c.t) {
      case GateType::kAnd: out = b.and_(a, bb); break;
      case GateType::kNand: out = b.nand_(a, bb); break;
      case GateType::kOr: out = b.or_(a, bb); break;
      case GateType::kNor: out = b.nor_(a, bb); break;
      case GateType::kXor: out = b.xor_(a, bb); break;
      default: out = b.xnor_(a, bb); break;
    }
    nl.mark_output(out);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(run1(nl, {static_cast<std::uint8_t>(i >> 1),
                          static_cast<std::uint8_t>(i & 1)}),
                c.expect[i] != 0)
          << ckt::to_string(c.t) << " " << i;
    }
  }
}

TEST(Builder, NotAndBuf) {
  Netlist nl("t");
  NetlistBuilder b(nl);
  const NodeId a = b.input("a");
  nl.mark_output(b.not_(a));
  EXPECT_TRUE(run1(nl, {0}));
  EXPECT_FALSE(run1(nl, {1}));
}

TEST(Builder, MuxSelects) {
  Netlist nl("t");
  NetlistBuilder b(nl);
  const NodeId sel = b.input("sel");
  const NodeId lo = b.input("lo");
  const NodeId hi = b.input("hi");
  nl.mark_output(b.mux(sel, lo, hi));
  // sel=0 -> lo; sel=1 -> hi.
  EXPECT_FALSE(run1(nl, {0, 0, 1}));
  EXPECT_TRUE(run1(nl, {0, 1, 0}));
  EXPECT_TRUE(run1(nl, {1, 0, 1}));
  EXPECT_FALSE(run1(nl, {1, 1, 0}));
}

TEST(Builder, FullAdderTruthTable) {
  Netlist nl("t");
  NetlistBuilder b(nl);
  const NodeId a = b.input("a");
  const NodeId bb = b.input("b");
  const NodeId c = b.input("c");
  const auto fa = b.full_adder(a, bb, c);
  nl.mark_output(fa.sum);
  nl.mark_output(fa.carry);
  nl.finalize();
  for (int i = 0; i < 8; ++i) {
    const int ai = (i >> 2) & 1, bi = (i >> 1) & 1, ci = i & 1;
    const auto values = ckt::evaluate(
        nl, std::vector<std::uint8_t>{static_cast<std::uint8_t>(ai),
                                      static_cast<std::uint8_t>(bi),
                                      static_cast<std::uint8_t>(ci)});
    const int total = ai + bi + ci;
    EXPECT_EQ(values[nl.outputs()[0]], total & 1) << i;
    EXPECT_EQ(values[nl.outputs()[1]], (total >> 1) & 1) << i;
  }
}

TEST(Builder, ReduceWideAndMatchesSemantics) {
  Netlist nl("t");
  NetlistBuilder b(nl);
  std::vector<NodeId> ins;
  for (int i = 0; i < 9; ++i) ins.push_back(b.input());
  nl.mark_output(b.reduce(GateType::kAnd, ins, 3));
  std::vector<std::uint8_t> all1(9, 1);
  EXPECT_TRUE(run1(nl, all1));
  for (int i = 0; i < 9; ++i) {
    auto v = all1;
    v[static_cast<std::size_t>(i)] = 0;
    EXPECT_FALSE(run1(nl, v)) << "zero at " << i;
  }
}

TEST(Builder, ReduceXorComputesParity) {
  Netlist nl("t");
  NetlistBuilder b(nl);
  std::vector<NodeId> ins;
  for (int i = 0; i < 7; ++i) ins.push_back(b.input());
  nl.mark_output(b.reduce(GateType::kXor, ins, 2));
  for (int mask = 0; mask < 128; mask += 11) {
    std::vector<std::uint8_t> v(7);
    int pop = 0;
    for (int i = 0; i < 7; ++i) {
      v[static_cast<std::size_t>(i)] = (mask >> i) & 1;
      pop += (mask >> i) & 1;
    }
    EXPECT_EQ(run1(nl, v), (pop & 1) != 0) << "mask=" << mask;
  }
}

TEST(Builder, ReduceInvertedTypes) {
  // NOR-reduce of 5 inputs == NOT(OR of all).
  Netlist nl("t");
  NetlistBuilder b(nl);
  std::vector<NodeId> ins;
  for (int i = 0; i < 5; ++i) ins.push_back(b.input());
  nl.mark_output(b.reduce(GateType::kNor, ins, 4));
  EXPECT_TRUE(run1(nl, {0, 0, 0, 0, 0}));
  EXPECT_FALSE(run1(nl, {0, 0, 1, 0, 0}));
}

TEST(Builder, ReduceSingleInputPassThrough) {
  Netlist nl("t");
  NetlistBuilder b(nl);
  const NodeId a = b.input("a");
  const std::vector<NodeId> one = {a};
  EXPECT_EQ(b.reduce(GateType::kAnd, one), a);
}

TEST(Builder, FreshNamesNeverCollide) {
  Netlist nl("t");
  // Pre-claim a name that matches the builder pattern.
  nl.declare("n0");
  NetlistBuilder b(nl, "n");
  const NodeId f = b.fresh();
  EXPECT_NE(nl.node_name(f), "n0");
}

TEST(Builder, RejectsBadReduceArgs) {
  Netlist nl("t");
  NetlistBuilder b(nl);
  const std::vector<NodeId> none;
  EXPECT_THROW(b.reduce(GateType::kAnd, none), mpe::ContractViolation);
}

}  // namespace
