// Determinism contract of the pipelined estimator: identical results for
// every thread count, and a golden-value regression pinning the sequential
// reference path to the pre-pipeline implementation.
#include <gtest/gtest.h>

#include <cmath>

#include "gen/trees.hpp"
#include "maxpower/estimator.hpp"
#include "stats/weibull.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "vectors/population.hpp"

namespace {

namespace mp = mpe::maxpower;

mpe::vec::FinitePopulation weibull_population(std::size_t size,
                                              std::uint64_t seed,
                                              double alpha = 3.0,
                                              double mu = 10.0) {
  const mpe::stats::ReversedWeibull g(alpha, 1.0, mu);
  mpe::Rng rng(seed);
  std::vector<double> vals(size);
  for (auto& v : vals) v = g.sample(rng);
  return mpe::vec::FinitePopulation(std::move(vals), "synthetic weibull");
}

void expect_identical(const mp::EstimationResult& a,
                      const mp::EstimationResult& b) {
  EXPECT_EQ(a.estimate, b.estimate);
  EXPECT_EQ(a.ci.lower, b.ci.lower);
  EXPECT_EQ(a.ci.upper, b.ci.upper);
  EXPECT_EQ(a.relative_error_bound, b.relative_error_bound);
  EXPECT_EQ(a.units_used, b.units_used);
  EXPECT_EQ(a.hyper_samples, b.hyper_samples);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.stop_reason, b.stop_reason);
  EXPECT_EQ(a.degenerate_fits, b.degenerate_fits);
  EXPECT_EQ(a.diagnostics.degenerate_fits, b.diagnostics.degenerate_fits);
  EXPECT_EQ(a.diagnostics.discarded_hyper_samples,
            b.diagnostics.discarded_hyper_samples);
  ASSERT_EQ(a.hyper_values.size(), b.hyper_values.size());
  for (std::size_t i = 0; i < a.hyper_values.size(); ++i) {
    EXPECT_EQ(a.hyper_values[i], b.hyper_values[i]) << "hyper value " << i;
  }
}

// Golden values produced by the pre-pipeline (seed) implementation of
// estimate_max_power for this exact configuration. The sequential reference
// path must reproduce them bit-for-bit: the batched draw rewiring may only
// change how units are computed, never which units.
TEST(ParallelEstimator, SerialPathUnchangedVersusSeedGolden) {
  auto pop = weibull_population(20000, 101);
  mp::EstimatorOptions opt;
  mpe::Rng rng(14);
  const auto r = mp::estimate_max_power(pop, opt, rng);
  EXPECT_EQ(r.estimate, 9.8196310902247124);
  EXPECT_EQ(r.ci.lower, 9.7916995112452696);
  EXPECT_EQ(r.ci.upper, 9.8475626692041551);
  EXPECT_EQ(r.relative_error_bound, 0.002844463170031725);
  EXPECT_EQ(r.units_used, 900u);
  EXPECT_EQ(r.hyper_samples, 3u);
  EXPECT_TRUE(r.converged);
  ASSERT_EQ(r.hyper_values.size(), 3u);
  EXPECT_EQ(r.hyper_values[0], 9.8386435004604103);
  EXPECT_EQ(r.hyper_values[1], 9.8119692127024436);
  EXPECT_EQ(r.hyper_values[2], 9.8082805575112868);
  // Stream chaining across calls is part of the sequential contract too.
  const auto r2 = mp::estimate_max_power(pop, opt, rng);
  EXPECT_EQ(r2.estimate, 9.9938720199744822);
  EXPECT_EQ(r2.units_used, 900u);
}

TEST(ParallelEstimator, BitIdenticalAcrossThreadCounts) {
  auto pop = weibull_population(40000, 31);
  mp::EstimatorOptions opt;
  const std::uint64_t seed = 77;
  mp::ParallelOptions serial;  // threads = 1
  const auto base = mp::estimate_max_power(pop, opt, seed, serial);
  EXPECT_TRUE(base.converged);
  for (unsigned threads : {2u, 8u}) {
    mp::ParallelOptions par;
    par.threads = threads;
    const auto r = mp::estimate_max_power(pop, opt, seed, par);
    SCOPED_TRACE(threads);
    expect_identical(base, r);
  }
}

TEST(ParallelEstimator, BitIdenticalWithExternalPool) {
  auto pop = weibull_population(40000, 33);
  mp::EstimatorOptions opt;
  const std::uint64_t seed = 5;
  const auto base = mp::estimate_max_power(pop, opt, seed);
  mpe::util::ThreadPool pool(3);
  mp::ParallelOptions par;
  par.pool = &pool;
  const auto r = mp::estimate_max_power(pop, opt, seed, par);
  expect_identical(base, r);
}

TEST(ParallelEstimator, BitIdenticalUnderBootstrapInterval) {
  // The bootstrap stopping rule consumes its own RNG stream; speculation
  // must not perturb it.
  auto pop = weibull_population(30000, 35);
  mp::EstimatorOptions opt;
  opt.interval = mp::IntervalKind::kBootstrap;
  const std::uint64_t seed = 91;
  const auto base = mp::estimate_max_power(pop, opt, seed);
  mp::ParallelOptions par;
  par.threads = 4;
  const auto r = mp::estimate_max_power(pop, opt, seed, par);
  expect_identical(base, r);
}

TEST(ParallelEstimator, NonConvergedRunsIdenticalAcrossThreadCounts) {
  auto pop = weibull_population(20000, 37);
  mp::EstimatorOptions opt;
  opt.epsilon = 1e-9;  // unattainable
  opt.max_hyper_samples = 7;
  const std::uint64_t seed = 13;
  const auto base = mp::estimate_max_power(pop, opt, seed);
  EXPECT_FALSE(base.converged);
  EXPECT_EQ(base.hyper_samples, 7u);
  for (unsigned threads : {2u, 8u}) {
    mp::ParallelOptions par;
    par.threads = threads;
    const auto r = mp::estimate_max_power(pop, opt, seed, par);
    SCOPED_TRACE(threads);
    expect_identical(base, r);
  }
}

TEST(ParallelEstimator, StreamingBitParallelIdenticalAcrossThreadCounts) {
  // Bit-parallel streaming draws are concurrent-safe (per-call simulator
  // checkout), so the wave really runs in parallel — and must still be
  // bit-identical to the single-threaded pipeline.
  auto nl = mpe::gen::parity_tree(16, 2);
  mpe::sim::PowerEvalOptions eval_opt;
  eval_opt.delay_model = mpe::sim::DelayModel::kZero;
  mpe::sim::CyclePowerEvaluator eval(nl, eval_opt);
  const mpe::vec::UniformPairGenerator gen(nl.num_inputs());
  mpe::vec::StreamingPopulation pop(gen, eval);
  ASSERT_TRUE(pop.enable_bit_parallel());
  ASSERT_TRUE(pop.concurrent_draw_safe());
  mp::EstimatorOptions opt;
  opt.epsilon = 0.10;
  opt.max_hyper_samples = 12;
  const std::uint64_t seed = 3;
  const auto base = mp::estimate_max_power(pop, opt, seed);
  for (unsigned threads : {2u, 8u}) {
    mp::ParallelOptions par;
    par.threads = threads;
    const auto r = mp::estimate_max_power(pop, opt, seed, par);
    SCOPED_TRACE(threads);
    expect_identical(base, r);
  }
}

TEST(ParallelEstimator, ScalarStreamingFallsBackDeterministically) {
  // A scalar streaming population shares one evaluator, so it is not
  // concurrent-draw-safe: the pipeline must serialize the wave and still
  // produce thread-count-independent results.
  auto nl = mpe::gen::parity_tree(16, 2);
  mpe::sim::CyclePowerEvaluator eval(nl);  // event-driven: scalar only
  const mpe::vec::UniformPairGenerator gen(nl.num_inputs());
  mpe::vec::StreamingPopulation pop(gen, eval);
  ASSERT_FALSE(pop.concurrent_draw_safe());
  mp::EstimatorOptions opt;
  opt.epsilon = 0.10;
  opt.max_hyper_samples = 8;
  const std::uint64_t seed = 3;
  const auto base = mp::estimate_max_power(pop, opt, seed);
  mp::ParallelOptions par;
  par.threads = 4;
  const auto r = mp::estimate_max_power(pop, opt, seed, par);
  expect_identical(base, r);
}

TEST(ParallelEstimator, ParallelRunsAreAccurate) {
  auto pop = weibull_population(40000, 41);
  mp::EstimatorOptions opt;
  mp::ParallelOptions par;
  par.threads = 0;  // hardware concurrency
  int within = 0;
  const int reps = 20;
  for (int i = 0; i < reps; ++i) {
    const auto r =
        mp::estimate_max_power(pop, opt, 1000 + static_cast<unsigned>(i),
                               par);
    const double rel =
        std::fabs(r.estimate - pop.true_max()) / pop.true_max();
    if (rel <= 0.08) ++within;
  }
  EXPECT_GE(within, reps * 80 / 100);
}

}  // namespace
