#include "circuit/gate.hpp"

#include <gtest/gtest.h>

#include <array>
#include <stdexcept>
#include <vector>

#include "util/contracts.hpp"

namespace {

namespace ckt = mpe::circuit;
using ckt::GateType;

std::uint8_t b(int v) { return static_cast<std::uint8_t>(v); }

TEST(Gate, NamesRoundTrip) {
  for (auto t : {GateType::kBuf, GateType::kNot, GateType::kAnd,
                 GateType::kNand, GateType::kOr, GateType::kNor,
                 GateType::kXor, GateType::kXnor}) {
    EXPECT_EQ(ckt::gate_type_from_string(ckt::to_string(t)), t);
  }
}

TEST(Gate, ParsesAliasesAndCase) {
  EXPECT_EQ(ckt::gate_type_from_string("NAND"), GateType::kNand);
  EXPECT_EQ(ckt::gate_type_from_string("inv"), GateType::kNot);
  EXPECT_EQ(ckt::gate_type_from_string("BUFF"), GateType::kBuf);
  EXPECT_THROW(ckt::gate_type_from_string("mystery"), std::invalid_argument);
}

TEST(Gate, UnaryPredicates) {
  EXPECT_TRUE(ckt::is_unary(GateType::kBuf));
  EXPECT_TRUE(ckt::is_unary(GateType::kNot));
  EXPECT_FALSE(ckt::is_unary(GateType::kAnd));
  EXPECT_FALSE(ckt::is_unary(GateType::kXnor));
}

TEST(Gate, TwoInputTruthTables) {
  struct Case {
    GateType t;
    std::array<int, 4> out;  // for inputs 00, 01, 10, 11
  };
  const std::vector<Case> cases = {
      {GateType::kAnd, {0, 0, 0, 1}},  {GateType::kNand, {1, 1, 1, 0}},
      {GateType::kOr, {0, 1, 1, 1}},   {GateType::kNor, {1, 0, 0, 0}},
      {GateType::kXor, {0, 1, 1, 0}},  {GateType::kXnor, {1, 0, 0, 1}},
  };
  for (const auto& c : cases) {
    for (int i = 0; i < 4; ++i) {
      const std::vector<std::uint8_t> ins = {b(i >> 1), b(i & 1)};
      EXPECT_EQ(ckt::eval_gate(c.t, ins), c.out[i] != 0)
          << ckt::to_string(c.t) << " inputs " << (i >> 1) << (i & 1);
    }
  }
}

TEST(Gate, UnaryTruthTables) {
  EXPECT_TRUE(ckt::eval_gate(GateType::kBuf, std::vector<std::uint8_t>{1}));
  EXPECT_FALSE(ckt::eval_gate(GateType::kBuf, std::vector<std::uint8_t>{0}));
  EXPECT_FALSE(ckt::eval_gate(GateType::kNot, std::vector<std::uint8_t>{1}));
  EXPECT_TRUE(ckt::eval_gate(GateType::kNot, std::vector<std::uint8_t>{0}));
}

TEST(Gate, WideGates) {
  const std::vector<std::uint8_t> all1 = {1, 1, 1, 1, 1};
  const std::vector<std::uint8_t> one0 = {1, 1, 0, 1, 1};
  EXPECT_TRUE(ckt::eval_gate(GateType::kAnd, all1));
  EXPECT_FALSE(ckt::eval_gate(GateType::kAnd, one0));
  EXPECT_TRUE(ckt::eval_gate(GateType::kOr, one0));
  // XOR over 5 ones = parity 1; over 4 ones = 0.
  EXPECT_TRUE(ckt::eval_gate(GateType::kXor, all1));
  const std::vector<std::uint8_t> four1 = {1, 1, 1, 1};
  EXPECT_FALSE(ckt::eval_gate(GateType::kXor, four1));
}

TEST(Gate, ArityContracts) {
  const std::vector<std::uint8_t> two = {1, 0};
  const std::vector<std::uint8_t> one = {1};
  const std::vector<std::uint8_t> none;
  EXPECT_THROW(ckt::eval_gate(GateType::kBuf, two), mpe::ContractViolation);
  EXPECT_THROW(ckt::eval_gate(GateType::kAnd, one), mpe::ContractViolation);
  EXPECT_THROW(ckt::eval_gate(GateType::kAnd, none), mpe::ContractViolation);
}

TEST(Gate, ElectricalParametersSane) {
  for (std::size_t i = 0; i < ckt::kNumGateTypes; ++i) {
    const auto& e = ckt::electrical(static_cast<GateType>(i));
    EXPECT_GT(e.input_cap, 0.0);
    EXPECT_GT(e.intrinsic_delay, 0.0);
    EXPECT_GT(e.drive, 0.0);
  }
  // XOR cells are heavier than inverters.
  EXPECT_GT(ckt::electrical(GateType::kXor).input_cap,
            ckt::electrical(GateType::kNot).input_cap);
}

}  // namespace
