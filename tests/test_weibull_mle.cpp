#include "evt/weibull_mle.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/descriptive.hpp"
#include "stats/weibull.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

namespace evt = mpe::evt;
using mpe::stats::ReversedWeibull;
using mpe::stats::WeibullParams;

std::vector<double> draw(const WeibullParams& p, int n, std::uint64_t seed) {
  const ReversedWeibull g(p);
  mpe::Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = g.sample(rng);
  return xs;
}

TEST(WeibullLogLikelihood, MatchesManualComputation) {
  const WeibullParams p{2.0, 1.0, 3.0};
  const std::vector<double> xs = {1.0, 2.0};
  // log g(x) = log(alpha*beta) + (alpha-1) log(mu-x) - beta (mu-x)^alpha
  const double expected =
      (std::log(2.0) + std::log(2.0) - 4.0) + (std::log(2.0) + 0.0 - 1.0);
  EXPECT_NEAR(evt::weibull_log_likelihood(xs, p), expected, 1e-12);
}

TEST(WeibullLogLikelihood, InfeasibleGivesMinusInf) {
  const WeibullParams p{2.0, 1.0, 3.0};
  EXPECT_TRUE(std::isinf(
      evt::weibull_log_likelihood(std::vector<double>{3.0}, p)));
  EXPECT_TRUE(std::isinf(
      evt::weibull_log_likelihood(std::vector<double>{4.0}, p)));
}

TEST(FixedMuFit, RecoversShapeAndScale) {
  const WeibullParams truth{3.0, 1.0, 5.0};
  const auto xs = draw(truth, 5000, 17);
  const auto fit = evt::fit_weibull_mle_fixed_mu(xs, truth.mu);
  EXPECT_TRUE(fit.converged);
  EXPECT_NEAR(fit.alpha, truth.alpha, 0.12);
  EXPECT_NEAR(fit.beta, truth.beta, 0.1);
}

TEST(FixedMuFit, InfeasibleMuReportsFailure) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const auto fit = evt::fit_weibull_mle_fixed_mu(xs, 2.5);  // below max
  EXPECT_FALSE(fit.converged);
}

TEST(FixedMuFit, MaximizesLikelihoodOverAlphaBeta) {
  // At the fitted (alpha, beta) the likelihood should beat perturbations.
  const WeibullParams truth{2.5, 0.8, 2.0};
  const auto xs = draw(truth, 300, 5);
  const double mu = 2.05;
  const auto fit = evt::fit_weibull_mle_fixed_mu(xs, mu);
  ASSERT_TRUE(fit.converged);
  const double ll_fit = evt::weibull_log_likelihood(
      xs, WeibullParams{fit.alpha, fit.beta, mu});
  EXPECT_NEAR(ll_fit, fit.log_likelihood, 1e-6);
  for (double da : {-0.1, 0.1}) {
    const double ll = evt::weibull_log_likelihood(
        xs, WeibullParams{fit.alpha + da, fit.beta, mu});
    EXPECT_LE(ll, ll_fit + 1e-9);
  }
  for (double db : {-0.05, 0.05}) {
    const double ll = evt::weibull_log_likelihood(
        xs, WeibullParams{fit.alpha, fit.beta + db, mu});
    EXPECT_LE(ll, ll_fit + 1e-9);
  }
}

TEST(WeibullMle, RecoversParametersLargeSample) {
  const WeibullParams truth{3.5, 1.2, 10.0};
  const auto xs = draw(truth, 3000, 23);
  const auto fit = evt::fit_weibull_mle(xs);
  EXPECT_TRUE(fit.converged);
  EXPECT_NEAR(fit.params.mu, truth.mu, 0.1);
  EXPECT_NEAR(fit.params.alpha, truth.alpha, 0.4);
  EXPECT_FALSE(fit.alpha_below_two);
}

TEST(WeibullMle, SmallSampleEndpointAboveSampleMax) {
  const WeibullParams truth{3.0, 1.0, 1.0};
  const auto xs = draw(truth, 10, 31);
  const auto fit = evt::fit_weibull_mle(xs);
  const double xmax = *std::max_element(xs.begin(), xs.end());
  EXPECT_GT(fit.params.mu, xmax);
}

TEST(WeibullMle, SmallSampleBiasIsModest) {
  // Average endpoint estimate over many m=10 fits should sit near the truth
  // (Theorem 3 promises unbiasedness only asymptotically; at m=10 the
  // ridge-stabilized fit trades a modest downward pull for bounded
  // variance, so allow a fraction of the distribution scale sigma = 1).
  const WeibullParams truth{4.0, 1.0, 1.0};
  double sum = 0.0;
  const int reps = 150;
  for (int r = 0; r < reps; ++r) {
    const auto xs = draw(truth, 10, 1000 + r);
    sum += evt::fit_weibull_mle(xs).params.mu;
  }
  EXPECT_NEAR(sum / reps, truth.mu, 0.30);
}

TEST(WeibullMle, DegenerateConstantSampleFlagged) {
  const std::vector<double> xs = {2.0, 2.0, 2.0, 2.0};
  const auto fit = evt::fit_weibull_mle(xs);
  EXPECT_FALSE(fit.converged);
  EXPECT_DOUBLE_EQ(fit.params.mu, 2.0);
}

TEST(WeibullMle, GumbelDataPushesEndpointOut) {
  // Gumbel-tailed data (no finite endpoint): at a sample size where the
  // unbounded tail is statistically visible, the *raw* MLE should show the
  // Weibull -> Gumbel degeneracy signature — endpoint stretched far beyond
  // the sample, the search bound hit, or a near-Gumbel (large) shape.
  mpe::Rng rng(77);
  std::vector<double> xs(500);
  for (auto& x : xs) x = -std::log(-std::log(rng.uniform(1e-12, 1.0)));
  evt::WeibullMleOptions opt;
  opt.ridge_tolerance = 0.0;  // raw MLE
  const auto fit = evt::fit_weibull_mle(xs, opt);
  const double xmax = *std::max_element(xs.begin(), xs.end());
  const double xmin = *std::min_element(xs.begin(), xs.end());
  EXPECT_TRUE(fit.mu_at_upper_bound ||
              (fit.params.mu - xmax) > 0.5 * (xmax - xmin) ||
              fit.params.alpha > 20.0)
      << "mu=" << fit.params.mu << " alpha=" << fit.params.alpha;
  EXPECT_FALSE(fit.ridge_fallback);
}

TEST(WeibullMle, RejectsTooFewPoints) {
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_THROW(evt::fit_weibull_mle(xs), mpe::ContractViolation);
}

TEST(WeibullMle, LikelihoodAtOptimumBeatsNeighborhood) {
  const WeibullParams truth{3.0, 1.0, 0.0};
  const auto xs = draw(truth, 200, 3);
  const auto fit = evt::fit_weibull_mle(xs);
  const double ll_hat = evt::weibull_log_likelihood(xs, fit.params);
  // Perturb mu both ways (staying feasible) and re-fit alpha/beta: profile
  // likelihood at the chosen mu must be at least as high.
  const double xmax = *std::max_element(xs.begin(), xs.end());
  for (double factor : {0.5, 2.0, 8.0}) {
    const double mu_alt = xmax + (fit.params.mu - xmax) * factor;
    const auto alt = evt::fit_weibull_mle_fixed_mu(xs, mu_alt);
    EXPECT_LE(alt.log_likelihood, ll_hat + 1e-6) << "factor=" << factor;
  }
}

struct MleCase {
  double alpha, beta, mu;
  int m;
};

class MleRecovery : public ::testing::TestWithParam<MleCase> {};

TEST_P(MleRecovery, EndpointWithinTolerance) {
  const auto c = GetParam();
  const WeibullParams truth{c.alpha, c.beta, c.mu};
  const ReversedWeibull g(truth);
  const double scale = g.sigma();
  // Average over several independent fits to damp sampling noise.
  double err_sum = 0.0;
  const int reps = 30;
  for (int r = 0; r < reps; ++r) {
    const auto xs = draw(truth, c.m, 555 + 7 * r);
    const auto fit = evt::fit_weibull_mle(xs);
    err_sum += std::fabs(fit.params.mu - truth.mu);
  }
  const double avg_err = err_sum / reps;
  // Larger m must estimate the endpoint to a fraction of the scale.
  const double tol = c.m >= 1000 ? 0.2 * scale : 0.8 * scale;
  EXPECT_LT(avg_err, tol) << "alpha=" << c.alpha << " m=" << c.m;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MleRecovery,
    ::testing::Values(MleCase{2.5, 1.0, 1.0, 50}, MleCase{3.0, 1.0, 1.0, 1000},
                      MleCase{5.0, 2.0, 10.0, 50},
                      MleCase{5.0, 2.0, 10.0, 1000},
                      MleCase{8.0, 0.5, -3.0, 1000}));

}  // namespace
