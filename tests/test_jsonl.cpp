#include "util/jsonl.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/status.hpp"

namespace {

using mpe::Error;
using mpe::ErrorCode;
using mpe::util::json_escape;
using mpe::util::json_number;
using mpe::util::JsonFields;
using mpe::util::JsonValue;
using mpe::util::parse_json;

TEST(JsonEscape, ControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01z")), "a\\u0001z");
}

TEST(JsonNumber, RoundTripsThroughParse) {
  for (double v : {0.0, 1.0, -2.5, 0.1, 1e-300, 9.8196310902247124,
                   std::numeric_limits<double>::max()}) {
    const JsonValue parsed = parse_json(json_number(v));
    ASSERT_TRUE(parsed.is_number()) << json_number(v);
    EXPECT_EQ(parsed.as_number(), v) << json_number(v);
  }
}

TEST(JsonNumber, NonFiniteBecomesString) {
  EXPECT_EQ(json_number(std::nan("")), "\"nan\"");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "\"inf\"");
  EXPECT_EQ(json_number(-std::numeric_limits<double>::infinity()),
            "\"-inf\"");
}

TEST(JsonFieldsTest, BuildsFlatObject) {
  const std::string obj = JsonFields{}
                              .add("s", "x\"y")
                              .add("b", true)
                              .add("i", -3)
                              .add("u", 7u)
                              .add("d", 0.5)
                              .raw("a", "[1,2]")
                              .object();
  const JsonValue v = parse_json(obj);
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("s")->as_string(), "x\"y");
  EXPECT_TRUE(v.find("b")->as_bool());
  EXPECT_EQ(v.find("i")->as_number(), -3.0);
  EXPECT_EQ(v.find("u")->as_number(), 7.0);
  EXPECT_EQ(v.find("d")->as_number(), 0.5);
  ASSERT_TRUE(v.find("a")->is_array());
  EXPECT_EQ(v.find("a")->as_array().size(), 2u);
}

TEST(JsonFieldsTest, EmptyObject) {
  EXPECT_TRUE(JsonFields{}.empty());
  EXPECT_EQ(JsonFields{}.object(), "{}");
}

TEST(ParseJson, Scalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").as_bool());
  EXPECT_FALSE(parse_json(" false ").as_bool());
  EXPECT_EQ(parse_json("-1.5e2").as_number(), -150.0);
  EXPECT_EQ(parse_json("\"a\\u0041b\"").as_string(), "aAb");
}

TEST(ParseJson, NestedStructure) {
  const JsonValue v = parse_json(R"({"a":[1,{"b":null}],"c":{}})");
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.find("a");
  ASSERT_TRUE(a != nullptr && a->is_array());
  EXPECT_EQ(a->as_array()[0].as_number(), 1.0);
  EXPECT_TRUE(a->as_array()[1].find("b")->is_null());
  EXPECT_TRUE(v.find("c")->is_object());
  EXPECT_EQ(v.keys(), (std::vector<std::string>{"a", "c"}));
}

TEST(ParseJson, MalformedInputThrowsParseError) {
  for (const char* bad : {"", "{", "[1,", "{\"a\":}", "tru", "1 2",
                          "\"unterminated", "{\"a\" 1}", "nan"}) {
    try {
      parse_json(bad);
      FAIL() << "expected parse error for: " << bad;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kParse) << bad;
    }
  }
}

TEST(ParseJson, FindOnNonObjectIsNull) {
  EXPECT_EQ(parse_json("[1]").find("a"), nullptr);
  EXPECT_FALSE(parse_json("3").has("a"));
  EXPECT_TRUE(parse_json("3").keys().empty());
}

}  // namespace
