#include "gen/random_dag.hpp"

#include <gtest/gtest.h>

#include "circuit/analysis.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

using mpe::gen::random_dag;
using mpe::gen::RandomDagParams;

TEST(RandomDag, MeetsRequestedCounts) {
  RandomDagParams p;
  p.num_inputs = 20;
  p.num_outputs = 8;
  p.num_gates = 300;
  mpe::Rng rng(1);
  const auto nl = random_dag(p, rng);
  EXPECT_EQ(nl.num_inputs(), 20u);
  EXPECT_EQ(nl.num_outputs(), 8u);
  EXPECT_EQ(nl.num_gates(), 300u);
  EXPECT_TRUE(nl.finalized());
}

TEST(RandomDag, EveryInputIsConsumed) {
  RandomDagParams p;
  p.num_inputs = 64;
  p.num_outputs = 8;
  p.num_gates = 200;
  mpe::Rng rng(2);
  const auto nl = random_dag(p, rng);
  for (auto in : nl.inputs()) {
    EXPECT_FALSE(nl.fanout(in).empty())
        << "dangling input " << nl.node_name(in);
  }
}

TEST(RandomDag, DeterministicForSameSeed) {
  RandomDagParams p;
  p.num_gates = 150;
  mpe::Rng r1(77), r2(77);
  const auto a = random_dag(p, r1);
  const auto b = random_dag(p, r2);
  ASSERT_EQ(a.num_gates(), b.num_gates());
  for (std::size_t g = 0; g < a.num_gates(); ++g) {
    EXPECT_EQ(a.gate(g).type, b.gate(g).type);
    EXPECT_EQ(a.gate(g).inputs, b.gate(g).inputs);
  }
}

TEST(RandomDag, DifferentSeedsDiffer) {
  RandomDagParams p;
  p.num_gates = 150;
  mpe::Rng r1(1), r2(2);
  const auto a = random_dag(p, r1);
  const auto b = random_dag(p, r2);
  bool any_diff = false;
  for (std::size_t g = 0; g < a.num_gates() && !any_diff; ++g) {
    any_diff = a.gate(g).type != b.gate(g).type ||
               a.gate(g).inputs != b.gate(g).inputs;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RandomDag, RespectsMaxFanin) {
  RandomDagParams p;
  p.max_fanin = 3;
  p.num_gates = 400;
  mpe::Rng rng(5);
  const auto nl = random_dag(p, rng);
  for (const auto& g : nl.gates()) {
    EXPECT_LE(g.inputs.size(), 3u);
  }
}

TEST(RandomDag, LocalityIncreasesDepth) {
  RandomDagParams shallow;
  shallow.num_inputs = 32;
  shallow.num_gates = 600;
  shallow.locality = 0.0;
  RandomDagParams deep = shallow;
  deep.locality = 0.95;
  deep.window = 16;
  mpe::Rng r1(9), r2(9);
  const auto a = random_dag(shallow, r1);
  const auto b = random_dag(deep, r2);
  EXPECT_GT(b.depth(), a.depth());
}

TEST(RandomDag, OutputsPreferDeepSinks) {
  RandomDagParams p;
  p.num_inputs = 16;
  p.num_outputs = 4;
  p.num_gates = 200;
  mpe::Rng rng(11);
  const auto nl = random_dag(p, rng);
  for (auto o : nl.outputs()) {
    EXPECT_GT(nl.level(o), 0u);
  }
}

TEST(RandomDag, GeneratedCircuitIsSimulable) {
  RandomDagParams p;
  p.num_inputs = 24;
  p.num_gates = 250;
  mpe::Rng rng(13);
  auto nl = random_dag(p, rng);
  std::vector<std::uint8_t> in(nl.num_inputs(), 1);
  EXPECT_NO_THROW(mpe::circuit::evaluate(nl, in));
}

TEST(RandomDag, RejectsInconsistentParams) {
  RandomDagParams p;
  p.num_inputs = 100;
  p.num_gates = 10;  // cannot consume all inputs
  p.max_fanin = 4;
  mpe::Rng rng(1);
  EXPECT_THROW(random_dag(p, rng), mpe::ContractViolation);
}

class RandomDagSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RandomDagSizes, ScalesAcrossSizes) {
  RandomDagParams p;
  p.num_inputs = 30;
  p.num_outputs = 10;
  p.num_gates = GetParam();
  mpe::Rng rng(21);
  const auto nl = random_dag(p, rng);
  EXPECT_EQ(nl.num_gates(), GetParam());
  EXPECT_GE(nl.depth(), 2u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomDagSizes,
                         ::testing::Values(50, 200, 1000, 3000));

}  // namespace
