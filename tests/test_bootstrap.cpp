#include "evt/bootstrap.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "evt/confidence.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

namespace evt = mpe::evt;

TEST(Bootstrap, CenterIsSampleMean) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  mpe::Rng rng(1);
  const auto ci = evt::bootstrap_mean_interval(xs, 0.9, rng);
  EXPECT_DOUBLE_EQ(ci.center, 2.5);
  EXPECT_LE(ci.lower, ci.center);
  EXPECT_GE(ci.upper, ci.center);
  EXPECT_DOUBLE_EQ(ci.confidence, 0.9);
}

TEST(Bootstrap, DegenerateSampleGivesZeroWidth) {
  const std::vector<double> xs = {5.0, 5.0, 5.0, 5.0};
  mpe::Rng rng(2);
  const auto ci = evt::bootstrap_mean_interval(xs, 0.95, rng);
  EXPECT_DOUBLE_EQ(ci.lower, 5.0);
  EXPECT_DOUBLE_EQ(ci.upper, 5.0);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
}

TEST(Bootstrap, CoverageNearNominal) {
  // Over repeated normal samples, the 90% bootstrap interval should cover
  // the true mean ~90% of the time (percentile bootstrap is slightly
  // anti-conservative at k = 12; allow a band).
  mpe::Rng rng(3);
  int covered = 0;
  const int reps = 400;
  for (int r = 0; r < reps; ++r) {
    std::vector<double> xs(12);
    for (auto& x : xs) x = rng.normal(7.0, 2.0);
    const auto ci = evt::bootstrap_mean_interval(xs, 0.90, rng);
    if (ci.lower <= 7.0 && 7.0 <= ci.upper) ++covered;
  }
  const double coverage = covered / static_cast<double>(reps);
  EXPECT_GT(coverage, 0.80);
  EXPECT_LT(coverage, 0.97);
}

TEST(Bootstrap, ComparableToTIntervalOnNormalData) {
  mpe::Rng rng(4);
  std::vector<double> xs(30);
  for (auto& x : xs) x = rng.normal(0.0, 1.0);
  const auto boot = evt::bootstrap_mean_interval(xs, 0.9, rng);
  const auto t = evt::t_interval(xs, 0.9);
  // Same ballpark of width (bootstrap slightly narrower at small k).
  EXPECT_GT(boot.half_width, 0.5 * t.half_width);
  EXPECT_LT(boot.half_width, 1.5 * t.half_width);
}

TEST(Bootstrap, AsymmetricForSkewedData) {
  // Heavily right-skewed sample: the percentile interval should extend
  // further above the mean than below it.
  std::vector<double> xs = {1, 1, 1, 1, 1, 1, 1, 1, 1, 20};
  mpe::Rng rng(5);
  const auto ci = evt::bootstrap_mean_interval(xs, 0.9, rng);
  EXPECT_GT(ci.upper - ci.center, ci.center - ci.lower);
}

TEST(Bootstrap, HigherConfidenceWider) {
  mpe::Rng rng(6);
  std::vector<double> xs(20);
  for (auto& x : xs) x = rng.uniform();
  mpe::Rng r1(7), r2(7);
  const auto lo = evt::bootstrap_mean_interval(xs, 0.80, r1);
  const auto hi = evt::bootstrap_mean_interval(xs, 0.99, r2);
  EXPECT_GT(hi.half_width, lo.half_width);
}

TEST(Bootstrap, ContractChecks) {
  mpe::Rng rng(8);
  const std::vector<double> one = {1.0};
  EXPECT_THROW(evt::bootstrap_mean_interval(one, 0.9, rng),
               mpe::ContractViolation);
  const std::vector<double> two = {1.0, 2.0};
  EXPECT_THROW(evt::bootstrap_mean_interval(two, 1.0, rng),
               mpe::ContractViolation);
  evt::BootstrapOptions opt;
  opt.resamples = 10;
  EXPECT_THROW(evt::bootstrap_mean_interval(two, 0.9, rng, opt),
               mpe::ContractViolation);
}

}  // namespace
