#include "stats/gev.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/gumbel.hpp"
#include "stats/weibull.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

using mpe::stats::Gev;
using mpe::stats::Gumbel;
using mpe::stats::ReversedWeibull;
using mpe::stats::WeibullParams;

TEST(Gev, ZeroShapeIsGumbel) {
  const Gev g(0.0, 2.0, 1.5);
  const Gumbel gum(2.0, 1.5);
  for (double x : {-1.0, 0.0, 2.0, 5.0, 10.0}) {
    EXPECT_NEAR(g.cdf(x), gum.cdf(x), 1e-14);
    EXPECT_NEAR(g.pdf(x), gum.pdf(x), 1e-14);
  }
}

TEST(Gev, NegativeShapeHasFiniteEndpoint) {
  const Gev g(-0.25, 0.0, 1.0);
  const double endpoint = g.right_endpoint();
  EXPECT_DOUBLE_EQ(endpoint, 4.0);  // mu - sigma/xi = 0 + 1/0.25
  EXPECT_DOUBLE_EQ(g.cdf(endpoint), 1.0);
  EXPECT_DOUBLE_EQ(g.cdf(endpoint + 1.0), 1.0);
  EXPECT_LT(g.cdf(endpoint - 0.1), 1.0);
}

TEST(Gev, PositiveShapeUnboundedSupport) {
  const Gev g(0.5, 0.0, 1.0);
  EXPECT_TRUE(std::isinf(g.right_endpoint()));
  EXPECT_LT(g.cdf(100.0), 1.0);
  EXPECT_DOUBLE_EQ(g.cdf(-2.0), 0.0);  // left endpoint at mu - sigma/xi = -2
}

TEST(Gev, QuantileRoundTrip) {
  for (double xi : {-0.5, -0.2, 0.0, 0.3}) {
    const Gev g(xi, 1.0, 2.0);
    for (double q : {0.01, 0.5, 0.99}) {
      EXPECT_NEAR(g.cdf(g.quantile(q)), q, 1e-12)
          << "xi=" << xi << " q=" << q;
    }
  }
}

TEST(Gev, WeibullConversionRoundTrip) {
  const WeibullParams w{3.0, 0.5, 10.0};
  const Gev g = Gev::from_weibull(w);
  EXPECT_LT(g.xi(), 0.0);
  EXPECT_NEAR(g.right_endpoint(), 10.0, 1e-10);
  const WeibullParams back = g.to_weibull();
  EXPECT_NEAR(back.alpha, w.alpha, 1e-10);
  EXPECT_NEAR(back.beta, w.beta, 1e-10);
  EXPECT_NEAR(back.mu, w.mu, 1e-10);
}

TEST(Gev, MatchesReversedWeibullCdf) {
  const WeibullParams w{2.5, 1.3, 4.0};
  const ReversedWeibull rw(w);
  const Gev g = Gev::from_weibull(w);
  for (double x : {0.0, 1.0, 2.0, 3.0, 3.9, 4.0, 5.0}) {
    EXPECT_NEAR(g.cdf(x), rw.cdf(x), 1e-12) << "x=" << x;
  }
}

TEST(Gev, PdfMatchesDerivative) {
  for (double xi : {-0.3, 0.0, 0.4}) {
    const Gev g(xi, 0.0, 1.0);
    const double h = 1e-6;
    for (double x : {-0.5, 0.5, 1.5}) {
      EXPECT_NEAR(g.pdf(x), (g.cdf(x + h) - g.cdf(x - h)) / (2 * h), 1e-6)
          << "xi=" << xi << " x=" << x;
    }
  }
}

TEST(Gev, SampleStaysInSupport) {
  const Gev g(-0.4, 1.0, 0.5);
  const double endpoint = g.right_endpoint();
  mpe::Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LE(g.sample(rng), endpoint);
  }
}

TEST(Gev, RejectsBadArgs) {
  EXPECT_THROW(Gev(0.0, 0.0, 0.0), mpe::ContractViolation);
  const Gev g(0.1, 0.0, 1.0);
  EXPECT_THROW(g.quantile(1.0), mpe::ContractViolation);  // xi > 0: no endpoint
  EXPECT_THROW(g.to_weibull(), mpe::ContractViolation);
}

}  // namespace
