#include "stats/ks.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "stats/normal.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

namespace st = mpe::stats;

TEST(KolmogorovQ, LimitsAndKnownValues) {
  EXPECT_DOUBLE_EQ(st::kolmogorov_q(0.0), 1.0);
  EXPECT_NEAR(st::kolmogorov_q(10.0), 0.0, 1e-12);
  // Q(1.36) ~ 0.05 (the classic 5% critical value).
  EXPECT_NEAR(st::kolmogorov_q(1.36), 0.05, 0.002);
  // Q(1.22) ~ 0.10.
  EXPECT_NEAR(st::kolmogorov_q(1.22), 0.10, 0.003);
}

TEST(KolmogorovQ, MonotoneDecreasing) {
  double prev = 1.0;
  for (double lam = 0.2; lam < 3.0; lam += 0.2) {
    const double q = st::kolmogorov_q(lam);
    EXPECT_LE(q, prev + 1e-12);
    prev = q;
  }
}

TEST(KsTest, CorrectModelGivesHighPValue) {
  mpe::Rng rng(8);
  std::vector<double> xs(2000);
  for (auto& x : xs) x = rng.normal(0.0, 1.0);
  const auto r = st::ks_test(xs, [](double x) {
    return st::Normal::std_cdf(x);
  });
  EXPECT_LT(r.statistic, 0.04);
  EXPECT_GT(r.p_value, 0.01);
}

TEST(KsTest, WrongModelGivesLowPValue) {
  mpe::Rng rng(8);
  std::vector<double> xs(2000);
  for (auto& x : xs) x = rng.normal(0.5, 1.0);  // shifted vs hypothesized
  const auto r = st::ks_test(xs, [](double x) {
    return st::Normal::std_cdf(x);
  });
  EXPECT_GT(r.statistic, 0.15);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(KsTest, ExactStatisticSmallSample) {
  // Sample {0.5} against U(0,1): D = max(|0.5-0|, |1-0.5|) = 0.5.
  const std::vector<double> xs = {0.5};
  const auto r = st::ks_test(xs, [](double x) { return x; });
  EXPECT_DOUBLE_EQ(r.statistic, 0.5);
}

TEST(KsTest, StatisticBounds) {
  mpe::Rng rng(44);
  std::vector<double> xs(100);
  for (auto& x : xs) x = rng.uniform();
  const auto r = st::ks_test(xs, [](double x) {
    return std::min(1.0, std::max(0.0, x));
  });
  EXPECT_GE(r.statistic, 0.0);
  EXPECT_LE(r.statistic, 1.0);
  EXPECT_GE(r.p_value, 0.0);
  EXPECT_LE(r.p_value, 1.0);
}

TEST(KsTest, RejectsEmptySample) {
  EXPECT_THROW(st::ks_test({}, [](double) { return 0.5; }),
               mpe::ContractViolation);
}

}  // namespace
