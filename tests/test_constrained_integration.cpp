// Integration tests for the constrained (category I.2) input models:
// Markov-chain and correlated-group populations driving the full pipeline,
// and the physical effects those statistics must have on maximum power.
#include <gtest/gtest.h>

#include <cmath>

#include "gen/presets.hpp"
#include "maxpower/estimator.hpp"
#include "stats/descriptive.hpp"
#include "sim/power_eval.hpp"
#include "util/rng.hpp"
#include "vectors/markov.hpp"
#include "vectors/power_db.hpp"

namespace {

namespace vec = mpe::vec;
namespace mp = mpe::maxpower;

TEST(ConstrainedIntegration, MarkovPopulationEstimates) {
  const auto nl = mpe::gen::build_preset("c432", 5);
  mpe::sim::CyclePowerEvaluator eval(nl);
  // Asymmetric chain: stationary p1 = 0.25, transition prob 0.3.
  const vec::MarkovPairGenerator gen(nl.num_inputs(), 0.2, 0.6);
  vec::PowerDbOptions db;
  db.population_size = 6000;
  mpe::Rng rng(1);
  auto pop = vec::build_power_database(gen, eval, db, rng);
  ASSERT_GT(pop.true_max(), 0.0);

  mp::EstimatorOptions opt;
  opt.epsilon = 0.08;
  mpe::Rng rng2(2);
  const auto r = mp::estimate_max_power(pop, opt, rng2);
  const double rel = std::fabs(r.estimate - pop.true_max()) / pop.true_max();
  EXPECT_LT(rel, 0.25);
  EXPECT_GT(r.units_used, 0u);
}

TEST(ConstrainedIntegration, HigherMarkovActivityRaisesMaxPower) {
  const auto nl = mpe::gen::build_preset("c432", 6);
  mpe::sim::CyclePowerEvaluator e1(nl), e2(nl);
  const vec::MarkovPairGenerator low(nl.num_inputs(), 0.1, 0.1);   // tp 0.1
  const vec::MarkovPairGenerator high(nl.num_inputs(), 0.6, 0.6);  // tp 0.6
  vec::PowerDbOptions db;
  db.population_size = 4000;
  mpe::Rng r1(3), r2(3);
  const auto pl = vec::build_power_database(low, e1, db, r1);
  const auto ph = vec::build_power_database(high, e2, db, r2);
  EXPECT_GT(ph.true_max(), pl.true_max());
  EXPECT_GT(mpe::stats::mean(ph.values()), 2.0 * mpe::stats::mean(pl.values()));
}

TEST(ConstrainedIntegration, CorrelatedTransitionsWidenPowerSpread) {
  // Same per-line transition probability, but correlated flips concentrate
  // switching into shared cycles: the power distribution gets a wider
  // spread (burst cycles + quiet cycles) than independent flipping.
  const auto nl = mpe::gen::build_preset("c432", 7);
  mpe::sim::CyclePowerEvaluator e1(nl), e2(nl);

  const std::size_t w = nl.num_inputs();
  std::vector<std::size_t> one_group(w, 0);
  const vec::CorrelatedPairGenerator correlated(one_group, {0.5}, 0.6);
  // Independent baseline with the same marginal rate 0.3.
  const vec::TransitionProbPairGenerator independent(w, 0.3);

  vec::PowerDbOptions db;
  db.population_size = 5000;
  mpe::Rng r1(4), r2(4);
  const auto pc = vec::build_power_database(correlated, e1, db, r1);
  const auto pi = vec::build_power_database(independent, e2, db, r2);

  const double sd_corr = mpe::stats::stddev(pc.values());
  const double sd_ind = mpe::stats::stddev(pi.values());
  EXPECT_GT(sd_corr, 1.3 * sd_ind);
  // Mean power stays comparable (same marginal activity).
  EXPECT_NEAR(mpe::stats::mean(pc.values()), mpe::stats::mean(pi.values()),
              0.25 * mpe::stats::mean(pi.values()));
}

TEST(ConstrainedIntegration, CorrelatedBurstsRaiseMaxPower) {
  // Peak cycles under correlated flips beat independent flips at the same
  // marginal rate — the reason joint-transition specs matter for maximum
  // power (the paper's category I.2 motivation).
  const auto nl = mpe::gen::build_preset("c880", 8);
  mpe::sim::CyclePowerEvaluator e1(nl), e2(nl);
  const std::size_t w = nl.num_inputs();
  std::vector<std::size_t> one_group(w, 0);
  const vec::CorrelatedPairGenerator correlated(one_group, {0.4}, 0.75);
  const vec::TransitionProbPairGenerator independent(w, 0.3);
  vec::PowerDbOptions db;
  db.population_size = 5000;
  mpe::Rng r1(5), r2(5);
  const auto pc = vec::build_power_database(correlated, e1, db, r1);
  const auto pi = vec::build_power_database(independent, e2, db, r2);
  EXPECT_GT(pc.true_max(), pi.true_max());
}

}  // namespace
