#include "gen/ecc.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "circuit/analysis.hpp"
#include "util/rng.hpp"

namespace {

namespace ckt = mpe::circuit;
namespace gen = mpe::gen;

std::vector<std::uint8_t> encode(ckt::Netlist& enc, std::uint64_t data,
                                 std::size_t k, std::size_t n) {
  std::vector<std::uint8_t> in(k);
  for (std::size_t i = 0; i < k; ++i) {
    in[i] = static_cast<std::uint8_t>((data >> i) & 1);
  }
  const auto values = ckt::evaluate(enc, in);
  std::vector<std::uint8_t> code(n);
  for (std::size_t i = 0; i < n; ++i) {
    code[i] = values[*enc.find("c" + std::to_string(i))];
  }
  return code;
}

std::uint64_t decode(ckt::Netlist& dec, const std::vector<std::uint8_t>& code,
                     std::size_t k, std::uint64_t* syndrome = nullptr) {
  const auto values = ckt::evaluate(dec, code);
  std::uint64_t data = 0;
  for (std::size_t i = 0; i < k; ++i) {
    data |= static_cast<std::uint64_t>(
                values[*dec.find("d" + std::to_string(i))])
            << i;
  }
  if (syndrome) {
    *syndrome = 0;
    const std::size_t r = gen::hamming_parity_bits(k);
    for (std::size_t i = 0; i < r; ++i) {
      *syndrome |= static_cast<std::uint64_t>(
                       values[*dec.find("s" + std::to_string(i))])
                   << i;
    }
  }
  return data;
}

TEST(Ecc, ParityBitCounts) {
  EXPECT_EQ(gen::hamming_parity_bits(1), 2u);
  EXPECT_EQ(gen::hamming_parity_bits(4), 3u);
  EXPECT_EQ(gen::hamming_parity_bits(11), 4u);
  EXPECT_EQ(gen::hamming_parity_bits(26), 5u);
  EXPECT_EQ(gen::hamming_parity_bits(32), 6u);
}

TEST(Ecc, CleanRoundTripExhaustive4Bit) {
  auto enc = gen::hamming_encoder(4);
  auto dec = gen::hamming_decoder(4);
  const std::size_t n = 7;
  for (std::uint64_t d = 0; d < 16; ++d) {
    const auto code = encode(enc, d, 4, n);
    std::uint64_t syn = 1;
    EXPECT_EQ(decode(dec, code, 4, &syn), d);
    EXPECT_EQ(syn, 0u) << "clean codeword must have zero syndrome";
  }
}

TEST(Ecc, CorrectsEverySingleBitErrorExhaustive4Bit) {
  auto enc = gen::hamming_encoder(4);
  auto dec = gen::hamming_decoder(4);
  const std::size_t n = 7;
  for (std::uint64_t d = 0; d < 16; ++d) {
    const auto clean = encode(enc, d, 4, n);
    for (std::size_t flip = 0; flip < n; ++flip) {
      auto corrupted = clean;
      corrupted[flip] ^= 1;
      std::uint64_t syn = 0;
      EXPECT_EQ(decode(dec, corrupted, 4, &syn), d)
          << "data=" << d << " flip=" << flip;
      EXPECT_EQ(syn, flip + 1) << "syndrome must name the flipped position";
    }
  }
}

TEST(Ecc, CorrectsSingleBitErrorsRandom11Bit) {
  auto enc = gen::hamming_encoder(11);
  auto dec = gen::hamming_decoder(11);
  const std::size_t n = 15;
  mpe::Rng rng(5);
  for (int t = 0; t < 100; ++t) {
    const std::uint64_t d = rng.below(1ull << 11);
    auto code = encode(enc, d, 11, n);
    code[rng.below(n)] ^= 1;
    EXPECT_EQ(decode(dec, code, 11), d);
  }
}

TEST(Ecc, ThirtyTwoBitLikeC1355Scale) {
  // The C1355/C499 class: 32 data bits. Verify structure and a few
  // correction cases.
  auto enc = gen::hamming_encoder(32, "enc32");
  auto dec = gen::hamming_decoder(32, "dec32");
  const std::size_t n = 38;
  EXPECT_EQ(enc.num_outputs(), n);
  EXPECT_GT(dec.num_gates(), 100u);  // substantial XOR cones
  mpe::Rng rng(6);
  for (int t = 0; t < 25; ++t) {
    const std::uint64_t d = rng.below(1ull << 32);
    auto code = encode(enc, d, 32, n);
    code[rng.below(n)] ^= 1;
    EXPECT_EQ(decode(dec, code, 32), d);
  }
}

TEST(Ecc, SecdedDistinguishesSingleFromDouble) {
  auto enc = gen::hamming_encoder(8);
  auto chk = gen::secded_checker(8);
  const std::size_t n = 12;
  mpe::Rng rng(7);
  for (int t = 0; t < 50; ++t) {
    const std::uint64_t d = rng.below(256);
    const auto code = encode(enc, d, 8, n);
    // Overall parity bit completing even parity.
    std::uint8_t parity = 0;
    for (auto bit : code) parity ^= bit;

    auto run = [&](std::vector<std::uint8_t> cw, std::uint8_t p) {
      cw.push_back(p);
      const auto values = ckt::evaluate(chk, cw);
      return std::make_pair(values[*chk.find("ce")],
                            values[*chk.find("ue")]);
    };

    // Clean: no error flags.
    auto [ce0, ue0] = run(code, parity);
    EXPECT_EQ(ce0, 0);
    EXPECT_EQ(ue0, 0);

    // Single flip: correctable, not uncorrectable.
    auto single = code;
    single[rng.below(n)] ^= 1;
    auto [ce1, ue1] = run(single, parity);
    EXPECT_EQ(ce1, 1);
    EXPECT_EQ(ue1, 0);

    // Double flip: uncorrectable.
    auto dbl = code;
    const auto f1 = rng.below(n);
    std::size_t f2;
    do {
      f2 = rng.below(n);
    } while (f2 == f1);
    dbl[f1] ^= 1;
    dbl[f2] ^= 1;
    auto [ce2, ue2] = run(dbl, parity);
    EXPECT_EQ(ce2, 0);
    EXPECT_EQ(ue2, 1);
  }
}

TEST(Ecc, EncoderIsXorDominated) {
  const auto enc = gen::hamming_encoder(16);
  const auto st = enc.stats();
  const auto xors =
      st.gates_by_type[static_cast<std::size_t>(ckt::GateType::kXor)];
  EXPECT_GT(xors, st.num_gates / 3);
}

}  // namespace
