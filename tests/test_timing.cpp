#include "sim/timing.hpp"

#include <gtest/gtest.h>

#include "gen/arithmetic.hpp"
#include "gen/datapath.hpp"
#include "gen/trees.hpp"
#include "sim/event_sim.hpp"
#include "util/rng.hpp"

namespace {

namespace ckt = mpe::circuit;
namespace sim = mpe::sim;

ckt::Netlist chain(int k) {
  ckt::Netlist nl("chain");
  nl.add_input("a");
  std::string prev = "a";
  for (int i = 0; i < k; ++i) {
    const std::string cur = "n" + std::to_string(i);
    nl.add_gate(ckt::GateType::kNot, cur, {prev});
    prev = cur;
  }
  nl.mark_output(prev);
  nl.finalize();
  return nl;
}

TEST(Timing, ChainUnitDelay) {
  const auto nl = chain(5);
  sim::Technology tech;
  const auto t = sim::analyze_timing(nl, tech, sim::DelayModel::kUnit);
  EXPECT_NEAR(t.critical_delay, 5.0 * tech.unit_delay_ns, 1e-12);
  // Critical path: input + 5 gate outputs.
  EXPECT_EQ(t.critical_path.size(), 6u);
  EXPECT_TRUE(nl.is_input(t.critical_path.front()));
  // Every chain node has zero slack.
  for (auto n : t.critical_path) {
    EXPECT_NEAR(t.slack[n], 0.0, 1e-12);
  }
}

TEST(Timing, ArrivalMonotoneAlongPath) {
  auto nl = mpe::gen::ripple_carry_adder(8);
  const auto t = sim::analyze_timing(nl);
  for (std::size_t i = 1; i < t.critical_path.size(); ++i) {
    EXPECT_GE(t.arrival[t.critical_path[i]],
              t.arrival[t.critical_path[i - 1]]);
  }
  EXPECT_GT(t.critical_delay, 0.0);
}

TEST(Timing, SlackNonNegativeEverywhere) {
  auto nl = mpe::gen::array_multiplier(6);
  const auto t = sim::analyze_timing(nl);
  for (double s : t.slack) {
    EXPECT_GE(s, -1e-9);
  }
}

TEST(Timing, AdderCarryChainIsCritical) {
  auto nl = mpe::gen::ripple_carry_adder(16);
  const auto t = sim::analyze_timing(nl, sim::Technology{},
                                     sim::DelayModel::kUnit);
  // The critical delay grows with width (carry ripple), and the deepest
  // node is near the top of the chain.
  auto nl4 = mpe::gen::ripple_carry_adder(4);
  const auto t4 = sim::analyze_timing(nl4, sim::Technology{},
                                      sim::DelayModel::kUnit);
  EXPECT_GT(t.critical_delay, 2.0 * t4.critical_delay);
}

TEST(Timing, BoundsEventSimulatorSettleTime) {
  // The topological delay is an upper bound on any simulated settle time.
  auto nl = mpe::gen::array_multiplier(6);
  const auto t = sim::analyze_timing(nl);
  sim::EventSimOptions opt;  // fanout-loaded inertial, same tech
  sim::EventSimulator ev(nl, opt);
  mpe::Rng rng(5);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<std::uint8_t> v1(nl.num_inputs()), v2(nl.num_inputs());
    for (auto& b : v1) b = rng.bernoulli(0.5);
    for (auto& b : v2) b = rng.bernoulli(0.5);
    const auto r = ev.evaluate(v1, v2);
    EXPECT_LE(r.settle_time_ns, t.critical_delay + 1e-9);
  }
}

TEST(Timing, FasterArchitectureHasSmallerCriticalDelay) {
  // Carry-lookahead beats ripple-carry on the same function.
  auto ripple = mpe::gen::ripple_carry_adder(16, "r16");
  auto cla = mpe::gen::carry_lookahead_adder(16, "c16");
  const auto tr = sim::analyze_timing(ripple, sim::Technology{},
                                      sim::DelayModel::kUnit);
  const auto tc = sim::analyze_timing(cla, sim::Technology{},
                                      sim::DelayModel::kUnit);
  EXPECT_LT(tc.critical_delay, tr.critical_delay);
}

}  // namespace
