#include "util/status.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/contracts.hpp"

namespace {

using mpe::classify_exception;
using mpe::Diagnostic;
using mpe::Error;
using mpe::ErrorCode;
using mpe::ErrorContext;
using mpe::exit_code;
using mpe::Severity;

TEST(Status, ErrorCodeNamesAreStable) {
  EXPECT_EQ(mpe::to_string(ErrorCode::kOk), "ok");
  EXPECT_EQ(mpe::to_string(ErrorCode::kNonConvergence), "non-convergence");
  EXPECT_EQ(mpe::to_string(ErrorCode::kUsage), "usage");
  EXPECT_EQ(mpe::to_string(ErrorCode::kParse), "parse");
  EXPECT_EQ(mpe::to_string(ErrorCode::kIo), "io");
  EXPECT_EQ(mpe::to_string(ErrorCode::kBadData), "bad-data");
  EXPECT_EQ(mpe::to_string(ErrorCode::kPrecondition), "precondition");
  EXPECT_EQ(mpe::to_string(ErrorCode::kDeadline), "deadline");
  EXPECT_EQ(mpe::to_string(ErrorCode::kCancelled), "cancelled");
  EXPECT_EQ(mpe::to_string(ErrorCode::kFaultInjected), "fault-injected");
  EXPECT_EQ(mpe::to_string(ErrorCode::kInternal), "internal");
}

TEST(Status, ExitCodesAreStable) {
  EXPECT_EQ(exit_code(ErrorCode::kOk), 0);
  EXPECT_EQ(exit_code(ErrorCode::kNonConvergence), 1);
  EXPECT_EQ(exit_code(ErrorCode::kUsage), 2);
  EXPECT_EQ(exit_code(ErrorCode::kParse), 3);
  EXPECT_EQ(exit_code(ErrorCode::kIo), 4);
  EXPECT_EQ(exit_code(ErrorCode::kBadData), 5);
  EXPECT_EQ(exit_code(ErrorCode::kPrecondition), 6);
  EXPECT_EQ(exit_code(ErrorCode::kDeadline), 7);
  EXPECT_EQ(exit_code(ErrorCode::kCancelled), 8);
  EXPECT_EQ(exit_code(ErrorCode::kFaultInjected), 9);
  EXPECT_EQ(exit_code(ErrorCode::kInternal), 10);
}

TEST(Status, ErrorContextBuildsKeyValuePairs) {
  const std::string ctx = ErrorContext{}
                              .kv("file", "a.bench")
                              .kv("line", 12)
                              .kv("count", std::uint64_t{7})
                              .str();
  EXPECT_EQ(ctx, "file=a.bench line=12 count=7");
}

TEST(Status, ErrorContextQuotesValuesWithSpaces) {
  const std::string ctx = ErrorContext{}.kv("reason", "no such file").str();
  EXPECT_EQ(ctx, "reason=\"no such file\"");
}

TEST(Status, ErrorContextFormatsDoubles) {
  const std::string ctx = ErrorContext{}.kv("alpha", 1.5).str();
  EXPECT_EQ(ctx, "alpha=1.5");
}

TEST(Status, ErrorCarriesCodeMessageContext) {
  const Error e(ErrorCode::kParse, "bad magic",
                ErrorContext{}.kv("path", "pop.bin"));
  EXPECT_EQ(e.code(), ErrorCode::kParse);
  EXPECT_EQ(e.message(), "bad magic");
  EXPECT_EQ(e.context(), "path=pop.bin");
  // what() is the formatted diagnostic: generic handlers see everything.
  const std::string what = e.what();
  EXPECT_NE(what.find("parse"), std::string::npos) << what;
  EXPECT_NE(what.find("bad magic"), std::string::npos) << what;
  EXPECT_NE(what.find("path=pop.bin"), std::string::npos) << what;
}

TEST(Status, ErrorIsARuntimeError) {
  EXPECT_THROW(throw Error(ErrorCode::kIo, "boom"), std::runtime_error);
}

TEST(Status, FormatRendersSeverityCodeMessageContext) {
  Diagnostic d;
  d.code = ErrorCode::kDeadline;
  d.severity = Severity::kWarning;
  d.message = "deadline exceeded";
  d.context = "hyper_samples=3";
  const std::string out = format(d);
  EXPECT_EQ(out, "warning [deadline] deadline exceeded (hyper_samples=3)");
}

TEST(Status, FormatOmitsEmptyContext) {
  Diagnostic d;
  d.code = ErrorCode::kIo;
  d.severity = Severity::kError;
  d.message = "cannot open";
  EXPECT_EQ(format(d), "error [io] cannot open");
}

TEST(Status, ClassifyKeepsTypedErrorCode) {
  const Error e(ErrorCode::kBadData, "nan in payload");
  const Diagnostic d = classify_exception(e);
  EXPECT_EQ(d.code, ErrorCode::kBadData);
  EXPECT_EQ(d.message, "nan in payload");
}

TEST(Status, ClassifyMapsContractViolationToPrecondition) {
  const mpe::ContractViolation v("Precondition failed: (epsilon > 0)");
  const Diagnostic d = classify_exception(v);
  EXPECT_EQ(d.code, ErrorCode::kPrecondition);
}

TEST(Status, ClassifyMapsInvalidArgumentToUsage) {
  const std::invalid_argument e("stoi");
  const Diagnostic d = classify_exception(e);
  EXPECT_EQ(d.code, ErrorCode::kUsage);
}

TEST(Status, ClassifyMapsUnknownExceptionsToInternal) {
  const std::runtime_error e("mystery");
  const Diagnostic d = classify_exception(e);
  EXPECT_EQ(d.code, ErrorCode::kInternal);
  EXPECT_EQ(d.message, "mystery");
}

}  // namespace
