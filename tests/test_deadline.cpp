#include "util/deadline.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "util/thread_pool.hpp"

namespace {

using namespace std::chrono_literals;
using mpe::util::CancellationToken;
using mpe::util::Deadline;
using mpe::util::RunControl;
using mpe::util::StopCause;

TEST(CancellationTokenTest, DefaultConstructedIsInert) {
  const CancellationToken token;
  EXPECT_FALSE(token.cancellable());
  EXPECT_FALSE(token.stop_requested());
  token.request_stop();  // no-op, must not crash
  EXPECT_FALSE(token.stop_requested());
}

TEST(CancellationTokenTest, CreateMakesLiveToken) {
  const CancellationToken token = CancellationToken::create();
  EXPECT_TRUE(token.cancellable());
  EXPECT_FALSE(token.stop_requested());
  token.request_stop();
  EXPECT_TRUE(token.stop_requested());
}

TEST(CancellationTokenTest, CopiesShareOneFlag) {
  const CancellationToken a = CancellationToken::create();
  const CancellationToken b = a;
  EXPECT_FALSE(b.stop_requested());
  a.request_stop();
  EXPECT_TRUE(b.stop_requested());
}

TEST(CancellationTokenTest, RequestStopIsIdempotent) {
  const CancellationToken token = CancellationToken::create();
  token.request_stop();
  token.request_stop();
  EXPECT_TRUE(token.stop_requested());
}

TEST(DeadlineTest, DefaultConstructedIsUnlimited) {
  const Deadline d;
  EXPECT_TRUE(d.unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining(), 1h);
}

TEST(DeadlineTest, AfterExpiresOnceBudgetElapses) {
  // A zero budget is already elapsed at the first check (expired() uses >=
  // against a monotonic clock), so no wall-clock sleep is needed.
  const Deadline d = Deadline::after(0ns);
  EXPECT_FALSE(d.unlimited());
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining(), 0ns);
}

TEST(DeadlineTest, GenerousBudgetNotExpiredImmediately) {
  const Deadline d = Deadline::after(1h);
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining(), 0ns);
}

TEST(DeadlineTest, AtExpiresAtGivenInstant) {
  const Deadline d = Deadline::at(std::chrono::steady_clock::now() - 1s);
  EXPECT_FALSE(d.unlimited());
  EXPECT_TRUE(d.expired());
}

TEST(RunControlTest, DefaultIsInactiveAndNeverStops) {
  const RunControl control;
  EXPECT_FALSE(control.active());
  EXPECT_EQ(control.should_stop(), StopCause::kNone);
}

TEST(RunControlTest, CancellationWinsOverDeadline) {
  RunControl control;
  control.cancel = CancellationToken::create();
  control.deadline = Deadline::at(std::chrono::steady_clock::now() - 1ms);
  control.cancel.request_stop();
  // Both brakes fired; cancellation is reported first.
  EXPECT_EQ(control.should_stop(), StopCause::kCancelled);
}

TEST(RunControlTest, DeadlineReportedWhenOnlyClockFires) {
  RunControl control;
  control.deadline = Deadline::at(std::chrono::steady_clock::now() - 1ms);
  EXPECT_TRUE(control.active());
  EXPECT_EQ(control.should_stop(), StopCause::kDeadline);
}

TEST(RunControlTest, LiveTokenAloneMakesControlActive) {
  RunControl control;
  control.cancel = CancellationToken::create();
  EXPECT_TRUE(control.active());
  EXPECT_EQ(control.should_stop(), StopCause::kNone);
}

TEST(RunControlThreadPool, PreCancelledControlRunsNoBodies) {
  mpe::util::ThreadPool pool(3);
  RunControl control;
  control.cancel = CancellationToken::create();
  control.cancel.request_stop();
  std::atomic<int> ran{0};
  pool.parallel_for(0, 1000, [&](std::size_t) { ++ran; }, &control);
  EXPECT_EQ(ran.load(), 0);
}

TEST(RunControlThreadPool, MidLoopCancellationSkipsRemainingIndices) {
  mpe::util::ThreadPool pool(3);
  RunControl control;
  control.cancel = CancellationToken::create();
  std::atomic<int> ran{0};
  pool.parallel_for(
      0, 100000,
      [&](std::size_t) {
        if (++ran == 8) control.cancel.request_stop();
      },
      &control);
  // The loop returned normally well short of the full range; in-flight
  // bodies may still have finished, so allow a small overshoot.
  EXPECT_GE(ran.load(), 8);
  EXPECT_LT(ran.load(), 100000);
  EXPECT_EQ(control.should_stop(), StopCause::kCancelled);
}

TEST(RunControlThreadPool, ExpiredDeadlineStopsSlottedLoop) {
  mpe::util::ThreadPool pool(2);
  RunControl control;
  control.deadline = Deadline::at(std::chrono::steady_clock::now() - 1ms);
  std::atomic<int> ran{0};
  pool.parallel_for_slotted(
      0, 1000, [&](unsigned, std::size_t) { ++ran; }, &control);
  EXPECT_EQ(ran.load(), 0);
}

TEST(RunControlThreadPool, NullControlVisitsEveryIndex) {
  mpe::util::ThreadPool pool(3);
  std::atomic<int> ran{0};
  pool.parallel_for(0, 500, [&](std::size_t) { ++ran; }, nullptr);
  EXPECT_EQ(ran.load(), 500);
}

TEST(RunControlThreadPool, InertControlVisitsEveryIndex) {
  mpe::util::ThreadPool pool(3);
  const RunControl control;  // inert: dropped up front, zero polling cost
  std::atomic<int> ran{0};
  pool.parallel_for(0, 500, [&](std::size_t) { ++ran; }, &control);
  EXPECT_EQ(ran.load(), 500);
}

}  // namespace
