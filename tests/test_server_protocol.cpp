// server/server_protocol: encode/decode round-trips (including bit-exact
// doubles in result payloads) and the hostile-input contract — truncated
// frames, bit-flipped bytes, oversized fields, unknown verbs, and
// out-of-range values must all land in a structured mpe::Error (kParse or
// kBadData), never a crash, hang, or silent misparse. The ASan/UBSan CI
// legs run this suite to back the "never crash" half of that promise.
#include "server/server_protocol.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "maxpower/campaign.hpp"
#include "util/status.hpp"

namespace {

namespace ms = mpe::server;
namespace mp = mpe::maxpower;
using mpe::Error;
using mpe::ErrorCode;

mp::CampaignJobOutcome done_outcome() {
  mp::CampaignJobOutcome outcome;
  outcome.name = "j1";
  outcome.status = mp::JobStatus::kDone;
  outcome.attempts = 1;
  outcome.result.estimate = 0.1234567890123456789;
  outcome.result.ci.lower = 0.1111111111111111;
  outcome.result.ci.upper = 0.1333333333333333;
  outcome.result.hyper_samples = 17;
  outcome.result.units_used = 5100;
  outcome.result.converged = true;
  return outcome;
}

TEST(ServerProtocol, HelloRoundTrip) {
  const auto msg = ms::decode_server_message(ms::encode_hello("client-a"));
  EXPECT_EQ(msg.kind, ms::ServerMessageKind::kHello);
  EXPECT_EQ(msg.client, "client-a");
  EXPECT_EQ(msg.proto, ms::kServerProtocolVersion);
}

TEST(ServerProtocol, SubmitRoundTripKeepsSpecAndDeadline) {
  const std::string spec = R"({"job":"j1","circuit":"c432","seed":3})";
  const auto msg =
      ms::decode_server_message(ms::encode_submit("j1", spec, 2500));
  EXPECT_EQ(msg.kind, ms::ServerMessageKind::kSubmit);
  EXPECT_EQ(msg.id, "j1");
  EXPECT_EQ(msg.spec, spec);
  EXPECT_EQ(msg.deadline_ms, 2500u);
}

TEST(ServerProtocol, ControlVerbsRoundTrip) {
  EXPECT_EQ(ms::decode_server_message(ms::encode_cancel("j9")).kind,
            ms::ServerMessageKind::kCancel);
  EXPECT_EQ(ms::decode_server_message(ms::encode_cancel("j9")).id, "j9");
  EXPECT_EQ(ms::decode_server_message(ms::encode_scrape()).kind,
            ms::ServerMessageKind::kScrape);
  EXPECT_EQ(ms::decode_server_message(ms::encode_stats()).kind,
            ms::ServerMessageKind::kStats);
  EXPECT_EQ(ms::decode_server_message(ms::encode_welcome()).kind,
            ms::ServerMessageKind::kWelcome);
  EXPECT_EQ(ms::decode_server_message(ms::encode_drain()).kind,
            ms::ServerMessageKind::kDrain);
}

TEST(ServerProtocol, AcceptedRejectedAckRoundTrip) {
  EXPECT_EQ(ms::decode_server_message(ms::encode_accepted("a")).id, "a");
  const auto rejected = ms::decode_server_message(ms::encode_rejected(
      "b", ErrorCode::kResourceExhausted, "queue full"));
  EXPECT_EQ(rejected.kind, ms::ServerMessageKind::kRejected);
  EXPECT_EQ(rejected.id, "b");
  EXPECT_EQ(rejected.code, ErrorCode::kResourceExhausted);
  EXPECT_EQ(rejected.detail, "queue full");
  EXPECT_EQ(ms::decode_server_message(ms::encode_ack("c")).kind,
            ms::ServerMessageKind::kAck);
}

TEST(ServerProtocol, EventRoundTrip) {
  const auto msg = ms::decode_server_message(
      ms::encode_event("j1", 42, "hyper_sample", R"("k":7)"));
  EXPECT_EQ(msg.kind, ms::ServerMessageKind::kEvent);
  EXPECT_EQ(msg.id, "j1");
  EXPECT_EQ(msg.seq, 42u);
  EXPECT_EQ(msg.name, "hyper_sample");
  EXPECT_EQ(msg.fields, R"("k":7)");
}

TEST(ServerProtocol, ResultDoneRoundTripIsBitExact) {
  const auto outcome = done_outcome();
  const auto msg = ms::decode_server_message(
      ms::encode_result("j1", outcome, "line1\\nline2"));
  EXPECT_EQ(msg.kind, ms::ServerMessageKind::kResult);
  EXPECT_EQ(msg.status, mp::JobStatus::kDone);
  // Doubles must survive the wire exactly: byte-identity of server results
  // against batch runs stands on this.
  EXPECT_EQ(msg.estimate, outcome.result.estimate);
  EXPECT_EQ(msg.ci_lower, outcome.result.ci.lower);
  EXPECT_EQ(msg.ci_upper, outcome.result.ci.upper);
  EXPECT_EQ(msg.hyper_samples, 17u);
  EXPECT_EQ(msg.units, 5100u);
  EXPECT_TRUE(msg.converged);
}

TEST(ServerProtocol, ResultStoppedCarriesErrorCode) {
  mp::CampaignJobOutcome outcome;
  outcome.name = "j2";
  outcome.status = mp::JobStatus::kStopped;
  outcome.error = ErrorCode::kDeadline;
  const auto msg =
      ms::decode_server_message(ms::encode_result("j2", outcome, ""));
  EXPECT_EQ(msg.status, mp::JobStatus::kStopped);
  EXPECT_EQ(msg.code, ErrorCode::kDeadline);
}

TEST(ServerProtocol, MetricsRoundTrip) {
  const auto msg = ms::decode_server_message(
      ms::encode_metrics("mpe_server_cache_hits_total 3\n"));
  EXPECT_EQ(msg.kind, ms::ServerMessageKind::kMetrics);
  EXPECT_EQ(msg.text, "mpe_server_cache_hits_total 3\n");
}

TEST(ServerProtocol, ServerStatsRoundTrip) {
  ms::ServerStats stats;
  stats.submits = 10;
  stats.accepted = 8;
  stats.rejected = 2;
  stats.done = 5;
  stats.failed = 1;
  stats.stopped = 2;
  stats.queued = 1;
  stats.running = 2;
  stats.clients = 3;
  stats.cache_hits = 7;
  stats.cache_misses = 4;
  stats.cache_evictions = 1;
  stats.cache_size = 3;
  stats.cache_capacity = 16;
  stats.draining = true;
  const auto msg =
      ms::decode_server_message(ms::encode_server_stats(stats));
  EXPECT_EQ(msg.kind, ms::ServerMessageKind::kServerStats);
  EXPECT_EQ(msg.stats.submits, 10u);
  EXPECT_EQ(msg.stats.accepted, 8u);
  EXPECT_EQ(msg.stats.rejected, 2u);
  EXPECT_EQ(msg.stats.done, 5u);
  EXPECT_EQ(msg.stats.failed, 1u);
  EXPECT_EQ(msg.stats.stopped, 2u);
  EXPECT_EQ(msg.stats.queued, 1u);
  EXPECT_EQ(msg.stats.running, 2u);
  EXPECT_EQ(msg.stats.clients, 3u);
  EXPECT_EQ(msg.stats.cache_hits, 7u);
  EXPECT_EQ(msg.stats.cache_misses, 4u);
  EXPECT_EQ(msg.stats.cache_evictions, 1u);
  EXPECT_EQ(msg.stats.cache_size, 3u);
  EXPECT_EQ(msg.stats.cache_capacity, 16u);
  EXPECT_TRUE(msg.stats.draining);
}

TEST(ServerProtocol, ErrorRoundTrip) {
  const auto msg =
      ms::decode_server_message(ms::encode_error("bad frame"));
  EXPECT_EQ(msg.kind, ms::ServerMessageKind::kError);
  EXPECT_EQ(msg.detail, "bad frame");
}

// ---- hostile input ---------------------------------------------------------

TEST(ServerProtocolFuzz, UnknownVerbIsBadData) {
  try {
    ms::decode_server_message(
        R"({"schema":"mpe.server","v":1,"type":"reboot"})");
    FAIL() << "unknown verb decoded";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadData);
  }
}

TEST(ServerProtocolFuzz, WrongSchemaOrVersionIsRejected) {
  EXPECT_THROW(ms::decode_server_message(
                   R"({"schema":"mpe.dist","v":1,"type":"hello"})"),
               Error);
  EXPECT_THROW(ms::decode_server_message(
                   R"({"schema":"mpe.server","v":99,"type":"hello"})"),
               Error);
}

TEST(ServerProtocolFuzz, MissingAndMistypedFieldsThrow) {
  // submit without an id, with a numeric id, with a non-string spec.
  EXPECT_THROW(ms::decode_server_message(
                   R"({"schema":"mpe.server","v":1,"type":"submit"})"),
               Error);
  EXPECT_THROW(
      ms::decode_server_message(
          R"({"schema":"mpe.server","v":1,"type":"submit","id":7,"spec":"{}"})"),
      Error);
  EXPECT_THROW(
      ms::decode_server_message(
          R"({"schema":"mpe.server","v":1,"type":"submit","id":"a","spec":4})"),
      Error);
}

TEST(ServerProtocolFuzz, OversizedFieldsAreRejectedNotBuffered) {
  const std::string big_id(ms::kMaxIdBytes + 1, 'x');
  EXPECT_THROW(ms::decode_server_message(ms::encode_cancel(big_id)), Error);
  const std::string big_spec =
      "{\"pad\":\"" + std::string(ms::kMaxSpecBytes + 1, 'y') + "\"}";
  EXPECT_THROW(ms::decode_server_message(ms::encode_submit("a", big_spec)),
               Error);
}

TEST(ServerProtocolFuzz, OutOfRangeValuesAreRejected) {
  // A deadline past the one-day cap, and negative numbers where unsigned
  // fields are expected.
  EXPECT_THROW(ms::decode_server_message(ms::encode_submit(
                   "a", "{}", ms::kMaxDeadlineMs + 1)),
               Error);
  EXPECT_THROW(
      ms::decode_server_message(
          R"({"schema":"mpe.server","v":1,"type":"event","id":"a","seq":-3,"name":"n"})"),
      Error);
  EXPECT_THROW(
      ms::decode_server_message(
          R"({"schema":"mpe.server","v":1,"type":"hello","client":"c","proto":-1})"),
      Error);
}

TEST(ServerProtocolFuzz, TruncatedFramesNeverCrash) {
  const std::vector<std::string> lines = {
      ms::encode_hello("client"),
      ms::encode_submit("j1", R"({"job":"j1","circuit":"c432"})", 100),
      ms::encode_result("j1", done_outcome(), "report body"),
      ms::encode_server_stats(ms::ServerStats{}),
  };
  for (const auto& line : lines) {
    for (std::size_t cut = 0; cut < line.size(); ++cut) {
      try {
        (void)ms::decode_server_message(line.substr(0, cut));
      } catch (const Error& e) {
        EXPECT_TRUE(e.code() == ErrorCode::kParse ||
                    e.code() == ErrorCode::kBadData)
            << "cut=" << cut << " code=" << to_string(e.code());
      }
    }
  }
}

TEST(ServerProtocolFuzz, BitFlippedBytesNeverCrash) {
  const std::vector<std::string> lines = {
      ms::encode_submit("j1", R"({"job":"j1","seed":3})", 100),
      ms::encode_result("j1", done_outcome(), ""),
      ms::encode_event("j1", 7, "hyper_sample", R"("k":1)"),
  };
  for (const auto& line : lines) {
    for (std::size_t i = 0; i < line.size(); ++i) {
      for (const unsigned mask : {0x01u, 0x20u, 0x80u}) {
        std::string mutated = line;
        mutated[i] = static_cast<char>(
            static_cast<unsigned char>(mutated[i]) ^ mask);
        try {
          // Either a clean decode of a still-valid mutation or a structured
          // error; anything else (crash, unexpected exception type) fails.
          (void)ms::decode_server_message(mutated);
        } catch (const Error&) {
        }
      }
    }
  }
}

TEST(ServerProtocolFuzz, RandomGarbageNeverCrash) {
  // Deterministic xorshift so a failure reproduces byte for byte.
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  const auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int round = 0; round < 200; ++round) {
    std::string line;
    const std::size_t len = next() % 300;
    line.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      line.push_back(static_cast<char>(next() % 256));
    }
    try {
      (void)ms::decode_server_message(line);
    } catch (const Error&) {
    }
  }
}

}  // namespace
