#include "util/math.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/contracts.hpp"

namespace {

namespace math = mpe::math;

TEST(LogBeta, MatchesKnownValues) {
  // B(1,1) = 1, B(2,3) = 1/12, B(0.5,0.5) = pi.
  EXPECT_NEAR(math::log_beta(1, 1), 0.0, 1e-12);
  EXPECT_NEAR(math::log_beta(2, 3), std::log(1.0 / 12.0), 1e-12);
  EXPECT_NEAR(math::log_beta(0.5, 0.5), std::log(M_PI), 1e-12);
}

TEST(IncompleteBeta, EndpointsAndSymmetry) {
  EXPECT_DOUBLE_EQ(math::incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(math::incomplete_beta(2.0, 3.0, 1.0), 1.0);
  // I_x(a,b) = 1 - I_{1-x}(b,a).
  for (double x : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    EXPECT_NEAR(math::incomplete_beta(2.5, 1.5, x),
                1.0 - math::incomplete_beta(1.5, 2.5, 1.0 - x), 1e-12);
  }
}

TEST(IncompleteBeta, UniformSpecialCase) {
  // I_x(1,1) = x.
  for (double x : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    EXPECT_NEAR(math::incomplete_beta(1.0, 1.0, x), x, 1e-12);
  }
}

TEST(IncompleteBeta, HalfIntegerCase) {
  // I_x(0.5, 0.5) = (2/pi) asin(sqrt(x)).
  for (double x : {0.1, 0.4, 0.8}) {
    EXPECT_NEAR(math::incomplete_beta(0.5, 0.5, x),
                2.0 / M_PI * std::asin(std::sqrt(x)), 1e-10);
  }
}

TEST(IncompleteGamma, KnownValues) {
  // P(1, x) = 1 - exp(-x).
  for (double x : {0.1, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(math::incomplete_gamma_lower(1.0, x), 1.0 - std::exp(-x),
                1e-12);
  }
  EXPECT_DOUBLE_EQ(math::incomplete_gamma_lower(2.5, 0.0), 0.0);
  EXPECT_NEAR(math::incomplete_gamma_upper(1.0, 2.0), std::exp(-2.0), 1e-12);
}

TEST(IncompleteGamma, ChiSquareMedianSanity) {
  // P(k/2, k/2) is close to 0.5 for moderate k (chi-square median ~ k).
  EXPECT_NEAR(math::incomplete_gamma_lower(5.0, 5.0 - 1.0 / 3.0), 0.5, 0.02);
}

TEST(ErfInv, RoundTrip) {
  for (double y : {-0.999, -0.9, -0.5, -0.1, 0.0, 0.1, 0.5, 0.9, 0.999}) {
    EXPECT_NEAR(std::erf(math::erf_inv(y)), y, 1e-12) << "y=" << y;
  }
}

TEST(ErfInv, ExtremeTails) {
  for (double y : {-1.0 + 1e-12, 1.0 - 1e-12}) {
    const double x = math::erf_inv(y);
    EXPECT_TRUE(std::isfinite(x));
    EXPECT_NEAR(std::erf(x), y, 1e-13);
  }
}

TEST(ErfcInv, MatchesErfInv) {
  for (double y : {0.01, 0.5, 1.0, 1.5, 1.99}) {
    EXPECT_NEAR(math::erfc_inv(y), math::erf_inv(1.0 - y), 1e-14);
  }
}

TEST(BrentRoot, FindsPolynomialRoot) {
  const auto r = math::brent_root([](double x) { return x * x * x - 2.0; },
                                  0.0, 2.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, std::cbrt(2.0), 1e-10);
}

TEST(BrentRoot, AcceptsRootAtEndpoint) {
  const auto r = math::brent_root([](double x) { return x; }, 0.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.x, 0.0);
}

TEST(BrentRoot, RequiresSignChange) {
  EXPECT_THROW(math::brent_root([](double x) { return x * x + 1.0; },
                                -1.0, 1.0),
               mpe::ContractViolation);
}

TEST(BrentRoot, TranscendentalRoot) {
  const auto r = math::brent_root(
      [](double x) { return std::cos(x) - x; }, 0.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 0.7390851332151607, 1e-10);
}

TEST(BisectRoot, AgreesWithBrent) {
  auto f = [](double x) { return std::exp(x) - 3.0; };
  const auto rb = math::brent_root(f, 0.0, 2.0);
  const auto ri = math::bisect_root(f, 0.0, 2.0, 1e-12);
  EXPECT_NEAR(rb.x, ri.x, 1e-9);
  EXPECT_NEAR(ri.x, std::log(3.0), 1e-9);
}

TEST(GoldenMinimize, FindsParabolaMinimum) {
  const auto r = math::golden_minimize(
      [](double x) { return (x - 1.7) * (x - 1.7) + 3.0; }, -10.0, 10.0);
  EXPECT_NEAR(r.x, 1.7, 1e-6);
  EXPECT_NEAR(r.f, 3.0, 1e-10);
}

TEST(GoldenMinimize, AsymmetricFunction) {
  const auto r = math::golden_minimize(
      [](double x) { return std::exp(x) - 2.0 * x; }, -5.0, 5.0);
  EXPECT_NEAR(r.x, std::log(2.0), 1e-6);
}

TEST(BracketMinimum, ExpandsToFindInteriorMin) {
  double lo = 5.0, mid = 6.0, hi = 7.0;  // min at 0 is left of the bracket
  const bool ok = math::bracket_minimum(
      [](double x) { return x * x; }, lo, mid, hi);
  EXPECT_TRUE(ok);
  EXPECT_LE(lo, 0.0);
  EXPECT_GE(hi, 0.0);
}

TEST(CentralDiff, ApproximatesDerivative) {
  const double d = math::central_diff([](double x) { return std::sin(x); },
                                      0.5);
  EXPECT_NEAR(d, std::cos(0.5), 1e-8);
}

TEST(Log1mExp, BothBranchesAccurate) {
  for (double x : {-1e-8, -0.1, -0.5, -0.6931, -1.0, -10.0, -40.0}) {
    // Reference via expm1 (the naive log(1 - exp(x)) loses precision for
    // x near zero, which is exactly what log1mexp protects against).
    const double expected = std::log(-std::expm1(x));
    EXPECT_NEAR(math::log1mexp(x), expected,
                1e-12 * (1.0 + std::fabs(expected)))
        << "x=" << x;
  }
  EXPECT_THROW(math::log1mexp(0.0), mpe::ContractViolation);
}

}  // namespace
