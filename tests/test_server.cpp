// server/: the shared CircuitCache (content keying, LRU bounds, lazy
// compiled tape, eviction safety) and the live Server daemon end to end —
// a real listener, real clients, real executor threads. The load-bearing
// claims: a server-run job returns byte-identical numbers to the same job
// run directly; concurrent clients each get exactly one reply per request
// (and repeated circuits hit the cache); a full queue answers structured
// backpressure; a garbage line gets an `error` reply without killing the
// connection; tripping the run control drains gracefully. The concurrency
// soak doubles as the TSan target for the server stack.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dist/transport.hpp"
#include "dist/worker.hpp"
#include "maxpower/campaign.hpp"
#include "server/circuit_cache.hpp"
#include "server/server.hpp"
#include "server/server_protocol.hpp"
#include "sim/technology.hpp"
#include "util/rng.hpp"

namespace {

namespace mp = mpe::maxpower;
namespace md = mpe::dist;
namespace ms = mpe::server;
using namespace std::chrono_literals;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir);
  return dir;
}

mp::CampaignJob tiny_job(const std::string& name, std::uint64_t seed) {
  mp::CampaignJob job;
  job.name = name;
  job.circuit = "c432";
  job.seed = seed;
  job.epsilon = 0.2;
  job.confidence = 0.8;
  job.max_hyper_samples = 100;
  return job;
}

/// A job that cannot converge quickly: tight epsilon, deep budget. Used to
/// hold the executor busy while backpressure/cancel paths are exercised.
mp::CampaignJob slow_job(const std::string& name) {
  mp::CampaignJob job = tiny_job(name, 11);
  job.epsilon = 0.001;
  job.confidence = 0.99;
  job.max_hyper_samples = 500;
  return job;
}

// ---------------------------------------------------------------- cache

TEST(ServerCache, PresetKeyIsNameAndSeed) {
  const auto a = ms::CircuitCache::key_for(tiny_job("x", 3));
  const auto b = ms::CircuitCache::key_for(tiny_job("y", 3));
  const auto c = ms::CircuitCache::key_for(tiny_job("x", 4));
  EXPECT_EQ(a, b);  // the job NAME is not part of the circuit identity
  EXPECT_NE(a, c);  // the generator seed is
  EXPECT_EQ(a.rfind("preset:", 0), 0u);
}

TEST(ServerCache, BenchKeyFollowsContentNotPath) {
  const std::string dir = fresh_dir("server_cache_key");
  const std::string text = "INPUT(a)\nOUTPUT(b)\nb = NOT(a)\n";
  std::ofstream(dir + "/one.bench") << text;
  std::ofstream(dir + "/two.bench") << text;
  std::ofstream(dir + "/three.bench") << text + "# trailing comment\n";

  mp::CampaignJob one;
  one.name = "one";
  one.bench = dir + "/one.bench";
  mp::CampaignJob two = one;
  two.bench = dir + "/two.bench";
  mp::CampaignJob three = one;
  three.bench = dir + "/three.bench";

  EXPECT_EQ(ms::CircuitCache::key_for(one), ms::CircuitCache::key_for(two));
  EXPECT_NE(ms::CircuitCache::key_for(one),
            ms::CircuitCache::key_for(three));
  mp::CampaignJob missing = one;
  missing.bench = dir + "/absent.bench";
  EXPECT_THROW(ms::CircuitCache::key_for(missing), mpe::Error);
}

TEST(ServerCache, LruEvictsTheColdestEntry) {
  ms::CircuitCache cache(2);
  cache.lookup(tiny_job("a", 1));  // miss
  cache.lookup(tiny_job("b", 2));  // miss
  cache.lookup(tiny_job("a", 1));  // hit; seed 1 is now most recent
  cache.lookup(tiny_job("c", 3));  // miss; evicts seed 2
  cache.lookup(tiny_job("a", 1));  // hit: survived the eviction
  cache.lookup(tiny_job("b", 2));  // miss again: it was the one evicted

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.size, 2u);
  EXPECT_EQ(stats.capacity, 2u);
}

TEST(ServerCache, HitReturnsTheSameParsedNetlist) {
  ms::CircuitCache cache(4);
  const auto first = cache.lookup(tiny_job("a", 7));
  const auto second = cache.lookup(tiny_job("b", 7));
  EXPECT_EQ(first.get(), second.get());  // shared entry, parsed once
}

TEST(ServerCache, CompiledTapeIsLazyAndShared) {
  ms::CircuitCache cache(4);
  const auto entry = cache.lookup(tiny_job("a", 5));
  EXPECT_FALSE(entry->compiled());
  const mpe::sim::Technology tech;
  const auto program = entry->program(tech);
  ASSERT_NE(program, nullptr);
  EXPECT_TRUE(entry->compiled());
  EXPECT_EQ(entry->program(tech).get(), program.get());  // compiled once
}

TEST(ServerCache, EvictionNeverInvalidatesALiveEntry) {
  ms::CircuitCache cache(1);
  const auto held = cache.lookup(tiny_job("a", 1));
  const std::size_t gates = held->netlist().num_gates();
  cache.lookup(tiny_job("b", 2));  // evicts seed 1 from the cache...
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(held->netlist().num_gates(), gates);  // ...but not from us
}

// ----------------------------------------------------------- live server

/// One protocol client talking to a live server over TCP.
class Client {
 public:
  explicit Client(std::uint16_t port)
      : channel_(md::connect_tcp("127.0.0.1", port)) {}

  bool alive() const { return channel_ != nullptr; }

  void send(const std::string& line) {
    ASSERT_TRUE(channel_->send_line(line));
  }

  /// Blocks for the next decodable reply (30 s hard cap: a stuck server
  /// should fail the test, not hang the suite).
  ms::ServerMessage recv() {
    const auto deadline = std::chrono::steady_clock::now() + 30s;
    std::string line;
    while (std::chrono::steady_clock::now() < deadline) {
      const auto status = channel_->recv_line(line, 200ms);
      if (status == md::LineChannel::RecvStatus::kLine) {
        return ms::decode_server_message(line);
      }
      if (status == md::LineChannel::RecvStatus::kClosed) break;
    }
    ADD_FAILURE() << "no reply within 30s";
    ms::ServerMessage none;
    none.kind = ms::ServerMessageKind::kError;
    none.detail = "recv timeout";
    return none;
  }

  void handshake(const std::string& name) {
    send(ms::encode_hello(name));
    const auto welcome = recv();
    ASSERT_EQ(welcome.kind, ms::ServerMessageKind::kWelcome);
  }

  void submit(const std::string& id, const mp::CampaignJob& job,
              std::uint64_t deadline_ms = 0) {
    send(ms::encode_submit(id, mp::campaign_job_to_json(job), deadline_ms));
  }

  /// Reads replies until `id` reaches a terminal state: its result, or its
  /// rejection. Streams events into events_. Returns the terminal message.
  ms::ServerMessage await_terminal(const std::string& id) {
    while (true) {
      const auto msg = recv();
      switch (msg.kind) {
        case ms::ServerMessageKind::kEvent:
          ++events_;
          continue;
        case ms::ServerMessageKind::kAccepted:
        case ms::ServerMessageKind::kAck:
        case ms::ServerMessageKind::kDrain:
          continue;
        case ms::ServerMessageKind::kResult:
        case ms::ServerMessageKind::kRejected:
          if (msg.id == id) return msg;
          continue;
        default:
          ADD_FAILURE() << "unexpected reply kind while waiting for " << id;
          return msg;
      }
    }
  }

  std::size_t events() const { return events_; }

 private:
  std::unique_ptr<md::LineChannel> channel_;
  std::size_t events_ = 0;
};

/// A live server on an ephemeral TCP port, serving on its own thread.
class LiveServer {
 public:
  explicit LiveServer(ms::ServerOptions options)
      : options_(std::move(options)) {
    options_.tcp = true;
    options_.tcp_port = 0;
    options_.poll = 5ms;
    // A default-constructed token is inert; stop() needs a live one.
    options_.control.cancel = mpe::util::CancellationToken::create();
    server_ = std::make_unique<ms::Server>(options_);
    thread_ = std::thread([this] { report_ = server_->serve(); });
  }

  ~LiveServer() { stop(); }

  std::uint16_t port() const { return server_->tcp_port(); }
  std::uint16_t worker_port() const { return server_->worker_tcp_port(); }

  const ms::ServerReport& stop() {
    options_.control.cancel.request_stop();
    if (thread_.joinable()) thread_.join();
    return report_;
  }

 private:
  ms::ServerOptions options_;
  std::unique_ptr<ms::Server> server_;
  std::thread thread_;
  ms::ServerReport report_;
};

TEST(ServerLive, JobMatchesADirectRunBitExactly) {
  ms::ServerOptions options;
  options.state_dir = fresh_dir("server_live_exact/state");
  LiveServer server{options};

  Client client(server.port());
  ASSERT_TRUE(client.alive());
  client.handshake("exact");
  client.submit("j1", tiny_job("j1", 7));
  const auto result = client.await_terminal("j1");
  ASSERT_EQ(result.kind, ms::ServerMessageKind::kResult);
  ASSERT_EQ(result.status, mp::JobStatus::kDone);
  EXPECT_FALSE(result.text.empty());  // full run report rides along
  EXPECT_GT(client.events(), 0u);     // trace events streamed live

  // The reference: the same job through the campaign runner's own path.
  mp::CampaignJob job = tiny_job("j1", 7);
  mp::JobRunOptions direct;
  direct.state_dir = fresh_dir("server_live_exact/direct");
  mpe::Rng jitter(1);
  const auto reference = mp::run_campaign_job(job, direct, jitter);
  ASSERT_EQ(reference.status, mp::JobStatus::kDone);
  EXPECT_EQ(result.estimate, reference.result.estimate);  // bit-exact
  EXPECT_EQ(result.ci_lower, reference.result.ci.lower);
  EXPECT_EQ(result.ci_upper, reference.result.ci.upper);
  EXPECT_EQ(result.hyper_samples, reference.result.hyper_samples);
  EXPECT_EQ(result.units, reference.result.units_used);
  EXPECT_EQ(result.converged, reference.result.converged);
}

TEST(ServerLive, ConcurrentClientsGetExactlyOneReplyEachAndShareTheCache) {
  ms::ServerOptions options;
  // No state_dir: the four clients reuse the same request ids, and jobs
  // must not see (or race on) each other's checkpoints.
  options.scheduler.max_active = 2;
  LiveServer server{options};
  const std::uint16_t port = server.port();

  constexpr int kClients = 4;
  constexpr int kRequests = 3;
  std::vector<std::vector<double>> estimates(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([port, c, &estimates] {
      Client client(port);
      ASSERT_TRUE(client.alive());
      client.handshake("soak-" + std::to_string(c));
      for (int r = 0; r < kRequests; ++r) {
        // Same circuit+seed everywhere: every client must see the same
        // number and the cache must serve all but the first parse.
        const std::string id = "req-" + std::to_string(r);
        client.submit(id, tiny_job(id, 7));
        const auto result = client.await_terminal(id);
        ASSERT_EQ(result.kind, ms::ServerMessageKind::kResult) << result.id;
        ASSERT_EQ(result.status, mp::JobStatus::kDone);
        estimates[static_cast<std::size_t>(c)].push_back(result.estimate);
      }
    });
  }
  for (auto& t : threads) t.join();

  // Exactly-once: every request produced exactly one result, and identical
  // requests produced identical bits.
  ASSERT_FALSE(estimates[0].empty());
  for (const auto& per_client : estimates) {
    ASSERT_EQ(per_client.size(), static_cast<std::size_t>(kRequests));
    for (const double estimate : per_client) {
      EXPECT_EQ(estimate, estimates[0][0]);
    }
  }

  Client stats_client(port);
  ASSERT_TRUE(stats_client.alive());
  stats_client.handshake("stats");
  stats_client.send(ms::encode_stats());
  const auto reply = stats_client.recv();
  ASSERT_EQ(reply.kind, ms::ServerMessageKind::kServerStats);
  EXPECT_EQ(reply.stats.done, static_cast<std::uint64_t>(kClients * kRequests));
  EXPECT_EQ(reply.stats.accepted, reply.stats.done);
  EXPECT_GT(reply.stats.cache_hits, 0u);   // one parse served twelve jobs
  EXPECT_EQ(reply.stats.cache_misses, 1u);

  const auto& report = server.stop();
  EXPECT_TRUE(report.drained);
  EXPECT_EQ(report.connections, static_cast<std::uint64_t>(kClients + 1));
}

TEST(ServerLive, FullQueueAnswersBackpressureAndCancelRecovers) {
  ms::ServerOptions options;
  options.scheduler.max_active = 1;
  options.scheduler.max_queued_per_client = 1;
  options.scheduler.max_queued_total = 1;
  LiveServer server{options};

  Client client(server.port());
  ASSERT_TRUE(client.alive());
  client.handshake("pressure");
  // A burst of three long jobs against one executor slot and a one-deep
  // queue: at least one must bounce with kResourceExhausted, and every
  // accepted one must still reach exactly one terminal reply. Terminal
  // order is timing-dependent (a cancelled queued job answers before the
  // running one finishes), so collect until all three ids are settled.
  client.submit("a", slow_job("a"));
  client.submit("b", slow_job("b"));
  client.submit("c", slow_job("c"));
  for (const char* id : {"a", "b", "c"}) client.send(ms::encode_cancel(id));

  std::map<std::string, ms::ServerMessage> terminal;
  while (terminal.size() < 3) {
    const auto msg = client.recv();
    if (msg.kind == ms::ServerMessageKind::kResult ||
        msg.kind == ms::ServerMessageKind::kRejected) {
      EXPECT_EQ(terminal.count(msg.id), 0u) << "duplicate reply for "
                                            << msg.id;
      terminal.emplace(msg.id, msg);
    } else if (msg.kind == ms::ServerMessageKind::kError) {
      FAIL() << "protocol error (or recv timeout): " << msg.detail;
    }
  }
  std::size_t rejected = 0;
  for (const auto& [id, msg] : terminal) {
    if (msg.kind == ms::ServerMessageKind::kRejected) {
      ++rejected;
      EXPECT_EQ(msg.code, mpe::ErrorCode::kResourceExhausted) << id;
    }
  }
  EXPECT_GE(rejected, 1u);
  EXPECT_TRUE(server.stop().drained);
}

TEST(ServerLive, GarbageLineGetsAnErrorAndTheConnectionSurvives) {
  ms::ServerOptions options;
  LiveServer server{options};

  Client client(server.port());
  ASSERT_TRUE(client.alive());
  client.send("this is not a protocol line");
  auto reply = client.recv();
  EXPECT_EQ(reply.kind, ms::ServerMessageKind::kError);
  client.send(R"({"type":"mpe.server","v":1,"kind":"submit"})");
  reply = client.recv();
  EXPECT_EQ(reply.kind, ms::ServerMessageKind::kError);

  // Same connection, correct protocol: business as usual.
  client.handshake("resilient");
  client.submit("ok", tiny_job("ok", 3));
  const auto result = client.await_terminal("ok");
  EXPECT_EQ(result.kind, ms::ServerMessageKind::kResult);
  EXPECT_EQ(result.status, mp::JobStatus::kDone);
}

TEST(ServerLive, ControlTripDrainsGracefullyAndNotifiesClients) {
  ms::ServerOptions options;
  LiveServer server{options};

  Client client(server.port());
  ASSERT_TRUE(client.alive());
  client.handshake("drainee");

  const auto& report = server.stop();
  EXPECT_TRUE(report.drained);
  EXPECT_EQ(report.connections, 1u);
  EXPECT_TRUE(report.stats.draining);

  const auto notice = client.recv();
  EXPECT_EQ(notice.kind, ms::ServerMessageKind::kDrain);
}

// ------------------------------------------------------ fleet execution

TEST(ServerFleet, JobsRunOnTheWorkerFleetByteIdenticalToLocal) {
  // The tentpole guarantee end to end: a server in fleet mode carves each
  // submitted job into shard leases, campaign workers compute them, and the
  // client's result line — numbers AND report text — is byte-identical to
  // the same server running jobs in-process. The local reference runs with
  // trace_capacity = 0 because fleet reports carry no tracer events.
  ms::ServerOptions local_options;
  local_options.state_dir = fresh_dir("server_fleet_ident/local");
  local_options.trace_capacity = 0;
  std::vector<ms::ServerMessage> local;
  {
    LiveServer server{local_options};
    Client client(server.port());
    ASSERT_TRUE(client.alive());
    client.handshake("local");
    client.submit("j1", tiny_job("j1", 7));
    local.push_back(client.await_terminal("j1"));
    client.submit("j2", tiny_job("j2", 9));
    local.push_back(client.await_terminal("j2"));
  }
  ASSERT_EQ(local[0].status, mp::JobStatus::kDone);
  ASSERT_EQ(local[1].status, mp::JobStatus::kDone);

  ms::ServerOptions options;
  options.state_dir = fresh_dir("server_fleet_ident/state");
  options.fleet.enabled = true;
  options.fleet.worker_tcp = true;   // port 0: kernel-assigned
  options.fleet.lease = std::chrono::milliseconds(2000);
  LiveServer server{options};
  ASSERT_NE(server.worker_port(), 0u);

  // Two campaign workers dial the worker-facing listener, each with its own
  // state directory (the cross-host posture: nothing shared but the
  // protocol).
  auto worker_main = [&](const std::string& id) {
    md::WorkerConfig worker;
    worker.tcp_port = server.worker_port();
    worker.worker_id = id;
    worker.state_dir = fresh_dir("server_fleet_ident/" + id);
    worker.heartbeat = 100ms;
    return md::run_worker(worker);
  };
  md::WorkerSummary s0, s1;
  std::thread w0([&] { s0 = worker_main("w0"); });
  std::thread w1([&] { s1 = worker_main("w1"); });

  Client client(server.port());
  ASSERT_TRUE(client.alive());
  client.handshake("fleet");
  client.submit("j1", tiny_job("j1", 7));
  const auto r1 = client.await_terminal("j1");
  client.submit("j2", tiny_job("j2", 9));
  const auto r2 = client.await_terminal("j2");

  // Shutting the server down drains the embedded coordinator; lingering
  // workers are told to go home and exit `drained`.
  const auto& report = server.stop();
  w0.join();
  w1.join();
  EXPECT_TRUE(report.drained);
  EXPECT_TRUE(s0.drained);
  EXPECT_TRUE(s1.drained);
  // The fleet actually computed shards — execution was not local.
  EXPECT_GT(s0.shards + s1.shards, 0u);

  for (std::size_t i = 0; const auto* fleet : {&r1, &r2}) {
    const ms::ServerMessage& ref = local[i++];
    ASSERT_EQ(fleet->kind, ms::ServerMessageKind::kResult);
    ASSERT_EQ(fleet->status, mp::JobStatus::kDone);
    EXPECT_EQ(fleet->estimate, ref.estimate);  // bit-exact
    EXPECT_EQ(fleet->ci_lower, ref.ci_lower);
    EXPECT_EQ(fleet->ci_upper, ref.ci_upper);
    EXPECT_EQ(fleet->hyper_samples, ref.hyper_samples);
    EXPECT_EQ(fleet->units, ref.units);
    EXPECT_EQ(fleet->converged, ref.converged);
    EXPECT_EQ(fleet->text, ref.text);  // the whole report, byte-identical
  }
  // Shard progress streamed to the submitter as events.
  EXPECT_GT(client.events(), 0u);
}

TEST(ServerFleet, CancelAbandonsTheFleetJobAndAnswersStopped) {
  ms::ServerOptions options;
  options.state_dir = fresh_dir("server_fleet_cancel/state");
  options.fleet.enabled = true;
  options.fleet.worker_tcp = true;
  options.fleet.lease = std::chrono::milliseconds(2000);
  LiveServer server{options};

  auto worker_main = [&] {
    md::WorkerConfig worker;
    worker.tcp_port = server.worker_port();
    worker.worker_id = "w0";
    worker.state_dir = fresh_dir("server_fleet_cancel/w0");
    worker.heartbeat = 100ms;
    return md::run_worker(worker);
  };
  md::WorkerSummary s0;
  std::thread w0([&] { s0 = worker_main(); });

  Client client(server.port());
  ASSERT_TRUE(client.alive());
  client.handshake("cancel");
  client.submit("slow", slow_job("slow"));
  client.send(ms::encode_cancel("slow"));
  const auto result = client.await_terminal("slow");
  ASSERT_EQ(result.kind, ms::ServerMessageKind::kResult);
  EXPECT_EQ(result.status, mp::JobStatus::kStopped);
  EXPECT_EQ(result.code, mpe::ErrorCode::kCancelled);

  EXPECT_TRUE(server.stop().drained);
  w0.join();
  EXPECT_TRUE(s0.drained);
}

TEST(ServerLive, UnixSocketServesTheSameProtocol) {
  const std::string dir = fresh_dir("server_live_unix");
  ms::ServerOptions options;
  options.unix_socket = dir + "/mpe.sock";
  options.poll = 5ms;
  options.control.cancel = mpe::util::CancellationToken::create();
  ms::Server server(options);
  std::thread thread([&server] { server.serve(); });

  auto channel = md::connect_unix(dir + "/mpe.sock");
  ASSERT_NE(channel, nullptr);
  ASSERT_TRUE(channel->send_line(ms::encode_hello("unix-client")));
  std::string line;
  ASSERT_EQ(channel->recv_line(line, 10000ms),
            md::LineChannel::RecvStatus::kLine);
  EXPECT_EQ(ms::decode_server_message(line).kind,
            ms::ServerMessageKind::kWelcome);
  ASSERT_TRUE(channel->send_line(ms::encode_stats()));
  ASSERT_EQ(channel->recv_line(line, 10000ms),
            md::LineChannel::RecvStatus::kLine);
  EXPECT_EQ(ms::decode_server_message(line).kind,
            ms::ServerMessageKind::kServerStats);

  options.control.cancel.request_stop();
  thread.join();
}

}  // namespace
