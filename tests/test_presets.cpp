#include "gen/presets.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "circuit/analysis.hpp"

namespace {

namespace gen = mpe::gen;

TEST(Presets, CatalogHasNinePaperCircuits) {
  const auto& cat = gen::preset_catalog();
  ASSERT_EQ(cat.size(), 9u);
  std::set<std::string> names;
  for (const auto& p : cat) names.insert(p.name);
  for (const char* expected :
       {"c432", "c880", "c1355", "c1908", "c2670", "c3540", "c5315", "c6288",
        "c7552"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
  }
}

TEST(Presets, InfoLookupWorksAndThrows) {
  const auto& info = gen::preset_info("c3540");
  EXPECT_EQ(info.num_inputs, 50u);
  EXPECT_EQ(info.num_outputs, 22u);
  EXPECT_EQ(info.num_gates, 1669u);
  EXPECT_THROW(gen::preset_info("c9999"), std::invalid_argument);
}

TEST(Presets, RandomStandInsMatchCatalogCounts) {
  for (const char* name : {"c432", "c1355", "c3540"}) {
    const auto nl = gen::build_preset(name, 1);
    const auto& info = gen::preset_info(name);
    EXPECT_EQ(nl.num_inputs(), info.num_inputs) << name;
    EXPECT_EQ(nl.num_outputs(), info.num_outputs) << name;
    EXPECT_EQ(nl.num_gates(), info.num_gates) << name;
  }
}

TEST(Presets, C6288IsRealMultiplier) {
  const auto nl = gen::build_preset("c6288", 1);
  EXPECT_EQ(nl.num_inputs(), 32u);
  EXPECT_EQ(nl.num_outputs(), 32u);
  EXPECT_GT(nl.depth(), 30u);
}

TEST(Presets, DeterministicPerSeed) {
  const auto a = gen::build_preset("c880", 5);
  const auto b = gen::build_preset("c880", 5);
  ASSERT_EQ(a.num_gates(), b.num_gates());
  for (std::size_t g = 0; g < a.num_gates(); ++g) {
    EXPECT_EQ(a.gate(g).inputs, b.gate(g).inputs);
  }
  const auto c = gen::build_preset("c880", 6);
  bool differs = false;
  for (std::size_t g = 0; g < a.num_gates() && !differs; ++g) {
    differs = a.gate(g).inputs != c.gate(g).inputs;
  }
  EXPECT_TRUE(differs);
}

TEST(Presets, DifferentCircuitsGetDifferentStructure) {
  const auto a = gen::build_preset("c432", 1);
  const auto b = gen::build_preset("c880", 1);
  EXPECT_NE(a.num_gates(), b.num_gates());
}

TEST(Presets, BuildSuiteReturnsAllInOrder) {
  const auto suite = gen::build_suite(1);
  ASSERT_EQ(suite.size(), 9u);
  for (std::size_t i = 0; i < suite.size(); ++i) {
    EXPECT_EQ(suite[i].name(), gen::preset_catalog()[i].name);
    EXPECT_TRUE(suite[i].finalized());
  }
}

TEST(Presets, AllPresetsSimulable) {
  for (const auto& info : gen::preset_catalog()) {
    auto nl = gen::build_preset(info.name, 3);
    std::vector<std::uint8_t> in(nl.num_inputs(), 1);
    EXPECT_NO_THROW(mpe::circuit::evaluate(nl, in)) << info.name;
  }
}

}  // namespace
