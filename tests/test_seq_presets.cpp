#include "seq/seq_presets.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "maxpower/estimator.hpp"
#include "seq/seq_sim.hpp"
#include "util/rng.hpp"

namespace {

namespace seq = mpe::seq;

TEST(SeqPresets, CatalogSane) {
  const auto& cat = seq::seq_preset_catalog();
  ASSERT_GE(cat.size(), 8u);
  for (const auto& p : cat) {
    EXPECT_GT(p.num_inputs, 0u);
    EXPECT_GT(p.num_ffs, 0u);
    EXPECT_GT(p.num_gates, p.num_ffs);
  }
  EXPECT_EQ(seq::seq_preset_info("s344").num_ffs, 15u);
  EXPECT_THROW(seq::seq_preset_info("s999"), std::invalid_argument);
}

TEST(SeqPresets, CountsMatchCatalog) {
  for (const char* name : {"s27", "s298", "s344", "s1423"}) {
    const auto s = seq::build_seq_preset(name, 1);
    const auto& info = seq::seq_preset_info(name);
    EXPECT_EQ(s.num_free_inputs(), info.num_inputs) << name;
    EXPECT_EQ(s.num_state_bits(), info.num_ffs) << name;
    EXPECT_EQ(s.core().num_outputs(), info.num_outputs) << name;
    // Core gates = target gates (the D buffers replace FF cells).
    EXPECT_NEAR(static_cast<double>(s.core().num_gates()),
                static_cast<double>(info.num_gates), 2.0)
        << name;
  }
}

TEST(SeqPresets, DeterministicPerSeed) {
  const auto a = seq::build_seq_preset("s386", 7);
  const auto b = seq::build_seq_preset("s386", 7);
  ASSERT_EQ(a.core().num_gates(), b.core().num_gates());
  for (std::size_t g = 0; g < a.core().num_gates(); ++g) {
    EXPECT_EQ(a.core().gate(g).inputs, b.core().gate(g).inputs);
  }
}

TEST(SeqPresets, StateActuallyEvolves) {
  auto s = seq::build_seq_preset("s298", 2);
  seq::SequentialSimulator sim(s);
  sim.reset();
  mpe::Rng rng(3);
  bool changed = false;
  for (int cycle = 0; cycle < 40 && !changed; ++cycle) {
    std::vector<std::uint8_t> in(s.num_free_inputs());
    for (auto& b : in) b = rng.bernoulli(0.5) ? 1 : 0;
    sim.step(in);
    for (auto bit : sim.state()) {
      if (bit) changed = true;
    }
  }
  EXPECT_TRUE(changed) << "state stuck at reset";
}

TEST(SeqPresets, EstimatorRunsOnPreset) {
  auto s = seq::build_seq_preset("s344", 4);
  seq::SequentialSimulator sim(s);
  seq::SequencePopulation pop(sim);
  mpe::maxpower::EstimatorOptions opt;
  opt.epsilon = 0.10;
  opt.max_hyper_samples = 60;
  mpe::Rng rng(5);
  const auto r = mpe::maxpower::estimate_max_power(pop, opt, rng);
  EXPECT_GT(r.estimate, 0.0);
  EXPECT_GE(r.hyper_samples, 3u);
}

}  // namespace
