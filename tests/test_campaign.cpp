// Campaign runner: manifest parsing, the JSONL ledger (skip-done /
// re-run-failed semantics), per-job checkpointing, and the
// fault-injection-meets-retry story — a transiently faulting job must
// succeed on its retry attempt because the population (and its fault
// schedule counter) is built once per job.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <system_error>

#include "maxpower/campaign.hpp"
#include "stats/weibull.hpp"
#include "util/atomic_file.hpp"
#include "util/jsonl.hpp"
#include "util/rng.hpp"
#include "vectors/fault_injection.hpp"
#include "vectors/population.hpp"

namespace {

namespace mp = mpe::maxpower;
using namespace std::chrono_literals;

mpe::vec::FinitePopulation weibull_population(std::size_t size,
                                              std::uint64_t seed,
                                              const std::string& desc) {
  const mpe::stats::ReversedWeibull g(3.0, 1.0, 10.0);
  mpe::Rng rng(seed);
  std::vector<double> vals(size);
  for (auto& v : vals) v = g.sample(rng);
  return mpe::vec::FinitePopulation(std::move(vals), desc);
}

std::string fresh_state_dir(const std::string& name) {
  // A stale ledger or checkpoint from a previous test-binary run would make
  // jobs skip or short-circuit; every test starts from a clean directory.
  const std::string dir = ::testing::TempDir() + name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir;
}

std::size_t ledger_lines(const std::string& dir) {
  const std::string path = dir + "/campaign.jsonl";
  if (!mpe::util::file_exists(path)) return 0;
  std::istringstream in(mpe::util::read_file(path));
  std::size_t n = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) ++n;
  }
  return n;
}

mp::CampaignOptions fast_options(const std::string& dir) {
  mp::CampaignOptions opt;
  opt.state_dir = dir;
  opt.retry.initial_backoff = 1ms;
  opt.retry.max_backoff = 2ms;
  return opt;
}

// --- Manifest parsing -------------------------------------------------------

TEST(CampaignManifest, ParsesJobsWithDefaults) {
  const auto jobs = mp::parse_campaign_manifest(
      "# comment line\n"
      "\n"
      "{\"job\":\"a\",\"circuit\":\"c432\"}\n"
      "{\"job\":\"b\",\"circuit\":\"c880\",\"seed\":9,\"epsilon\":0.08,"
      "\"confidence\":0.95,\"tprob\":0.3,\"max_hyper\":50}\n"
      "{\"job\":\"c\",\"bench\":\"x.bench\",\"activity\":0.4}\n");
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].name, "a");
  EXPECT_EQ(jobs[0].circuit, "c432");
  EXPECT_EQ(jobs[0].seed, 1u);
  EXPECT_EQ(jobs[0].epsilon, 0.05);
  EXPECT_EQ(jobs[1].seed, 9u);
  EXPECT_EQ(jobs[1].epsilon, 0.08);
  EXPECT_EQ(jobs[1].confidence, 0.95);
  EXPECT_EQ(jobs[1].max_hyper_samples, 50u);
  EXPECT_EQ(jobs[2].bench, "x.bench");
  EXPECT_EQ(jobs[2].activity, 0.4);
}

TEST(CampaignManifest, ParsesAndValidatesStrategyFields) {
  const auto jobs = mp::parse_campaign_manifest(
      "{\"job\":\"a\",\"circuit\":\"c432\",\"fitter\":\"gev\","
      "\"stop\":\"bootstrap\"}\n"
      "{\"job\":\"b\",\"circuit\":\"c432\"}\n");
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].fitter, "gev");
  EXPECT_EQ(jobs[0].stop, "bootstrap");
  EXPECT_TRUE(jobs[1].fitter.empty());
  EXPECT_TRUE(jobs[1].stop.empty());
  try {
    mp::parse_campaign_manifest(
        "{\"job\":\"a\",\"fitter\":\"weibull\"}\n");
    FAIL() << "unknown fitter accepted";
  } catch (const mpe::Error& e) {
    EXPECT_EQ(e.code(), mpe::ErrorCode::kBadData);
    EXPECT_NE(e.context().find("weibull"), std::string::npos);
  }
  try {
    mp::parse_campaign_manifest("{\"job\":\"a\",\"stop\":\"student\"}\n");
    FAIL() << "unknown stopping rule accepted";
  } catch (const mpe::Error& e) {
    EXPECT_EQ(e.code(), mpe::ErrorCode::kBadData);
  }
}

TEST(CampaignManifest, RejectsDuplicateAndInvalidNames) {
  try {
    mp::parse_campaign_manifest(
        "{\"job\":\"a\"}\n{\"job\":\"a\"}\n");
    FAIL() << "duplicate name accepted";
  } catch (const mpe::Error& e) {
    EXPECT_EQ(e.code(), mpe::ErrorCode::kBadData);
  }
  for (const char* manifest :
       {"{\"circuit\":\"c432\"}\n", "{\"job\":\"../evil\"}\n",
        "{\"job\":\"a b\"}\n", "{\"job\":\"..\"}\n"}) {
    SCOPED_TRACE(manifest);
    EXPECT_THROW(mp::parse_campaign_manifest(manifest), mpe::Error);
  }
}

TEST(CampaignManifest, RejectsUnknownFieldsAndBadJson) {
  try {
    mp::parse_campaign_manifest("{\"job\":\"a\",\"epsilno\":0.1}\n");
    FAIL() << "typo field accepted";
  } catch (const mpe::Error& e) {
    EXPECT_EQ(e.code(), mpe::ErrorCode::kBadData);
    EXPECT_NE(e.context().find("epsilno"), std::string::npos);
  }
  try {
    mp::parse_campaign_manifest("{\"job\": \"a\",,}\n");
    FAIL() << "bad json accepted";
  } catch (const mpe::Error& e) {
    EXPECT_EQ(e.code(), mpe::ErrorCode::kParse);
  }
}

// --- Running ----------------------------------------------------------------

TEST(CampaignRun, CompletesJobsAndLedgerSkipsThemNextTime) {
  const std::string dir = fresh_state_dir("campaign_basic");
  auto pop_a = weibull_population(20000, 101, "pop-a");
  auto pop_b = weibull_population(20000, 202, "pop-b");

  std::vector<mp::CampaignJob> jobs(2);
  jobs[0].name = "job-a";
  jobs[0].population = &pop_a;
  jobs[1].name = "job-b";
  jobs[1].population = &pop_b;
  jobs[1].seed = 5;

  const auto first = mp::run_campaign(jobs, fast_options(dir));
  EXPECT_EQ(first.done, 2u);
  EXPECT_EQ(first.failed, 0u);
  EXPECT_EQ(first.skipped, 0u);
  ASSERT_EQ(first.jobs.size(), 2u);
  EXPECT_EQ(first.jobs[0].status, mp::JobStatus::kDone);
  EXPECT_TRUE(first.jobs[0].result.converged);
  EXPECT_GT(first.jobs[0].result.estimate, 0.0);
  EXPECT_EQ(ledger_lines(dir), 2u);
  // Per-job checkpoints persist (complete; future invocations short-circuit).
  EXPECT_TRUE(mpe::util::file_exists(dir + "/job-a.ckpt"));
  EXPECT_TRUE(mpe::util::file_exists(dir + "/job-b.ckpt"));

  const auto second = mp::run_campaign(jobs, fast_options(dir));
  EXPECT_EQ(second.done, 0u);
  EXPECT_EQ(second.skipped, 2u);
  EXPECT_EQ(second.jobs[0].status, mp::JobStatus::kSkipped);
  EXPECT_EQ(ledger_lines(dir), 2u) << "skipped jobs must not append lines";
}

TEST(CampaignRun, ReportLinesCarryTheSchema) {
  const std::string dir = fresh_state_dir("campaign_schema");
  auto pop = weibull_population(20000, 303, "pop-schema");
  std::vector<mp::CampaignJob> jobs(1);
  jobs[0].name = "only";
  jobs[0].population = &pop;
  (void)mp::run_campaign(jobs, fast_options(dir));

  std::istringstream in(mpe::util::read_file(dir + "/campaign.jsonl"));
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  const auto v = mpe::util::parse_json(line);
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("schema")->as_string(), "mpe.campaign");
  EXPECT_EQ(v.find("v")->as_number(), 1.0);
  EXPECT_EQ(v.find("job")->as_string(), "only");
  EXPECT_EQ(v.find("status")->as_string(), "done");
  EXPECT_TRUE(v.has("estimate"));
  EXPECT_TRUE(v.has("attempts"));
  EXPECT_TRUE(v.find("converged")->as_bool());
}

TEST(CampaignRun, TransientThrowFaultSucceedsOnRetry) {
  const std::string dir = fresh_state_dir("campaign_transient");
  auto inner = weibull_population(20000, 404, "pop-faulty");
  // One draw throws kFaultInjected early in the first attempt, then never
  // again (the period is far beyond any draw this job makes). The campaign
  // builds the population once per job, so the schedule counter is past the
  // fault when the retry runs — the definition of a transient.
  mpe::vec::FaultSpec spec;
  spec.kind = mpe::vec::FaultKind::kThrow;
  spec.period = 1u << 30;
  spec.phase = 17;
  mpe::vec::FaultInjectingPopulation pop(inner, {spec});

  std::vector<mp::CampaignJob> jobs(1);
  jobs[0].name = "flaky";
  jobs[0].population = &pop;

  const auto result = mp::run_campaign(jobs, fast_options(dir));
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_EQ(result.jobs[0].status, mp::JobStatus::kDone);
  EXPECT_EQ(result.jobs[0].attempts, 2u);
  EXPECT_TRUE(result.jobs[0].result.converged);
  EXPECT_EQ(pop.injected(), 1u);
}

TEST(CampaignRun, PersistentBadDataFailsWithoutRetry) {
  const std::string dir = fresh_state_dir("campaign_fatal");
  auto inner = weibull_population(20000, 505, "pop-nan");
  mpe::vec::FaultSpec spec;
  spec.kind = mpe::vec::FaultKind::kNan;
  spec.period = 1;  // every draw is NaN: no usable hyper-sample, ever
  mpe::vec::FaultInjectingPopulation pop(inner, {spec});

  std::vector<mp::CampaignJob> jobs(1);
  jobs[0].name = "hopeless";
  jobs[0].population = &pop;

  const auto result = mp::run_campaign(jobs, fast_options(dir));
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_EQ(result.jobs[0].status, mp::JobStatus::kFailed);
  EXPECT_EQ(result.jobs[0].attempts, 1u) << "kBadData must not be retried";
  EXPECT_EQ(result.jobs[0].error, mpe::ErrorCode::kBadData);
  EXPECT_EQ(result.failed, 1u);
  // The failure is in the ledger; a re-invocation tries the job again
  // (failed != done), which is the recover-after-operator-fix flow.
  EXPECT_EQ(ledger_lines(dir), 1u);
  const auto again = mp::run_campaign(jobs, fast_options(dir));
  EXPECT_EQ(again.jobs[0].status, mp::JobStatus::kFailed);
  EXPECT_EQ(ledger_lines(dir), 2u);
}

TEST(CampaignRun, CancellationBeforeStartRunsNothing) {
  const std::string dir = fresh_state_dir("campaign_cancel");
  auto pop = weibull_population(20000, 606, "pop-cancel");
  std::vector<mp::CampaignJob> jobs(1);
  jobs[0].name = "never-ran";
  jobs[0].population = &pop;

  auto opt = fast_options(dir);
  opt.control.cancel = mpe::util::CancellationToken::create();
  opt.control.cancel.request_stop();
  const auto result = mp::run_campaign(jobs, opt);
  EXPECT_EQ(result.stopped, mpe::util::StopCause::kCancelled);
  EXPECT_TRUE(result.jobs.empty());
  EXPECT_EQ(ledger_lines(dir), 0u);
}

TEST(CampaignRun, TornFinalLedgerLineIsTolerated) {
  const std::string dir = fresh_state_dir("campaign_torn");
  auto pop = weibull_population(20000, 707, "pop-torn");
  std::vector<mp::CampaignJob> jobs(1);
  jobs[0].name = "torn";
  jobs[0].population = &pop;
  (void)mp::run_campaign(jobs, fast_options(dir));

  // Simulate a crash mid-append: chop the (only) line in half. The job no
  // longer reads as done, so the next invocation re-runs it — resuming from
  // its complete checkpoint, which costs nothing.
  const std::string path = dir + "/campaign.jsonl";
  std::string ledger = mpe::util::read_file(path);
  mpe::util::atomic_write_file(path, ledger.substr(0, ledger.size() / 2));
  const auto again = mp::run_campaign(jobs, fast_options(dir));
  EXPECT_EQ(again.jobs[0].status, mp::JobStatus::kDone);
  EXPECT_TRUE(again.jobs[0].result.converged);
}

TEST(CampaignRun, CorruptMidLedgerRecordIsQuarantinedAndTheJobReruns) {
  const std::string dir = fresh_state_dir("campaign_bitrot");
  auto pop_a = weibull_population(20000, 808, "pop-rot-a");
  auto pop_b = weibull_population(20000, 809, "pop-rot-b");
  std::vector<mp::CampaignJob> jobs(2);
  jobs[0].name = "rot-a";
  jobs[0].population = &pop_a;
  jobs[1].name = "rot-b";
  jobs[1].population = &pop_b;
  (void)mp::run_campaign(jobs, fast_options(dir));

  // Bit rot lands in the MIDDLE of the file — the first job's record, not a
  // torn tail. The per-record CRC catches it; the record is quarantined and
  // only that job re-runs (from its complete checkpoint: zero extra draws).
  const std::string path = dir + "/campaign.jsonl";
  std::string ledger = mpe::util::read_file(path);
  ledger[ledger.find("rot-a") + 2] ^= 0x04;
  mpe::util::atomic_write_file(path, ledger);

  const auto again = mp::run_campaign(jobs, fast_options(dir));
  EXPECT_EQ(again.quarantined, 1u);
  EXPECT_EQ(again.done, 1u) << "damaged record's job must re-run";
  EXPECT_EQ(again.skipped, 1u) << "intact record must still skip";
  EXPECT_TRUE(mpe::util::file_exists(path + ".quarantine"));
  // The re-run healed the ledger: a third invocation skips everything.
  const auto third = mp::run_campaign(jobs, fast_options(dir));
  EXPECT_EQ(third.skipped, 2u);
}

TEST(CampaignRun, LegacyCrclessLedgerStillSkipsDoneJobs) {
  const std::string dir = fresh_state_dir("campaign_legacy");
  auto pop = weibull_population(20000, 910, "pop-legacy");
  std::vector<mp::CampaignJob> jobs(1);
  jobs[0].name = "old-job";
  jobs[0].population = &pop;
  // A ledger written before the CRC seal existed: bare JSON records.
  std::filesystem::create_directories(dir);
  mpe::util::atomic_write_file(
      dir + "/campaign.jsonl",
      "{\"schema\":\"mpe.campaign\",\"v\":1,\"job\":\"old-job\","
      "\"status\":\"done\",\"attempts\":1,\"estimate\":5.0,"
      "\"hyper_samples\":8,\"units\":2000,\"converged\":true}\n");

  const auto result = mp::run_campaign(jobs, fast_options(dir));
  EXPECT_EQ(result.skipped, 1u) << "legacy records must keep their meaning";
  EXPECT_EQ(result.quarantined, 0u);
}

TEST(CampaignRun, MissingStateDirIsPrecondition) {
  std::vector<mp::CampaignJob> jobs;
  mp::CampaignOptions opt;  // state_dir unset
  EXPECT_THROW(mp::run_campaign(jobs, opt), mpe::Error);
}

}  // namespace
