// Robustness proof for the estimators: under injected NaN/Inf/stuck-at,
// throwing, and slow draws, both entry points return a flagged finite
// result (or a typed partial) at 1, 2, and 8 threads — never a crash, a
// deadlock, or a silent NaN.
#include "vectors/fault_injection.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "maxpower/estimator.hpp"
#include "stats/weibull.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"
#include "vectors/population.hpp"

namespace {

namespace mp = mpe::maxpower;
using mpe::vec::FaultInjectingPopulation;
using mpe::vec::FaultKind;
using mpe::vec::FaultSpec;

mpe::vec::FinitePopulation weibull_population(std::size_t size,
                                              std::uint64_t seed,
                                              double alpha = 3.0,
                                              double mu = 10.0) {
  const mpe::stats::ReversedWeibull g(alpha, 1.0, mu);
  mpe::Rng rng(seed);
  std::vector<double> vals(size);
  for (auto& v : vals) v = g.sample(rng);
  return mpe::vec::FinitePopulation(std::move(vals), "synthetic weibull");
}

FaultSpec spec(FaultKind kind, std::uint64_t period, std::uint64_t phase = 0,
               std::uint64_t start = 0) {
  FaultSpec s;
  s.kind = kind;
  s.period = period;
  s.phase = phase;
  s.start_index = start;
  return s;
}

// The result is sane: finite everywhere a value was produced, and never a
// poisoned mean.
void expect_sane(const mp::EstimationResult& r) {
  for (double v : r.hyper_values) {
    EXPECT_TRUE(std::isfinite(v)) << "poisoned hyper value " << v;
  }
  if (!r.hyper_values.empty()) {
    EXPECT_TRUE(std::isfinite(r.estimate)) << "poisoned estimate";
  }
}

TEST(FaultInjection, FaultFreeDecoratorIsBitIdenticalPassthrough) {
  auto inner1 = weibull_population(20000, 101);
  auto inner2 = weibull_population(20000, 101);
  FaultInjectingPopulation decorated(inner2, {});
  mp::EstimatorOptions opt;
  const auto base = mp::estimate_max_power(inner1, opt, std::uint64_t{77});
  const auto r = mp::estimate_max_power(decorated, opt, std::uint64_t{77});
  EXPECT_EQ(base.estimate, r.estimate);
  EXPECT_EQ(base.units_used, r.units_used);
  EXPECT_EQ(base.hyper_samples, r.hyper_samples);
  EXPECT_EQ(decorated.injected(), 0u);
}

TEST(FaultInjection, ScheduleIsDeterministicForSingleConsumer) {
  auto inner = weibull_population(5000, 7);
  FaultInjectingPopulation pop(inner, {spec(FaultKind::kNan, 10, 3)});
  mpe::Rng rng(1);
  std::vector<double> out(100);
  pop.draw_batch(out, rng);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const bool should_fault = (i >= 3) && ((i - 3) % 10 == 0);
    EXPECT_EQ(std::isnan(out[i]), should_fault) << "draw " << i;
  }
  EXPECT_EQ(pop.draws(), 100u);
  EXPECT_EQ(pop.injected(), 10u);
}

TEST(FaultInjection, StartIndexDelaysFaults) {
  auto inner = weibull_population(5000, 7);
  FaultInjectingPopulation pop(inner, {spec(FaultKind::kNan, 1, 0, 50)});
  mpe::Rng rng(1);
  std::vector<double> out(80);
  pop.draw_batch(out, rng);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(std::isnan(out[i]), i >= 50) << "draw " << i;
  }
}

TEST(FaultInjection, StuckAtReplacesValue) {
  auto inner = weibull_population(5000, 7);
  auto s = spec(FaultKind::kStuckAt, 4);
  s.stuck_value = -1.25;
  FaultInjectingPopulation pop(inner, {s});
  mpe::Rng rng(1);
  std::vector<double> out(12);
  pop.draw_batch(out, rng);
  for (std::size_t i = 0; i < out.size(); i += 4) {
    EXPECT_EQ(out[i], -1.25) << "draw " << i;
  }
}

TEST(FaultInjection, ThrowFaultCarriesTypedCode) {
  auto inner = weibull_population(5000, 7);
  FaultInjectingPopulation pop(inner, {spec(FaultKind::kThrow, 1)});
  mpe::Rng rng(1);
  try {
    pop.draw(rng);
    FAIL() << "expected mpe::Error";
  } catch (const mpe::Error& e) {
    EXPECT_EQ(e.code(), mpe::ErrorCode::kFaultInjected);
  }
}

// --- Estimator under fire, serial entry point -------------------------------

TEST(FaultInjection, SerialEstimatorSurvivesNanFaults) {
  auto inner = weibull_population(20000, 101);
  FaultInjectingPopulation pop(inner, {spec(FaultKind::kNan, 97)});
  mp::EstimatorOptions opt;
  mpe::Rng rng(14);
  const auto r = mp::estimate_max_power(pop, opt, rng);
  expect_sane(r);
  EXPECT_GT(r.diagnostics.nonfinite_units, 0u);
  EXPECT_GT(r.hyper_samples, 0u);
}

TEST(FaultInjection, SerialEstimatorSurvivesThrowingDraw) {
  auto inner = weibull_population(20000, 101);
  // First two hyper-samples (2 * 300 units) complete, the third throws.
  FaultInjectingPopulation pop(inner, {spec(FaultKind::kThrow, 1, 0, 700)});
  mp::EstimatorOptions opt;
  opt.epsilon = 1e-9;  // unattainable: forces the run into the fault
  mpe::Rng rng(14);
  mp::EstimationResult r;
  EXPECT_NO_THROW(r = mp::estimate_max_power(pop, opt, rng));
  EXPECT_EQ(r.stop_reason, mp::StopReason::kDataFault);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.hyper_samples, 2u);
  expect_sane(r);
  EXPECT_FALSE(r.diagnostics.records.empty());
}

// --- Estimator under fire, parallel entry point, threads 1/2/8 --------------

class FaultInjectionThreads : public ::testing::TestWithParam<unsigned> {};

TEST_P(FaultInjectionThreads, SurvivesNanFaults) {
  auto inner = weibull_population(20000, 101);
  FaultInjectingPopulation pop(inner, {spec(FaultKind::kNan, 97)});
  mp::EstimatorOptions opt;
  mp::ParallelOptions par;
  par.threads = GetParam();
  const auto r = mp::estimate_max_power(pop, opt, std::uint64_t{14}, par);
  expect_sane(r);
  EXPECT_GT(r.diagnostics.nonfinite_units, 0u);
}

TEST_P(FaultInjectionThreads, SurvivesInfFaults) {
  auto inner = weibull_population(20000, 103);
  FaultInjectingPopulation pop(inner, {spec(FaultKind::kPosInf, 61, 5)});
  mp::EstimatorOptions opt;
  mp::ParallelOptions par;
  par.threads = GetParam();
  const auto r = mp::estimate_max_power(pop, opt, std::uint64_t{15}, par);
  expect_sane(r);
  EXPECT_GT(r.diagnostics.nonfinite_units, 0u);
}

TEST_P(FaultInjectionThreads, SurvivesStuckAtFaults) {
  auto inner = weibull_population(20000, 107);
  auto s = spec(FaultKind::kStuckAt, 37);
  s.stuck_value = 0.0;
  FaultInjectingPopulation pop(inner, {s});
  mp::EstimatorOptions opt;
  mp::ParallelOptions par;
  par.threads = GetParam();
  const auto r = mp::estimate_max_power(pop, opt, std::uint64_t{16}, par);
  expect_sane(r);
  EXPECT_GT(r.hyper_samples, 0u);
}

TEST_P(FaultInjectionThreads, SurvivesThrowingDraws) {
  auto inner = weibull_population(20000, 109);
  FaultInjectingPopulation pop(inner, {spec(FaultKind::kThrow, 1, 0, 700)});
  mp::EstimatorOptions opt;
  opt.epsilon = 1e-9;  // unattainable: forces the run into the fault
  mp::ParallelOptions par;
  par.threads = GetParam();
  mp::EstimationResult r;
  EXPECT_NO_THROW(
      r = mp::estimate_max_power(pop, opt, std::uint64_t{17}, par));
  EXPECT_EQ(r.stop_reason, mp::StopReason::kDataFault);
  EXPECT_FALSE(r.converged);
  expect_sane(r);
  EXPECT_FALSE(r.diagnostics.records.empty());
}

TEST_P(FaultInjectionThreads, SurvivesSlowDraws) {
  auto inner = weibull_population(20000, 113);
  auto s = spec(FaultKind::kSlowDraw, 101);
  s.slow_micros = 200;
  FaultInjectingPopulation pop(inner, {s});
  mp::EstimatorOptions opt;
  mp::ParallelOptions par;
  par.threads = GetParam();
  const auto r = mp::estimate_max_power(pop, opt, std::uint64_t{18}, par);
  expect_sane(r);
  EXPECT_GT(r.hyper_samples, 0u);
}

TEST_P(FaultInjectionThreads, SurvivesCombinedFaultStorm) {
  auto inner = weibull_population(20000, 127);
  auto stuck = spec(FaultKind::kStuckAt, 53, 11);
  stuck.stuck_value = 0.0;
  FaultInjectingPopulation pop(
      inner,
      {spec(FaultKind::kNan, 89), spec(FaultKind::kPosInf, 71, 3), stuck});
  mp::EstimatorOptions opt;
  mp::ParallelOptions par;
  par.threads = GetParam();
  const auto r = mp::estimate_max_power(pop, opt, std::uint64_t{19}, par);
  expect_sane(r);
  EXPECT_GT(r.diagnostics.nonfinite_units, 0u);
  EXPECT_GT(pop.injected(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Threads, FaultInjectionThreads,
                         ::testing::Values(1u, 2u, 8u));

}  // namespace
