#include "sim/vcd.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "gen/arithmetic.hpp"
#include "util/rng.hpp"

namespace {

namespace ckt = mpe::circuit;
namespace sim = mpe::sim;

ckt::Netlist inv_chain() {
  ckt::Netlist nl("chain");
  nl.add_input("a");
  nl.add_gate(ckt::GateType::kNot, "n0", {"a"});
  nl.add_gate(ckt::GateType::kNot, "n1", {"n0"});
  nl.mark_output("n1");
  nl.finalize();
  return nl;
}

TEST(Vcd, RecordsTransitionsOfOneCycle) {
  const auto nl = inv_chain();
  sim::VcdRecorder rec(nl);
  sim::EventSimOptions opt;
  opt.delay_model = sim::DelayModel::kUnit;
  const auto r = rec.record_cycle(std::vector<std::uint8_t>{0},
                                  std::vector<std::uint8_t>{1}, opt);
  EXPECT_EQ(r.toggles, 3u);            // a, n0, n1
  EXPECT_EQ(rec.events().size(), 3u);  // one event per toggle
  EXPECT_EQ(rec.cycles(), 1u);
  // Events ordered by time; the input changes at t = 0.
  EXPECT_DOUBLE_EQ(rec.events().front().time_ns, 0.0);
  EXPECT_GT(rec.events().back().time_ns, 0.0);
}

TEST(Vcd, MultipleCyclesOffsetByClockPeriod) {
  const auto nl = inv_chain();
  sim::VcdRecorder rec(nl);
  sim::EventSimOptions opt;
  opt.delay_model = sim::DelayModel::kUnit;
  const std::vector<std::uint8_t> lo = {0}, hi = {1};
  rec.record_cycle(lo, hi, opt);
  rec.record_cycle(hi, lo, opt);
  EXPECT_EQ(rec.cycles(), 2u);
  // The second cycle's first event starts one clock period in.
  bool found_second_cycle = false;
  for (const auto& e : rec.events()) {
    if (e.time_ns >= opt.tech.clock_period_ns) found_second_cycle = true;
  }
  EXPECT_TRUE(found_second_cycle);
}

TEST(Vcd, DocumentStructure) {
  const auto nl = inv_chain();
  sim::VcdRecorder rec(nl);
  sim::EventSimOptions opt;
  opt.delay_model = sim::DelayModel::kUnit;
  rec.record_cycle(std::vector<std::uint8_t>{0},
                   std::vector<std::uint8_t>{1}, opt);
  const std::string doc = rec.write_string();
  EXPECT_NE(doc.find("$timescale 1ps $end"), std::string::npos);
  EXPECT_NE(doc.find("$scope module chain $end"), std::string::npos);
  EXPECT_NE(doc.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(doc.find("$dumpvars"), std::string::npos);
  // One $var per node.
  std::size_t vars = 0, pos = 0;
  while ((pos = doc.find("$var wire 1 ", pos)) != std::string::npos) {
    ++vars;
    pos += 5;
  }
  EXPECT_EQ(vars, nl.num_nodes());
  // Timestamps present (t=0 and the settle times in ps).
  EXPECT_NE(doc.find("#0"), std::string::npos);
  EXPECT_NE(doc.find("#350"), std::string::npos);  // one unit delay = 350ps
}

TEST(Vcd, InitialValuesMatchSettledState) {
  const auto nl = inv_chain();
  sim::VcdRecorder rec(nl);
  // v1 = 1: settled a=1, n0=0, n1=1.
  rec.record_cycle(std::vector<std::uint8_t>{1},
                   std::vector<std::uint8_t>{0});
  const std::string doc = rec.write_string();
  const auto dump = doc.find("$dumpvars");
  ASSERT_NE(dump, std::string::npos);
  // Node 0 = 'a' has VCD id '!' and initial value 1.
  EXPECT_NE(doc.find("1!", dump), std::string::npos);
}

TEST(Vcd, TimestampsNondecreasing) {
  auto nl = mpe::gen::array_multiplier(4);
  sim::VcdRecorder rec(nl);
  mpe::Rng rng(3);
  std::vector<std::uint8_t> v1(nl.num_inputs()), v2(nl.num_inputs());
  for (int c = 0; c < 3; ++c) {
    for (auto& b : v1) b = rng.bernoulli(0.5);
    for (auto& b : v2) b = rng.bernoulli(0.5);
    rec.record_cycle(v1, v2);
  }
  double prev = 0.0;
  for (const auto& e : rec.events()) {
    EXPECT_GE(e.time_ns, prev - 1e-12);
    prev = e.time_ns;
  }
}

}  // namespace
