// server/ServerCore: the scheduler state machine under a synthetic clock —
// handshake gating, admission control and kResourceExhausted backpressure,
// round-robin fairness across clients, per-job deadlines (queued and
// running), idempotent cancellation, disconnect orphaning, SIGTERM drain
// ordering, and the exactly-once result guarantee. No sockets, no threads,
// no sleeps: every transition is driven with an explicit time_point, so
// these tests are deterministic by construction.
#include "server/server_core.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <string>
#include <vector>

#include "maxpower/campaign.hpp"
#include "server/server_protocol.hpp"
#include "util/metrics.hpp"

namespace {

namespace ms = mpe::server;
namespace mp = mpe::maxpower;
using mpe::ErrorCode;
using Clock = ms::ServerCore::Clock;
using namespace std::chrono_literals;

const Clock::time_point kT0 = Clock::time_point{} + std::chrono::hours(1);

std::string job_spec(const std::string& name, std::uint64_t seed = 1) {
  mp::CampaignJob job;
  job.name = name;
  job.circuit = "c432";
  job.seed = seed;
  return mp::campaign_job_to_json(job);
}

ms::ServerMessage decode(const std::vector<ms::Outbound>& out,
                         std::size_t index = 0) {
  EXPECT_LT(index, out.size());
  return ms::decode_server_message(out.at(index).line);
}

/// Says hello on `conn` and swallows the welcome.
void handshake(ms::ServerCore& core, std::size_t conn) {
  core.connect(conn, kT0);
  const auto out = core.handle(
      conn, ms::decode_server_message(ms::encode_hello("client")), kT0);
  ASSERT_EQ(decode(out).kind, ms::ServerMessageKind::kWelcome);
}

std::vector<ms::Outbound> submit(ms::ServerCore& core, std::size_t conn,
                                 const std::string& id,
                                 std::uint64_t deadline_ms = 0) {
  return core.handle(conn,
                     ms::decode_server_message(ms::encode_submit(
                         id, job_spec(id), deadline_ms)),
                     kT0);
}

mp::CampaignJobOutcome done_outcome(const std::string& name) {
  mp::CampaignJobOutcome outcome;
  outcome.name = name;
  outcome.status = mp::JobStatus::kDone;
  outcome.result.estimate = 1.5;
  outcome.result.converged = true;
  return outcome;
}

TEST(ServerCore, SubmitBeforeHelloIsAProtocolError) {
  ms::ServerCore core(ms::ServerConfig{});
  core.connect(1, kT0);
  const auto out = core.handle(
      1, ms::decode_server_message(ms::encode_submit("j1", job_spec("j1"))),
      kT0);
  EXPECT_EQ(decode(out).kind, ms::ServerMessageKind::kError);
  EXPECT_EQ(core.queued_count(), 0u);
}

TEST(ServerCore, WrongProtocolVersionIsRefused) {
  ms::ServerCore core(ms::ServerConfig{});
  core.connect(1, kT0);
  auto hello = ms::decode_server_message(ms::encode_hello("client"));
  hello.proto = 99;
  const auto out = core.handle(1, hello, kT0);
  EXPECT_EQ(decode(out).kind, ms::ServerMessageKind::kError);
}

TEST(ServerCore, SubmitRunsAndCompletesExactlyOnce) {
  ms::ServerCore core(ms::ServerConfig{});
  handshake(core, 1);
  ASSERT_EQ(decode(submit(core, 1, "j1")).kind,
            ms::ServerMessageKind::kAccepted);
  EXPECT_EQ(core.phase(1, "j1"), ms::ServerJobPhase::kQueued);

  auto started = core.next_job(kT0);
  ASSERT_TRUE(started.has_value());
  EXPECT_EQ(started->job.name, "j1");
  EXPECT_EQ(started->conn, 1u);
  EXPECT_EQ(core.phase(1, "j1"), ms::ServerJobPhase::kRunning);

  const auto out =
      core.complete(started->ticket, done_outcome("j1"), "report", kT0 + 1s);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].conn, 1u);
  const auto result = decode(out);
  EXPECT_EQ(result.kind, ms::ServerMessageKind::kResult);
  EXPECT_EQ(result.id, "j1");
  EXPECT_EQ(result.status, mp::JobStatus::kDone);
  EXPECT_EQ(result.text, "report");
  EXPECT_TRUE(core.idle());
  // A stale completion for the same ticket produces nothing: exactly once.
  EXPECT_TRUE(
      core.complete(started->ticket, done_outcome("j1"), "", kT0 + 2s)
          .empty());
}

TEST(ServerCore, InvalidAndDuplicateIdsAreRejected) {
  ms::ServerCore core(ms::ServerConfig{});
  handshake(core, 1);
  auto msg = ms::decode_server_message(
      ms::encode_submit("ok", job_spec("ok")));
  msg.id = "../escape";  // bypass wire validation to hit the core's own
  auto out = core.handle(1, msg, kT0);
  EXPECT_EQ(decode(out).kind, ms::ServerMessageKind::kRejected);
  EXPECT_EQ(decode(out).code, ErrorCode::kBadData);

  ASSERT_EQ(decode(submit(core, 1, "j1")).kind,
            ms::ServerMessageKind::kAccepted);
  out = submit(core, 1, "j1");
  EXPECT_EQ(decode(out).kind, ms::ServerMessageKind::kRejected);
  EXPECT_EQ(decode(out).code, ErrorCode::kBadData);
}

TEST(ServerCore, MalformedSpecIsRejectedWithItsParseCode) {
  ms::ServerCore core(ms::ServerConfig{});
  handshake(core, 1);
  auto msg =
      ms::decode_server_message(ms::encode_submit("j1", job_spec("j1")));
  msg.spec = "{not json";
  const auto out = core.handle(1, msg, kT0);
  EXPECT_EQ(decode(out).kind, ms::ServerMessageKind::kRejected);
  EXPECT_EQ(decode(out).code, ErrorCode::kParse);
  EXPECT_EQ(core.queued_count(), 0u);
}

TEST(ServerCore, PerClientQueueFullIsBackpressure) {
  ms::ServerConfig config;
  config.max_queued_per_client = 2;
  ms::ServerCore core(config);
  handshake(core, 1);
  EXPECT_EQ(decode(submit(core, 1, "a")).kind,
            ms::ServerMessageKind::kAccepted);
  EXPECT_EQ(decode(submit(core, 1, "b")).kind,
            ms::ServerMessageKind::kAccepted);
  const auto out = submit(core, 1, "c");
  EXPECT_EQ(decode(out).kind, ms::ServerMessageKind::kRejected);
  EXPECT_EQ(decode(out).code, ErrorCode::kResourceExhausted);
  EXPECT_EQ(core.queued_count(), 2u);  // bounded: the reject buffered nothing
}

TEST(ServerCore, TotalQueueFullIsBackpressureAcrossClients) {
  ms::ServerConfig config;
  config.max_queued_per_client = 8;
  config.max_queued_total = 3;
  ms::ServerCore core(config);
  handshake(core, 1);
  handshake(core, 2);
  EXPECT_EQ(decode(submit(core, 1, "a")).kind,
            ms::ServerMessageKind::kAccepted);
  EXPECT_EQ(decode(submit(core, 1, "b")).kind,
            ms::ServerMessageKind::kAccepted);
  EXPECT_EQ(decode(submit(core, 2, "c")).kind,
            ms::ServerMessageKind::kAccepted);
  const auto out = submit(core, 2, "d");
  EXPECT_EQ(decode(out).code, ErrorCode::kResourceExhausted);
  const auto stats = core.stats();
  EXPECT_EQ(stats.accepted, 3u);
  EXPECT_EQ(stats.rejected, 1u);
}

TEST(ServerCore, RoundRobinInterleavesTwoClients) {
  ms::ServerConfig config;
  config.max_active = 1;
  ms::ServerCore core(config);
  handshake(core, 1);
  handshake(core, 2);
  // Client 1 floods four jobs before client 2 submits two; fairness must
  // still interleave the grants instead of draining client 1 first.
  for (const char* id : {"a1", "a2", "a3", "a4"}) submit(core, 1, id);
  for (const char* id : {"b1", "b2"}) submit(core, 2, id);

  std::vector<std::string> order;
  while (auto started = core.next_job(kT0)) {
    order.push_back(started->job.name);
    core.complete(started->ticket, done_outcome(started->job.name), "",
                  kT0);
  }
  EXPECT_EQ(order, (std::vector<std::string>{"a1", "b1", "a2", "b2", "a3",
                                             "a4"}));
}

TEST(ServerCore, MaxActiveCapsConcurrentGrants) {
  ms::ServerConfig config;
  config.max_active = 2;
  ms::ServerCore core(config);
  handshake(core, 1);
  for (const char* id : {"a", "b", "c"}) submit(core, 1, id);
  EXPECT_TRUE(core.next_job(kT0).has_value());
  EXPECT_TRUE(core.next_job(kT0).has_value());
  EXPECT_FALSE(core.next_job(kT0).has_value());  // both slots busy
  EXPECT_EQ(core.running_count(), 2u);
  EXPECT_EQ(core.queued_count(), 1u);
}

TEST(ServerCore, QueuedJobDeadlineExpiresViaTick) {
  ms::ServerConfig config;
  config.max_active = 1;
  ms::ServerCore core(config);
  handshake(core, 1);
  submit(core, 1, "runner");
  ASSERT_TRUE(core.next_job(kT0).has_value());  // occupy the only slot
  ASSERT_EQ(decode(submit(core, 1, "starved", 1000)).kind,
            ms::ServerMessageKind::kAccepted);

  EXPECT_TRUE(core.tick(kT0 + 999ms).empty());  // not yet
  const auto out = core.tick(kT0 + 1001ms);
  ASSERT_EQ(out.size(), 1u);
  const auto result = decode(out);
  EXPECT_EQ(result.kind, ms::ServerMessageKind::kResult);
  EXPECT_EQ(result.id, "starved");
  EXPECT_EQ(result.status, mp::JobStatus::kStopped);
  EXPECT_EQ(result.code, ErrorCode::kDeadline);
  EXPECT_EQ(core.queued_count(), 0u);
  EXPECT_TRUE(core.tick(kT0 + 2s).empty());  // exactly once
}

TEST(ServerCore, RunningJobDeadlineTripsTheTokenThenMapsToDeadline) {
  ms::ServerCore core(ms::ServerConfig{});
  handshake(core, 1);
  submit(core, 1, "j1", 500);
  auto started = core.next_job(kT0);
  ASSERT_TRUE(started.has_value());
  EXPECT_FALSE(started->cancel.stop_requested());

  EXPECT_TRUE(core.tick(kT0 + 501ms).empty());  // running: no result yet
  EXPECT_TRUE(started->cancel.stop_requested());

  // The engine reports a generic stop; the core pins the cause.
  mp::CampaignJobOutcome outcome;
  outcome.name = "j1";
  outcome.status = mp::JobStatus::kStopped;
  outcome.error = ErrorCode::kCancelled;
  const auto out = core.complete(started->ticket, outcome, "", kT0 + 502ms);
  EXPECT_EQ(decode(out).code, ErrorCode::kDeadline);
}

TEST(ServerCore, DefaultDeadlineAppliesAndCapIsEnforced) {
  ms::ServerConfig config;
  config.default_deadline = 100ms;
  config.max_deadline = 200ms;
  ms::ServerCore core(config);
  handshake(core, 1);
  submit(core, 1, "defaulted");          // gets the 100ms default
  submit(core, 1, "capped", 100000);     // asked for 100s, capped to 200ms
  const auto out = core.tick(kT0 + 250ms);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(decode(out, 0).status, mp::JobStatus::kStopped);
  EXPECT_EQ(decode(out, 1).status, mp::JobStatus::kStopped);
}

TEST(ServerCore, CancelQueuedJobAnswersResultThenAck) {
  ms::ServerCore core(ms::ServerConfig{});
  handshake(core, 1);
  submit(core, 1, "j1");
  const auto out = core.handle(
      1, ms::decode_server_message(ms::encode_cancel("j1")), kT0);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(decode(out, 0).kind, ms::ServerMessageKind::kResult);
  EXPECT_EQ(decode(out, 0).status, mp::JobStatus::kStopped);
  EXPECT_EQ(decode(out, 0).code, ErrorCode::kCancelled);
  EXPECT_EQ(decode(out, 1).kind, ms::ServerMessageKind::kAck);
  EXPECT_EQ(core.queued_count(), 0u);

  // Idempotent: a second cancel (job long gone) still just acks.
  const auto again = core.handle(
      1, ms::decode_server_message(ms::encode_cancel("j1")), kT0);
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(decode(again).kind, ms::ServerMessageKind::kAck);
}

TEST(ServerCore, CancelRunningJobTripsTokenAndPinsTheCause) {
  ms::ServerCore core(ms::ServerConfig{});
  handshake(core, 1);
  submit(core, 1, "j1");
  auto started = core.next_job(kT0);
  ASSERT_TRUE(started.has_value());
  const auto out = core.handle(
      1, ms::decode_server_message(ms::encode_cancel("j1")), kT0);
  ASSERT_EQ(out.size(), 1u);  // no result yet: the job is still running
  EXPECT_EQ(decode(out).kind, ms::ServerMessageKind::kAck);
  EXPECT_TRUE(started->cancel.stop_requested());

  mp::CampaignJobOutcome outcome;
  outcome.name = "j1";
  outcome.status = mp::JobStatus::kStopped;
  outcome.error = ErrorCode::kDeadline;  // core's cancel intent must win
  const auto result = core.complete(started->ticket, outcome, "", kT0);
  EXPECT_EQ(decode(result).code, ErrorCode::kCancelled);
}

TEST(ServerCore, DisconnectWhileRunningSuppressesTheResult) {
  ms::ServerCore core(ms::ServerConfig{});
  handshake(core, 1);
  submit(core, 1, "j1");
  submit(core, 1, "j2");  // stays queued; dropped silently on disconnect
  auto started = core.next_job(kT0);
  ASSERT_TRUE(started.has_value());

  core.disconnect(1, kT0);
  EXPECT_TRUE(started->cancel.stop_requested());  // nobody is listening
  EXPECT_EQ(core.queued_count(), 0u);
  EXPECT_EQ(core.running_count(), 1u);
  const auto out =
      core.complete(started->ticket, done_outcome("j1"), "", kT0);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(core.idle());
}

TEST(ServerCore, DrainFlushesQueueNotifiesEveryoneAndRejectsNewWork) {
  ms::ServerConfig config;
  config.max_active = 1;
  ms::ServerCore core(config);
  handshake(core, 1);
  handshake(core, 2);
  submit(core, 1, "running");
  auto started = core.next_job(kT0);
  ASSERT_TRUE(started.has_value());
  submit(core, 1, "queued1");
  submit(core, 2, "queued2");

  const auto out = core.begin_drain(kT0);
  EXPECT_TRUE(core.draining());
  std::size_t results = 0;
  std::size_t drains = 0;
  for (const auto& line : out) {
    const auto msg = ms::decode_server_message(line.line);
    if (msg.kind == ms::ServerMessageKind::kResult) {
      ++results;
      EXPECT_EQ(msg.status, mp::JobStatus::kStopped);
      EXPECT_EQ(msg.code, ErrorCode::kCancelled);
    }
    if (msg.kind == ms::ServerMessageKind::kDrain) ++drains;
  }
  EXPECT_EQ(results, 2u);  // both queued jobs answered immediately
  EXPECT_EQ(drains, 2u);   // every connection notified
  // The running job keeps going (its token is NOT tripped by drain alone)
  // and still reports when done; only then is the core idle.
  EXPECT_FALSE(started->cancel.stop_requested());
  EXPECT_FALSE(core.idle());
  const auto reject = submit(core, 2, "late");
  EXPECT_EQ(decode(reject).kind, ms::ServerMessageKind::kRejected);
  EXPECT_EQ(decode(reject).code, ErrorCode::kCancelled);
  core.complete(started->ticket, done_outcome("running"), "", kT0 + 1s);
  EXPECT_TRUE(core.idle());
  EXPECT_TRUE(core.begin_drain(kT0 + 1s).empty());  // idempotent
}

TEST(ServerCore, StatsTrackOutcomesAndDrainFlag) {
  ms::ServerCore core(ms::ServerConfig{});
  handshake(core, 1);
  submit(core, 1, "ok");
  submit(core, 1, "bad");
  auto first = core.next_job(kT0);
  auto second = core.next_job(kT0);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  core.complete(first->ticket, done_outcome("ok"), "", kT0);
  mp::CampaignJobOutcome failed;
  failed.name = "bad";
  failed.status = mp::JobStatus::kFailed;
  failed.error = ErrorCode::kNonConvergence;
  core.complete(second->ticket, failed, "", kT0);

  const auto stats = core.stats();
  EXPECT_EQ(stats.submits, 2u);
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.done, 1u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.clients, 1u);
  EXPECT_FALSE(stats.draining);
  core.begin_drain(kT0);
  EXPECT_TRUE(core.stats().draining);
}

TEST(ServerCore, ScrapeRendersTheConfiguredRegistry) {
  mpe::util::MetricRegistry registry;
  registry.enable(true);
  registry.counter("mpe_server_test_total").inc(3);
  ms::ServerConfig config;
  config.metrics = &registry;
  ms::ServerCore core(config);
  handshake(core, 1);
  const auto out =
      core.handle(1, ms::decode_server_message(ms::encode_scrape()), kT0);
  const auto msg = decode(out);
  EXPECT_EQ(msg.kind, ms::ServerMessageKind::kMetrics);
  EXPECT_NE(msg.text.find("mpe_server_test_total 3"), std::string::npos);
}

TEST(ServerCore, RenderMetricsTextFormatsCountersGaugesHistograms) {
  mpe::util::MetricRegistry registry;
  registry.enable(true);
  registry.counter("mpe_a_total", "kind=x").inc(2);
  registry.gauge("mpe_b").add(-4);
  registry.histogram("mpe_c_ns").observe(7);
  const std::string text =
      ms::render_metrics_text(registry.snapshot());
  EXPECT_NE(text.find("mpe_a_total{kind=x} 2"), std::string::npos);
  EXPECT_NE(text.find("mpe_b -4"), std::string::npos);
  EXPECT_NE(text.find("mpe_c_ns_count 1"), std::string::npos);
  EXPECT_NE(text.find("mpe_c_ns_sum 7"), std::string::npos);
}

}  // namespace
