// Strategy-seam tests for the layered estimation engine: equivalence with
// the legacy entry points on both paper input categories, custom
// user-supplied StoppingRule / TailFitter through the public API, the
// alternative built-in strategies end-to-end, and the strategy-aware
// checkpoint fingerprint.
#include "maxpower/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "gen/presets.hpp"
#include "maxpower/checkpoint.hpp"
#include "maxpower/estimator.hpp"
#include "maxpower/options_fields.hpp"
#include "maxpower/stopping.hpp"
#include "maxpower/tail_fitter.hpp"
#include "maxpower/unit_source.hpp"
#include "sim/power_eval.hpp"
#include "stats/weibull.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"
#include "vectors/generators.hpp"
#include "vectors/markov.hpp"
#include "vectors/population.hpp"
#include "vectors/power_db.hpp"

namespace {

namespace mp = mpe::maxpower;
namespace vec = mpe::vec;

mpe::vec::FinitePopulation weibull_population(std::size_t size,
                                              std::uint64_t seed,
                                              double alpha = 3.0,
                                              double mu = 10.0) {
  const mpe::stats::ReversedWeibull g(alpha, 1.0, mu);
  mpe::Rng rng(seed);
  std::vector<double> vals(size);
  for (auto& v : vals) v = g.sample(rng);
  return mpe::vec::FinitePopulation(std::move(vals), "synthetic weibull");
}

void expect_bit_identical(const mp::EstimationResult& a,
                          const mp::EstimationResult& b) {
  EXPECT_EQ(a.estimate, b.estimate);
  EXPECT_EQ(a.hyper_samples, b.hyper_samples);
  EXPECT_EQ(a.units_used, b.units_used);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.stop_reason, b.stop_reason);
  EXPECT_EQ(a.relative_error_bound, b.relative_error_bound);
  EXPECT_EQ(a.ci.half_width, b.ci.half_width);
  ASSERT_EQ(a.hyper_values.size(), b.hyper_values.size());
  for (std::size_t i = 0; i < a.hyper_values.size(); ++i) {
    EXPECT_EQ(a.hyper_values[i], b.hyper_values[i]) << "hyper value " << i;
  }
}

// --- Equivalence with the legacy entry points -----------------------------

TEST(Engine, DefaultCompositionMatchesLegacySerial) {
  auto pop = weibull_population(20000, 101);
  mp::EstimatorOptions opt;
  mpe::Rng r1(14), r2(14);
  const auto legacy = mp::estimate_max_power(pop, opt, r1);
  const mp::Engine engine(mp::EngineConfig{opt, nullptr, {}});
  const auto ours = engine.run(pop, r2);
  expect_bit_identical(legacy, ours);
  // Both consumed the caller RNG identically.
  EXPECT_EQ(r1.state().s, r2.state().s);
}

TEST(Engine, DefaultCompositionMatchesLegacyParallel) {
  auto pop = weibull_population(20000, 102);
  mp::EstimatorOptions opt;
  for (unsigned threads : {1u, 2u, 8u}) {
    mp::ParallelOptions par;
    par.threads = threads;
    const auto legacy = mp::estimate_max_power(pop, opt, 77, par);
    const mp::Engine engine(mp::EngineConfig{opt, nullptr, {}});
    const auto ours = engine.run(pop, 77, par);
    expect_bit_identical(legacy, ours);
  }
}

TEST(Engine, EquivalenceOnUnconstrainedStreamingPopulation) {
  // Paper category I.1: unconstrained sequences, units generated on the
  // fly. Engine and legacy must agree bit-for-bit on the same stream.
  const auto nl = mpe::gen::build_preset("c432", 9);
  mpe::sim::CyclePowerEvaluator e1(nl), e2(nl);
  const vec::TransitionProbPairGenerator g(nl.num_inputs(), 0.5);
  vec::StreamingPopulation p1(g, e1), p2(g, e2);
  mp::EstimatorOptions opt;
  opt.epsilon = 0.10;
  opt.max_hyper_samples = 12;
  mpe::Rng r1(21), r2(21);
  const auto legacy = mp::estimate_max_power(p1, opt, r1);
  const mp::Engine engine(mp::EngineConfig{opt, nullptr, {}});
  const auto ours = engine.run(p2, r2);
  expect_bit_identical(legacy, ours);
}

TEST(Engine, EquivalenceOnConstrainedMarkovPopulation) {
  // Paper category I.2: constrained (Markov) input statistics via a
  // pre-built power database.
  const auto nl = mpe::gen::build_preset("c432", 5);
  mpe::sim::CyclePowerEvaluator eval(nl);
  const vec::MarkovPairGenerator gen(nl.num_inputs(), 0.2, 0.6);
  vec::PowerDbOptions db;
  db.population_size = 4000;
  mpe::Rng build_rng(1);
  auto pop = vec::build_power_database(gen, eval, db, build_rng);
  mp::EstimatorOptions opt;
  opt.epsilon = 0.08;
  mpe::Rng r1(2), r2(2);
  const auto legacy = mp::estimate_max_power(pop, opt, r1);
  const mp::Engine engine(mp::EngineConfig{opt, nullptr, {}});
  const auto ours = engine.run(pop, r2);
  expect_bit_identical(legacy, ours);
}

// --- Custom strategies through the public API -----------------------------

// Stops unconditionally after a fixed number of accepted hyper-samples,
// ignoring the interval entirely.
class FixedCountRule final : public mp::StoppingRule {
 public:
  explicit FixedCountRule(std::size_t target) : target_(target) {}
  std::string_view name() const override { return "fixed-count"; }
  std::optional<mp::StopReason> post_accept(const mp::EstimatorOptions&,
                                            mp::EstimationResult& r,
                                            mpe::Rng&) override {
    if (r.hyper_samples < target_) return std::nullopt;
    r.converged = true;
    r.stop_reason = mp::StopReason::kConverged;
    return mp::StopReason::kConverged;
  }

 private:
  std::size_t target_;
};

TEST(Engine, CustomStoppingRuleThroughPublicApi) {
  auto pop = weibull_population(20000, 103);
  mp::EngineConfig cfg;
  cfg.options.epsilon = 1e-12;  // the default interval rule would never stop
  cfg.stopping = {std::make_shared<mp::HyperBudgetRule>(),
                  std::make_shared<mp::RunControlRule>(),
                  std::make_shared<FixedCountRule>(7)};
  const mp::Engine engine(cfg);
  mpe::Rng rng(31);
  const auto r = engine.run(pop, rng);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.hyper_samples, 7u);
  EXPECT_EQ(r.stop_reason, mp::StopReason::kConverged);

  // Same custom chain on the pipelined path, invariant across threads.
  mp::ParallelOptions par1, par8;
  par1.threads = 1;
  par8.threads = 8;
  const auto p1 = engine.run(pop, 55, par1);
  const auto p8 = engine.run(pop, 55, par8);
  EXPECT_EQ(p1.hyper_samples, 7u);
  expect_bit_identical(p1, p8);
}

// Ignores the maxima and reports a constant far above the population: every
// hyper-value is identical, so the Student-t interval converges immediately
// at min_hyper_samples.
class ConstantFitter final : public mp::TailFitter {
 public:
  std::string_view name() const override { return "constant"; }
  mp::TailFitOutcome fit(std::span<const double>,
                         const mp::TailFitContext&) const override {
    mp::TailFitOutcome out;
    out.estimate = 1.0e6;  // above any drawn unit, so the max clamp is moot
    out.mu_hat = 1.0e6;
    out.mle.converged = true;
    out.mle.params.alpha = 3.0;
    return out;
  }
};

TEST(Engine, CustomTailFitterThroughPublicApi) {
  auto pop = weibull_population(20000, 104);
  mp::EngineConfig cfg;
  cfg.fitter = std::make_shared<ConstantFitter>();
  const mp::Engine engine(cfg);
  mpe::Rng rng(41);
  const auto r = engine.run(pop, rng);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.hyper_samples, cfg.options.min_hyper_samples);
  EXPECT_EQ(r.estimate, 1.0e6);
  for (double v : r.hyper_values) EXPECT_EQ(v, 1.0e6);
}

// --- Built-in alternative strategies end-to-end ---------------------------

TEST(Engine, PwmFitterConverges) {
  auto pop = weibull_population(40000, 105);
  mp::EngineConfig cfg;
  cfg.fitter = mp::make_tail_fitter(mp::TailFitterKind::kPwm);
  const mp::Engine engine(cfg);
  mpe::Rng rng(51);
  const auto r = engine.run(pop, rng);
  EXPECT_TRUE(r.converged);
  const double rel = std::fabs(r.estimate - pop.true_max()) / pop.true_max();
  EXPECT_LT(rel, 0.15);
}

TEST(Engine, GevFitterConvergesAndIsThreadInvariant) {
  auto pop = weibull_population(40000, 106);
  mp::EngineConfig cfg;
  cfg.fitter = mp::make_tail_fitter(mp::TailFitterKind::kGevMle);
  const mp::Engine engine(cfg);
  mpe::Rng rng(61);
  const auto serial = engine.run(pop, rng);
  EXPECT_TRUE(serial.converged);
  const double rel =
      std::fabs(serial.estimate - pop.true_max()) / pop.true_max();
  EXPECT_LT(rel, 0.15);

  mp::ParallelOptions par1, par2, par8;
  par1.threads = 1;
  par2.threads = 2;
  par8.threads = 8;
  const auto p1 = engine.run(pop, 66, par1);
  const auto p2 = engine.run(pop, 66, par2);
  const auto p8 = engine.run(pop, 66, par8);
  expect_bit_identical(p1, p2);
  expect_bit_identical(p1, p8);
}

TEST(Engine, PinnedBootstrapRuleMatchesOptionsBootstrap) {
  // An explicit IntervalRule(kBootstrap) chain must reproduce the legacy
  // options.interval = kBootstrap run exactly (same interval RNG stream).
  auto pop = weibull_population(20000, 107);
  mp::EstimatorOptions legacy_opt;
  legacy_opt.interval = mp::IntervalKind::kBootstrap;
  mpe::Rng r1(71), r2(71);
  const auto legacy = mp::estimate_max_power(pop, legacy_opt, r1);

  mp::EngineConfig cfg;  // options.interval left at kStudentT: the pin wins
  cfg.stopping = {
      std::make_shared<mp::HyperBudgetRule>(),
      std::make_shared<mp::RunControlRule>(),
      std::make_shared<mp::IntervalRule>(mp::IntervalKind::kBootstrap)};
  const mp::Engine engine(cfg);
  const auto ours = engine.run(pop, r2);
  expect_bit_identical(legacy, ours);
}

// --- UnitSource layer -----------------------------------------------------

TEST(Engine, PopulationUnitSourceReportsPopulationFacts) {
  auto pop = weibull_population(5000, 108);
  mp::PopulationUnitSource src(pop);
  EXPECT_TRUE(src.concurrent_fill_safe());
  ASSERT_TRUE(src.population_size().has_value());
  EXPECT_EQ(*src.population_size(), 5000u);
  EXPECT_EQ(src.description(), pop.description());
  mpe::Rng a(1), b(1);
  std::vector<double> via_source(64), via_pop(64);
  src.fill(std::span<double>(via_source), a);
  pop.draw_batch(std::span<double>(via_pop), b);
  EXPECT_EQ(via_source, via_pop);
}

// --- Strategy-aware checkpoint fingerprint --------------------------------

TEST(Engine, StrategyCompositionChangesFingerprint) {
  mp::EstimatorOptions opt;
  const auto base = mp::run_fingerprint(opt, 9, true, "pop");
  // Empty strategies == the 4-argument (legacy/default) fingerprint.
  EXPECT_EQ(mp::run_fingerprint(opt, 9, true, "pop", ""), base);
  const auto gev = mp::run_fingerprint(opt, 9, true, "pop", "fitter=gev");
  EXPECT_NE(gev, base);
  EXPECT_NE(mp::run_fingerprint(opt, 9, true, "pop", "fitter=pwm"), gev);
}

TEST(Engine, NonDefaultFitterRefusesDefaultCheckpoint) {
  auto pop = weibull_population(20000, 109);
  const std::string path = ::testing::TempDir() + "engine_fp_refusal.ckpt";
  std::remove(path.c_str());

  mp::EstimatorOptions opt;
  opt.epsilon = 1e-12;  // never converges: checkpoint survives the run
  opt.max_hyper_samples = 4;
  opt.checkpoint_path = path;
  const mp::Engine def(mp::EngineConfig{opt, nullptr, {}});
  const auto partial = def.run(pop, 88, {});
  EXPECT_FALSE(partial.converged);

  mp::EngineConfig cfg;
  cfg.options = opt;
  cfg.fitter = mp::make_tail_fitter(mp::TailFitterKind::kGevMle);
  const mp::Engine gev(cfg);
  try {
    (void)gev.run(pop, 88, {});
    FAIL() << "expected kPrecondition refusal";
  } catch (const mpe::Error& e) {
    EXPECT_EQ(e.code(), mpe::ErrorCode::kPrecondition);
  }
  std::remove(path.c_str());
}

// --- Options field visitor ------------------------------------------------

TEST(Engine, OptionsJsonRoundTripPreservesFingerprint) {
  mp::EstimatorOptions opt;
  opt.epsilon = 0.037;
  opt.confidence = 0.955;
  opt.interval = mp::IntervalKind::kBootstrap;
  opt.min_hyper_samples = 3;
  opt.max_hyper_samples = 123;
  opt.max_redraws = 17;
  opt.hyper.n = 77;
  opt.hyper.m = 13;
  opt.hyper.finite_correction = false;
  opt.hyper.degenerate_policy = mp::DegenerateFitPolicy::kPwmFallback;
  opt.hyper.endpoint_ridge_tolerance = 0.125;
  opt.hyper.mle.grid_points = 99;
  opt.checkpoint_every_k = 5;

  const std::string json = mp::estimator_options_to_json(opt);
  const mp::EstimatorOptions back = mp::estimator_options_from_json(json);
  EXPECT_EQ(back.epsilon, opt.epsilon);
  EXPECT_EQ(back.confidence, opt.confidence);
  EXPECT_EQ(back.interval, opt.interval);
  EXPECT_EQ(back.min_hyper_samples, opt.min_hyper_samples);
  EXPECT_EQ(back.max_hyper_samples, opt.max_hyper_samples);
  EXPECT_EQ(back.max_redraws, opt.max_redraws);
  EXPECT_EQ(back.hyper.n, opt.hyper.n);
  EXPECT_EQ(back.hyper.m, opt.hyper.m);
  EXPECT_EQ(back.hyper.finite_correction, opt.hyper.finite_correction);
  EXPECT_EQ(back.hyper.degenerate_policy, opt.hyper.degenerate_policy);
  EXPECT_EQ(back.hyper.endpoint_ridge_tolerance,
            opt.hyper.endpoint_ridge_tolerance);
  EXPECT_EQ(back.hyper.mle.grid_points, opt.hyper.mle.grid_points);
  EXPECT_EQ(back.checkpoint_every_k, opt.checkpoint_every_k);
  // The same visitor feeds the fingerprint, so round-tripping is identity.
  EXPECT_EQ(mp::run_fingerprint(back, 1, false, "p"),
            mp::run_fingerprint(opt, 1, false, "p"));
}

TEST(Engine, NameParsersAcceptKnownRejectUnknown) {
  EXPECT_EQ(mp::tail_fitter_kind_from_name("mle"),
            mp::TailFitterKind::kWeibullMle);
  EXPECT_EQ(mp::tail_fitter_kind_from_name("pwm"), mp::TailFitterKind::kPwm);
  EXPECT_EQ(mp::tail_fitter_kind_from_name("gev"),
            mp::TailFitterKind::kGevMle);
  EXPECT_FALSE(mp::tail_fitter_kind_from_name("weibull").has_value());
  EXPECT_EQ(mp::interval_kind_from_name("t"), mp::IntervalKind::kStudentT);
  EXPECT_EQ(mp::interval_kind_from_name("bootstrap"),
            mp::IntervalKind::kBootstrap);
  EXPECT_FALSE(mp::interval_kind_from_name("student").has_value());
}

}  // namespace
