#include "evt/pwm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/gev.hpp"
#include "stats/gumbel.hpp"
#include "stats/weibull.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

namespace evt = mpe::evt;
using mpe::stats::Gev;
using mpe::stats::Gumbel;
using mpe::stats::ReversedWeibull;

TEST(Pwm, RecoversWeibullTypeShape) {
  const ReversedWeibull g(3.0, 1.0, 5.0);
  mpe::Rng rng(12);
  std::vector<double> xs(5000);
  for (auto& x : xs) x = g.sample(rng);
  const auto fit = evt::fit_gev_pwm(xs);
  ASSERT_TRUE(fit.valid);
  EXPECT_LT(fit.params.xi, 0.0);  // Weibull type detected
  EXPECT_NEAR(fit.params.xi, -1.0 / 3.0, 0.06);
  const Gev fitted(fit.params);
  EXPECT_NEAR(fitted.right_endpoint(), 5.0, 0.25);
}

TEST(Pwm, GumbelDataGivesNearZeroShape) {
  const Gumbel g(2.0, 1.0);
  mpe::Rng rng(34);
  std::vector<double> xs(5000);
  for (auto& x : xs) x = g.sample(rng);
  const auto fit = evt::fit_gev_pwm(xs);
  ASSERT_TRUE(fit.valid);
  EXPECT_NEAR(fit.params.xi, 0.0, 0.06);
  EXPECT_NEAR(fit.params.mu, 2.0, 0.1);
  EXPECT_NEAR(fit.params.sigma, 1.0, 0.08);
}

TEST(Pwm, FrechetDataGivesPositiveShape) {
  // Frechet with alpha = 2 corresponds to xi = +0.5.
  mpe::Rng rng(56);
  std::vector<double> xs(5000);
  for (auto& x : xs) {
    const double u = 1.0 - rng.uniform() * (1.0 - 1e-16);
    x = std::pow(-std::log(u), -0.5);
  }
  const auto fit = evt::fit_gev_pwm(xs);
  ASSERT_TRUE(fit.valid);
  EXPECT_GT(fit.params.xi, 0.25);
}

TEST(Pwm, MomentsComputedCorrectlyOnTinySample) {
  // For sorted {0, 1, 2}: b0 = 1, b1 = (0*0 + 1*0.5 + 2*1)/3 = 2.5/3,
  // b2 = (2 * (2*1)/(2*1)) / 3 = 2/3.
  const std::vector<double> xs = {2.0, 0.0, 1.0};
  const auto fit = evt::fit_gev_pwm(xs);
  EXPECT_NEAR(fit.b0, 1.0, 1e-12);
  EXPECT_NEAR(fit.b1, 2.5 / 3.0, 1e-12);
  EXPECT_NEAR(fit.b2, 2.0 / 3.0, 1e-12);
}

TEST(Pwm, DegenerateSampleInvalid) {
  const std::vector<double> xs = {1.0, 1.0, 1.0, 1.0};
  const auto fit = evt::fit_gev_pwm(xs);
  EXPECT_FALSE(fit.valid);
}

TEST(Pwm, RejectsTooFew) {
  EXPECT_THROW(evt::fit_gev_pwm(std::vector<double>{1.0, 2.0}),
               mpe::ContractViolation);
}

}  // namespace
