#include "gen/arithmetic.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "circuit/analysis.hpp"
#include "util/rng.hpp"

namespace {

namespace ckt = mpe::circuit;
namespace gen = mpe::gen;

// Packs an unsigned value into input bits named <prefix>0..<prefix>{b-1}.
void pack(const ckt::Netlist& nl, std::vector<std::uint8_t>& in,
          const std::string& prefix, std::uint64_t value, std::size_t bits) {
  const auto& inputs = nl.inputs();
  for (std::size_t i = 0; i < bits; ++i) {
    auto found = nl.find(prefix + std::to_string(i));
    if (!found && bits == 1) found = nl.find(prefix);  // scalar like "cin"
    ASSERT_TRUE(found.has_value()) << prefix << i;
    for (std::size_t k = 0; k < inputs.size(); ++k) {
      if (inputs[k] == *found) {
        in[k] = static_cast<std::uint8_t>((value >> i) & 1);
      }
    }
  }
}

std::uint64_t unpack(const ckt::Netlist& nl,
                     const std::vector<std::uint8_t>& values,
                     const std::string& prefix, std::size_t bits) {
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < bits; ++i) {
    const auto node = *nl.find(prefix + std::to_string(i));
    out |= static_cast<std::uint64_t>(values[node]) << i;
  }
  return out;
}

TEST(RippleCarryAdder, ExhaustiveFourBit) {
  auto nl = gen::ripple_carry_adder(4);
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      for (std::uint64_t cin = 0; cin < 2; ++cin) {
        std::vector<std::uint8_t> in(nl.num_inputs(), 0);
        pack(nl, in, "a", a, 4);
        pack(nl, in, "b", b, 4);
        pack(nl, in, "cin", cin, 1);
        const auto values = ckt::evaluate(nl, in);
        const std::uint64_t sum = unpack(nl, values, "s", 4);
        const std::uint64_t cout = values[*nl.find("cout")];
        EXPECT_EQ(sum + (cout << 4), a + b + cin)
            << a << "+" << b << "+" << cin;
      }
    }
  }
}

TEST(RippleCarryAdder, WideRandomCases) {
  auto nl = gen::ripple_carry_adder(16);
  mpe::Rng rng(42);
  for (int t = 0; t < 200; ++t) {
    const std::uint64_t a = rng.below(1ull << 16);
    const std::uint64_t b = rng.below(1ull << 16);
    const std::uint64_t cin = rng.below(2);
    std::vector<std::uint8_t> in(nl.num_inputs(), 0);
    pack(nl, in, "a", a, 16);
    pack(nl, in, "b", b, 16);
    pack(nl, in, "cin", cin, 1);
    const auto values = ckt::evaluate(nl, in);
    const std::uint64_t sum = unpack(nl, values, "s", 16);
    const std::uint64_t cout = values[*nl.find("cout")];
    EXPECT_EQ(sum + (cout << 16), a + b + cin);
  }
}

TEST(ArrayMultiplier, ExhaustiveThreeBit) {
  auto nl = gen::array_multiplier(3);
  for (std::uint64_t a = 0; a < 8; ++a) {
    for (std::uint64_t b = 0; b < 8; ++b) {
      std::vector<std::uint8_t> in(nl.num_inputs(), 0);
      pack(nl, in, "a", a, 3);
      pack(nl, in, "b", b, 3);
      const auto values = ckt::evaluate(nl, in);
      EXPECT_EQ(unpack(nl, values, "p", 6), a * b) << a << "*" << b;
    }
  }
}

TEST(ArrayMultiplier, ExhaustiveFourBit) {
  auto nl = gen::array_multiplier(4);
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      std::vector<std::uint8_t> in(nl.num_inputs(), 0);
      pack(nl, in, "a", a, 4);
      pack(nl, in, "b", b, 4);
      const auto values = ckt::evaluate(nl, in);
      EXPECT_EQ(unpack(nl, values, "p", 8), a * b) << a << "*" << b;
    }
  }
}

TEST(ArrayMultiplier, RandomSixteenBit) {
  auto nl = gen::array_multiplier(16, "c6288ish");
  mpe::Rng rng(7);
  for (int t = 0; t < 100; ++t) {
    const std::uint64_t a = rng.below(1ull << 16);
    const std::uint64_t b = rng.below(1ull << 16);
    std::vector<std::uint8_t> in(nl.num_inputs(), 0);
    pack(nl, in, "a", a, 16);
    pack(nl, in, "b", b, 16);
    const auto values = ckt::evaluate(nl, in);
    EXPECT_EQ(unpack(nl, values, "p", 32), a * b) << a << "*" << b;
  }
}

TEST(ArrayMultiplier, SixteenBitScaleMatchesC6288Class) {
  const auto nl = gen::array_multiplier(16);
  EXPECT_EQ(nl.num_inputs(), 32u);
  EXPECT_EQ(nl.num_outputs(), 32u);
  EXPECT_GT(nl.num_gates(), 1200u);  // full adder array
  EXPECT_GT(nl.depth(), 30u);        // deep ripple structure
}

TEST(Alu, AllOpsRandomCases) {
  constexpr std::size_t kBits = 8;
  auto nl = gen::alu(kBits);
  mpe::Rng rng(19);
  for (int t = 0; t < 200; ++t) {
    const std::uint64_t a = rng.below(1ull << kBits);
    const std::uint64_t b = rng.below(1ull << kBits);
    const std::uint64_t op = rng.below(4);
    std::vector<std::uint8_t> in(nl.num_inputs(), 0);
    pack(nl, in, "a", a, kBits);
    pack(nl, in, "b", b, kBits);
    pack(nl, in, "op0", op & 1, 1);
    pack(nl, in, "op1", (op >> 1) & 1, 1);
    const auto values = ckt::evaluate(nl, in);
    const std::uint64_t r = unpack(nl, values, "r", kBits);
    const std::uint64_t mask = (1ull << kBits) - 1;
    std::uint64_t expect = 0;
    switch (op) {
      case 0: expect = a & b; break;
      case 1: expect = a | b; break;
      case 2: expect = (a + b) & mask; break;
      case 3: expect = (a - b) & mask; break;
    }
    EXPECT_EQ(r, expect) << "op=" << op << " a=" << a << " b=" << b;
  }
}

TEST(Alu, SubtractSetsCarryAsNotBorrow) {
  auto nl = gen::alu(4);
  std::vector<std::uint8_t> in(nl.num_inputs(), 0);
  pack(nl, in, "a", 7, 4);
  pack(nl, in, "b", 3, 4);
  pack(nl, in, "op0", 1, 1);
  pack(nl, in, "op1", 1, 1);
  auto values = ckt::evaluate(nl, in);
  EXPECT_EQ(values[*nl.find("cout")], 1);  // 7 >= 3: no borrow
  pack(nl, in, "a", 2, 4);
  pack(nl, in, "b", 9, 4);
  values = ckt::evaluate(nl, in);
  EXPECT_EQ(values[*nl.find("cout")], 0);  // 2 < 9: borrow
}

TEST(Comparator, ExhaustiveFourBit) {
  auto nl = gen::comparator(4);
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      std::vector<std::uint8_t> in(nl.num_inputs(), 0);
      pack(nl, in, "a", a, 4);
      pack(nl, in, "b", b, 4);
      const auto values = ckt::evaluate(nl, in);
      EXPECT_EQ(values[*nl.find("lt")], a < b ? 1 : 0) << a << "," << b;
      EXPECT_EQ(values[*nl.find("eq")], a == b ? 1 : 0) << a << "," << b;
      EXPECT_EQ(values[*nl.find("gt")], a > b ? 1 : 0) << a << "," << b;
    }
  }
}

class AdderWidths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AdderWidths, MaxValuesCarryOut) {
  const std::size_t bits = GetParam();
  auto nl = gen::ripple_carry_adder(bits);
  std::vector<std::uint8_t> in(nl.num_inputs(), 0);
  const std::uint64_t maxv = (bits >= 64) ? ~0ull : (1ull << bits) - 1;
  pack(nl, in, "a", maxv, bits);
  pack(nl, in, "b", 1, bits);
  const auto values = ckt::evaluate(nl, in);
  EXPECT_EQ(unpack(nl, values, "s", bits), 0u);
  EXPECT_EQ(values[*nl.find("cout")], 1);
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderWidths,
                         ::testing::Values(1, 2, 8, 16, 32));

}  // namespace
