#include "circuit/netlist.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/contracts.hpp"

namespace {

namespace ckt = mpe::circuit;
using ckt::GateType;
using ckt::Netlist;

Netlist tiny() {
  // c = a NAND b; d = NOT c; output d.
  Netlist nl("tiny");
  nl.add_input("a");
  nl.add_input("b");
  nl.add_gate(GateType::kNand, "c", {"a", "b"});
  nl.add_gate(GateType::kNot, "d", {"c"});
  nl.mark_output("d");
  nl.finalize();
  return nl;
}

TEST(Netlist, BasicCounts) {
  const Netlist nl = tiny();
  EXPECT_EQ(nl.num_inputs(), 2u);
  EXPECT_EQ(nl.num_outputs(), 1u);
  EXPECT_EQ(nl.num_gates(), 2u);
  EXPECT_EQ(nl.num_nodes(), 4u);
  EXPECT_EQ(nl.name(), "tiny");
}

TEST(Netlist, FindAndNames) {
  const Netlist nl = tiny();
  ASSERT_TRUE(nl.find("c").has_value());
  EXPECT_EQ(nl.node_name(*nl.find("c")), "c");
  EXPECT_FALSE(nl.find("zz").has_value());
}

TEST(Netlist, DriversAndIo) {
  const Netlist nl = tiny();
  const auto a = *nl.find("a");
  const auto c = *nl.find("c");
  const auto d = *nl.find("d");
  EXPECT_TRUE(nl.is_input(a));
  EXPECT_FALSE(nl.is_input(c));
  EXPECT_TRUE(nl.is_output(d));
  EXPECT_EQ(nl.driver(a), ckt::kNoGate);
  EXPECT_NE(nl.driver(c), ckt::kNoGate);
  EXPECT_EQ(nl.gate(nl.driver(c)).type, GateType::kNand);
}

TEST(Netlist, LevelsAndDepth) {
  const Netlist nl = tiny();
  EXPECT_EQ(nl.level(*nl.find("a")), 0u);
  EXPECT_EQ(nl.level(*nl.find("c")), 1u);
  EXPECT_EQ(nl.level(*nl.find("d")), 2u);
  EXPECT_EQ(nl.depth(), 2u);
}

TEST(Netlist, FanoutLists) {
  const Netlist nl = tiny();
  const auto a = *nl.find("a");
  const auto c = *nl.find("c");
  ASSERT_EQ(nl.fanout(a).size(), 1u);
  EXPECT_EQ(nl.gate(nl.fanout(a)[0]).output, c);
  EXPECT_TRUE(nl.fanout(*nl.find("d")).empty());
}

TEST(Netlist, TopoOrderRespectsDependencies) {
  // Build with forward references: declare gates out of order.
  Netlist nl("fwd");
  nl.add_input("x");
  nl.add_gate(GateType::kNot, "top", {"mid"});   // uses mid before defined
  nl.add_gate(GateType::kNot, "mid", {"x"});
  nl.mark_output("top");
  nl.finalize();
  const auto& topo = nl.topo_order();
  ASSERT_EQ(topo.size(), 2u);
  // The gate driving "mid" must come first.
  EXPECT_EQ(nl.node_name(nl.gate(topo[0]).output), "mid");
  EXPECT_EQ(nl.node_name(nl.gate(topo[1]).output), "top");
}

TEST(Netlist, DetectsCombinationalCycle) {
  Netlist nl("cyc");
  nl.add_input("x");
  nl.add_gate(GateType::kAnd, "p", {"x", "q"});
  nl.add_gate(GateType::kAnd, "q", {"x", "p"});
  EXPECT_THROW(nl.finalize(), std::runtime_error);
}

TEST(Netlist, DetectsUndrivenSignal) {
  Netlist nl("undriven");
  nl.add_input("x");
  nl.add_gate(GateType::kAnd, "y", {"x", "ghost"});
  EXPECT_THROW(nl.finalize(), std::runtime_error);
}

TEST(Netlist, RejectsMultipleDrivers) {
  Netlist nl("multi");
  nl.add_input("a");
  nl.add_input("b");
  nl.add_gate(GateType::kNot, "y", {"a"});
  EXPECT_THROW(nl.add_gate(GateType::kNot, "y", {"b"}), std::runtime_error);
}

TEST(Netlist, RejectsDrivingAnInput) {
  Netlist nl("drivein");
  nl.add_input("a");
  nl.add_input("b");
  EXPECT_THROW(nl.add_gate(GateType::kNot, "a", {"b"}), std::runtime_error);
}

TEST(Netlist, RejectsDuplicateInput) {
  Netlist nl("dup");
  nl.add_input("a");
  EXPECT_THROW(nl.add_input("a"), std::runtime_error);
}

TEST(Netlist, RejectsWrongArity) {
  Netlist nl("arity");
  nl.add_input("a");
  nl.add_input("b");
  EXPECT_THROW(nl.add_gate(GateType::kNot, "x", {"a", "b"}),
               std::runtime_error);
  EXPECT_THROW(nl.add_gate(GateType::kAnd, "y", {"a"}), std::runtime_error);
}

TEST(Netlist, RequiresFinalizeForStructuralQueries) {
  Netlist nl("late");
  nl.add_input("a");
  nl.add_gate(GateType::kNot, "y", {"a"});
  EXPECT_THROW(nl.topo_order(), std::logic_error);
  EXPECT_THROW(nl.fanout(0), std::logic_error);
  nl.finalize();
  EXPECT_NO_THROW(nl.topo_order());
}

TEST(Netlist, MutationInvalidatesFinalize) {
  Netlist nl = tiny();
  EXPECT_TRUE(nl.finalized());
  nl.add_gate(GateType::kNot, "e", {"d"});
  EXPECT_FALSE(nl.finalized());
  nl.finalize();
  EXPECT_TRUE(nl.finalized());
}

TEST(Netlist, MarkOutputIdempotent) {
  Netlist nl = tiny();
  const auto d = *nl.find("d");
  nl.mark_output(d);
  nl.mark_output(d);
  EXPECT_EQ(nl.num_outputs(), 1u);
}

TEST(Netlist, EmptyInputsRejectedAtFinalize) {
  Netlist nl("noin");
  EXPECT_THROW(nl.finalize(), std::runtime_error);
}

TEST(Netlist, StatsBundle) {
  const Netlist nl = tiny();
  const auto s = nl.stats();
  EXPECT_EQ(s.num_gates, 2u);
  EXPECT_EQ(s.num_inputs, 2u);
  EXPECT_EQ(s.depth, 2u);
  EXPECT_EQ(s.max_fanin, 2u);
  EXPECT_EQ(s.gates_by_type[static_cast<std::size_t>(GateType::kNand)], 1u);
  EXPECT_EQ(s.gates_by_type[static_cast<std::size_t>(GateType::kNot)], 1u);
  // The NAND output feeds one gate; avg over driven nodes = (1 + 0) / 2.
  EXPECT_DOUBLE_EQ(s.avg_fanout, 0.5);
}

}  // namespace
