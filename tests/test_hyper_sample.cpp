#include "maxpower/hyper_sample.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "stats/weibull.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"
#include "vectors/population.hpp"

namespace {

namespace mp = mpe::maxpower;

mpe::vec::FinitePopulation weibull_population(std::size_t size,
                                              std::uint64_t seed,
                                              double alpha = 3.0,
                                              double mu = 10.0) {
  const mpe::stats::ReversedWeibull g(alpha, 1.0, mu);
  mpe::Rng rng(seed);
  std::vector<double> vals(size);
  for (auto& v : vals) v = g.sample(rng);
  return mpe::vec::FinitePopulation(std::move(vals), "synthetic weibull");
}

TEST(FinitePopulationEstimate, PaperTailQuantile) {
  const mpe::stats::WeibullParams p{3.0, 1.0, 10.0};
  const mpe::stats::ReversedWeibull g(p);
  const double est = mp::finite_population_estimate(
      p, 100000, 30, mp::FiniteQuantileMode::kPaperTail);
  EXPECT_NEAR(est, g.quantile(1.0 - 1e-5), 1e-12);
  EXPECT_LT(est, p.mu);
}

TEST(FinitePopulationEstimate, ExactPowerModeIsLower) {
  const mpe::stats::WeibullParams p{3.0, 1.0, 10.0};
  const double paper = mp::finite_population_estimate(
      p, 100000, 30, mp::FiniteQuantileMode::kPaperTail);
  const double exact = mp::finite_population_estimate(
      p, 100000, 30, mp::FiniteQuantileMode::kExactPower);
  // (1-1/V)^n < (1-1/V), so the exact-power quantile sits lower.
  EXPECT_LT(exact, paper);
}

TEST(HyperSample, UsesExactlyNmUnits) {
  auto pop = weibull_population(20000, 1);
  mp::HyperSampleOptions opt;
  mpe::Rng rng(2);
  const auto hs = mp::draw_hyper_sample(pop, opt, rng);
  EXPECT_EQ(hs.units_used, 300u);
}

TEST(HyperSample, EstimateNearTrueMaximum) {
  auto pop = weibull_population(50000, 3);
  mp::HyperSampleOptions opt;
  mpe::Rng rng(4);
  double sum = 0.0;
  const int reps = 60;
  for (int r = 0; r < reps; ++r) {
    sum += mp::draw_hyper_sample(pop, opt, rng).estimate;
  }
  const double mean_est = sum / reps;
  EXPECT_NEAR(mean_est, pop.true_max(), 0.08 * pop.true_max());
}

TEST(HyperSample, EstimateAtLeastObservedMax) {
  auto pop = weibull_population(5000, 5);
  mp::HyperSampleOptions opt;
  mpe::Rng rng(6);
  for (int r = 0; r < 20; ++r) {
    const auto hs = mp::draw_hyper_sample(pop, opt, rng);
    EXPECT_GE(hs.estimate, hs.sample_max);
  }
}

TEST(HyperSample, FiniteCorrectionReducesEstimate) {
  // mu-hat (infinite-population endpoint) >= finite-population quantile,
  // comparing on identical (raw) fits.
  auto pop = weibull_population(20000, 7);
  mp::HyperSampleOptions with;
  mp::HyperSampleOptions without;
  without.finite_correction = false;
  without.endpoint_ridge_tolerance = 0.0;  // same raw fit as the other arm
  mpe::Rng r1(8), r2(8);
  double sum_with = 0.0, sum_without = 0.0;
  for (int r = 0; r < 40; ++r) {
    sum_with += mp::draw_hyper_sample(pop, with, r1).estimate;
    sum_without += mp::draw_hyper_sample(pop, without, r2).estimate;
  }
  EXPECT_LT(sum_with, sum_without);
}

TEST(HyperSample, FiniteCorrectionFixesUpwardBias) {
  // The paper's Section 3.4: without the correction the *raw* MLE endpoint
  // is biased high relative to the finite population's true max; with it,
  // the mean lands near the truth. Use the raw MLE (ridge stabilization
  // off) to isolate the effect the paper describes.
  auto pop = weibull_population(10000, 9);
  mp::HyperSampleOptions with;
  with.mle.ridge_tolerance = 0.0;
  mp::HyperSampleOptions without;
  without.mle.ridge_tolerance = 0.0;
  without.endpoint_ridge_tolerance = 0.0;  // raw mu-hat, as in the paper
  without.finite_correction = false;
  mpe::Rng r1(10), r2(10);
  double sum_with = 0.0, sum_without = 0.0;
  const int reps = 120;
  for (int r = 0; r < reps; ++r) {
    sum_with += mp::draw_hyper_sample(pop, with, r1).estimate;
    sum_without += mp::draw_hyper_sample(pop, without, r2).estimate;
  }
  const double bias_with = sum_with / reps - pop.true_max();
  const double bias_without = sum_without / reps - pop.true_max();
  EXPECT_GT(bias_without, 0.0);  // uncorrected: biased high
  EXPECT_LT(std::fabs(bias_with), std::fabs(bias_without));
}

TEST(HyperSample, LargerNSharpensSampleMaxima) {
  auto pop = weibull_population(50000, 11);
  mp::HyperSampleOptions n30;
  mp::HyperSampleOptions n100;
  n100.n = 100;
  mpe::Rng r1(12), r2(12);
  double s30 = 0.0, s100 = 0.0;
  for (int r = 0; r < 30; ++r) {
    s30 += mp::draw_hyper_sample(pop, n30, r1).sample_max;
    s100 += mp::draw_hyper_sample(pop, n100, r2).sample_max;
  }
  EXPECT_GT(s100, s30);  // maxima of bigger samples sit higher
}

TEST(HyperSample, AllEqualMaximaYieldFlaggedConstantSample) {
  // A stuck-at population: every unit is 5.0, so all m maxima coincide and
  // the 3-parameter likelihood is undefined. The draw must report the common
  // value, flagged, instead of throwing or returning NaN.
  mpe::vec::FinitePopulation pop(std::vector<double>(64, 5.0), "stuck");
  mp::HyperSampleOptions opt;
  mpe::Rng rng(2);
  const auto hs = mp::draw_hyper_sample(pop, opt, rng);
  EXPECT_TRUE(hs.valid);
  EXPECT_TRUE(hs.constant_sample);
  EXPECT_TRUE(hs.degenerate);
  EXPECT_EQ(hs.estimate, 5.0);
  EXPECT_EQ(hs.sample_max, 5.0);
}

TEST(HyperSample, MinimumMOfThreeProducesFiniteEstimate) {
  auto pop = weibull_population(5000, 19);
  mp::HyperSampleOptions opt;
  opt.m = 3;  // the smallest legal hyper-sample
  opt.n = 2;
  mpe::Rng rng(20);
  const auto hs = mp::draw_hyper_sample(pop, opt, rng);
  EXPECT_EQ(hs.units_used, 6u);
  EXPECT_TRUE(std::isfinite(hs.estimate));
  EXPECT_GE(hs.estimate, hs.sample_max);
}

TEST(HyperSample, NanUnitsAreExcludedFromMaxima) {
  mpe::Rng gen(21);
  std::vector<double> vals(4000);
  for (std::size_t i = 0; i < vals.size(); ++i) {
    // Every tenth unit poisoned; plenty of finite units per sample remain.
    vals[i] = (i % 10 == 9) ? std::numeric_limits<double>::quiet_NaN()
                            : gen.uniform(1.0, 9.0);
  }
  mpe::vec::FinitePopulation pop(std::move(vals), "partly poisoned");
  mp::HyperSampleOptions opt;
  mpe::Rng rng(22);
  const auto hs = mp::draw_hyper_sample(pop, opt, rng);
  EXPECT_TRUE(hs.valid);
  EXPECT_GT(hs.nonfinite_units, 0u);
  EXPECT_TRUE(std::isfinite(hs.estimate));
  EXPECT_TRUE(std::isfinite(hs.sample_max));
}

TEST(HyperSample, AllNanPopulationIsInvalidNotFatal) {
  mpe::vec::FinitePopulation pop(
      std::vector<double>(64, std::numeric_limits<double>::quiet_NaN()),
      "all nan");
  mp::HyperSampleOptions opt;
  mpe::Rng rng(23);
  const auto hs = mp::draw_hyper_sample(pop, opt, rng);
  EXPECT_FALSE(hs.valid);
  EXPECT_TRUE(hs.degenerate);
  EXPECT_TRUE(std::isfinite(hs.estimate));
  EXPECT_EQ(hs.nonfinite_units, hs.units_used);
}

TEST(HyperSample, PwmFallbackEngagesOnHeavyTailedPopulation) {
  // alpha = 1.2 < 2 violates Smith's conditions: most raw fits come back
  // with alpha_below_two set. Under kPwmFallback the estimate must switch
  // to the L-moment fit for at least some draws, and stay finite always.
  auto pop = weibull_population(30000, 25, /*alpha=*/1.2, /*mu=*/10.0);
  mp::HyperSampleOptions opt;
  opt.degenerate_policy = mp::DegenerateFitPolicy::kPwmFallback;
  mpe::Rng rng(26);
  int degenerate = 0, used_pwm = 0;
  for (int r = 0; r < 30; ++r) {
    const auto hs = mp::draw_hyper_sample(pop, opt, rng);
    EXPECT_TRUE(std::isfinite(hs.estimate));
    EXPECT_GE(hs.estimate, hs.sample_max);
    if (hs.degenerate) ++degenerate;
    if (hs.used_pwm) ++used_pwm;
  }
  EXPECT_GT(degenerate, 0);
  EXPECT_GT(used_pwm, 0);
}

TEST(HyperSample, ContractChecks) {
  auto pop = weibull_population(1000, 13);
  mp::HyperSampleOptions bad;
  bad.m = 2;
  mpe::Rng rng(14);
  EXPECT_THROW(mp::draw_hyper_sample(pop, bad, rng), mpe::ContractViolation);
  bad = {};
  bad.n = 1;
  EXPECT_THROW(mp::draw_hyper_sample(pop, bad, rng), mpe::ContractViolation);
}

TEST(FinitePopulationEstimate, ContractChecks) {
  const mpe::stats::WeibullParams p{3.0, 1.0, 10.0};
  EXPECT_THROW(mp::finite_population_estimate(
                   p, 1, 30, mp::FiniteQuantileMode::kPaperTail),
               mpe::ContractViolation);
}

}  // namespace
