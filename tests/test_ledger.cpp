// maxpower/ledger: per-record CRC seals, corruption quarantine anywhere in
// the file (not just the torn final line), legacy CRC-less compatibility,
// the exactly-once audit, and the canonical merge used to prove a
// distributed campaign byte-identical to a single-process run.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <system_error>

#include "maxpower/campaign.hpp"
#include "maxpower/ledger.hpp"
#include "util/atomic_file.hpp"

namespace {

namespace mp = mpe::maxpower;

std::string record(const std::string& job, const std::string& status,
                   double estimate = 0.0) {
  mp::CampaignJobOutcome outcome;
  outcome.name = job;
  outcome.status = *mp::job_status_from_name(status);
  outcome.attempts = 1;
  if (outcome.status == mp::JobStatus::kDone) {
    outcome.result.estimate = estimate;
    outcome.result.hyper_samples = 10;
    outcome.result.units_used = 2500;
    outcome.result.converged = true;
  } else if (outcome.status == mp::JobStatus::kFailed) {
    outcome.error = mpe::ErrorCode::kNonConvergence;
  }
  return mp::campaign_record_line(outcome);
}

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::error_code ec;
  std::filesystem::remove(path, ec);
  std::filesystem::remove(path + ".quarantine", ec);
  return path;
}

TEST(LedgerSeal, SealAppendsCrcSuffixAndVerifies) {
  const std::string sealed = record("j1", "done", 4.5);
  EXPECT_TRUE(mp::ledger_line_sealed(sealed));
  EXPECT_TRUE(mp::verify_ledger_line(sealed));
  // The seal is a strict suffix: stripping it recovers a valid object that
  // seals back to the identical line.
  const std::string body = sealed.substr(0, sealed.size() - 18) + "}";
  EXPECT_EQ(mp::seal_ledger_line(body), sealed);
}

TEST(LedgerSeal, AnySingleBitFlipIsDetected) {
  const std::string sealed = record("j1", "done", 4.5);
  const std::size_t seal_at = sealed.size() - 18;
  for (std::size_t i = 0; i < sealed.size(); ++i) {
    std::string mutated = sealed;
    mutated[i] ^= 0x01;
    if (i < seal_at) {
      // A body flip leaves the seal syntax intact, so the line still claims
      // to be sealed — and CRC-32 catches every single-bit error.
      EXPECT_TRUE(mp::ledger_line_sealed(mutated)) << "flip at byte " << i;
      EXPECT_FALSE(mp::verify_ledger_line(mutated)) << "flip at byte " << i;
    } else if (mp::ledger_line_sealed(mutated)) {
      // A flip inside the seal either breaks its syntax (the record demotes
      // to legacy/corrupt handling) or survives as hex — which must then
      // fail verification.
      EXPECT_FALSE(mp::verify_ledger_line(mutated)) << "flip at byte " << i;
    }
  }
}

TEST(LedgerSeal, RejectsNonObjectInput) {
  EXPECT_THROW((void)mp::seal_ledger_line("not json"), mpe::Error);
  EXPECT_THROW((void)mp::seal_ledger_line("{}"), mpe::Error);
}

TEST(LedgerRead, MidFileCorruptionIsQuarantinedNotFatal) {
  std::string text = record("a", "done", 1.0) + "\n";
  std::string bad = record("b", "done", 2.0);
  bad[bad.size() / 2] ^= 0x40;  // bit rot in the middle of the file
  text += bad + "\n";
  text += record("c", "done", 3.0) + "\n";

  const auto read = mp::read_ledger_text(text);
  ASSERT_EQ(read.records.size(), 2u);
  EXPECT_EQ(read.records[0].job, "a");
  EXPECT_EQ(read.records[1].job, "c");
  ASSERT_EQ(read.corrupt.size(), 1u);
  EXPECT_EQ(read.corrupt[0], bad);
  // The corrupt record cannot mark job b done.
  const auto final = read.final_status();
  EXPECT_EQ(final.count("b"), 0u);
}

TEST(LedgerRead, LegacyUnsealedRecordsStillLoad) {
  // Ledgers written before the CRC seal have bare JSON records; they must
  // keep loading (reported as legacy, not corrupt).
  const std::string text =
      R"({"schema":"mpe.campaign","v":1,"job":"old","status":"done",)"
      R"("attempts":1,"estimate":5.25,"hyper_samples":8,"units":2000,)"
      R"("converged":true})" "\n" +
      record("new", "done", 6.5) + "\n";
  const auto read = mp::read_ledger_text(text);
  ASSERT_EQ(read.records.size(), 2u);
  EXPECT_EQ(read.legacy, 1u);
  EXPECT_TRUE(read.corrupt.empty());
  EXPECT_FALSE(read.records[0].sealed);
  EXPECT_TRUE(read.records[1].sealed);
  EXPECT_EQ(read.final_status().at("old"), "done");
}

TEST(LedgerRead, TornFinalLineAndForeignSchemasAreHandled) {
  const std::string text = record("a", "done", 1.0) + "\n" +
                           R"({"schema":"mpe.footer","note":"not a job"})" +
                           "\n" + R"({"schema":"mpe.campaign","v":1,"jo)";
  const auto read = mp::read_ledger_text(text);
  EXPECT_EQ(read.records.size(), 1u);
  EXPECT_EQ(read.ignored, 1u);          // foreign schema line
  EXPECT_EQ(read.corrupt.size(), 1u);   // torn tail
}

TEST(LedgerFile, AppendHealsTornTailAndQuarantineSidecars) {
  const std::string path = temp_path("ledger_heal.jsonl");
  // Simulate a crash mid-append: no trailing newline.
  mpe::util::atomic_write_file(path, record("a", "done", 1.0) + "\n" +
                                         R"({"schema":"mpe.campaign","v":1)");
  mp::append_ledger_line(path, record("b", "done", 2.0));

  const auto read = mp::read_ledger_file(path);
  ASSERT_EQ(read.records.size(), 2u);  // b was NOT fused onto the torn line
  EXPECT_EQ(read.records[1].job, "b");
  ASSERT_EQ(read.corrupt.size(), 1u);

  EXPECT_EQ(mp::quarantine_ledger_lines(path, read.corrupt), 1u);
  const std::string side = mpe::util::read_file(path + ".quarantine");
  EXPECT_NE(side.find(R"("v":1)"), std::string::npos);
}

TEST(LedgerAudit, CleanLedgerPasses) {
  const auto read = mp::read_ledger_text(record("a", "done", 1.0) + "\n" +
                                         record("b", "failed") + "\n");
  const auto audit = mp::audit_ledger(read);
  EXPECT_TRUE(audit.ok());
  EXPECT_EQ(audit.done_jobs, 1u);
  EXPECT_EQ(audit.failed_jobs, 1u);
  EXPECT_EQ(audit.duplicate_done, 0u);
}

TEST(LedgerAudit, IdenticalDuplicateDoneIsBenign) {
  // At-least-once result delivery can legitimately append the same done
  // record twice (e.g. a resumed job re-reporting its checkpointed result).
  const std::string done = record("a", "done", 1.5);
  const auto read = mp::read_ledger_text(done + "\n" + done + "\n");
  const auto audit = mp::audit_ledger(read);
  EXPECT_TRUE(audit.ok());
  EXPECT_EQ(audit.done_jobs, 1u);
  EXPECT_EQ(audit.duplicate_done, 1u);
}

TEST(LedgerAudit, DivergentDoneRecordsAreAViolation) {
  // Two done records disagreeing on the payload means a job's
  // post-checkpoint tail ran twice with different state — the exactly-once
  // property was broken and the audit must say so.
  const auto read = mp::read_ledger_text(record("a", "done", 1.5) + "\n" +
                                         record("a", "done", 2.5) + "\n");
  const auto audit = mp::audit_ledger(read);
  ASSERT_EQ(audit.violations.size(), 1u);
  EXPECT_NE(audit.violations[0].find("divergent"), std::string::npos);
}

TEST(LedgerAudit, RegressionFromDoneIsAViolation) {
  const auto read = mp::read_ledger_text(record("a", "done", 1.5) + "\n" +
                                         record("a", "failed") + "\n");
  const auto audit = mp::audit_ledger(read);
  ASSERT_EQ(audit.violations.size(), 1u);
  EXPECT_NE(audit.violations[0].find("regressed"), std::string::npos);
}

TEST(LedgerMerge, CanonicalAcrossAppendOrderAndNoise) {
  // The same terminal facts in a different append order — with retries,
  // stopped records, and duplicate dones sprinkled in — must merge to the
  // identical canonical bytes.
  const std::string ledger1 = record("b", "done", 2.0) + "\n" +
                              record("a", "done", 1.0) + "\n" +
                              record("c", "failed") + "\n";
  const std::string ledger2 = record("c", "stopped") + "\n" +
                              record("a", "done", 1.0) + "\n" +
                              record("c", "failed") + "\n" +
                              record("b", "done", 2.0) + "\n" +
                              record("b", "done", 2.0) + "\n";
  const std::string merged1 = mp::merge_ledger(mp::read_ledger_text(ledger1));
  const std::string merged2 = mp::merge_ledger(mp::read_ledger_text(ledger2));
  EXPECT_EQ(merged1, merged2);
  EXPECT_NE(merged1.find("mpe.campaign.merged"), std::string::npos);
  // Deterministic fields only: per-invocation noise must not leak in.
  EXPECT_EQ(merged1.find("attempts"), std::string::npos);
  EXPECT_EQ(merged1.find("worker"), std::string::npos);
  EXPECT_EQ(merged1.find("crc"), std::string::npos);
}

TEST(LedgerMerge, InFlightJobsAreExcluded) {
  const auto read = mp::read_ledger_text(record("a", "done", 1.0) + "\n" +
                                         record("b", "stopped") + "\n");
  const std::string merged = mp::merge_ledger(read);
  EXPECT_NE(merged.find("\"job\":\"a\""), std::string::npos);
  EXPECT_EQ(merged.find("\"job\":\"b\""), std::string::npos);
}

}  // namespace
