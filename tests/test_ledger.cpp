// maxpower/ledger: per-record CRC seals, corruption quarantine anywhere in
// the file (not just the torn final line), legacy CRC-less compatibility,
// the exactly-once audit, and the canonical merge used to prove a
// distributed campaign byte-identical to a single-process run.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <system_error>
#include <vector>

#include "maxpower/campaign.hpp"
#include "maxpower/ledger.hpp"
#include "maxpower/shard.hpp"
#include "util/atomic_file.hpp"

namespace {

namespace mp = mpe::maxpower;

std::string record(const std::string& job, const std::string& status,
                   double estimate = 0.0) {
  mp::CampaignJobOutcome outcome;
  outcome.name = job;
  outcome.status = *mp::job_status_from_name(status);
  outcome.attempts = 1;
  if (outcome.status == mp::JobStatus::kDone) {
    outcome.result.estimate = estimate;
    outcome.result.hyper_samples = 10;
    outcome.result.units_used = 2500;
    outcome.result.converged = true;
  } else if (outcome.status == mp::JobStatus::kFailed) {
    outcome.error = mpe::ErrorCode::kNonConvergence;
  }
  return mp::campaign_record_line(outcome);
}

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::error_code ec;
  std::filesystem::remove(path, ec);
  std::filesystem::remove(path + ".quarantine", ec);
  return path;
}

TEST(LedgerSeal, SealAppendsCrcSuffixAndVerifies) {
  const std::string sealed = record("j1", "done", 4.5);
  EXPECT_TRUE(mp::ledger_line_sealed(sealed));
  EXPECT_TRUE(mp::verify_ledger_line(sealed));
  // The seal is a strict suffix: stripping it recovers a valid object that
  // seals back to the identical line.
  const std::string body = sealed.substr(0, sealed.size() - 18) + "}";
  EXPECT_EQ(mp::seal_ledger_line(body), sealed);
}

TEST(LedgerSeal, AnySingleBitFlipIsDetected) {
  const std::string sealed = record("j1", "done", 4.5);
  const std::size_t seal_at = sealed.size() - 18;
  for (std::size_t i = 0; i < sealed.size(); ++i) {
    std::string mutated = sealed;
    mutated[i] ^= 0x01;
    if (i < seal_at) {
      // A body flip leaves the seal syntax intact, so the line still claims
      // to be sealed — and CRC-32 catches every single-bit error.
      EXPECT_TRUE(mp::ledger_line_sealed(mutated)) << "flip at byte " << i;
      EXPECT_FALSE(mp::verify_ledger_line(mutated)) << "flip at byte " << i;
    } else if (mp::ledger_line_sealed(mutated)) {
      // A flip inside the seal either breaks its syntax (the record demotes
      // to legacy/corrupt handling) or survives as hex — which must then
      // fail verification.
      EXPECT_FALSE(mp::verify_ledger_line(mutated)) << "flip at byte " << i;
    }
  }
}

TEST(LedgerSeal, RejectsNonObjectInput) {
  EXPECT_THROW((void)mp::seal_ledger_line("not json"), mpe::Error);
  EXPECT_THROW((void)mp::seal_ledger_line("{}"), mpe::Error);
}

TEST(LedgerRead, MidFileCorruptionIsQuarantinedNotFatal) {
  std::string text = record("a", "done", 1.0) + "\n";
  std::string bad = record("b", "done", 2.0);
  bad[bad.size() / 2] ^= 0x40;  // bit rot in the middle of the file
  text += bad + "\n";
  text += record("c", "done", 3.0) + "\n";

  const auto read = mp::read_ledger_text(text);
  ASSERT_EQ(read.records.size(), 2u);
  EXPECT_EQ(read.records[0].job, "a");
  EXPECT_EQ(read.records[1].job, "c");
  ASSERT_EQ(read.corrupt.size(), 1u);
  EXPECT_EQ(read.corrupt[0], bad);
  // The corrupt record cannot mark job b done.
  const auto final = read.final_status();
  EXPECT_EQ(final.count("b"), 0u);
}

TEST(LedgerRead, LegacyUnsealedRecordsStillLoad) {
  // Ledgers written before the CRC seal have bare JSON records; they must
  // keep loading (reported as legacy, not corrupt).
  const std::string text =
      R"({"schema":"mpe.campaign","v":1,"job":"old","status":"done",)"
      R"("attempts":1,"estimate":5.25,"hyper_samples":8,"units":2000,)"
      R"("converged":true})" "\n" +
      record("new", "done", 6.5) + "\n";
  const auto read = mp::read_ledger_text(text);
  ASSERT_EQ(read.records.size(), 2u);
  EXPECT_EQ(read.legacy, 1u);
  EXPECT_TRUE(read.corrupt.empty());
  EXPECT_FALSE(read.records[0].sealed);
  EXPECT_TRUE(read.records[1].sealed);
  EXPECT_EQ(read.final_status().at("old"), "done");
}

TEST(LedgerRead, TornFinalLineAndForeignSchemasAreHandled) {
  const std::string text = record("a", "done", 1.0) + "\n" +
                           R"({"schema":"mpe.footer","note":"not a job"})" +
                           "\n" + R"({"schema":"mpe.campaign","v":1,"jo)";
  const auto read = mp::read_ledger_text(text);
  EXPECT_EQ(read.records.size(), 1u);
  EXPECT_EQ(read.ignored, 1u);          // foreign schema line
  EXPECT_EQ(read.corrupt.size(), 1u);   // torn tail
}

TEST(LedgerFile, AppendHealsTornTailAndQuarantineSidecars) {
  const std::string path = temp_path("ledger_heal.jsonl");
  // Simulate a crash mid-append: no trailing newline.
  mpe::util::atomic_write_file(path, record("a", "done", 1.0) + "\n" +
                                         R"({"schema":"mpe.campaign","v":1)");
  mp::append_ledger_line(path, record("b", "done", 2.0));

  const auto read = mp::read_ledger_file(path);
  ASSERT_EQ(read.records.size(), 2u);  // b was NOT fused onto the torn line
  EXPECT_EQ(read.records[1].job, "b");
  ASSERT_EQ(read.corrupt.size(), 1u);

  EXPECT_EQ(mp::quarantine_ledger_lines(path, read.corrupt), 1u);
  const std::string side = mpe::util::read_file(path + ".quarantine");
  EXPECT_NE(side.find(R"("v":1)"), std::string::npos);
}

TEST(LedgerAudit, CleanLedgerPasses) {
  const auto read = mp::read_ledger_text(record("a", "done", 1.0) + "\n" +
                                         record("b", "failed") + "\n");
  const auto audit = mp::audit_ledger(read);
  EXPECT_TRUE(audit.ok());
  EXPECT_EQ(audit.done_jobs, 1u);
  EXPECT_EQ(audit.failed_jobs, 1u);
  EXPECT_EQ(audit.duplicate_done, 0u);
}

TEST(LedgerAudit, IdenticalDuplicateDoneIsBenign) {
  // At-least-once result delivery can legitimately append the same done
  // record twice (e.g. a resumed job re-reporting its checkpointed result).
  const std::string done = record("a", "done", 1.5);
  const auto read = mp::read_ledger_text(done + "\n" + done + "\n");
  const auto audit = mp::audit_ledger(read);
  EXPECT_TRUE(audit.ok());
  EXPECT_EQ(audit.done_jobs, 1u);
  EXPECT_EQ(audit.duplicate_done, 1u);
}

TEST(LedgerAudit, DivergentDoneRecordsAreAViolation) {
  // Two done records disagreeing on the payload means a job's
  // post-checkpoint tail ran twice with different state — the exactly-once
  // property was broken and the audit must say so.
  const auto read = mp::read_ledger_text(record("a", "done", 1.5) + "\n" +
                                         record("a", "done", 2.5) + "\n");
  const auto audit = mp::audit_ledger(read);
  ASSERT_EQ(audit.violations.size(), 1u);
  EXPECT_NE(audit.violations[0].find("divergent"), std::string::npos);
}

TEST(LedgerAudit, RegressionFromDoneIsAViolation) {
  const auto read = mp::read_ledger_text(record("a", "done", 1.5) + "\n" +
                                         record("a", "failed") + "\n");
  const auto audit = mp::audit_ledger(read);
  ASSERT_EQ(audit.violations.size(), 1u);
  EXPECT_NE(audit.violations[0].find("regressed"), std::string::npos);
}

TEST(LedgerMerge, CanonicalAcrossAppendOrderAndNoise) {
  // The same terminal facts in a different append order — with retries,
  // stopped records, and duplicate dones sprinkled in — must merge to the
  // identical canonical bytes.
  const std::string ledger1 = record("b", "done", 2.0) + "\n" +
                              record("a", "done", 1.0) + "\n" +
                              record("c", "failed") + "\n";
  const std::string ledger2 = record("c", "stopped") + "\n" +
                              record("a", "done", 1.0) + "\n" +
                              record("c", "failed") + "\n" +
                              record("b", "done", 2.0) + "\n" +
                              record("b", "done", 2.0) + "\n";
  const std::string merged1 = mp::merge_ledger(mp::read_ledger_text(ledger1));
  const std::string merged2 = mp::merge_ledger(mp::read_ledger_text(ledger2));
  EXPECT_EQ(merged1, merged2);
  EXPECT_NE(merged1.find("mpe.campaign.merged"), std::string::npos);
  // Deterministic fields only: per-invocation noise must not leak in.
  EXPECT_EQ(merged1.find("attempts"), std::string::npos);
  EXPECT_EQ(merged1.find("worker"), std::string::npos);
  EXPECT_EQ(merged1.find("crc"), std::string::npos);
}

TEST(LedgerMerge, InFlightJobsAreExcluded) {
  const auto read = mp::read_ledger_text(record("a", "done", 1.0) + "\n" +
                                         record("b", "stopped") + "\n");
  const std::string merged = mp::merge_ledger(read);
  EXPECT_NE(merged.find("\"job\":\"a\""), std::string::npos);
  EXPECT_EQ(merged.find("\"job\":\"b\""), std::string::npos);
}

// ------------------------------- shard partial-result records (dist, v2)

std::string shard_record(const std::string& job, std::uint64_t shard,
                         std::uint64_t lo, std::uint64_t hi,
                         double estimate = 5.0) {
  std::vector<mp::ShardSample> samples;
  for (std::uint64_t i = lo; i < hi; ++i) {
    mp::ShardSample s;
    s.index = i;
    s.estimate = estimate;
    s.units = 100;
    s.valid = true;
    s.mle_converged = true;
    samples.push_back(s);
  }
  return mp::shard_record_line(job, shard, lo, hi, "w0", samples);
}

TEST(LedgerShard, ShardRecordsAreBookkeepingNeverAJobStatus) {
  // A done shard is partial progress: it must not mark its job done, and
  // the canonical merge must not leak it into the result set.
  const auto partial = mp::read_ledger_text(shard_record("a", 0, 0, 8) + "\n");
  EXPECT_TRUE(mp::verify_ledger_line(shard_record("a", 0, 0, 8)));
  EXPECT_TRUE(partial.final_status().empty());
  EXPECT_EQ(mp::merge_ledger(partial).find("\"job\":\"a\""),
            std::string::npos);
  // Once the job's own terminal record lands, merge keys off that alone.
  const auto full = mp::read_ledger_text(shard_record("a", 0, 0, 8) + "\n" +
                                         record("a", "done", 1.0) + "\n");
  EXPECT_EQ(full.final_status().at("a"), "done");
  const std::string merged = mp::merge_ledger(full);
  EXPECT_NE(merged.find("\"job\":\"a\""), std::string::npos);
  EXPECT_EQ(merged.find("\"shard\""), std::string::npos);
  const auto audit = mp::audit_ledger(full);
  EXPECT_TRUE(audit.ok());
  EXPECT_EQ(audit.shard_records, 1u);
}

TEST(LedgerShard, IdenticalDuplicateShardIsBenign) {
  // Speculative re-dispatch means two workers can legally compute — and a
  // restarted coordinator re-append — the same shard. Determinism makes
  // the payloads identical, so the audit counts, not complains.
  const std::string line = shard_record("a", 1, 8, 16);
  const auto read = mp::read_ledger_text(line + "\n" + line + "\n" +
                                         record("a", "done", 1.0) + "\n");
  const auto audit = mp::audit_ledger(read);
  EXPECT_TRUE(audit.ok());
  EXPECT_EQ(audit.shard_records, 2u);
  EXPECT_EQ(audit.duplicate_shard, 1u);
}

TEST(LedgerShard, DivergentDuplicateShardIsAViolation) {
  // Two done records for one job:shard disagreeing on the payload breaks
  // the exactly-once key of the sharded control plane.
  const auto read =
      mp::read_ledger_text(shard_record("a", 1, 8, 16, 5.0) + "\n" +
                           shard_record("a", 1, 8, 16, 6.0) + "\n");
  const auto audit = mp::audit_ledger(read);
  ASSERT_EQ(audit.violations.size(), 1u);
  EXPECT_NE(audit.violations[0].find("divergent shard"), std::string::npos);
}

TEST(LedgerShard, ShardRecordAfterJobDoneIsAViolation) {
  // The coordinator acks late shard results without appending once the job
  // is terminal; a post-done shard record means two coordinators raced.
  const auto read = mp::read_ledger_text(record("a", "done", 1.0) + "\n" +
                                         shard_record("a", 2, 16, 24) + "\n");
  const auto audit = mp::audit_ledger(read);
  ASSERT_EQ(audit.violations.size(), 1u);
  EXPECT_NE(audit.violations[0].find("after done"), std::string::npos);
}

TEST(LedgerShard, CorruptShardRecordIsQuarantinedNotFatal) {
  std::string bad = shard_record("a", 0, 0, 8);
  bad[bad.size() / 2] ^= 0x01;  // bit rot inside the samples payload
  const std::string path = temp_path("ledger_shard_corrupt.jsonl");
  mpe::util::atomic_write_file(path, shard_record("a", 1, 8, 16) + "\n" +
                                         bad + "\n" +
                                         record("a", "done", 1.0) + "\n");
  const auto read = mp::read_ledger_file(path);
  ASSERT_EQ(read.records.size(), 2u);  // the good shard + the done record
  ASSERT_EQ(read.corrupt.size(), 1u);
  EXPECT_EQ(mp::quarantine_ledger_lines(path, read.corrupt), 1u);
  EXPECT_TRUE(mp::audit_ledger(read).ok());
}

}  // namespace
