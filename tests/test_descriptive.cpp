#include "stats/descriptive.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

namespace st = mpe::stats;

TEST(Descriptive, MeanAndVariance) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(st::mean(xs), 5.0);
  // Sum of squared deviations = 32; n-1 = 7.
  EXPECT_NEAR(st::variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(st::stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Descriptive, MinMax) {
  const std::vector<double> xs = {3.0, -1.0, 7.5, 2.0};
  EXPECT_DOUBLE_EQ(st::min(xs), -1.0);
  EXPECT_DOUBLE_EQ(st::max(xs), 7.5);
}

TEST(Descriptive, QuantileInterpolation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(st::quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(st::quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(st::quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(st::quantile(xs, 1.0 / 3.0), 2.0);
}

TEST(Descriptive, QuantileUnsortedInput) {
  const std::vector<double> xs = {9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(st::quantile(xs, 0.5), 5.0);
}

TEST(Descriptive, SkewnessOfSymmetricIsZero) {
  const std::vector<double> xs = {-2.0, -1.0, 0.0, 1.0, 2.0};
  EXPECT_NEAR(st::skewness(xs), 0.0, 1e-12);
}

TEST(Descriptive, SkewnessSignDetectsTail) {
  const std::vector<double> right = {1.0, 1.1, 1.2, 1.3, 10.0};
  EXPECT_GT(st::skewness(right), 1.0);
  const std::vector<double> left = {-10.0, 1.0, 1.1, 1.2, 1.3};
  EXPECT_LT(st::skewness(left), -1.0);
}

TEST(Descriptive, KurtosisOfNormalSampleNearZero) {
  mpe::Rng rng(5);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = rng.normal();
  EXPECT_NEAR(st::excess_kurtosis(xs), 0.0, 0.1);
}

TEST(Descriptive, SummaryBundleConsistent) {
  const std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  const auto s = st::summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.q25, 2.0);
  EXPECT_DOUBLE_EQ(s.q75, 4.0);
}

TEST(Descriptive, PreconditionsEnforced) {
  const std::vector<double> empty;
  const std::vector<double> one = {1.0};
  EXPECT_THROW(st::mean(empty), mpe::ContractViolation);
  EXPECT_THROW(st::variance(one), mpe::ContractViolation);
  EXPECT_THROW(st::quantile(one, 1.5), mpe::ContractViolation);
  const std::vector<double> two = {1.0, 2.0};
  EXPECT_THROW(st::skewness(two), mpe::ContractViolation);
}

class QuantileMonotone : public ::testing::TestWithParam<double> {};

TEST_P(QuantileMonotone, QuantileIsMonotoneInQ) {
  mpe::Rng rng(static_cast<std::uint64_t>(GetParam() * 1000));
  std::vector<double> xs(500);
  for (auto& x : xs) x = rng.normal(0.0, GetParam());
  double prev = st::quantile(xs, 0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = st::quantile(xs, q);
    EXPECT_GE(cur, prev - 1e-12);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, QuantileMonotone,
                         ::testing::Values(0.5, 1.0, 2.0, 10.0));

}  // namespace
