#include "vectors/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <sstream>

#include "util/rng.hpp"

namespace {

namespace vec = mpe::vec;

vec::FinitePopulation sample_population(std::size_t n, std::uint64_t seed) {
  mpe::Rng rng(seed);
  std::vector<double> values(n);
  for (auto& v : values) v = rng.uniform(0.0, 123.456);
  return vec::FinitePopulation(std::move(values), "test population #" +
                                                      std::to_string(seed));
}

TEST(Serialize, RoundTripPreservesEverything) {
  const auto original = sample_population(1000, 7);
  std::stringstream buffer;
  vec::save_population(buffer, original);
  const auto loaded = vec::load_population(buffer);
  EXPECT_EQ(loaded.description(), original.description());
  ASSERT_EQ(loaded.values().size(), original.values().size());
  for (std::size_t i = 0; i < original.values().size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.values()[i], original.values()[i]);
  }
  EXPECT_DOUBLE_EQ(loaded.true_max(), original.true_max());
}

TEST(Serialize, RoundTripExactBits) {
  // Values with tricky bit patterns must survive exactly.
  std::vector<double> values = {1e-300, 1e300, 0.1, 1.0 / 3.0,
                                -0.0, 5e-324, 1.7976931348623157e308};
  const vec::FinitePopulation original(values, "bits");
  std::stringstream buffer;
  vec::save_population(buffer, original);
  const auto loaded = vec::load_population(buffer);
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(std::memcmp(&loaded.values()[i], &values[i], sizeof(double)),
              0);
  }
}

TEST(Serialize, FileRoundTrip) {
  const auto original = sample_population(200, 9);
  const std::string path = ::testing::TempDir() + "/mpe_pop.bin";
  vec::save_population_file(path, original);
  const auto loaded = vec::load_population_file(path);
  EXPECT_EQ(loaded.values().size(), 200u);
  EXPECT_DOUBLE_EQ(loaded.true_max(), original.true_max());
  std::remove(path.c_str());
}

TEST(Serialize, RejectsBadMagic) {
  std::stringstream buffer("this is not a population file");
  EXPECT_THROW(vec::load_population(buffer), std::runtime_error);
}

TEST(Serialize, RejectsTruncatedStream) {
  const auto original = sample_population(50, 3);
  std::stringstream buffer;
  vec::save_population(buffer, original);
  std::string data = buffer.str();
  data.resize(data.size() / 2);
  std::stringstream truncated(data);
  EXPECT_THROW(vec::load_population(truncated), std::runtime_error);
}

TEST(Serialize, RejectsMissingFile) {
  EXPECT_THROW(vec::load_population_file("/nonexistent/pop.bin"),
               std::runtime_error);
  const auto pop = sample_population(10, 1);
  EXPECT_THROW(vec::save_population_file("/nonexistent/dir/pop.bin", pop),
               std::runtime_error);
}

}  // namespace
