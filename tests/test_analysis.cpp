#include "circuit/analysis.hpp"

#include <gtest/gtest.h>

#include "circuit/builder.hpp"
#include "gen/trees.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

namespace ckt = mpe::circuit;

TEST(Evaluate, SimpleChain) {
  ckt::Netlist nl("chain");
  nl.add_input("a");
  nl.add_gate(ckt::GateType::kNot, "b", {"a"});
  nl.add_gate(ckt::GateType::kNot, "c", {"b"});
  nl.mark_output("c");
  nl.finalize();
  auto vals = ckt::evaluate(nl, std::vector<std::uint8_t>{1});
  EXPECT_EQ(vals[*nl.find("b")], 0);
  EXPECT_EQ(vals[*nl.find("c")], 1);
}

TEST(Evaluate, RequiresMatchingWidth) {
  ckt::Netlist nl("w");
  nl.add_input("a");
  nl.add_gate(ckt::GateType::kNot, "b", {"a"});
  nl.finalize();
  EXPECT_THROW(ckt::evaluate(nl, std::vector<std::uint8_t>{1, 0}),
               mpe::ContractViolation);
}

TEST(Activity, InverterTracksInputStatistics) {
  ckt::Netlist nl("inv");
  nl.add_input("a");
  nl.add_gate(ckt::GateType::kNot, "z", {"a"});
  nl.mark_output("z");
  nl.finalize();
  mpe::Rng rng(3);
  const auto prof = ckt::estimate_activity(nl, 20000, 0.5, 0.3, rng);
  // Inverter output probability = 1 - input probability = 0.5.
  EXPECT_NEAR(prof.signal_prob[*nl.find("z")], 0.5, 0.02);
  // Inverter toggles exactly when its input toggles: prob 0.3.
  EXPECT_NEAR(prof.toggle_prob[*nl.find("z")], 0.3, 0.02);
  EXPECT_NEAR(prof.toggle_prob[*nl.find("a")], 0.3, 0.02);
}

TEST(Activity, AndGateSignalProbability) {
  ckt::Netlist nl("and");
  nl.add_input("a");
  nl.add_input("b");
  nl.add_gate(ckt::GateType::kAnd, "z", {"a", "b"});
  nl.mark_output("z");
  nl.finalize();
  mpe::Rng rng(4);
  const auto prof = ckt::estimate_activity(nl, 30000, 0.5, 0.5, rng);
  EXPECT_NEAR(prof.signal_prob[*nl.find("z")], 0.25, 0.02);
}

TEST(Activity, BiasedInputsPropagate) {
  ckt::Netlist nl("or");
  nl.add_input("a");
  nl.add_input("b");
  nl.add_gate(ckt::GateType::kOr, "z", {"a", "b"});
  nl.finalize();
  mpe::Rng rng(5);
  // transition_prob = 0 keeps v2 == v1, so the signal probability is the
  // pure static value: P(or=1) = 1 - 0.1*0.1 = 0.99.
  const auto prof = ckt::estimate_activity(nl, 30000, 0.9, 0.0, rng);
  EXPECT_NEAR(prof.signal_prob[*nl.find("z")], 0.99, 0.005);
}

TEST(Activity, XorChainHasHighActivity) {
  // XOR trees propagate every input toggle; parity output toggles with
  // probability ~0.5 under transition prob 0.5 at the inputs.
  auto nl = mpe::gen::parity_tree(8, 2, "p8");
  mpe::Rng rng(6);
  const auto prof = ckt::estimate_activity(nl, 20000, 0.5, 0.5, rng);
  const auto parity = *nl.find("parity");
  EXPECT_NEAR(prof.toggle_prob[parity], 0.5, 0.03);
  EXPECT_GT(prof.avg_activity, 0.3);
}

TEST(Activity, ZeroTransitionProbMeansNoToggles) {
  auto nl = mpe::gen::parity_tree(4, 2, "p4");
  mpe::Rng rng(7);
  const auto prof = ckt::estimate_activity(nl, 1000, 0.5, 0.0, rng);
  EXPECT_DOUBLE_EQ(prof.avg_activity, 0.0);
}

TEST(LevelHistogram, CountsPerLevel) {
  ckt::Netlist nl("lvl");
  nl.add_input("a");
  nl.add_input("b");
  nl.add_gate(ckt::GateType::kAnd, "c", {"a", "b"});
  nl.add_gate(ckt::GateType::kNot, "d", {"c"});
  nl.finalize();
  const auto hist = ckt::level_histogram(nl);
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[0], 2u);  // two inputs
  EXPECT_EQ(hist[1], 1u);
  EXPECT_EQ(hist[2], 1u);
}

TEST(Activity, ContractChecks) {
  auto nl = mpe::gen::parity_tree(4, 2, "p4b");
  mpe::Rng rng(8);
  EXPECT_THROW(ckt::estimate_activity(nl, 0, 0.5, 0.5, rng),
               mpe::ContractViolation);
  EXPECT_THROW(ckt::estimate_activity(nl, 10, 1.5, 0.5, rng),
               mpe::ContractViolation);
}

}  // namespace
