#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/contracts.hpp"

namespace {

using mpe::Table;

TEST(Table, FormatsAlignedColumns) {
  Table t({"Circuit", "Power"});
  t.add_row({"c432", "1.818"});
  t.add_row({"c6288", "126.62"});
  std::ostringstream os;
  os << t;
  const std::string s = os.str();
  EXPECT_NE(s.find("Circuit"), std::string::npos);
  EXPECT_NE(s.find("c6288"), std::string::npos);
  // Every data line starts with the separator.
  EXPECT_EQ(s.find("| c432"), s.find("c432") - 2);
}

TEST(Table, RowArityEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), mpe::ContractViolation);
}

TEST(Table, EmptyHeaderRejected) {
  EXPECT_THROW(Table({}), mpe::ContractViolation);
}

TEST(Table, NumFormatsDigits) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.14159, 4), "3.1416");
  EXPECT_EQ(Table::num(std::nan(""), 2), "n/a");
}

TEST(Table, PctFormatsPercent) {
  EXPECT_EQ(Table::pct(0.053, 1), "5.3%");
  EXPECT_EQ(Table::pct(1.0, 0), "100%");
  EXPECT_EQ(Table::pct(-0.062, 1), "-6.2%");
}

TEST(Table, IntegerFormats) {
  EXPECT_EQ(Table::integer(2500), "2500");
  EXPECT_EQ(Table::integer(-3), "-3");
}

TEST(Table, RowCountTracksAdds) {
  Table t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

}  // namespace
