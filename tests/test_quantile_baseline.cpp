#include "maxpower/quantile_baseline.hpp"

#include <gtest/gtest.h>

#include "util/contracts.hpp"
#include "util/rng.hpp"
#include "vectors/population.hpp"

namespace {

namespace mp = mpe::maxpower;

mpe::vec::FinitePopulation uniform_population(std::size_t size,
                                              std::uint64_t seed) {
  mpe::Rng rng(seed);
  std::vector<double> vals(size);
  for (auto& v : vals) v = rng.uniform();
  return mpe::vec::FinitePopulation(std::move(vals), "uniform");
}

TEST(QuantileBaseline, EstimatesRequestedQuantile) {
  auto pop = uniform_population(100000, 1);
  mpe::Rng rng(2);
  const auto r = mp::quantile_baseline(pop, 5000, 0.95, rng);
  EXPECT_NEAR(r.estimate, 0.95, 0.02);
  EXPECT_EQ(r.units_used, 5000u);
  EXPECT_DOUBLE_EQ(r.quantile, 0.95);
}

TEST(QuantileBaseline, SystematicallyUnderestimatesEndpoint) {
  // The structural flaw the paper points out: a q-quantile with q < 1 is
  // below the right endpoint no matter how many units are sampled.
  auto pop = uniform_population(100000, 3);
  mpe::Rng rng(4);
  for (std::size_t units : {500u, 5000u, 20000u}) {
    const auto r = mp::quantile_baseline(pop, units, 0.99, rng);
    EXPECT_LT(r.estimate, 0.995) << units;
  }
}

TEST(QuantileBaseline, QuantileOneIsSampleMax) {
  auto pop = uniform_population(1000, 5);
  mpe::Rng rng(6);
  const auto r = mp::quantile_baseline(pop, 100, 1.0, rng);
  EXPECT_LE(r.estimate, pop.true_max());
  EXPECT_GT(r.estimate, 0.9);  // max of 100 uniforms
}

TEST(QuantileBaseline, HigherQuantileGivesHigherEstimate) {
  auto pop = uniform_population(50000, 7);
  mpe::Rng r1(8), r2(8);
  const auto lo = mp::quantile_baseline(pop, 4000, 0.9, r1);
  const auto hi = mp::quantile_baseline(pop, 4000, 0.99, r2);
  EXPECT_GT(hi.estimate, lo.estimate);
}

TEST(QuantileBaseline, ContractChecks) {
  auto pop = uniform_population(100, 9);
  mpe::Rng rng(10);
  EXPECT_THROW(mp::quantile_baseline(pop, 1, 0.9, rng),
               mpe::ContractViolation);
  EXPECT_THROW(mp::quantile_baseline(pop, 10, 0.0, rng),
               mpe::ContractViolation);
  EXPECT_THROW(mp::quantile_baseline(pop, 10, 1.1, rng),
               mpe::ContractViolation);
}

}  // namespace
