#include "sim/zero_delay_sim.hpp"

#include <gtest/gtest.h>

#include "circuit/builder.hpp"
#include "gen/arithmetic.hpp"
#include "util/rng.hpp"

namespace {

namespace ckt = mpe::circuit;
namespace sim = mpe::sim;

ckt::Netlist inverter() {
  ckt::Netlist nl("inv");
  nl.add_input("a");
  nl.add_gate(ckt::GateType::kNot, "z", {"a"});
  nl.mark_output("z");
  nl.finalize();
  return nl;
}

TEST(ZeroDelaySim, NoChangeNoEnergy) {
  const auto nl = inverter();
  sim::ZeroDelaySimulator s(nl, sim::Technology{});
  const auto r = s.evaluate(std::vector<std::uint8_t>{1},
                            std::vector<std::uint8_t>{1});
  EXPECT_EQ(r.toggles, 0u);
  EXPECT_DOUBLE_EQ(r.energy_pj, 0.0);
  EXPECT_DOUBLE_EQ(r.power_mw, 0.0);
}

TEST(ZeroDelaySim, InvertertogglesBothNodes) {
  const auto nl = inverter();
  sim::Technology tech;
  sim::ZeroDelaySimulator s(nl, tech);
  const auto r = s.evaluate(std::vector<std::uint8_t>{0},
                            std::vector<std::uint8_t>{1});
  EXPECT_EQ(r.toggles, 2u);  // input node and output node
  const auto& caps = s.node_caps();
  const double expected =
      tech.toggle_energy_pj(caps[0]) + tech.toggle_energy_pj(caps[1]);
  EXPECT_NEAR(r.energy_pj, expected, 1e-12);
  EXPECT_NEAR(r.power_mw, expected / tech.clock_period_ns, 1e-12);
}

TEST(ZeroDelaySim, MaskedInputDoesNotPropagate) {
  // AND with b = 0: toggling a toggles only the input node.
  ckt::Netlist nl("and");
  nl.add_input("a");
  nl.add_input("b");
  nl.add_gate(ckt::GateType::kAnd, "z", {"a", "b"});
  nl.finalize();
  sim::ZeroDelaySimulator s(nl, sim::Technology{});
  const auto r = s.evaluate(std::vector<std::uint8_t>{0, 0},
                            std::vector<std::uint8_t>{1, 0});
  EXPECT_EQ(r.toggles, 1u);
}

TEST(ZeroDelaySim, SymmetricPairsGiveSameEnergy) {
  // Energy of (v1 -> v2) equals (v2 -> v1): toggles are symmetric.
  auto nl = mpe::gen::ripple_carry_adder(8);
  sim::ZeroDelaySimulator s(nl, sim::Technology{});
  mpe::Rng rng(3);
  for (int t = 0; t < 50; ++t) {
    std::vector<std::uint8_t> v1(nl.num_inputs()), v2(nl.num_inputs());
    for (auto& b : v1) b = rng.bernoulli(0.5);
    for (auto& b : v2) b = rng.bernoulli(0.5);
    const auto fwd = s.evaluate(v1, v2);
    const auto bwd = s.evaluate(v2, v1);
    EXPECT_EQ(fwd.toggles, bwd.toggles);
    EXPECT_NEAR(fwd.energy_pj, bwd.energy_pj, 1e-9);
  }
}

TEST(ZeroDelaySim, EnergyScalesWithVddSquared) {
  auto nl = mpe::gen::ripple_carry_adder(4);
  sim::Technology t1;
  t1.vdd = 1.0;
  sim::Technology t2 = t1;
  t2.vdd = 2.0;
  sim::ZeroDelaySimulator s1(nl, t1), s2(nl, t2);
  std::vector<std::uint8_t> v1(nl.num_inputs(), 0), v2(nl.num_inputs(), 1);
  const auto r1 = s1.evaluate(v1, v2);
  const auto r2 = s2.evaluate(v1, v2);
  EXPECT_NEAR(r2.energy_pj, 4.0 * r1.energy_pj, 1e-9);
}

TEST(ZeroDelaySim, PowerInverselyProportionalToClock) {
  auto nl = mpe::gen::ripple_carry_adder(4);
  sim::Technology t1;
  t1.clock_period_ns = 10.0;
  sim::Technology t2 = t1;
  t2.clock_period_ns = 20.0;
  sim::ZeroDelaySimulator s1(nl, t1), s2(nl, t2);
  std::vector<std::uint8_t> v1(nl.num_inputs(), 0), v2(nl.num_inputs(), 1);
  EXPECT_NEAR(s1.evaluate(v1, v2).power_mw,
              2.0 * s2.evaluate(v1, v2).power_mw, 1e-9);
}

TEST(ZeroDelaySim, ReusableAcrossManyCalls) {
  auto nl = mpe::gen::array_multiplier(4);
  sim::ZeroDelaySimulator s(nl, sim::Technology{});
  mpe::Rng rng(9);
  double total = 0.0;
  for (int i = 0; i < 500; ++i) {
    std::vector<std::uint8_t> v1(nl.num_inputs()), v2(nl.num_inputs());
    for (auto& b : v1) b = rng.bernoulli(0.5);
    for (auto& b : v2) b = rng.bernoulli(0.5);
    total += s.evaluate(v1, v2).power_mw;
  }
  EXPECT_GT(total, 0.0);
}

}  // namespace
