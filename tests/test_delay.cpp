#include "sim/delay.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "circuit/netlist.hpp"
#include "sim/technology.hpp"

namespace {

namespace ckt = mpe::circuit;
namespace sim = mpe::sim;

ckt::Netlist fan_circuit() {
  ckt::Netlist nl("fan");
  nl.add_input("a");
  nl.add_input("b");
  nl.add_gate(ckt::GateType::kNand, "light", {"a", "b"});  // fans out to 1
  nl.add_gate(ckt::GateType::kNand, "heavy", {"a", "b"});  // fans out to 4
  nl.add_gate(ckt::GateType::kNot, "l0", {"light"});
  for (int i = 0; i < 4; ++i) {
    nl.add_gate(ckt::GateType::kNot, "h" + std::to_string(i), {"heavy"});
  }
  nl.finalize();
  return nl;
}

TEST(Delay, ModelNames) {
  EXPECT_STREQ(sim::to_string(sim::DelayModel::kZero), "zero");
  EXPECT_STREQ(sim::to_string(sim::DelayModel::kUnit), "unit");
  EXPECT_STREQ(sim::to_string(sim::DelayModel::kFanoutLoaded),
               "fanout-loaded");
}

TEST(Delay, ZeroModelAllZeros) {
  const auto nl = fan_circuit();
  sim::Technology tech;
  const auto caps = sim::node_capacitances(nl, tech);
  const auto d = sim::gate_delays(nl, tech, sim::DelayModel::kZero, caps);
  for (double v : d) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Delay, UnitModelUniform) {
  const auto nl = fan_circuit();
  sim::Technology tech;
  const auto caps = sim::node_capacitances(nl, tech);
  const auto d = sim::gate_delays(nl, tech, sim::DelayModel::kUnit, caps);
  for (double v : d) EXPECT_DOUBLE_EQ(v, tech.unit_delay_ns);
}

TEST(Delay, FanoutLoadedGrowsWithLoad) {
  const auto nl = fan_circuit();
  sim::Technology tech;
  const auto caps = sim::node_capacitances(nl, tech);
  const auto d =
      sim::gate_delays(nl, tech, sim::DelayModel::kFanoutLoaded, caps);
  const auto light_gate = nl.driver(*nl.find("light"));
  const auto heavy_gate = nl.driver(*nl.find("heavy"));
  EXPECT_GT(d[heavy_gate], d[light_gate]);
  for (double v : d) EXPECT_GT(v, 0.0);
}

TEST(Delay, XorSlowerThanInverterAtSameLoad) {
  ckt::Netlist nl("x");
  nl.add_input("a");
  nl.add_input("b");
  nl.add_gate(ckt::GateType::kXor, "x1", {"a", "b"});
  nl.add_gate(ckt::GateType::kNot, "n1", {"a"});
  nl.finalize();
  sim::Technology tech;
  const auto caps = sim::node_capacitances(nl, tech);
  const auto d =
      sim::gate_delays(nl, tech, sim::DelayModel::kFanoutLoaded, caps);
  EXPECT_GT(d[nl.driver(*nl.find("x1"))], d[nl.driver(*nl.find("n1"))]);
}

}  // namespace
