#include "vectors/parallel_db.hpp"

#include <gtest/gtest.h>

#include "gen/arithmetic.hpp"
#include "gen/trees.hpp"
#include "stats/descriptive.hpp"
#include "util/contracts.hpp"
#include "vectors/power_db.hpp"

namespace {

namespace vec = mpe::vec;

TEST(ParallelDb, BuildsRequestedSize) {
  auto nl = mpe::gen::parity_tree(16, 2);
  const vec::UniformPairGenerator gen(nl.num_inputs());
  vec::ParallelPowerDbOptions opt;
  opt.population_size = 3000;
  opt.threads = 4;
  const auto pop =
      vec::build_power_database_parallel(nl, gen, {}, opt);
  ASSERT_TRUE(pop.size().has_value());
  EXPECT_EQ(*pop.size(), 3000u);
  EXPECT_GT(pop.true_max(), 0.0);
}

TEST(ParallelDb, DeterministicAcrossThreadCounts) {
  auto nl = mpe::gen::ripple_carry_adder(8);
  const vec::UniformPairGenerator gen(nl.num_inputs());
  vec::ParallelPowerDbOptions opt;
  opt.population_size = 5000;
  opt.seed = 42;

  opt.threads = 1;
  const auto p1 = vec::build_power_database_parallel(nl, gen, {}, opt);
  opt.threads = 4;
  const auto p4 = vec::build_power_database_parallel(nl, gen, {}, opt);
  opt.threads = 13;
  const auto p13 = vec::build_power_database_parallel(nl, gen, {}, opt);

  ASSERT_EQ(p1.values().size(), p4.values().size());
  for (std::size_t i = 0; i < p1.values().size(); ++i) {
    EXPECT_DOUBLE_EQ(p1.values()[i], p4.values()[i]) << i;
    EXPECT_DOUBLE_EQ(p1.values()[i], p13.values()[i]) << i;
  }
}

TEST(ParallelDb, DifferentSeedsDiffer) {
  auto nl = mpe::gen::parity_tree(12, 2);
  const vec::UniformPairGenerator gen(nl.num_inputs());
  vec::ParallelPowerDbOptions opt;
  opt.population_size = 500;
  opt.seed = 1;
  const auto a = vec::build_power_database_parallel(nl, gen, {}, opt);
  opt.seed = 2;
  const auto b = vec::build_power_database_parallel(nl, gen, {}, opt);
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < 500; ++i) {
    if (a.values()[i] != b.values()[i]) ++diffs;
  }
  EXPECT_GT(diffs, 100u);
}

TEST(ParallelDb, MatchesStatisticsOfSerialBuild) {
  // Parallel and serial builders draw different streams but must agree in
  // distribution: compare means within Monte-Carlo tolerance.
  auto nl = mpe::gen::ripple_carry_adder(8);
  const vec::UniformPairGenerator gen(nl.num_inputs());

  vec::ParallelPowerDbOptions popt;
  popt.population_size = 20000;
  popt.threads = 4;
  const auto parallel =
      vec::build_power_database_parallel(nl, gen, {}, popt);

  mpe::sim::CyclePowerEvaluator eval(nl);
  vec::PowerDbOptions sopt;
  sopt.population_size = 20000;
  mpe::Rng rng(9);
  const auto serial = vec::build_power_database(gen, eval, sopt, rng);

  const double pm = mpe::stats::mean(parallel.values());
  const double sm = mpe::stats::mean(serial.values());
  EXPECT_NEAR(pm, sm, 0.03 * sm);
}

TEST(ParallelDb, SmallPopulationFewerChunksThanThreads) {
  auto nl = mpe::gen::parity_tree(8, 2);
  const vec::UniformPairGenerator gen(nl.num_inputs());
  vec::ParallelPowerDbOptions opt;
  opt.population_size = 10;  // single chunk
  opt.threads = 8;
  const auto pop = vec::build_power_database_parallel(nl, gen, {}, opt);
  EXPECT_EQ(*pop.size(), 10u);
}

TEST(ParallelDb, ContractChecks) {
  auto nl = mpe::gen::parity_tree(8, 2);
  const vec::UniformPairGenerator wrong(4);
  vec::ParallelPowerDbOptions opt;
  EXPECT_THROW(vec::build_power_database_parallel(nl, wrong, {}, opt),
               mpe::ContractViolation);
  const vec::UniformPairGenerator gen(nl.num_inputs());
  opt.population_size = 0;
  EXPECT_THROW(vec::build_power_database_parallel(nl, gen, {}, opt),
               mpe::ContractViolation);
}

}  // namespace
