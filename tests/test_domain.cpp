#include "evt/domain.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/gumbel.hpp"
#include "stats/weibull.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

namespace evt = mpe::evt;
using mpe::stats::Gumbel;
using mpe::stats::ReversedWeibull;

TEST(Domain, ToStringNames) {
  EXPECT_EQ(evt::to_string(evt::ExtremeDomain::kWeibull), "Weibull");
  EXPECT_EQ(evt::to_string(evt::ExtremeDomain::kGumbel), "Gumbel");
  EXPECT_EQ(evt::to_string(evt::ExtremeDomain::kFrechet), "Frechet");
}

TEST(Domain, ClassifiesWeibullData) {
  const ReversedWeibull g(3.0, 1.0, 4.0);
  mpe::Rng rng(1);
  std::vector<double> xs(2000);
  for (auto& x : xs) x = g.sample(rng);
  const auto c = evt::classify_domain(xs);
  EXPECT_EQ(c.best, evt::ExtremeDomain::kWeibull);
  EXPECT_LT(c.pwm_xi, -0.1);
  EXPECT_LT(c.ks_weibull, 0.05);
}

TEST(Domain, ClassifiesGumbelData) {
  const Gumbel g(0.0, 1.0);
  mpe::Rng rng(2);
  std::vector<double> xs(2000);
  for (auto& x : xs) x = g.sample(rng);
  const auto c = evt::classify_domain(xs);
  // Weibull with huge alpha can mimic Gumbel; accept either but require the
  // Gumbel fit itself to be excellent and the PWM shape to be near zero.
  EXPECT_LT(c.ks_gumbel, 0.05);
  EXPECT_NEAR(c.pwm_xi, 0.0, 0.12);
}

TEST(Domain, ClassifiesFrechetData) {
  mpe::Rng rng(3);
  std::vector<double> xs(2000);
  for (auto& x : xs) {
    const double u = 1.0 - rng.uniform() * (1.0 - 1e-16);
    x = std::pow(-std::log(u), -1.0 / 1.5);  // Frechet alpha = 1.5
  }
  const auto c = evt::classify_domain(xs);
  EXPECT_GT(c.pwm_xi, 0.2);
  EXPECT_EQ(c.best, evt::ExtremeDomain::kFrechet);
  // The pinned-location Fréchet fit is approximate; it only needs to beat
  // the finite-endpoint and exponential-tail alternatives.
  EXPECT_LT(c.ks_frechet, c.ks_weibull);
  EXPECT_LT(c.ks_frechet, c.ks_gumbel);
}

TEST(Domain, AllKsDistancesAreValid) {
  mpe::Rng rng(4);
  std::vector<double> xs(500);
  for (auto& x : xs) x = rng.uniform();
  const auto c = evt::classify_domain(xs);
  for (double d : {c.ks_frechet, c.ks_weibull, c.ks_gumbel}) {
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
}

TEST(Domain, UniformParentMaximaAreWeibullType) {
  // Maxima of uniforms have a finite endpoint -> Weibull domain (alpha = 1
  // for the parent; block maxima push the fitted shape near 1, so check the
  // PWM shape sign rather than the KS winner).
  mpe::Rng rng(5);
  std::vector<double> maxima(1500);
  for (auto& m : maxima) {
    double best = 0.0;
    for (int i = 0; i < 30; ++i) best = std::max(best, rng.uniform());
    m = best;
  }
  const auto c = evt::classify_domain(maxima);
  EXPECT_LT(c.pwm_xi, 0.0);
}

TEST(Domain, RejectsTinySamples) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_THROW(evt::classify_domain(xs), mpe::ContractViolation);
}

}  // namespace
