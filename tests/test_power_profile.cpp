#include "sim/power_profile.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/arithmetic.hpp"
#include "gen/trees.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

namespace sim = mpe::sim;
namespace vec = mpe::vec;

TEST(PowerProfile, SharesSumToOne) {
  auto nl = mpe::gen::ripple_carry_adder(8);
  const vec::UniformPairGenerator gen(nl.num_inputs());
  mpe::Rng rng(1);
  const auto prof = sim::profile_power(nl, gen, 200, {}, rng);
  double total_share = 0.0;
  for (const auto& np : prof.by_node) total_share += np.share;
  EXPECT_NEAR(total_share, 1.0, 1e-9);
  EXPECT_GT(prof.total_energy_pj, 0.0);
  EXPECT_EQ(prof.pairs, 200u);
}

TEST(PowerProfile, SortedByEnergyDescending) {
  auto nl = mpe::gen::array_multiplier(5);
  const vec::UniformPairGenerator gen(nl.num_inputs());
  mpe::Rng rng(2);
  const auto prof = sim::profile_power(nl, gen, 100, {}, rng);
  for (std::size_t i = 1; i < prof.by_node.size(); ++i) {
    EXPECT_GE(prof.by_node[i - 1].energy_pj, prof.by_node[i].energy_pj);
  }
}

TEST(PowerProfile, EnergyMatchesCycleTotals) {
  // Sum of per-node energies must equal the sum of per-cycle energies.
  auto nl = mpe::gen::parity_tree(12, 2);
  const vec::UniformPairGenerator gen(nl.num_inputs());
  sim::EventSimOptions opt;
  mpe::Rng rng(3);
  const auto prof = sim::profile_power(nl, gen, 150, opt, rng);

  // Replay the same stream manually.
  sim::EventSimulator ev(nl, opt);
  mpe::Rng rng2(3);
  double total = 0.0;
  for (int i = 0; i < 150; ++i) {
    const auto p = gen.generate(rng2);
    total += ev.evaluate(p.first, p.second).energy_pj;
  }
  EXPECT_NEAR(prof.total_energy_pj, total, 1e-6 * total + 1e-12);
}

TEST(PowerProfile, HighFanoutNodesDominate) {
  // In a parity tree the root XOR toggles on ~every cycle while leaf gates
  // toggle less; the top-energy node should be a frequently-toggling one.
  auto nl = mpe::gen::parity_tree(16, 2);
  const vec::UniformPairGenerator gen(nl.num_inputs());
  mpe::Rng rng(4);
  const auto prof = sim::profile_power(nl, gen, 400, {}, rng);
  EXPECT_GT(prof.by_node.front().toggles, 0.3);
  EXPECT_GT(prof.by_node.front().share, 1.0 / static_cast<double>(nl.num_nodes()));
}

TEST(PowerProfile, AvgAndMaxPowerConsistent) {
  auto nl = mpe::gen::ripple_carry_adder(6);
  const vec::UniformPairGenerator gen(nl.num_inputs());
  mpe::Rng rng(5);
  const auto prof = sim::profile_power(nl, gen, 300, {}, rng);
  EXPECT_GE(prof.max_power_mw, prof.avg_power_mw);
  EXPECT_GT(prof.avg_power_mw, 0.0);
}

TEST(PowerProfile, ContractChecks) {
  auto nl = mpe::gen::parity_tree(8, 2);
  const vec::UniformPairGenerator wrong(4);
  mpe::Rng rng(6);
  EXPECT_THROW(sim::profile_power(nl, wrong, 10, {}, rng),
               mpe::ContractViolation);
  const vec::UniformPairGenerator gen(nl.num_inputs());
  EXPECT_THROW(sim::profile_power(nl, gen, 0, {}, rng),
               mpe::ContractViolation);
}

}  // namespace
