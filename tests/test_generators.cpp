#include "vectors/generators.hpp"

#include <gtest/gtest.h>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

namespace vec = mpe::vec;

TEST(UniformPairGenerator, ProducesRightWidthAndMeanActivity) {
  const vec::UniformPairGenerator g(40);
  EXPECT_EQ(g.width(), 40u);
  mpe::Rng rng(1);
  double act = 0.0;
  const int reps = 3000;
  for (int i = 0; i < reps; ++i) {
    const auto p = g.generate(rng);
    ASSERT_EQ(p.first.size(), 40u);
    ASSERT_EQ(p.second.size(), 40u);
    act += p.activity();
  }
  EXPECT_NEAR(act / reps, 0.5, 0.01);
}

TEST(HighActivityPairGenerator, EnforcesThreshold) {
  const vec::HighActivityPairGenerator g(36, 0.3);
  mpe::Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GE(g.generate(rng).activity(), 0.3);
  }
}

TEST(HighActivityPairGenerator, MeanActivityShiftsUp) {
  const vec::HighActivityPairGenerator g(36, 0.45);
  mpe::Rng rng(3);
  double act = 0.0;
  const int reps = 2000;
  for (int i = 0; i < reps; ++i) act += g.generate(rng).activity();
  EXPECT_GT(act / reps, 0.5);  // truncation above 0.45 pushes the mean past 0.5
}

TEST(HighActivityPairGenerator, ExtremeThresholdFallsBackConstructively) {
  // At threshold 0.95 on 20 lines, rejection virtually never succeeds; the
  // constructive fallback must still deliver conforming pairs... the
  // fallback only guarantees > min_activity via forced flips.
  const vec::HighActivityPairGenerator g(20, 0.9);
  mpe::Rng rng(4);
  const auto p = g.generate(rng);
  EXPECT_GE(p.activity(), 0.9);
}

TEST(TransitionProbPairGenerator, ActivityMatchesTransitionProb) {
  for (double tp : {0.3, 0.7}) {
    const vec::TransitionProbPairGenerator g(50, tp);
    mpe::Rng rng(5);
    double act = 0.0;
    const int reps = 2000;
    for (int i = 0; i < reps; ++i) act += g.generate(rng).activity();
    EXPECT_NEAR(act / reps, tp, 0.01) << "tp=" << tp;
  }
}

TEST(TransitionProbPairGenerator, FirstVectorBias) {
  const vec::TransitionProbPairGenerator g(50, 0.5, 0.1);
  mpe::Rng rng(6);
  double ones = 0.0;
  const int reps = 2000;
  for (int i = 0; i < reps; ++i) {
    const auto p = g.generate(rng);
    for (auto b : p.first) ones += b;
  }
  EXPECT_NEAR(ones / (50.0 * reps), 0.1, 0.01);
}

TEST(Generators, DescriptionsAreInformative) {
  EXPECT_NE(vec::UniformPairGenerator(8).description().find("uniform"),
            std::string::npos);
  EXPECT_NE(
      vec::HighActivityPairGenerator(8, 0.3).description().find("high"),
      std::string::npos);
  EXPECT_NE(vec::TransitionProbPairGenerator(8, 0.7)
                .description()
                .find("transition"),
            std::string::npos);
}

TEST(Generators, ContractChecks) {
  EXPECT_THROW(vec::UniformPairGenerator(0), mpe::ContractViolation);
  EXPECT_THROW(vec::HighActivityPairGenerator(8, 1.0),
               mpe::ContractViolation);
  EXPECT_THROW(vec::TransitionProbPairGenerator(8, 1.5),
               mpe::ContractViolation);
}

class TransitionProbSweep : public ::testing::TestWithParam<double> {};

TEST_P(TransitionProbSweep, EmpiricalActivityTracksParameter) {
  const double tp = GetParam();
  const vec::TransitionProbPairGenerator g(64, tp);
  mpe::Rng rng(7);
  double act = 0.0;
  const int reps = 1500;
  for (int i = 0; i < reps; ++i) act += g.generate(rng).activity();
  EXPECT_NEAR(act / reps, tp, 0.015);
}

INSTANTIATE_TEST_SUITE_P(Probs, TransitionProbSweep,
                         ::testing::Values(0.05, 0.3, 0.5, 0.7, 0.95));

}  // namespace
