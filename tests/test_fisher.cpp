#include "evt/fisher.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "evt/weibull_mle.hpp"
#include "stats/descriptive.hpp"
#include "stats/weibull.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

namespace evt = mpe::evt;
using mpe::stats::ReversedWeibull;
using mpe::stats::WeibullParams;

std::vector<double> draw(const WeibullParams& p, int n, std::uint64_t seed) {
  const ReversedWeibull g(p);
  mpe::Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = g.sample(rng);
  return xs;
}

TEST(Fisher, ValidAtInteriorMaximum) {
  const WeibullParams truth{4.0, 1.0, 10.0};
  const auto xs = draw(truth, 500, 3);
  const auto fit = evt::fit_weibull_mle(xs);
  ASSERT_TRUE(fit.converged);
  const auto cov = evt::observed_covariance(xs, fit.params);
  ASSERT_TRUE(cov.valid);
  EXPECT_GT(cov.var_alpha(), 0.0);
  EXPECT_GT(cov.var_beta(), 0.0);
  EXPECT_GT(cov.var_mu(), 0.0);
  // Symmetry of the covariance matrix.
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_NEAR(cov.cov[i][j], cov.cov[j][i], 1e-12);
    }
  }
}

TEST(Fisher, VarianceShrinksWithSampleSize) {
  const WeibullParams truth{4.0, 1.0, 10.0};
  const auto small = draw(truth, 100, 5);
  const auto large = draw(truth, 1000, 5);
  const auto fs = evt::fit_weibull_mle(small);
  const auto fl = evt::fit_weibull_mle(large);
  const auto cs = evt::observed_covariance(small, fs.params);
  const auto cl = evt::observed_covariance(large, fl.params);
  ASSERT_TRUE(cs.valid && cl.valid);
  EXPECT_LT(cl.var_mu(), cs.var_mu());
}

TEST(Fisher, PredictedSdMatchesEmpiricalSpread) {
  // Theorem 3: the MLE endpoint is asymptotically normal with variance
  // sigma_mu^2 / m. Compare the observed-information prediction with the
  // empirical spread of mu-hat over independent replications.
  const WeibullParams truth{4.0, 1.0, 10.0};
  const int m = 400;
  std::vector<double> mu_hats;
  std::vector<double> predicted_sd;
  for (int rep = 0; rep < 40; ++rep) {
    const auto xs = draw(truth, m, 100 + rep);
    const auto fit = evt::fit_weibull_mle(xs);
    if (!fit.converged) continue;
    const auto cov = evt::observed_covariance(xs, fit.params);
    if (!cov.valid) continue;
    mu_hats.push_back(fit.params.mu);
    predicted_sd.push_back(std::sqrt(cov.var_mu()));
  }
  ASSERT_GE(mu_hats.size(), 20u);
  const double empirical = mpe::stats::stddev(mu_hats);
  const double predicted = mpe::stats::mean(predicted_sd);
  // Same order of magnitude with a factor-2 band (non-regular problem,
  // finite m): the point is the information matrix is usable, not exact.
  EXPECT_GT(predicted, 0.4 * empirical);
  EXPECT_LT(predicted, 2.5 * empirical);
}

TEST(Fisher, InvalidOnDegenerateInputs) {
  // Endpoint below the sample max -> no likelihood -> invalid.
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const WeibullParams bad{3.0, 1.0, 2.5};
  EXPECT_FALSE(evt::observed_covariance(xs, bad).valid);
  const WeibullParams bad2{-1.0, 1.0, 4.0};
  EXPECT_FALSE(evt::observed_covariance(xs, bad2).valid);
}

TEST(Fisher, EndpointIntervalCoversTruthMostly) {
  const WeibullParams truth{4.0, 1.0, 10.0};
  int covered = 0, usable = 0;
  for (int rep = 0; rep < 60; ++rep) {
    const auto xs = draw(truth, 300, 500 + rep);
    const auto fit = evt::fit_weibull_mle(xs);
    if (!fit.converged) continue;
    const auto cov = evt::observed_covariance(xs, fit.params);
    if (!cov.valid) continue;
    ++usable;
    const auto ci = evt::endpoint_interval(fit.params, cov, 0.90);
    if (ci.lower <= truth.mu && truth.mu <= ci.upper) ++covered;
  }
  ASSERT_GE(usable, 30);
  // Nominal 90%; allow generous slack for the non-regular small-m regime.
  EXPECT_GE(static_cast<double>(covered) / usable, 0.6);
}

TEST(Fisher, EndpointIntervalContracts) {
  const std::vector<double> xs = draw({4.0, 1.0, 10.0}, 500, 9);
  const auto fit = evt::fit_weibull_mle(xs);
  const auto cov = evt::observed_covariance(xs, fit.params);
  ASSERT_TRUE(cov.valid);
  EXPECT_THROW(evt::endpoint_interval(fit.params, cov, 1.0),
               mpe::ContractViolation);
  evt::WeibullCovariance invalid;
  EXPECT_THROW(evt::endpoint_interval(fit.params, invalid, 0.9),
               mpe::ContractViolation);
}

}  // namespace
