#include "stats/optimize.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/contracts.hpp"

namespace {

using mpe::stats::nelder_mead;
using mpe::stats::NelderMeadOptions;

TEST(NelderMead, QuadraticBowl2D) {
  const auto r = nelder_mead(
      [](const std::vector<double>& x) {
        return (x[0] - 3.0) * (x[0] - 3.0) + 2.0 * (x[1] + 1.0) * (x[1] + 1.0);
      },
      {0.0, 0.0});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 3.0, 1e-4);
  EXPECT_NEAR(r.x[1], -1.0, 1e-4);
  EXPECT_NEAR(r.f, 0.0, 1e-7);
}

TEST(NelderMead, Rosenbrock) {
  NelderMeadOptions opt;
  opt.max_iter = 20000;
  const auto r = nelder_mead(
      [](const std::vector<double>& x) {
        const double a = 1.0 - x[0];
        const double b = x[1] - x[0] * x[0];
        return a * a + 100.0 * b * b;
      },
      {-1.2, 1.0}, opt);
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
  EXPECT_NEAR(r.x[1], 1.0, 1e-3);
}

TEST(NelderMead, OneDimensional) {
  const auto r = nelder_mead(
      [](const std::vector<double>& x) { return std::cosh(x[0] - 0.5); },
      {5.0});
  EXPECT_NEAR(r.x[0], 0.5, 1e-4);
}

TEST(NelderMead, WalksAwayFromInfeasibleRegion) {
  // +inf outside x > 0 encodes a constraint.
  const auto r = nelder_mead(
      [](const std::vector<double>& x) {
        if (x[0] <= 0.0) return std::numeric_limits<double>::infinity();
        return x[0] + 1.0 / x[0];  // min at x = 1
      },
      {0.5});
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
}

TEST(NelderMead, FourDimensionalSphere) {
  const auto r = nelder_mead(
      [](const std::vector<double>& x) {
        double s = 0.0;
        for (std::size_t i = 0; i < x.size(); ++i) {
          const double d = x[i] - static_cast<double>(i);
          s += d * d;
        }
        return s;
      },
      {1.0, 1.0, 1.0, 1.0});
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(r.x[i], static_cast<double>(i), 1e-3);
  }
}

TEST(NelderMead, ZeroStartingPointStillPerturbs) {
  // All-zero start must still build a non-degenerate simplex.
  const auto r = nelder_mead(
      [](const std::vector<double>& x) {
        return (x[0] - 0.2) * (x[0] - 0.2) + (x[1] - 0.3) * (x[1] - 0.3);
      },
      {0.0, 0.0});
  EXPECT_NEAR(r.x[0], 0.2, 1e-4);
  EXPECT_NEAR(r.x[1], 0.3, 1e-4);
}

TEST(NelderMead, RespectsIterationBudget) {
  NelderMeadOptions opt;
  opt.max_iter = 3;
  const auto r = nelder_mead(
      [](const std::vector<double>& x) {
        return x[0] * x[0] + x[1] * x[1];
      },
      {100.0, -50.0}, opt);
  EXPECT_FALSE(r.converged);
  EXPECT_LE(r.iterations, 3);
}

TEST(NelderMead, RejectsEmptyStart) {
  EXPECT_THROW(
      nelder_mead([](const std::vector<double>&) { return 0.0; }, {}),
      mpe::ContractViolation);
}

}  // namespace
