#include "stats/chi_squared.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

using mpe::stats::chi2_gof;
using mpe::stats::ChiSquared;

TEST(ChiSquared, CdfKnownValues) {
  // chi2(1): cdf(3.841) ~ 0.95; chi2(5): cdf(11.07) ~ 0.95.
  EXPECT_NEAR(ChiSquared(1).cdf(3.841), 0.95, 1e-3);
  EXPECT_NEAR(ChiSquared(5).cdf(11.070), 0.95, 1e-3);
  EXPECT_NEAR(ChiSquared(10).cdf(18.307), 0.95, 1e-3);
  EXPECT_DOUBLE_EQ(ChiSquared(3).cdf(0.0), 0.0);
}

TEST(ChiSquared, QuantileRoundTrip) {
  for (double k : {1.0, 2.0, 7.0, 30.0}) {
    const ChiSquared c(k);
    for (double q : {0.05, 0.5, 0.95, 0.999}) {
      EXPECT_NEAR(c.cdf(c.quantile(q)), q, 1e-8) << "k=" << k << " q=" << q;
    }
  }
}

TEST(ChiSquared, PdfIntegratesToCdf) {
  const ChiSquared c(4.0);
  const int steps = 20000;
  double integral = 0.0;
  const double a = 0.0, b = 12.0, h = (b - a) / steps;
  for (int i = 0; i <= steps; ++i) {
    const double w = (i == 0 || i == steps) ? 0.5 : 1.0;
    integral += w * c.pdf(a + i * h);
  }
  integral *= h;
  EXPECT_NEAR(integral, c.cdf(b), 1e-6);
}

TEST(ChiSquared, SampleMomentsMatch) {
  const ChiSquared c(6.0);
  mpe::Rng rng(11);
  const int n = 100000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = c.sample(rng);
    ASSERT_GE(x, 0.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 6.0, 0.05);
  EXPECT_NEAR(sum2 / n - mean * mean, 12.0, 0.3);
}

TEST(ChiSquared, SampleSmallDof) {
  const ChiSquared c(1.0);
  mpe::Rng rng(12);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += c.sample(rng);
  EXPECT_NEAR(sum / n, 1.0, 0.03);
}

TEST(Chi2Gof, UniformCountsAccepted) {
  mpe::Rng rng(13);
  std::vector<double> obs(10, 0.0), exp(10, 100.0);
  for (int i = 0; i < 1000; ++i) obs[rng.below(10)] += 1.0;
  const auto r = chi2_gof(obs, exp);
  EXPECT_GT(r.p_value, 0.01);
  EXPECT_DOUBLE_EQ(r.dof, 9.0);
}

TEST(Chi2Gof, SkewedCountsRejected) {
  std::vector<double> obs = {300, 150, 100, 100, 100, 100, 50, 40, 35, 25};
  std::vector<double> exp(10, 100.0);
  const auto r = chi2_gof(obs, exp);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(Chi2Gof, MergesSmallBins) {
  // Tail bins with tiny expectations must be pooled, not counted raw: the
  // three 0.x-expectation bins sum to 1.0, still below the threshold, so
  // they fold into the last valid bin — 2 bins remain, dof = 1.
  std::vector<double> obs = {50, 48, 1, 0, 1};
  std::vector<double> exp = {50, 50, 0.4, 0.3, 0.3};
  const auto r = chi2_gof(obs, exp);
  EXPECT_DOUBLE_EQ(r.dof, 1.0);
  EXPECT_GT(r.p_value, 0.05);
}

TEST(Chi2Gof, FittedParamsReduceDof) {
  std::vector<double> obs(8, 100.0), exp(8, 100.0);
  const auto r = chi2_gof(obs, exp, 2);
  EXPECT_DOUBLE_EQ(r.dof, 5.0);
}

TEST(Chi2Gof, ContractChecks) {
  std::vector<double> obs = {1.0, 2.0};
  std::vector<double> exp = {1.0};
  EXPECT_THROW(chi2_gof(obs, exp), mpe::ContractViolation);
  std::vector<double> tiny_o = {1.0, 1.0};
  std::vector<double> tiny_e = {0.1, 0.1};
  EXPECT_THROW(chi2_gof(tiny_o, tiny_e), mpe::ContractViolation);
  EXPECT_THROW(ChiSquared(0.0), mpe::ContractViolation);
}

}  // namespace
