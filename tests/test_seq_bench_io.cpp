#include "seq/seq_bench_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "seq/seq_gen.hpp"
#include "seq/seq_sim.hpp"

namespace {

namespace seq = mpe::seq;

// ISCAS-89 s27-style toy: 3 inputs, 1 output, 3 flip-flops.
const char* kSeqSample = R"(
# toy sequential circuit
INPUT(a)
INPUT(b)
OUTPUT(z)

q0 = DFF(d0)
q1 = DFF(d1)

d0 = AND(a, q1)
d1 = XOR(b, q0)
z  = OR(q0, q1)
)";

TEST(SeqBenchIo, ParsesDffLines) {
  const auto s = seq::read_bench_sequential_string(kSeqSample, "toy");
  EXPECT_EQ(s.num_state_bits(), 2u);
  EXPECT_EQ(s.num_free_inputs(), 2u);
  EXPECT_EQ(s.core().num_gates(), 3u);
  EXPECT_TRUE(s.finalized());
}

TEST(SeqBenchIo, ParsedCircuitSimulates) {
  const auto s = seq::read_bench_sequential_string(kSeqSample, "toy");
  seq::SequentialSimulator sim(s);
  sim.reset();
  // a=1, b=1 held: state evolves deterministically without crashing and
  // q1 eventually toggles via d1 = b XOR q0.
  const std::vector<std::uint8_t> in = {1, 1};
  sim.step(in);  // latch inputs
  sim.step(in);
  EXPECT_EQ(sim.state()[1], 1);  // q1 = 1 XOR 0
}

TEST(SeqBenchIo, DffCaseInsensitive) {
  const auto s = seq::read_bench_sequential_string(
      "INPUT(x)\nq = dff(d)\nd = NOT(q)\nz = AND(x, q)\nOUTPUT(z)\n");
  EXPECT_EQ(s.num_state_bits(), 1u);
}

TEST(SeqBenchIo, PureCombinationalStillWorks) {
  const auto s = seq::read_bench_sequential_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = AND(a, b)\n");
  EXPECT_EQ(s.num_state_bits(), 0u);
  EXPECT_EQ(s.num_free_inputs(), 2u);
}

TEST(SeqBenchIo, RejectsMultiInputDff) {
  EXPECT_THROW(seq::read_bench_sequential_string(
                   "INPUT(a)\nq = DFF(a, q)\n"),
               std::runtime_error);
}

TEST(SeqBenchIo, RoundTripPreservesBehavior) {
  auto original = seq::make_counter(4);
  const std::string text = seq::write_bench_sequential_string(original);
  auto reparsed = seq::read_bench_sequential_string(text, "counter");
  EXPECT_EQ(reparsed.num_state_bits(), original.num_state_bits());
  EXPECT_EQ(reparsed.num_free_inputs(), original.num_free_inputs());

  // Behavioral equivalence: run both for 20 cycles with the same inputs.
  seq::SequentialSimulator a(original), b(reparsed);
  a.reset();
  b.reset();
  const std::vector<std::uint8_t> en = {1};
  for (int i = 0; i < 20; ++i) {
    a.step(en);
    b.step(en);
    EXPECT_EQ(a.state(), b.state()) << "cycle " << i;
  }
}

TEST(SeqBenchIo, FileRoundTrip) {
  auto lfsr = seq::make_lfsr(5, {5, 3});
  const std::string path = ::testing::TempDir() + "/mpe_lfsr.bench";
  {
    std::ofstream out(path);
    seq::write_bench_sequential(out, lfsr);
  }
  const auto back = seq::read_bench_sequential_file(path);
  EXPECT_EQ(back.num_state_bits(), 5u);
  std::remove(path.c_str());
}

TEST(SeqBenchIo, MissingFileThrows) {
  EXPECT_THROW(seq::read_bench_sequential_file("/no/such/file.bench"),
               std::runtime_error);
}

}  // namespace
