#include "sim/event_sim.hpp"

#include <gtest/gtest.h>

#include "circuit/builder.hpp"
#include "gen/arithmetic.hpp"
#include "gen/random_dag.hpp"
#include "gen/trees.hpp"
#include "sim/zero_delay_sim.hpp"
#include "util/rng.hpp"

namespace {

namespace ckt = mpe::circuit;
namespace sim = mpe::sim;

sim::EventSimOptions options(sim::DelayModel m, bool inertial = false) {
  sim::EventSimOptions o;
  o.delay_model = m;
  o.inertial = inertial;
  return o;
}

TEST(EventSim, AgreesWithZeroDelayOracleUnderZeroDelays) {
  // With all delays zero, the event simulator must count exactly the
  // functional toggles — same as the levelized two-pass oracle.
  mpe::gen::RandomDagParams p;
  p.num_inputs = 24;
  p.num_gates = 300;
  mpe::Rng gen_rng(15);
  auto nl = mpe::gen::random_dag(p, gen_rng);

  sim::EventSimulator ev(nl, options(sim::DelayModel::kZero));
  sim::ZeroDelaySimulator zd(nl, sim::Technology{});

  mpe::Rng rng(16);
  for (int t = 0; t < 100; ++t) {
    std::vector<std::uint8_t> v1(nl.num_inputs()), v2(nl.num_inputs());
    for (auto& b : v1) b = rng.bernoulli(0.5);
    for (auto& b : v2) b = rng.bernoulli(0.5);
    const auto re = ev.evaluate(v1, v2);
    const auto rz = zd.evaluate(v1, v2);
    EXPECT_EQ(re.toggles, rz.toggles) << "trial " << t;
    EXPECT_NEAR(re.energy_pj, rz.energy_pj, 1e-9);
  }
}

TEST(EventSim, StaticPairProducesNothing) {
  auto nl = mpe::gen::parity_tree(8, 2);
  sim::EventSimulator ev(nl, options(sim::DelayModel::kFanoutLoaded));
  std::vector<std::uint8_t> v(nl.num_inputs(), 1);
  const auto r = ev.evaluate(v, v);
  EXPECT_EQ(r.toggles, 0u);
  EXPECT_DOUBLE_EQ(r.energy_pj, 0.0);
  EXPECT_DOUBLE_EQ(r.settle_time_ns, 0.0);
}

TEST(EventSim, GlitchOnRecovergentXor) {
  // z = a XOR a' where a' = NOT(NOT(a)) arrives later than a: under unit
  // delays a toggle on `a` produces a transient pulse at z (glitch) even
  // though the steady-state value is unchanged... build explicitly:
  // n1 = NOT(a); n2 = NOT(n1); z = XOR(a, n2). Steady state z = 0 always,
  // but a change of a reaches the XOR directly before n2 catches up.
  ckt::Netlist nl("glitch");
  nl.add_input("a");
  nl.add_gate(ckt::GateType::kNot, "n1", {"a"});
  nl.add_gate(ckt::GateType::kNot, "n2", {"n1"});
  nl.add_gate(ckt::GateType::kXor, "z", {"a", "n2"});
  nl.mark_output("z");
  nl.finalize();

  sim::EventSimulator ev(nl, options(sim::DelayModel::kUnit));
  const auto r = ev.evaluate(std::vector<std::uint8_t>{0},
                             std::vector<std::uint8_t>{1});
  // Nodes a, n1, n2 each toggle once; z glitches 0->1->0 (two toggles).
  EXPECT_EQ(r.toggles, 5u);
  EXPECT_GT(r.settle_time_ns, 0.0);

  // Zero-delay sim sees no z toggle at all.
  sim::ZeroDelaySimulator zd(nl, sim::Technology{});
  EXPECT_EQ(zd.evaluate(std::vector<std::uint8_t>{0},
                        std::vector<std::uint8_t>{1})
                .toggles,
            3u);
}

TEST(EventSim, InertialModeSwallowsNarrowGlitch) {
  // Same recovergent circuit: the XOR pulse is exactly as wide as one unit
  // delay... make it narrower than the XOR's own delay by using the
  // fanout-loaded model where XOR is slow. Compare transport vs inertial.
  ckt::Netlist nl("glitch2");
  nl.add_input("a");
  nl.add_gate(ckt::GateType::kNot, "n1", {"a"});
  nl.add_gate(ckt::GateType::kNot, "n2", {"n1"});
  nl.add_gate(ckt::GateType::kXor, "z", {"a", "n2"});
  nl.mark_output("z");
  nl.finalize();

  sim::EventSimulator transport(
      nl, options(sim::DelayModel::kFanoutLoaded, false));
  sim::EventSimulator inertial(
      nl, options(sim::DelayModel::kFanoutLoaded, true));
  const auto rt = transport.evaluate(std::vector<std::uint8_t>{0},
                                     std::vector<std::uint8_t>{1});
  const auto ri = inertial.evaluate(std::vector<std::uint8_t>{0},
                                    std::vector<std::uint8_t>{1});
  // The inverter-chain pulse (2 * ~0.2ns wide... width = delay(n2 path) -
  // direct path = two NOT delays) is narrower than the XOR delay, so the
  // inertial simulator drops the two glitch toggles.
  EXPECT_EQ(rt.toggles, 5u);
  EXPECT_EQ(ri.toggles, 3u);
  EXPECT_LT(ri.energy_pj, rt.energy_pj);
}

TEST(EventSim, SettleTimeTracksDepthUnderUnitDelay) {
  // A chain of k inverters settles at exactly k * unit_delay.
  ckt::Netlist nl("chain");
  nl.add_input("a");
  std::string prev = "a";
  const int k = 7;
  for (int i = 0; i < k; ++i) {
    const std::string cur = "n" + std::to_string(i);
    nl.add_gate(ckt::GateType::kNot, cur, {prev});
    prev = cur;
  }
  nl.finalize();
  sim::EventSimOptions o = options(sim::DelayModel::kUnit);
  sim::EventSimulator ev(nl, o);
  const auto r = ev.evaluate(std::vector<std::uint8_t>{0},
                             std::vector<std::uint8_t>{1});
  EXPECT_NEAR(r.settle_time_ns, k * o.tech.unit_delay_ns, 1e-9);
  EXPECT_EQ(r.toggles, static_cast<std::size_t>(k) + 1);
}

TEST(EventSim, GlitchPowerExceedsFunctionalPowerOnMultiplier) {
  // Array multipliers are the canonical glitchy circuit: event-driven power
  // with real delays must exceed the zero-delay (functional) power for
  // busy input pairs, and never be below it.
  auto nl = mpe::gen::array_multiplier(8);
  sim::EventSimulator ev(nl, options(sim::DelayModel::kFanoutLoaded));
  sim::ZeroDelaySimulator zd(nl, sim::Technology{});
  mpe::Rng rng(77);
  double sum_event = 0.0, sum_zero = 0.0;
  for (int t = 0; t < 60; ++t) {
    std::vector<std::uint8_t> v1(nl.num_inputs()), v2(nl.num_inputs());
    for (auto& b : v1) b = rng.bernoulli(0.5);
    for (auto& b : v2) b = rng.bernoulli(0.5);
    const auto re = ev.evaluate(v1, v2);
    const auto rz = zd.evaluate(v1, v2);
    EXPECT_GE(re.toggles + 1e-9, rz.toggles);
    sum_event += re.energy_pj;
    sum_zero += rz.energy_pj;
  }
  EXPECT_GT(sum_event, 1.15 * sum_zero);  // meaningful glitch component
}

TEST(EventSim, InertialNeverExceedsTransportEnergy) {
  auto nl = mpe::gen::array_multiplier(6);
  sim::EventSimulator transport(
      nl, options(sim::DelayModel::kFanoutLoaded, false));
  sim::EventSimulator inertial(
      nl, options(sim::DelayModel::kFanoutLoaded, true));
  mpe::Rng rng(78);
  for (int t = 0; t < 40; ++t) {
    std::vector<std::uint8_t> v1(nl.num_inputs()), v2(nl.num_inputs());
    for (auto& b : v1) b = rng.bernoulli(0.5);
    for (auto& b : v2) b = rng.bernoulli(0.5);
    const auto rt = transport.evaluate(v1, v2);
    const auto ri = inertial.evaluate(v1, v2);
    EXPECT_LE(ri.energy_pj, rt.energy_pj + 1e-9) << t;
  }
}

TEST(EventSim, FinalValuesMatchFunctionalSimulation) {
  // Regardless of delays and glitches, the settled values must equal the
  // zero-delay evaluation of v2 — check via output-observable parity.
  auto nl = mpe::gen::parity_tree(12, 2);
  sim::EventSimulator ev(nl, options(sim::DelayModel::kFanoutLoaded));
  mpe::Rng rng(79);
  for (int t = 0; t < 50; ++t) {
    std::vector<std::uint8_t> v1(nl.num_inputs()), v2(nl.num_inputs());
    for (auto& b : v1) b = rng.bernoulli(0.5);
    for (auto& b : v2) b = rng.bernoulli(0.5);
    // Count parity toggles: total toggles on the output node must make its
    // final value equal the functional value. Use energy parity trick: run
    // (v1->v2) then (v2->v2): the second run must be silent, proving the
    // simulator's internal state settled consistently.
    ev.evaluate(v1, v2);
    const auto quiet = ev.evaluate(v2, v2);
    EXPECT_EQ(quiet.toggles, 0u);
  }
}

TEST(EventSim, DeterministicAcrossRepeats) {
  auto nl = mpe::gen::array_multiplier(6);
  sim::EventSimulator ev(nl, options(sim::DelayModel::kFanoutLoaded));
  std::vector<std::uint8_t> v1(nl.num_inputs(), 0), v2(nl.num_inputs(), 1);
  const auto a = ev.evaluate(v1, v2);
  const auto b = ev.evaluate(v1, v2);
  EXPECT_EQ(a.toggles, b.toggles);
  EXPECT_DOUBLE_EQ(a.energy_pj, b.energy_pj);
  EXPECT_DOUBLE_EQ(a.settle_time_ns, b.settle_time_ns);
}

}  // namespace
