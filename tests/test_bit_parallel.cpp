#include "sim/bit_parallel_sim.hpp"

#include <gtest/gtest.h>

#include "gen/arithmetic.hpp"
#include "gen/presets.hpp"
#include "gen/trees.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

namespace sim = mpe::sim;
namespace vec = mpe::vec;

std::vector<vec::VectorPair> random_pairs(std::size_t width, std::size_t n,
                                          std::uint64_t seed) {
  mpe::Rng rng(seed);
  std::vector<vec::VectorPair> out(n);
  for (auto& p : out) {
    p.first = vec::random_vector(width, rng);
    p.second = vec::random_vector(width, rng);
  }
  return out;
}

TEST(BitParallel, MatchesScalarOracleExactly) {
  auto nl = mpe::gen::build_preset("c432", 1);
  sim::Technology tech;
  sim::BitParallelSimulator parallel(nl, tech);
  sim::ZeroDelaySimulator scalar(nl, tech);

  const auto pairs = random_pairs(nl.num_inputs(), 64, 7);
  const auto results = parallel.evaluate_batch(pairs);
  ASSERT_EQ(results.size(), 64u);
  for (std::size_t k = 0; k < pairs.size(); ++k) {
    const auto expect = scalar.evaluate(pairs[k].first, pairs[k].second);
    EXPECT_EQ(results[k].toggles, expect.toggles) << k;
    EXPECT_NEAR(results[k].energy_pj, expect.energy_pj,
                1e-9 * (expect.energy_pj + 1.0))
        << k;
    EXPECT_NEAR(results[k].power_mw, expect.power_mw, 1e-9) << k;
  }
}

TEST(BitParallel, PartialBatch) {
  auto nl = mpe::gen::ripple_carry_adder(8);
  sim::BitParallelSimulator parallel(nl, sim::Technology{});
  sim::ZeroDelaySimulator scalar(nl, sim::Technology{});
  const auto pairs = random_pairs(nl.num_inputs(), 5, 11);
  const auto results = parallel.evaluate_batch(pairs);
  ASSERT_EQ(results.size(), 5u);
  for (std::size_t k = 0; k < pairs.size(); ++k) {
    EXPECT_EQ(results[k].toggles,
              scalar.evaluate(pairs[k].first, pairs[k].second).toggles);
  }
}

TEST(BitParallel, SingleLane) {
  auto nl = mpe::gen::parity_tree(12, 2);
  sim::BitParallelSimulator parallel(nl, sim::Technology{});
  sim::ZeroDelaySimulator scalar(nl, sim::Technology{});
  const auto pairs = random_pairs(nl.num_inputs(), 1, 13);
  const auto results = parallel.evaluate_batch(pairs);
  EXPECT_EQ(results[0].toggles,
            scalar.evaluate(pairs[0].first, pairs[0].second).toggles);
}

TEST(BitParallel, AllGateTypesExercised) {
  // A netlist containing every gate type, cross-checked against the scalar
  // oracle over many random batches.
  mpe::circuit::Netlist nl("alltypes");
  nl.add_input("a");
  nl.add_input("b");
  nl.add_input("c");
  nl.add_gate(mpe::circuit::GateType::kAnd, "g0", {"a", "b"});
  nl.add_gate(mpe::circuit::GateType::kNand, "g1", {"b", "c"});
  nl.add_gate(mpe::circuit::GateType::kOr, "g2", {"g0", "g1"});
  nl.add_gate(mpe::circuit::GateType::kNor, "g3", {"a", "g2"});
  nl.add_gate(mpe::circuit::GateType::kXor, "g4", {"g2", "g3", "c"});
  nl.add_gate(mpe::circuit::GateType::kXnor, "g5", {"g4", "b"});
  nl.add_gate(mpe::circuit::GateType::kNot, "g6", {"g5"});
  nl.add_gate(mpe::circuit::GateType::kBuf, "g7", {"g6"});
  nl.mark_output("g7");
  nl.finalize();

  sim::BitParallelSimulator parallel(nl, sim::Technology{});
  sim::ZeroDelaySimulator scalar(nl, sim::Technology{});
  for (int trial = 0; trial < 10; ++trial) {
    const auto pairs =
        random_pairs(nl.num_inputs(), 64, 100 + static_cast<unsigned>(trial));
    const auto results = parallel.evaluate_batch(pairs);
    for (std::size_t k = 0; k < pairs.size(); ++k) {
      EXPECT_EQ(results[k].toggles,
                scalar.evaluate(pairs[k].first, pairs[k].second).toggles);
    }
  }
}

TEST(BitParallel, ContractChecks) {
  auto nl = mpe::gen::parity_tree(8, 2);
  sim::BitParallelSimulator parallel(nl, sim::Technology{});
  EXPECT_THROW(parallel.evaluate_batch({}), mpe::ContractViolation);
  const auto too_many = random_pairs(nl.num_inputs(), 65, 1);
  EXPECT_THROW(parallel.evaluate_batch(too_many), mpe::ContractViolation);
  const auto wrong_width = random_pairs(4, 2, 1);
  EXPECT_THROW(parallel.evaluate_batch(wrong_width), mpe::ContractViolation);
}

}  // namespace
