// End-to-end statistical validation of the estimator (ctest label: stat).
//
// 200 seeded estimation runs against a synthetic finite population whose
// true maximum power omega(F) is known exactly, asserting the paper's
// operational claims:
//   * the 90% Student-t stopping interval covers the true maximum in at
//     least 85% of runs;
//   * the estimate lands within the requested relative error epsilon of the
//     true maximum in nearly all runs;
//   * the finite-population quantile correction G^-1(1 - 1/|V|) is less
//     biased for the realized population maximum than the raw endpoint
//     mu-hat (Section 5's reason for the correction).
//
// Every run is driven by a recorded seed (the loop index), so the suite is
// deterministic: thresholds were calibrated against these exact seeds with
// margin (measured coverage 185/200, epsilon hits 200/200, corrected bias
// +0.004 vs raw +0.044 at |V| = 5000).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "maxpower/estimator.hpp"
#include "maxpower/hyper_sample.hpp"
#include "stats/weibull.hpp"
#include "util/rng.hpp"
#include "vectors/population.hpp"

namespace {

namespace mp = mpe::maxpower;

constexpr std::size_t kRuns = 200;
constexpr std::size_t kPopulationSize = 5000;
constexpr std::uint64_t kPopulationSeed = 999;

mpe::vec::FinitePopulation make_population() {
  const mpe::stats::ReversedWeibull g(3.0, 1.0, 10.0);
  mpe::Rng rng(kPopulationSeed);
  std::vector<double> vals(kPopulationSize);
  for (auto& v : vals) v = g.sample(rng);
  return mpe::vec::FinitePopulation(std::move(vals), "synthetic weibull");
}

mp::EstimatorOptions validation_options() {
  mp::EstimatorOptions opt;  // paper defaults: epsilon 5%, confidence 90%
  opt.hyper.n = 30;
  opt.hyper.m = 30;  // m = 10 undercovers (148/200); 30 gives a stable fit
  return opt;
}

TEST(StatisticalValidation, StudentTIntervalCoversTrueMax) {
  auto pop = make_population();
  const double true_max = pop.true_max();
  const mp::EstimatorOptions opt = validation_options();

  std::size_t covered = 0;
  std::size_t converged = 0;
  std::size_t eps_hits = 0;
  for (std::uint64_t seed = 1; seed <= kRuns; ++seed) {
    const auto r = mp::estimate_max_power(pop, opt, seed);
    if (r.converged) ++converged;
    if (r.ci.lower <= true_max && true_max <= r.ci.upper) ++covered;
    if (std::fabs(r.estimate - true_max) <= opt.epsilon * true_max) {
      ++eps_hits;
    }
  }

  // Every run must converge under the default budget; the claims below are
  // about converged runs.
  EXPECT_EQ(converged, kRuns);
  // >= 85% coverage at the 90% level (measured: 92.5%).
  EXPECT_GE(covered, kRuns * 85 / 100)
      << "coverage " << covered << "/" << kRuns;
  // The paper's headline claim: estimate within epsilon of the true max.
  // Measured 200/200; demand >= 95% to keep slack for future refits.
  EXPECT_GE(eps_hits, kRuns * 95 / 100)
      << "epsilon hits " << eps_hits << "/" << kRuns;
}

TEST(StatisticalValidation, FiniteCorrectionLessBiasedThanRawEndpoint) {
  auto pop = make_population();
  const double true_max = pop.true_max();

  // Each hyper-sample reports both the corrected estimate and the raw MLE
  // endpoint mu-hat from the same fit, so the comparison is paired.
  mp::HyperSampleOptions hopt;
  hopt.n = 50;
  hopt.m = 30;
  double sum_corrected = 0.0;
  double sum_mu_hat = 0.0;
  std::size_t count = 0;
  mpe::Rng rng(4242);
  for (std::size_t i = 0; i < kRuns; ++i) {
    const auto hs = mp::draw_hyper_sample(pop, hopt, rng);
    ASSERT_TRUE(hs.valid);
    sum_corrected += hs.estimate;
    sum_mu_hat += hs.mu_hat;
    ++count;
  }
  const double n = static_cast<double>(count);
  const double corrected_bias = sum_corrected / n - true_max;
  const double mu_hat_bias = sum_mu_hat / n - true_max;

  EXPECT_LT(std::fabs(corrected_bias), std::fabs(mu_hat_bias));
  // Absolute calibration with margin (measured +0.004 vs +0.044).
  EXPECT_LT(std::fabs(corrected_bias), 0.02);
  // mu-hat targets the distribution endpoint (10.0), which sits above the
  // realized maximum of any finite draw — its bias must be positive.
  EXPECT_GT(mu_hat_bias, 0.0);
}

// Convergence is not luck: the stopping rule's attained relative error
// bound must actually be <= epsilon on every converged run.
TEST(StatisticalValidation, AttainedBoundMatchesStoppingRule) {
  auto pop = make_population();
  const mp::EstimatorOptions opt = validation_options();
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const auto r = mp::estimate_max_power(pop, opt, seed);
    ASSERT_TRUE(r.converged) << "seed " << seed;
    EXPECT_LE(r.relative_error_bound, opt.epsilon) << "seed " << seed;
    EXPECT_GE(r.hyper_samples, opt.min_hyper_samples);
  }
}

// Deterministic replay: the recorded seed fully determines the run, so two
// executions of the same seed must agree bit for bit (this is what makes
// the whole suite reproducible in CI).
TEST(StatisticalValidation, RunsReplayBitIdentically) {
  auto pop = make_population();
  const mp::EstimatorOptions opt = validation_options();
  for (std::uint64_t seed : {1ull, 77ull, 200ull}) {
    const auto a = mp::estimate_max_power(pop, opt, seed);
    const auto b = mp::estimate_max_power(pop, opt, seed);
    EXPECT_EQ(a.estimate, b.estimate);
    EXPECT_EQ(a.ci.lower, b.ci.lower);
    EXPECT_EQ(a.ci.upper, b.ci.upper);
    EXPECT_EQ(a.units_used, b.units_used);
  }
}

}  // namespace
