#include "maxpower/search_baselines.hpp"

#include <gtest/gtest.h>

#include "gen/arithmetic.hpp"
#include "gen/presets.hpp"
#include "gen/trees.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

namespace mp = mpe::maxpower;
namespace sim = mpe::sim;

TEST(GreedySearch, FindsStrongPairOnParityTree) {
  // Parity trees reach maximum power when every input flips: the greedy
  // climber should get close to that ceiling.
  auto nl = mpe::gen::parity_tree(16, 2);
  sim::CyclePowerEvaluator eval(nl);
  // Ceiling: flip all inputs.
  std::vector<std::uint8_t> v1(nl.num_inputs(), 0), v2(nl.num_inputs(), 1);
  const double ceiling = eval.power_mw(v1, v2);

  mpe::Rng rng(1);
  const auto r = mp::greedy_search(eval, {}, rng);
  EXPECT_GT(r.best_power_mw, 0.9 * ceiling);
  EXPECT_GT(r.evaluations, 0u);
}

TEST(GreedySearch, BeatsRandomSamplingAtEqualBudget) {
  auto nl = mpe::gen::build_preset("c432", 1);
  sim::CyclePowerEvaluator eval(nl);
  mp::GreedyOptions opt;
  opt.max_evaluations = 3000;
  mpe::Rng rng(2);
  const auto greedy = mp::greedy_search(eval, opt, rng);

  // Random baseline at the same budget.
  mpe::Rng rng2(3);
  double best_random = 0.0;
  for (std::size_t i = 0; i < greedy.evaluations; ++i) {
    const auto v1 = mpe::vec::random_vector(nl.num_inputs(), rng2);
    const auto v2 = mpe::vec::random_vector(nl.num_inputs(), rng2);
    best_random = std::max(best_random, eval.power_mw(v1, v2));
  }
  EXPECT_GT(greedy.best_power_mw, best_random);
}

TEST(GreedySearch, RespectsEvaluationBudget) {
  auto nl = mpe::gen::parity_tree(12, 2);
  sim::CyclePowerEvaluator eval(nl);
  mp::GreedyOptions opt;
  opt.max_evaluations = 100;
  mpe::Rng rng(4);
  const auto r = mp::greedy_search(eval, opt, rng);
  EXPECT_LE(r.evaluations, 101u);
}

TEST(GreedySearch, BestPairReproducesReportedPower) {
  auto nl = mpe::gen::ripple_carry_adder(8);
  sim::CyclePowerEvaluator eval(nl);
  mpe::Rng rng(5);
  const auto r = mp::greedy_search(eval, {}, rng);
  EXPECT_DOUBLE_EQ(eval.power_mw(r.best_pair.first, r.best_pair.second),
                   r.best_power_mw);
}

TEST(GeneticSearch, FindsStrongPairOnParityTree) {
  auto nl = mpe::gen::parity_tree(16, 2);
  sim::CyclePowerEvaluator eval(nl);
  std::vector<std::uint8_t> v1(nl.num_inputs(), 0), v2(nl.num_inputs(), 1);
  const double ceiling = eval.power_mw(v1, v2);
  mpe::Rng rng(6);
  const auto r = mp::genetic_search(eval, {}, rng);
  EXPECT_GT(r.best_power_mw, 0.85 * ceiling);
}

TEST(GeneticSearch, ImprovesOverGenerations) {
  auto nl = mpe::gen::build_preset("c432", 2);
  sim::CyclePowerEvaluator eval(nl);
  mp::GeneticOptions short_run;
  short_run.generations = 2;
  mp::GeneticOptions long_run;
  long_run.generations = 40;
  mpe::Rng r1(7), r2(7);
  const auto a = mp::genetic_search(eval, short_run, r1);
  const auto b = mp::genetic_search(eval, long_run, r2);
  EXPECT_GE(b.best_power_mw, a.best_power_mw);
}

TEST(GeneticSearch, BestPairReproducesReportedPower) {
  auto nl = mpe::gen::ripple_carry_adder(6);
  sim::CyclePowerEvaluator eval(nl);
  mpe::Rng rng(8);
  mp::GeneticOptions opt;
  opt.generations = 10;
  const auto r = mp::genetic_search(eval, opt, rng);
  EXPECT_DOUBLE_EQ(eval.power_mw(r.best_pair.first, r.best_pair.second),
                   r.best_power_mw);
}

TEST(SearchBaselines, ContractChecks) {
  auto nl = mpe::gen::parity_tree(8, 2);
  sim::CyclePowerEvaluator eval(nl);
  mpe::Rng rng(9);
  mp::GreedyOptions bad;
  bad.restarts = 0;
  EXPECT_THROW(mp::greedy_search(eval, bad, rng), mpe::ContractViolation);
  mp::GeneticOptions gbad;
  gbad.population = 2;
  EXPECT_THROW(mp::genetic_search(eval, gbad, rng), mpe::ContractViolation);
  gbad = {};
  gbad.elite = 40;
  EXPECT_THROW(mp::genetic_search(eval, gbad, rng), mpe::ContractViolation);
}

}  // namespace
