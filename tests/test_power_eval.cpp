#include "sim/power_eval.hpp"

#include <gtest/gtest.h>

#include "gen/arithmetic.hpp"
#include "util/rng.hpp"

namespace {

namespace sim = mpe::sim;

TEST(PowerEval, ZeroDelayPathMatchesOracle) {
  auto nl = mpe::gen::ripple_carry_adder(6);
  sim::PowerEvalOptions opt;
  opt.delay_model = sim::DelayModel::kZero;
  sim::CyclePowerEvaluator facade(nl, opt);
  sim::ZeroDelaySimulator oracle(nl, opt.tech);
  mpe::Rng rng(1);
  for (int t = 0; t < 30; ++t) {
    std::vector<std::uint8_t> v1(nl.num_inputs()), v2(nl.num_inputs());
    for (auto& b : v1) b = rng.bernoulli(0.5);
    for (auto& b : v2) b = rng.bernoulli(0.5);
    EXPECT_DOUBLE_EQ(facade.power_mw(v1, v2),
                     oracle.evaluate(v1, v2).power_mw);
  }
}

TEST(PowerEval, EventPathMatchesEventSimulator) {
  auto nl = mpe::gen::ripple_carry_adder(6);
  sim::PowerEvalOptions opt;
  opt.delay_model = sim::DelayModel::kFanoutLoaded;
  sim::CyclePowerEvaluator facade(nl, opt);
  sim::EventSimOptions eopt;
  eopt.delay_model = sim::DelayModel::kFanoutLoaded;
  sim::EventSimulator oracle(nl, eopt);
  mpe::Rng rng(2);
  for (int t = 0; t < 30; ++t) {
    std::vector<std::uint8_t> v1(nl.num_inputs()), v2(nl.num_inputs());
    for (auto& b : v1) b = rng.bernoulli(0.5);
    for (auto& b : v2) b = rng.bernoulli(0.5);
    EXPECT_DOUBLE_EQ(facade.power_mw(v1, v2),
                     oracle.evaluate(v1, v2).power_mw);
  }
}

TEST(PowerEval, EvaluateReturnsFullCycleResult) {
  auto nl = mpe::gen::ripple_carry_adder(4);
  sim::CyclePowerEvaluator facade(nl);
  std::vector<std::uint8_t> v1(nl.num_inputs(), 0), v2(nl.num_inputs(), 1);
  const auto r = facade.evaluate(v1, v2);
  EXPECT_GT(r.toggles, 0u);
  EXPECT_GT(r.energy_pj, 0.0);
  EXPECT_GT(r.settle_time_ns, 0.0);
  EXPECT_NEAR(r.power_mw, r.energy_pj / facade.options().tech.clock_period_ns,
              1e-12);
}

TEST(PowerEval, NetlistAccessor) {
  auto nl = mpe::gen::ripple_carry_adder(4, "my_rca");
  sim::CyclePowerEvaluator facade(nl);
  EXPECT_EQ(facade.netlist().name(), "my_rca");
}

TEST(PowerEval, MoveConstructible) {
  auto nl = mpe::gen::ripple_carry_adder(4);
  sim::CyclePowerEvaluator a(nl);
  std::vector<std::uint8_t> v1(nl.num_inputs(), 0), v2(nl.num_inputs(), 1);
  const double before = a.power_mw(v1, v2);
  sim::CyclePowerEvaluator b(std::move(a));
  EXPECT_DOUBLE_EQ(b.power_mw(v1, v2), before);
}

}  // namespace
