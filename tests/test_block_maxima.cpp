#include "evt/block_maxima.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

namespace evt = mpe::evt;

TEST(BlockMaxima, SplitsAndTakesMax) {
  const std::vector<double> xs = {1, 5, 2, 9, 3, 4, 8, 7, 6};
  const auto m = evt::block_maxima(xs, 3);
  EXPECT_EQ(m, (std::vector<double>{5, 9, 8}));
}

TEST(BlockMaxima, DiscardsPartialTrailingBlock) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const auto m = evt::block_maxima(xs, 2);
  EXPECT_EQ(m, (std::vector<double>{2, 4}));  // 5 is dropped
}

TEST(BlockMaxima, BlockSizeOneIsIdentity) {
  const std::vector<double> xs = {3, 1, 4};
  EXPECT_EQ(evt::block_maxima(xs, 1), xs);
}

TEST(BlockMaxima, WholeVectorBlock) {
  const std::vector<double> xs = {3, 1, 4, 1, 5};
  const auto m = evt::block_maxima(xs, 5);
  EXPECT_EQ(m, std::vector<double>{5});
}

TEST(BlockMaxima, RejectsUndersizedInput) {
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_THROW(evt::block_maxima(xs, 3), mpe::ContractViolation);
  EXPECT_THROW(evt::block_maxima(xs, 0), mpe::ContractViolation);
}

TEST(SampleMaxima, DrawsRequestedBlocks) {
  mpe::Rng rng(1);
  int calls = 0;
  const auto m = evt::sample_maxima(
      [&]() {
        ++calls;
        return rng.uniform();
      },
      30, 10);
  EXPECT_EQ(m.size(), 10u);
  EXPECT_EQ(calls, 300);
  for (double v : m) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(SampleMaxima, MaximaStochasticallyDominateDraws) {
  // The mean of maxima of 30 uniforms is 30/31, far above 0.5.
  mpe::Rng rng(2);
  const auto m = evt::sample_maxima([&]() { return rng.uniform(); }, 30, 200);
  double sum = 0.0;
  for (double v : m) sum += v;
  EXPECT_NEAR(sum / static_cast<double>(m.size()), 30.0 / 31.0, 0.01);
}

TEST(OneSampleMaximum, MatchesManualMax) {
  std::vector<double> seq = {0.1, 0.9, 0.3};
  std::size_t i = 0;
  const double m = evt::one_sample_maximum([&]() { return seq[i++]; }, 3);
  EXPECT_DOUBLE_EQ(m, 0.9);
}

}  // namespace
