#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace {

using mpe::util::ThreadPool;

TEST(ThreadPool, SubmitReturnsFutureValue) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManySubmittedTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  // Each body writes its own slot: no shared mutable state, the
  // TSan-friendly pattern the parallel pipeline uses throughout.
  std::vector<int> hits(1000, 0);
  pool.parallel_for(0, hits.size(),
                    [&hits](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(hits.size()));
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForSharedAtomicAccumulator) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  pool.parallel_for(1, 101, [&sum](std::size_t i) {
    sum.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&ran](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForSingleIndexRunsInCaller) {
  ThreadPool pool(2);
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.parallel_for(0, 1, [&seen](std::size_t) {
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](std::size_t i) {
                                   if (i == 37) {
                                     throw std::runtime_error("item 37");
                                   }
                                 }),
               std::runtime_error);
  // The pool must remain usable after a failed loop.
  std::atomic<int> counter{0};
  pool.parallel_for(0, 10, [&counter](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, ParallelForSlottedSlotIdsAreDense) {
  ThreadPool pool(3);
  const unsigned participants = pool.participants();
  EXPECT_EQ(participants, 4u);
  // Per-slot accumulation without locks: the per-worker-state pattern used
  // by the parallel DB builder.
  std::vector<long> per_slot(participants, 0);
  pool.parallel_for_slotted(0, 500, [&](unsigned slot, std::size_t i) {
    ASSERT_LT(slot, participants);
    per_slot[slot] += static_cast<long>(i);
  });
  EXPECT_EQ(std::accumulate(per_slot.begin(), per_slot.end(), 0L),
            500L * 499L / 2L);
}

TEST(ThreadPool, DefaultSizeUsesHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
  EXPECT_EQ(pool.participants(), pool.size() + 1);
}

}  // namespace
