#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace {

using mpe::util::ThreadPool;

TEST(ThreadPool, SubmitReturnsFutureValue) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManySubmittedTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  // Each body writes its own slot: no shared mutable state, the
  // TSan-friendly pattern the parallel pipeline uses throughout.
  std::vector<int> hits(1000, 0);
  pool.parallel_for(0, hits.size(),
                    [&hits](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(hits.size()));
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForSharedAtomicAccumulator) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  pool.parallel_for(1, 101, [&sum](std::size_t i) {
    sum.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&ran](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForSingleIndexRunsInCaller) {
  ThreadPool pool(2);
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.parallel_for(0, 1, [&seen](std::size_t) {
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](std::size_t i) {
                                   if (i == 37) {
                                     throw std::runtime_error("item 37");
                                   }
                                 }),
               std::runtime_error);
  // The pool must remain usable after a failed loop.
  std::atomic<int> counter{0};
  pool.parallel_for(0, 10, [&counter](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, ParallelForDrainsWaveBeforeRethrow) {
  // The exception contract: the first exception is rethrown only after every
  // in-flight body has finished, so no body is running once the caller
  // regains control (the estimator relies on this to fold a consistent
  // computed prefix).
  ThreadPool pool(3);
  std::atomic<int> in_flight{0};
  try {
    pool.parallel_for(0, 200, [&](std::size_t i) {
      ++in_flight;
      if (i == 10) {
        --in_flight;
        throw std::runtime_error("fault");
      }
      --in_flight;
    });
    FAIL() << "expected rethrow";
  } catch (const std::runtime_error&) {
    EXPECT_EQ(in_flight.load(), 0) << "bodies still running after rethrow";
  }
}

TEST(ThreadPool, ParallelForSlottedPropagatesFirstException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for_slotted(0, 100,
                                         [](unsigned, std::size_t i) {
                                           if (i == 42) {
                                             throw std::runtime_error(
                                                 "item 42");
                                           }
                                         }),
               std::runtime_error);
  // Reusable afterwards, like the plain variant.
  std::atomic<int> counter{0};
  pool.parallel_for_slotted(0, 10,
                            [&counter](unsigned, std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, ParallelForAllBodiesThrowStillRethrowsOnce) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(0, 50,
                                 [](std::size_t) {
                                   throw std::runtime_error("every body");
                                 }),
               std::runtime_error);
  std::atomic<int> counter{0};
  pool.parallel_for(0, 10, [&counter](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, SubmitStillWorksAfterFailedParallelFor) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 20,
                        [](std::size_t) { throw std::runtime_error("x"); }),
      std::runtime_error);
  auto f = pool.submit([] { return 7; });
  EXPECT_EQ(f.get(), 7);
}

TEST(ThreadPool, ParallelForSlottedSlotIdsAreDense) {
  ThreadPool pool(3);
  const unsigned participants = pool.participants();
  EXPECT_EQ(participants, 4u);
  // Per-slot accumulation without locks: the per-worker-state pattern used
  // by the parallel DB builder.
  std::vector<long> per_slot(participants, 0);
  pool.parallel_for_slotted(0, 500, [&](unsigned slot, std::size_t i) {
    ASSERT_LT(slot, participants);
    per_slot[slot] += static_cast<long>(i);
  });
  EXPECT_EQ(std::accumulate(per_slot.begin(), per_slot.end(), 0L),
            500L * 499L / 2L);
}

TEST(ThreadPool, DefaultSizeUsesHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
  EXPECT_EQ(pool.participants(), pool.size() + 1);
}

}  // namespace
