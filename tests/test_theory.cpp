#include "maxpower/theory.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/contracts.hpp"

namespace {

namespace mp = mpe::maxpower;

TEST(Theory, RequiredUnitsMatchesPaperFormula) {
  // The paper: Y = 0.0001 -> x ~ 23,000 for 90% confidence.
  const double x = mp::srs_required_units(0.0001, 0.90);
  EXPECT_NEAR(x, std::log(0.1) / std::log(0.9999), 1e-9);
  EXPECT_NEAR(x, 23025.0, 5.0);
}

TEST(Theory, PaperTableOneValues) {
  // Spot-check more rows of Table 1's SRS column.
  EXPECT_NEAR(mp::srs_required_units(0.00015, 0.90), 15349.0, 20.0);
  EXPECT_NEAR(mp::srs_required_units(0.000038, 0.90), 60590.0, 100.0);
}

TEST(Theory, MoreQualifiedUnitsNeedFewerSamples) {
  double prev = mp::srs_required_units(1e-5, 0.9);
  for (double y : {1e-4, 1e-3, 1e-2, 0.1}) {
    const double cur = mp::srs_required_units(y, 0.9);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(Theory, HigherConfidenceNeedsMoreSamples) {
  EXPECT_GT(mp::srs_required_units(0.001, 0.99),
            mp::srs_required_units(0.001, 0.90));
}

TEST(Theory, HitProbabilityBasics) {
  EXPECT_DOUBLE_EQ(mp::srs_hit_probability(0.0, 100), 0.0);
  EXPECT_DOUBLE_EQ(mp::srs_hit_probability(1.0, 1), 1.0);
  EXPECT_NEAR(mp::srs_hit_probability(0.5, 2), 0.75, 1e-12);
}

TEST(Theory, HitProbabilityAtRequiredUnitsIsConfidence) {
  const double y = 0.0002;
  const double x = mp::srs_required_units(y, 0.9);
  EXPECT_NEAR(mp::srs_hit_probability(y, static_cast<std::size_t>(x)), 0.9,
              0.001);
}

TEST(Theory, ContractChecks) {
  EXPECT_THROW(mp::srs_required_units(0.0, 0.9), mpe::ContractViolation);
  EXPECT_THROW(mp::srs_required_units(1.0, 0.9), mpe::ContractViolation);
  EXPECT_THROW(mp::srs_required_units(0.1, 0.0), mpe::ContractViolation);
  EXPECT_THROW(mp::srs_hit_probability(1.5, 10), mpe::ContractViolation);
}

}  // namespace
