// Scheduler-equivalence goldens: recorded synthetic-clock scenarios driven
// through ServerCore and CoordinatorCore, with every observable decision —
// reply lines, grant order, wait/backoff durations (including the jitter
// draws), phase transitions, terminal summaries, and the sealed ledger
// bytes — rendered into a transcript that must match the golden captured
// before the cores were re-founded on src/sched/. Any change in decision
// sequence (a reordered grant, a different backoff draw, a dropped reply)
// shows up as a transcript diff.
//
// Regenerating (only when a behavior change is intended):
//   MPE_REGEN_GOLDENS=1 ./test_sched_equivalence
// rewrites tests/golden/*.txt in the source tree.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <system_error>
#include <vector>

#include "dist/coordinator.hpp"
#include "dist/protocol.hpp"
#include "maxpower/campaign.hpp"
#include "maxpower/shard.hpp"
#include "server/server_core.hpp"
#include "server/server_protocol.hpp"

namespace {

namespace mp = mpe::maxpower;
namespace md = mpe::dist;
namespace ms = mpe::server;
using namespace std::chrono_literals;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Compares `transcript` against tests/golden/<name>, or rewrites the
/// golden when MPE_REGEN_GOLDENS is set in the environment.
void check_golden(const std::string& name, const std::string& transcript) {
  const std::string path = std::string(MPE_GOLDEN_DIR) + "/" + name;
  if (std::getenv("MPE_REGEN_GOLDENS") != nullptr) {
    std::filesystem::create_directories(MPE_GOLDEN_DIR);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << transcript;
    ASSERT_TRUE(out.good()) << "cannot write golden " << path;
    return;
  }
  const std::string want = read_file(path);
  ASSERT_FALSE(want.empty()) << "missing golden " << path
                             << " (run with MPE_REGEN_GOLDENS=1 to capture)";
  EXPECT_EQ(transcript, want) << "decision sequence diverged from the "
                                 "pre-refactor golden " << name;
}

// ---------------------------------------------------------------------------
// CoordinatorCore scenarios

using DClock = md::CoordinatorCore::Clock;
const DClock::time_point kD0 = DClock::time_point{} + std::chrono::hours(2);

std::string at(DClock::time_point t) {
  const auto ms_off =
      std::chrono::duration_cast<std::chrono::milliseconds>(t - kD0).count();
  return "t+" + std::to_string(ms_off) + "ms";
}

mp::CampaignJob tiny_job(const std::string& name, std::uint64_t seed,
                         std::size_t max_hyper) {
  mp::CampaignJob job;
  job.name = name;
  job.circuit = "c432";
  job.seed = seed;
  job.epsilon = 0.2;
  job.confidence = 0.8;
  job.max_hyper_samples = max_hyper;
  return job;
}

md::Message dmsg(const std::string& line) { return md::decode_message(line); }

const char* phase_name(md::JobPhase p) {
  switch (p) {
    case md::JobPhase::kPending: return "pending";
    case md::JobPhase::kLeased: return "leased";
    case md::JobPhase::kDone: return "done";
    case md::JobPhase::kFailed: return "failed";
  }
  return "?";
}

/// One scripted exchange: transcript the request and the reply.
void play(std::ostringstream& t, md::CoordinatorCore& core,
          const std::string& line, DClock::time_point now) {
  t << at(now) << " >> " << line << "\n";
  t << at(now) << " << " << core.handle(dmsg(line), now) << "\n";
}

void probe(std::ostringstream& t, md::CoordinatorCore& core,
           const std::vector<std::string>& jobs, DClock::time_point now) {
  t << at(now) << " -- phases:";
  for (const auto& job : jobs) t << " " << job << "=" << phase_name(core.phase(job));
  t << " granted=" << core.leases_granted()
    << " shards_done=" << core.shards_done()
    << " leased=" << (core.any_leased() ? 1 : 0)
    << " finished=" << (core.finished() ? 1 : 0) << "\n";
}

void summarize(std::ostringstream& t, md::CoordinatorCore& core,
               const std::string& ledger_path) {
  const mp::CampaignResult sum = core.summary();
  t << "-- summary done=" << sum.done << " failed=" << sum.failed
    << " skipped=" << sum.skipped << " quarantined=" << sum.quarantined
    << "\n";
  for (const auto& job : sum.jobs) {
    t << "-- outcome " << job.name << " status=" << mp::to_string(job.status)
      << " attempts=" << job.attempts
      << " error=" << mpe::to_string(job.error) << "\n";
  }
  t << "-- ledger:\n" << read_file(ledger_path);
}

std::string whole_job_result_line(const std::string& worker,
                                  const std::string& job, double estimate) {
  mp::CampaignJobOutcome outcome;
  outcome.name = job;
  outcome.status = mp::JobStatus::kDone;
  outcome.attempts = 1;
  outcome.result.estimate = estimate;
  outcome.result.hyper_samples = 12;
  outcome.result.units_used = 768;
  outcome.result.converged = true;
  return md::encode_result(worker, outcome);
}

std::string status_result_line(const std::string& worker,
                               const std::string& job, mp::JobStatus status,
                               mpe::ErrorCode error) {
  mp::CampaignJobOutcome outcome;
  outcome.name = job;
  outcome.status = status;
  outcome.attempts = 1;
  outcome.error = error;
  return md::encode_result(worker, outcome);
}

TEST(SchedEquivalence, CoordinatorWholeJobScenario) {
  const std::string dir = fresh_dir("sched_equiv_coord_whole");
  md::CoordinatorConfig config;
  config.jobs = {tiny_job("j1", 3, 40), tiny_job("j2", 4, 40)};
  config.state_dir = dir;
  config.lease = 1000ms;
  config.max_assignments = 2;
  config.reassign.initial_backoff = 100ms;
  config.reassign.multiplier = 2.0;
  config.reassign.max_backoff = 400ms;
  config.jitter_seed = 42;
  md::CoordinatorCore core(config);

  std::ostringstream t;
  // Grants follow manifest order; a drained pool answers wait.
  play(t, core, md::encode_hello("w1"), kD0);
  play(t, core, md::encode_request("w1"), kD0);
  play(t, core, md::encode_request("w2"), kD0 + 10ms);
  play(t, core, md::encode_request("w3"), kD0 + 20ms);
  probe(t, core, {"j1", "j2"}, kD0 + 20ms);
  // Heartbeat renews w1's lease; w2 never renews.
  play(t, core, md::encode_heartbeat("w1", "j1"), kD0 + 500ms);
  // Both leases expire (j1 at 1500, j2 at 1010): released under jittered
  // backoff, so this request sees nothing grantable and the wait duration
  // captures the two backoff draws in order.
  play(t, core, md::encode_request("w3"), kD0 + 1600ms);
  probe(t, core, {"j1", "j2"}, kD0 + 1600ms);
  // Past the backoff window both jobs re-grant (second assignment each).
  play(t, core, md::encode_request("w1"), kD0 + 4000ms);
  play(t, core, md::encode_request("w2"), kD0 + 4010ms);
  probe(t, core, {"j1", "j2"}, kD0 + 4010ms);
  // A done result is accepted even from a stale holder, recorded exactly
  // once; the duplicate is acked without a second ledger append.
  play(t, core, whole_job_result_line("w9", "j1", 1.25), kD0 + 4100ms);
  play(t, core, whole_job_result_line("w9", "j1", 1.25), kD0 + 4150ms);
  // A stale holder's failure must not kill the current holder's job...
  play(t, core, status_result_line("w9", "j2", mp::JobStatus::kFailed,
                                   mpe::ErrorCode::kInternal),
       kD0 + 4200ms);
  // ...but the holder's graceful stop releases it for an immediate re-grant.
  play(t, core, status_result_line("w2", "j2", mp::JobStatus::kStopped,
                                   mpe::ErrorCode::kOk),
       kD0 + 4300ms);
  probe(t, core, {"j1", "j2"}, kD0 + 4300ms);
  play(t, core, md::encode_request("w3"), kD0 + 4400ms);
  // Third expiry burns j2's assignment budget: recorded failed (deadline).
  core.tick(kD0 + 6000ms);
  probe(t, core, {"j1", "j2"}, kD0 + 6000ms);
  play(t, core, md::encode_request("w1"), kD0 + 6100ms);
  summarize(t, core, dir + "/campaign.jsonl");

  check_golden("coordinator_whole_job.txt", t.str());
}

std::string shard_done_line(const std::string& worker, const std::string& job,
                            std::uint64_t shard, std::uint64_t lo,
                            std::uint64_t hi) {
  std::vector<mp::ShardSample> samples;
  for (std::uint64_t i = lo; i < hi; ++i) {
    mp::ShardSample s;
    s.index = i;
    s.estimate = 0.5 + 0.001 * static_cast<double>(i);
    s.units = 64;
    s.valid = true;
    s.mle_converged = true;
    samples.push_back(s);
  }
  return md::encode_shard_result(worker, job, shard, lo, hi,
                                 mp::JobStatus::kDone, mpe::ErrorCode::kOk,
                                 mp::encode_shard_samples(samples));
}

TEST(SchedEquivalence, CoordinatorShardedScenario) {
  const std::string dir = fresh_dir("sched_equiv_coord_shard");
  md::CoordinatorConfig config;
  config.jobs = {tiny_job("s1", 5, 8), tiny_job("s2", 6, 8)};
  config.state_dir = dir;
  config.lease = 1000ms;
  config.max_assignments = 3;
  config.reassign.initial_backoff = 100ms;
  config.reassign.multiplier = 2.0;
  config.reassign.max_backoff = 400ms;
  config.jitter_seed = 7;
  config.shard_size = 8;
  config.straggler_after = 1500ms;
  md::CoordinatorCore core(config);

  const std::uint64_t budget = mp::job_attempt_budget(config.jobs[0]);
  const std::size_t shards = mp::shard_count(budget, config.shard_size);
  std::ostringstream t;
  t << "-- budget=" << budget << " shards=" << shards << "\n";

  // v2 workers get shard leases in ascending order across jobs.
  play(t, core, md::encode_request("w1"), kD0);
  play(t, core, md::encode_request("w2"), kD0 + 10ms);
  // A v1 worker (no proto field) can only run whole jobs: s1 has shard
  // progress, so the pristine s2 flips to whole-job mode for it.
  {
    const std::string v1 =
        "{\"schema\":\"mpe.dist\",\"v\":1,\"type\":\"request\","
        "\"worker\":\"v1w\"}";
    play(t, core, v1, kD0 + 20ms);
  }
  probe(t, core, {"s1", "s2"}, kD0 + 20ms);
  // Shard heartbeat renews; an unknown claim below the holder cap is
  // adopted (coordinator-restart posture), and a duplicate adoption is
  // idempotent.
  play(t, core, md::encode_shard_heartbeat("w1", "s1", 0), kD0 + 400ms);
  play(t, core, md::encode_shard_heartbeat("w7", "s1", 1), kD0 + 450ms);
  play(t, core, md::encode_shard_heartbeat("w7", "s1", 1), kD0 + 460ms);
  probe(t, core, {"s1", "s2"}, kD0 + 460ms);
  // Straggler speculation: past straggler_after, an idle v2 worker gets a
  // second holder slot on the oldest in-flight shard (not its own claim).
  play(t, core, md::encode_request("w3"), kD0 + 1700ms);
  // First valid shard result wins; the speculative loser is deduped.
  play(t, core, shard_done_line("w3", "s1", 0, 0, 8), kD0 + 1800ms);
  play(t, core, shard_done_line("w1", "s1", 0, 0, 8), kD0 + 1850ms);
  probe(t, core, {"s1", "s2"}, kD0 + 1850ms);
  // Remaining shards complete; assembly folds the prefix and records s1.
  for (std::size_t k = 1; k < shards; ++k) {
    play(t, core,
         shard_done_line("w2", "s1", k, k * config.shard_size,
                         std::min<std::uint64_t>((k + 1) * config.shard_size,
                                                 budget)),
         kD0 + 2000ms + std::chrono::milliseconds(10 * k));
  }
  probe(t, core, {"s1", "s2"}, kD0 + 3000ms);
  // The v1 whole-job holder reports s2 done.
  play(t, core, whole_job_result_line("v1w", "s2", 0.75), kD0 + 3100ms);
  probe(t, core, {"s1", "s2"}, kD0 + 3100ms);
  play(t, core, md::encode_request("w1"), kD0 + 3200ms);
  summarize(t, core, dir + "/campaign.jsonl");

  // Restart on the same ledger: done jobs are skipped, and the summary
  // counts them as such.
  md::CoordinatorCore restarted(config);
  std::ostringstream t2;
  probe(t2, restarted, {"s1", "s2"}, kD0);
  play(t2, restarted, md::encode_request("w1"), kD0);
  summarize(t2, restarted, dir + "/campaign.jsonl");

  check_golden("coordinator_sharded.txt", t.str());
  check_golden("coordinator_sharded_restart.txt", t2.str());
}

TEST(SchedEquivalence, CoordinatorShardExpiryScenario) {
  const std::string dir = fresh_dir("sched_equiv_coord_shard_exp");
  md::CoordinatorConfig config;
  config.jobs = {tiny_job("e1", 9, 8)};
  config.state_dir = dir;
  config.lease = 1000ms;
  config.max_assignments = 2;
  config.reassign.initial_backoff = 100ms;
  config.reassign.multiplier = 2.0;
  config.reassign.max_backoff = 400ms;
  config.jitter_seed = 11;
  config.shard_size = 4;
  md::CoordinatorCore core(config);

  std::ostringstream t;
  // Lease shard 0, let it expire (backoff draw), re-grant, expire again:
  // the assignment budget burns out and the job is recorded failed.
  play(t, core, md::encode_request("w1"), kD0);
  core.tick(kD0 + 1100ms);
  probe(t, core, {"e1"}, kD0 + 1100ms);
  play(t, core, md::encode_request("w2"), kD0 + 1150ms);  // backoff-gated
  play(t, core, md::encode_request("w2"), kD0 + 2500ms);
  probe(t, core, {"e1"}, kD0 + 2500ms);
  core.tick(kD0 + 3600ms);
  probe(t, core, {"e1"}, kD0 + 3600ms);
  play(t, core, md::encode_request("w1"), kD0 + 3700ms);
  summarize(t, core, dir + "/campaign.jsonl");
  check_golden("coordinator_shard_expiry.txt", t.str());
}

// ---------------------------------------------------------------------------
// ServerCore scenario

using SClock = ms::ServerCore::Clock;
const SClock::time_point kS0 = SClock::time_point{} + std::chrono::hours(3);

std::string sat(SClock::time_point t) {
  const auto ms_off =
      std::chrono::duration_cast<std::chrono::milliseconds>(t - kS0).count();
  return "t+" + std::to_string(ms_off) + "ms";
}

void ship(std::ostringstream& t, const std::vector<ms::Outbound>& out,
          SClock::time_point now) {
  for (const auto& o : out) {
    t << sat(now) << " << conn" << o.conn << " " << o.line << "\n";
  }
}

void splay(std::ostringstream& t, ms::ServerCore& core, std::size_t conn,
           const std::string& line, SClock::time_point now) {
  t << sat(now) << " >> conn" << conn << " " << line << "\n";
  ship(t, core.handle(conn, ms::decode_server_message(line), now), now);
}

std::string sspec(const std::string& name, std::uint64_t seed = 1) {
  mp::CampaignJob job;
  job.name = name;
  job.circuit = "c432";
  job.seed = seed;
  return mp::campaign_job_to_json(job);
}

void next_jobs(std::ostringstream& t, ms::ServerCore& core,
               SClock::time_point now) {
  while (auto started = core.next_job(now)) {
    t << sat(now) << " -- start ticket=" << started->ticket << " conn="
      << started->conn << " id=" << started->job.name << " threads="
      << started->threads << " deadline=";
    if (started->deadline == SClock::time_point::max()) {
      t << "none";
    } else {
      t << sat(started->deadline);
    }
    t << "\n";
  }
}

mp::CampaignJobOutcome done_outcome(double estimate) {
  mp::CampaignJobOutcome outcome;
  outcome.status = mp::JobStatus::kDone;
  outcome.attempts = 1;
  outcome.result.estimate = estimate;
  outcome.result.ci = {estimate - 0.1, estimate + 0.1};
  outcome.result.hyper_samples = 10;
  outcome.result.units_used = 640;
  outcome.result.converged = true;
  return outcome;
}

mp::CampaignJobOutcome stopped_outcome() {
  mp::CampaignJobOutcome outcome;
  outcome.status = mp::JobStatus::kStopped;
  outcome.attempts = 1;
  return outcome;
}

TEST(SchedEquivalence, ServerCoreScenario) {
  ms::ServerConfig config;
  config.max_active = 2;
  config.max_queued_per_client = 2;
  config.max_queued_total = 3;
  config.default_deadline = 60000ms;
  config.max_deadline = 120000ms;
  config.threads_per_job = 3;
  ms::ServerCore core(config);

  std::ostringstream t;
  core.connect(1, kS0);
  core.connect(2, kS0);
  core.connect(3, kS0);
  // Handshake gating: submit before hello is an error; hello fixes it.
  splay(t, core, 1, ms::encode_submit("a1", sspec("a1")), kS0);
  splay(t, core, 1, ms::encode_hello("alice"), kS0);
  splay(t, core, 2, ms::encode_hello("bob"), kS0);
  splay(t, core, 3, ms::encode_hello("carol"), kS0);
  // Admission: valid ids only, duplicates rejected, caps enforced.
  splay(t, core, 1, ms::encode_submit("bad id!", sspec("x")), kS0 + 10ms);
  splay(t, core, 1, ms::encode_submit("a1", sspec("a1")), kS0 + 20ms);
  splay(t, core, 1, ms::encode_submit("a1", sspec("a1")), kS0 + 30ms);
  splay(t, core, 1, ms::encode_submit("a2", sspec("a2"), 500), kS0 + 40ms);
  splay(t, core, 1, ms::encode_submit("a3", sspec("a3")), kS0 + 50ms);
  splay(t, core, 2, ms::encode_submit("b1", sspec("b1"), 999999), kS0 + 60ms);
  splay(t, core, 3, ms::encode_submit("c1", sspec("c1")), kS0 + 70ms);
  // Round-robin fairness: grants alternate across connections, cursor
  // parks past each grant.
  next_jobs(t, core, kS0 + 100ms);
  splay(t, core, 3, ms::encode_stats(), kS0 + 110ms);
  // Queued-deadline sweep: a2 (500ms budget) expires in queue.
  ship(t, core.tick(kS0 + 700ms), kS0 + 700ms);
  // Cancel: queued c1 answers stopped at once; running a1 trips its token
  // and resolves through complete(); cancelling the unknown id still acks.
  splay(t, core, 3, ms::encode_cancel("c1"), kS0 + 800ms);
  splay(t, core, 3, ms::encode_cancel("nope"), kS0 + 810ms);
  splay(t, core, 1, ms::encode_cancel("a1"), kS0 + 820ms);
  ship(t, core.complete(1, stopped_outcome(), "", kS0 + 900ms), kS0 + 900ms);
  next_jobs(t, core, kS0 + 1000ms);
  // Disconnect with a running job: the result is suppressed (orphan).
  core.disconnect(2, kS0 + 1100ms);
  t << sat(kS0 + 1100ms) << " -- disconnect conn2\n";
  ship(t, core.complete(2, done_outcome(2.5), "", kS0 + 1200ms),
       kS0 + 1200ms);
  // New submits + a grant after the ring shrank.
  splay(t, core, 1, ms::encode_submit("a4", sspec("a4")), kS0 + 1300ms);
  splay(t, core, 3, ms::encode_submit("c2", sspec("c2")), kS0 + 1310ms);
  next_jobs(t, core, kS0 + 1400ms);
  ship(t, core.complete(5, done_outcome(3.25), "{\"type\":\"report\"}",
                        kS0 + 1500ms),
       kS0 + 1500ms);
  splay(t, core, 1, ms::encode_stats(), kS0 + 1600ms);
  // Drain: queued jobs answer stopped/cancelled, drain notices go out,
  // submits reject, running jobs still complete exactly once.
  ship(t, core.begin_drain(kS0 + 1700ms), kS0 + 1700ms);
  splay(t, core, 1, ms::encode_submit("a5", sspec("a5")), kS0 + 1710ms);
  ship(t, core.complete(6, done_outcome(4.5), "", kS0 + 1800ms),
       kS0 + 1800ms);
  t << "-- idle=" << (core.idle() ? 1 : 0) << "\n";
  splay(t, core, 1, ms::encode_stats(), kS0 + 1900ms);

  check_golden("server_core_scenario.txt", t.str());
}

}  // namespace
