#include "util/trace.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "util/jsonl.hpp"

namespace {

using mpe::util::JsonFields;
using mpe::util::TraceEvent;
using mpe::util::Tracer;

TEST(Trace, DisabledTracerRetainsNothing) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  t.event("x");
  { auto s = t.span("y"); }
  EXPECT_TRUE(t.events().empty());
  EXPECT_EQ(t.total_events(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(Trace, PointEventsCarryNameAndFields) {
  Tracer t(16);
  t.event("first", JsonFields{}.add("k", 1).body());
  t.event("second");
  const auto events = t.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "first");
  EXPECT_EQ(events[0].fields, "\"k\":1");
  EXPECT_EQ(events[0].dur_ns, -1);  // point event: no duration
  EXPECT_EQ(events[1].name, "second");
  EXPECT_TRUE(events[1].fields.empty());
}

TEST(Trace, SequenceNumbersAreStrictlyIncreasingFromZero) {
  Tracer t(8);
  for (int i = 0; i < 5; ++i) t.event("e");
  const auto events = t.events();
  ASSERT_EQ(events.size(), 5u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i);
  }
}

TEST(Trace, RingEvictsOldestAndCountsDrops) {
  Tracer t(4);
  for (int i = 0; i < 10; ++i) {
    t.event("e", JsonFields{}.add("i", i).body());
  }
  EXPECT_EQ(t.total_events(), 10u);
  EXPECT_EQ(t.dropped(), 6u);
  const auto events = t.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest first, and the retained window is the most recent 4.
  EXPECT_EQ(events.front().seq, 6u);
  EXPECT_EQ(events.back().seq, 9u);
  EXPECT_EQ(events.back().fields, "\"i\":9");
}

TEST(Trace, SpanRecordsDurations) {
  Tracer t(4);
  {
    auto s = t.span("work");
    s.note(JsonFields{}.add("n", 3).body());
  }
  const auto events = t.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "work");
  EXPECT_GE(events[0].dur_ns, 0);
  EXPECT_EQ(events[0].fields, "\"n\":3");
}

TEST(Trace, SpanFinishIsIdempotent) {
  Tracer t(4);
  auto s = t.span("once");
  s.finish();
  s.finish();  // second finish must not emit again
  EXPECT_EQ(t.total_events(), 1u);
}

TEST(Trace, MovedFromSpanDoesNotDoubleEmit) {
  Tracer t(4);
  {
    auto s1 = t.span("moved");
    auto s2 = std::move(s1);
  }  // only s2's destructor emits
  EXPECT_EQ(t.total_events(), 1u);
}

TEST(Trace, WallTimesAreMonotonic) {
  Tracer t(8);
  t.event("a");
  t.event("b");
  const auto events = t.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_LE(events[0].wall_ns, events[1].wall_ns);
  EXPECT_GE(events[0].wall_ns, 0);
}

TEST(Trace, ThreadCpuClockReportsWhenAvailable) {
  const std::int64_t cpu = mpe::util::thread_cpu_now_ns();
  if (cpu >= 0) {
    EXPECT_GE(mpe::util::thread_cpu_now_ns(), cpu);
  }
}

}  // namespace
