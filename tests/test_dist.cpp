// dist/: transport framing (including byte-level torn-frame reassembly and
// frame-less flood overflow), protocol round-trips (including bit-exact
// doubles over the wire), the CoordinatorCore lease state machine under a
// synthetic clock — whole-job leases (grant order, heartbeat renewal,
// expiry + bounded reassignment, adoption after coordinator restart,
// exactly-once result dedup, drain) and shard leases (ascending grants,
// straggler speculation, shard-granular expiry, ledger-rebuilt restart,
// v1/v2 mixed fleets) — and in-process coordinator + worker fleets over a
// real Unix socket and a real TCP listener whose merged ledgers must be
// byte-identical to a single-process campaign of the same manifest.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "dist/coordinator.hpp"
#include "dist/protocol.hpp"
#include "dist/transport.hpp"
#include "dist/worker.hpp"
#include "maxpower/campaign.hpp"
#include "maxpower/ledger.hpp"
#include "maxpower/shard.hpp"
#include "util/atomic_file.hpp"

namespace {

namespace mp = mpe::maxpower;
namespace md = mpe::dist;
using namespace std::chrono_literals;
using Clock = md::CoordinatorCore::Clock;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir;
}

mp::CampaignJob tiny_job(const std::string& name, std::uint64_t seed) {
  mp::CampaignJob job;
  job.name = name;
  job.circuit = "c432";
  job.seed = seed;
  job.epsilon = 0.2;
  job.confidence = 0.8;
  job.max_hyper_samples = 100;
  return job;
}

md::CoordinatorConfig two_job_config(const std::string& dir) {
  md::CoordinatorConfig config;
  config.jobs = {tiny_job("j1", 3), tiny_job("j2", 4)};
  config.state_dir = dir;
  config.lease = 5000ms;
  config.reassign.initial_backoff = 100ms;
  config.reassign.max_backoff = 400ms;
  return config;
}

md::Message request(const std::string& worker) {
  md::Message m;
  m.kind = md::MessageKind::kRequest;
  m.worker = worker;
  return m;
}

md::Message heartbeat(const std::string& worker, const std::string& job) {
  md::Message m;
  m.kind = md::MessageKind::kHeartbeat;
  m.worker = worker;
  m.job = job;
  return m;
}

md::Message done_result(const std::string& worker, const std::string& job,
                        double estimate) {
  md::Message m;
  m.kind = md::MessageKind::kResult;
  m.worker = worker;
  m.job = job;
  m.outcome.name = job;
  m.outcome.worker = worker;
  m.outcome.status = mp::JobStatus::kDone;
  m.outcome.attempts = 1;
  m.outcome.result.estimate = estimate;
  m.outcome.result.hyper_samples = 12;
  m.outcome.result.units_used = 3000;
  m.outcome.result.converged = true;
  return m;
}

md::MessageKind reply_kind(const std::string& line) {
  return md::decode_message(line).kind;
}

md::Message request_v2(const std::string& worker) {
  md::Message m = request(worker);
  m.proto = md::kProtocolVersion;
  return m;
}

md::Message shard_heartbeat(const std::string& worker, const std::string& job,
                            std::uint64_t shard) {
  md::Message m = heartbeat(worker, job);
  m.has_shard = true;
  m.shard = shard;
  return m;
}

// Synthetic shard payloads for driving the coordinator state machine
// without real circuit work. spread == 0 yields identical estimates, which
// the interval rule accepts as converged at min_hyper_samples — the first
// assembled prefix is then terminal and the job completes. A wide spread
// keeps the job unconverged, so done shards accumulate while the job stays
// pending.
std::vector<mp::ShardSample> synthetic_samples(std::uint64_t lo,
                                               std::uint64_t hi,
                                               double spread) {
  std::vector<mp::ShardSample> out;
  for (std::uint64_t i = lo; i < hi; ++i) {
    mp::ShardSample s;
    s.index = i;
    s.estimate = 5.0 + spread * static_cast<double>(i % 5);
    s.units = 100;
    s.valid = true;
    s.mle_converged = true;
    out.push_back(s);
  }
  return out;
}

md::Message shard_done(const std::string& worker, const std::string& job,
                       std::uint64_t shard, std::uint64_t lo, std::uint64_t hi,
                       double spread = 0.0) {
  md::Message m;
  m.kind = md::MessageKind::kShardResult;
  m.worker = worker;
  m.job = job;
  m.shard = shard;
  m.lo = lo;
  m.hi = hi;
  m.shard_status = mp::JobStatus::kDone;
  m.samples = mp::encode_shard_samples(synthetic_samples(lo, hi, spread));
  return m;
}

md::CoordinatorConfig sharded_config(const std::string& dir) {
  auto config = two_job_config(dir);
  config.shard_size = 8;  // tiny_job attempt budget 116 -> shards of 8
  return config;
}

// ---------------------------------------------------------------- transport

TEST(Transport, LineFramingOverSocketpair) {
  auto [a, b] = md::socketpair_channel();
  ASSERT_TRUE(a->send_line("one"));
  ASSERT_TRUE(a->send_line("two"));
  std::string line;
  ASSERT_EQ(b->recv_line(line, 1000ms), md::LineChannel::RecvStatus::kLine);
  EXPECT_EQ(line, "one");
  EXPECT_TRUE(b->line_buffered());
  ASSERT_EQ(b->recv_line(line, 0ms), md::LineChannel::RecvStatus::kLine);
  EXPECT_EQ(line, "two");
  EXPECT_EQ(b->recv_line(line, 0ms), md::LineChannel::RecvStatus::kTimeout);
}

TEST(Transport, PeerDeathIsAStatusNotASignal) {
  auto [a, b] = md::socketpair_channel();
  b->close();
  std::string line;
  EXPECT_EQ(a->recv_line(line, 100ms), md::LineChannel::RecvStatus::kClosed);
  // send into a closed peer: false, not SIGPIPE (first send may succeed
  // into the kernel buffer; a follow-up must fail).
  a->send_line("x");
  EXPECT_FALSE(a->send_line("y") && a->send_line("z"));
}

TEST(Transport, UnixListenerAcceptTimesOutCleanly) {
  const std::string sock = fresh_dir("t_listen") + ".sock";
  md::UnixListener listener(sock);
  EXPECT_EQ(listener.accept(20ms), nullptr);
  auto dialer = md::connect_unix(sock);
  ASSERT_NE(dialer, nullptr);
  auto served = listener.accept(1000ms);
  ASSERT_NE(served, nullptr);
  ASSERT_TRUE(dialer->send_line("hi"));
  std::string line;
  ASSERT_EQ(served->recv_line(line, 1000ms),
            md::LineChannel::RecvStatus::kLine);
  EXPECT_EQ(line, "hi");
}

TEST(Transport, TornFramesReassembleAtEverySplitOffset) {
  // A TCP segment boundary can land anywhere inside a frame. Split one
  // realistic message at every byte offset and prove the receive path never
  // yields a partial line and always reassembles the original bytes.
  auto [a, b] = md::socketpair_channel();
  const std::string payload = md::encode_shard_result(
      "w0", "j1", 3, 24, 32, mp::JobStatus::kDone, mpe::ErrorCode::kOk,
      mp::encode_shard_samples(synthetic_samples(24, 32, 0.25)));
  const std::string wire = payload + "\n";
  std::string line;
  for (std::size_t cut = 0; cut <= wire.size(); ++cut) {
    if (cut > 0) {
      ASSERT_EQ(::write(a->fd(), wire.data(), cut), static_cast<ssize_t>(cut));
    }
    if (cut < wire.size()) {
      // The frame is torn mid-line: polling must report "no line yet",
      // never a truncated one.
      ASSERT_EQ(b->recv_line(line, 0ms), md::LineChannel::RecvStatus::kTimeout)
          << "cut=" << cut;
      ASSERT_EQ(::write(a->fd(), wire.data() + cut, wire.size() - cut),
                static_cast<ssize_t>(wire.size() - cut));
    }
    ASSERT_EQ(b->recv_line(line, 1000ms), md::LineChannel::RecvStatus::kLine)
        << "cut=" << cut;
    ASSERT_EQ(line, payload) << "cut=" << cut;
  }
  // Reassembly is not just byte-faithful but semantically whole: the
  // payload doubles survive bit-exactly.
  const md::Message decoded = md::decode_message(line);
  EXPECT_EQ(decoded.kind, md::MessageKind::kShardResult);
  EXPECT_EQ(mp::decode_shard_samples(decoded.samples),
            synthetic_samples(24, 32, 0.25));
}

TEST(Transport, FrameLessFloodOverflowsButLeavesTheChannelAnswerable) {
  auto [a, b] = md::socketpair_channel();
  b->set_recv_limit(64);
  const std::string flood(500, 'x');  // never terminates a line
  ASSERT_EQ(::write(a->fd(), flood.data(), flood.size()),
            static_cast<ssize_t>(flood.size()));
  std::string line;
  ASSERT_EQ(b->recv_line(line, 1000ms), md::LineChannel::RecvStatus::kOverflow);
  // The server's overflow posture (serve_campaign): answer with a protocol
  // error, then hang up — so the overflow must leave the channel usable.
  EXPECT_TRUE(b->valid());
  ASSERT_TRUE(b->send_line(md::encode_error("oversized frame")));
  ASSERT_EQ(a->recv_line(line, 1000ms), md::LineChannel::RecvStatus::kLine);
  EXPECT_EQ(md::decode_message(line).kind, md::MessageKind::kError);
}

// ----------------------------------------------------------------- protocol

TEST(Protocol, ResultPayloadDoublesSurviveTheWireBitExactly) {
  mp::CampaignJobOutcome outcome;
  outcome.name = "j";
  outcome.worker = "w";
  outcome.status = mp::JobStatus::kDone;
  outcome.attempts = 2;
  outcome.result.estimate = 0.1 + 0.2;  // famously non-representable
  outcome.result.hyper_samples = 17;
  outcome.result.units_used = 4250;
  outcome.result.converged = true;
  const md::Message decoded =
      md::decode_message(md::encode_result("w", outcome));
  EXPECT_EQ(decoded.kind, md::MessageKind::kResult);
  EXPECT_EQ(decoded.outcome.result.estimate, outcome.result.estimate);
  EXPECT_EQ(decoded.outcome.result.hyper_samples, 17u);
  EXPECT_EQ(decoded.outcome.status, mp::JobStatus::kDone);
}

TEST(Protocol, LeaseCarriesSpecAsAParseableJobObject) {
  const mp::CampaignJob job = tiny_job("j9", 42);
  const md::Message lease = md::decode_message(
      md::encode_lease(job.name, mp::campaign_job_to_json(job), 5000, 0));
  EXPECT_EQ(lease.kind, md::MessageKind::kLease);
  EXPECT_EQ(lease.ms, 5000u);
  const mp::CampaignJob parsed = mp::parse_campaign_job_line(lease.spec);
  EXPECT_EQ(parsed.name, "j9");
  EXPECT_EQ(parsed.seed, 42u);
  EXPECT_EQ(parsed.epsilon, job.epsilon);
}

TEST(Protocol, ShardLeaseAndShardHeartbeatRoundTrip) {
  const mp::CampaignJob job = tiny_job("j7", 9);
  const md::Message lease = md::decode_message(md::encode_shard_lease(
      "j7", mp::campaign_job_to_json(job), 3, 24, 32, 5000, 0));
  EXPECT_EQ(lease.kind, md::MessageKind::kShardLease);
  EXPECT_EQ(lease.shard, 3u);
  EXPECT_EQ(lease.lo, 24u);
  EXPECT_EQ(lease.hi, 32u);
  EXPECT_EQ(lease.ms, 5000u);
  EXPECT_EQ(mp::parse_campaign_job_line(lease.spec).seed, 9u);

  const md::Message hb =
      md::decode_message(md::encode_shard_heartbeat("w0", "j7", 3));
  EXPECT_EQ(hb.kind, md::MessageKind::kHeartbeat);
  EXPECT_TRUE(hb.has_shard);
  EXPECT_EQ(hb.shard, 3u);
  // A v1 whole-job heartbeat decodes with the shard marker absent.
  EXPECT_FALSE(md::decode_message(md::encode_heartbeat("w0", "j7")).has_shard);
}

TEST(Protocol, MalformedAndMistypedMessagesThrow) {
  EXPECT_THROW((void)md::decode_message("not json"), mpe::Error);
  EXPECT_THROW((void)md::decode_message(R"({"type":"warp"})"), mpe::Error);
  EXPECT_THROW((void)md::decode_message(R"({"type":"heartbeat"})"),
               mpe::Error);  // missing worker/job
  EXPECT_THROW(
      (void)md::decode_message(
          R"({"type":"result","worker":"w","job":"j","status":"done"})"),
      mpe::Error);  // done without estimate
}

// ----------------------------------------- coordinator core (synthetic time)

TEST(CoordinatorCore, GrantsInManifestOrderThenWaits) {
  md::CoordinatorCore core(two_job_config(fresh_dir("cc_order")));
  const auto t0 = Clock::now();
  const md::Message l1 = md::decode_message(core.handle(request("w0"), t0));
  ASSERT_EQ(l1.kind, md::MessageKind::kLease);
  EXPECT_EQ(l1.job, "j1");
  const md::Message l2 = md::decode_message(core.handle(request("w1"), t0));
  ASSERT_EQ(l2.kind, md::MessageKind::kLease);
  EXPECT_EQ(l2.job, "j2");
  EXPECT_EQ(reply_kind(core.handle(request("w2"), t0)),
            md::MessageKind::kWait);
  EXPECT_EQ(core.leases_granted(), 2u);
}

TEST(CoordinatorCore, HeartbeatRenewsALeasePastItsOriginalExpiry) {
  md::CoordinatorCore core(two_job_config(fresh_dir("cc_renew")));
  const auto t0 = Clock::now();
  core.handle(request("w0"), t0);  // leases j1 for 5s
  EXPECT_EQ(reply_kind(core.handle(heartbeat("w0", "j1"), t0 + 4s)),
            md::MessageKind::kAck);
  core.tick(t0 + 8s);  // original expiry was t0+5s; renewal moved it to t0+9s
  EXPECT_EQ(core.phase("j1"), md::JobPhase::kLeased);
  core.tick(t0 + 10s);  // renewed lease now expired
  EXPECT_EQ(core.phase("j1"), md::JobPhase::kPending);
}

TEST(CoordinatorCore, ExpiredLeaseReassignsAfterBackoff) {
  md::CoordinatorCore core(two_job_config(fresh_dir("cc_expire")));
  const auto t0 = Clock::now();
  core.handle(request("w0"), t0);
  core.tick(t0 + 6s);  // w0 died: lease expired
  EXPECT_EQ(core.phase("j1"), md::JobPhase::kPending);
  // Immediately after expiry the job is backoff-gated; j2 is granted
  // instead, preserving overall progress.
  const md::Message next = md::decode_message(core.handle(request("w1"), t0 + 6s));
  ASSERT_EQ(next.kind, md::MessageKind::kLease);
  EXPECT_EQ(next.job, "j2");
  // Once the (jittered, <=440ms here) backoff elapses, j1 is regranted.
  const md::Message regrant =
      md::decode_message(core.handle(request("w1"), t0 + 7s));
  ASSERT_EQ(regrant.kind, md::MessageKind::kLease);
  EXPECT_EQ(regrant.job, "j1");
}

TEST(CoordinatorCore, AssignmentBudgetExhaustionFailsTheJob) {
  auto config = two_job_config(fresh_dir("cc_budget"));
  config.jobs = {tiny_job("j1", 3)};
  config.max_assignments = 2;
  const std::string ledger_path = config.state_dir + "/campaign.jsonl";
  md::CoordinatorCore core(std::move(config));
  auto t = Clock::now();
  for (int round = 0; round < 2; ++round) {
    t += 10s;
    core.tick(t);  // expires the previous lease; gates it behind backoff
    t += 1s;       // past the (<=440ms jittered) reassignment backoff
    ASSERT_EQ(reply_kind(core.handle(request("w0"), t)),
              md::MessageKind::kLease)
        << "round " << round;
    t += 6s;  // the worker dies; lease expires
  }
  core.tick(t);
  EXPECT_EQ(core.phase("j1"), md::JobPhase::kFailed);
  EXPECT_TRUE(core.finished());
  const auto ledger = mp::read_ledger_file(ledger_path);
  ASSERT_EQ(ledger.records.size(), 1u);
  EXPECT_EQ(ledger.records[0].status, "failed");
  EXPECT_TRUE(ledger.records[0].sealed);
  EXPECT_EQ(core.summary().failed, 1u);
}

TEST(CoordinatorCore, RestartedCoordinatorAdoptsHeartbeatedLeases) {
  const std::string dir = fresh_dir("cc_adopt");
  {
    md::CoordinatorCore first(two_job_config(dir));
    first.handle(request("w0"), Clock::now());  // w0 is running j1
  }  // coordinator killed; worker w0 never noticed
  md::CoordinatorCore second(two_job_config(dir));
  EXPECT_EQ(second.phase("j1"), md::JobPhase::kPending);
  const auto t1 = Clock::now();
  EXPECT_EQ(reply_kind(second.handle(heartbeat("w0", "j1"), t1)),
            md::MessageKind::kAck);
  EXPECT_EQ(second.phase("j1"), md::JobPhase::kLeased);
  // The adopted lease keeps j1 off the grant path for other workers.
  const md::Message other = md::decode_message(second.handle(request("w1"), t1));
  ASSERT_EQ(other.kind, md::MessageKind::kLease);
  EXPECT_EQ(other.job, "j2");
}

TEST(CoordinatorCore, DoneResultsAreDedupedToOneLedgerRecord) {
  auto config = two_job_config(fresh_dir("cc_dedupe"));
  const std::string ledger_path = config.state_dir + "/campaign.jsonl";
  md::CoordinatorCore core(std::move(config));
  const auto t0 = Clock::now();
  core.handle(request("w0"), t0);
  const md::Message result = done_result("w0", "j1", 7.25);
  EXPECT_EQ(reply_kind(core.handle(result, t0 + 1s)), md::MessageKind::kAck);
  // The worker never saw the ack and re-sends; at-least-once delivery must
  // not create a second ledger record.
  EXPECT_EQ(reply_kind(core.handle(result, t0 + 2s)), md::MessageKind::kAck);
  const auto ledger = mp::read_ledger_file(ledger_path);
  ASSERT_EQ(ledger.records.size(), 1u);
  EXPECT_EQ(ledger.records[0].job, "j1");
  EXPECT_EQ(ledger.records[0].estimate, 7.25);
  EXPECT_TRUE(mp::audit_ledger(ledger).ok());
}

TEST(CoordinatorCore, StaleHolderIsRevokedButItsDoneResultCounts) {
  auto config = two_job_config(fresh_dir("cc_stale"));
  const std::string ledger_path = config.state_dir + "/campaign.jsonl";
  md::CoordinatorCore core(std::move(config));
  const auto t0 = Clock::now();
  core.handle(request("w0"), t0);
  core.tick(t0 + 6s);                      // w0 presumed dead
  core.handle(request("w1"), t0 + 7s);     // j1 regranted to w1
  // w0 was only partitioned, not dead: its heartbeat is refused...
  EXPECT_EQ(reply_kind(core.handle(heartbeat("w0", "j1"), t0 + 8s)),
            md::MessageKind::kRevoke);
  // ...but its completed, deterministic result is accepted...
  EXPECT_EQ(reply_kind(core.handle(done_result("w0", "j1", 7.25), t0 + 8s)),
            md::MessageKind::kAck);
  EXPECT_EQ(core.phase("j1"), md::JobPhase::kDone);
  // ...and w1's identical result later dedupes silently.
  EXPECT_EQ(reply_kind(core.handle(done_result("w1", "j1", 7.25), t0 + 9s)),
            md::MessageKind::kAck);
  const auto ledger = mp::read_ledger_file(ledger_path);
  ASSERT_EQ(ledger.records.size(), 1u);
}

TEST(CoordinatorCore, LedgerDoneJobsAreSkippedOnConstruction) {
  auto config = two_job_config(fresh_dir("cc_resume"));
  const std::string ledger_path = config.state_dir + "/campaign.jsonl";
  {
    md::CoordinatorCore first(two_job_config(config.state_dir));
    first.handle(request("w0"), Clock::now());
    first.handle(done_result("w0", "j1", 7.25), Clock::now());
  }
  md::CoordinatorCore second(std::move(config));
  EXPECT_EQ(second.phase("j1"), md::JobPhase::kDone);
  const auto summary = second.summary();
  EXPECT_EQ(summary.skipped, 1u);
  // Only j2 is still owed work.
  const md::Message lease =
      md::decode_message(second.handle(request("w1"), Clock::now()));
  ASSERT_EQ(lease.kind, md::MessageKind::kLease);
  EXPECT_EQ(lease.job, "j2");
}

TEST(CoordinatorCore, CorruptLedgerRecordsAreQuarantinedAndJobsRerun) {
  auto config = two_job_config(fresh_dir("cc_corrupt"));
  const std::string ledger_path = config.state_dir + "/campaign.jsonl";
  {
    md::CoordinatorCore first(two_job_config(config.state_dir));
    first.handle(request("w0"), Clock::now());
    first.handle(done_result("w0", "j1", 7.25), Clock::now());
  }
  // Bit rot lands on j1's done record.
  std::string text = mpe::util::read_file(ledger_path);
  text[text.size() / 2] ^= 0x20;
  mpe::util::atomic_write_file(ledger_path, text);

  md::CoordinatorCore second(std::move(config));
  EXPECT_EQ(second.phase("j1"), md::JobPhase::kPending);  // must re-run
  EXPECT_EQ(second.summary().quarantined, 1u);
  EXPECT_TRUE(mpe::util::file_exists(ledger_path + ".quarantine"));
}

TEST(CoordinatorCore, DrainStopsGrantsButServesInFlightLeases) {
  md::CoordinatorCore core(two_job_config(fresh_dir("cc_drain")));
  const auto t0 = Clock::now();
  core.handle(request("w0"), t0);
  core.begin_drain();
  EXPECT_EQ(reply_kind(core.handle(request("w1"), t0)),
            md::MessageKind::kDrain);
  // The in-flight lease still heartbeats and completes normally.
  EXPECT_EQ(reply_kind(core.handle(heartbeat("w0", "j1"), t0 + 1s)),
            md::MessageKind::kAck);
  EXPECT_EQ(reply_kind(core.handle(done_result("w0", "j1", 7.25), t0 + 2s)),
            md::MessageKind::kAck);
  EXPECT_FALSE(core.finished());  // j2 never ran: drain cut it
  EXPECT_FALSE(core.any_leased());
}

TEST(CoordinatorCore, StoppedResultReleasesTheLeaseForImmediateRegrant) {
  md::CoordinatorCore core(two_job_config(fresh_dir("cc_release")));
  const auto t0 = Clock::now();
  core.handle(request("w0"), t0);
  md::Message stopped;
  stopped.kind = md::MessageKind::kResult;
  stopped.worker = "w0";
  stopped.job = "j1";
  stopped.outcome.name = "j1";
  stopped.outcome.status = mp::JobStatus::kStopped;
  EXPECT_EQ(reply_kind(core.handle(stopped, t0 + 1s)), md::MessageKind::kAck);
  EXPECT_EQ(core.phase("j1"), md::JobPhase::kPending);
  // Graceful hand-back carries no crash signal: no backoff gate.
  const md::Message regrant =
      md::decode_message(core.handle(request("w1"), t0 + 1s));
  ASSERT_EQ(regrant.kind, md::MessageKind::kLease);
  EXPECT_EQ(regrant.job, "j1");
}

// ------------------------------ coordinator core: shard leases (v2, synth)

TEST(CoordinatorCore, ShardLeasesGoOutAscendingWithinAJob) {
  md::CoordinatorCore core(sharded_config(fresh_dir("cs_order")));
  const auto t0 = Clock::now();
  const md::Message l1 = md::decode_message(core.handle(request_v2("w0"), t0));
  ASSERT_EQ(l1.kind, md::MessageKind::kShardLease);
  EXPECT_EQ(l1.job, "j1");
  EXPECT_EQ(l1.shard, 0u);
  EXPECT_EQ(l1.lo, 0u);
  EXPECT_EQ(l1.hi, 8u);
  EXPECT_EQ(l1.ms, 5000u);
  EXPECT_EQ(mp::parse_campaign_job_line(l1.spec).name, "j1");
  const md::Message l2 = md::decode_message(core.handle(request_v2("w1"), t0));
  ASSERT_EQ(l2.kind, md::MessageKind::kShardLease);
  EXPECT_EQ(l2.job, "j1");  // one job is drained of shards before the next
  EXPECT_EQ(l2.shard, 1u);
  EXPECT_EQ(l2.lo, 8u);
  EXPECT_EQ(core.leases_granted(), 2u);
}

TEST(CoordinatorCore, DoneShardsAssembleIntoExactlyOneJobRecord) {
  auto config = sharded_config(fresh_dir("cs_assemble"));
  const std::string ledger_path = config.state_dir + "/campaign.jsonl";
  md::CoordinatorCore core(std::move(config));
  const auto t0 = Clock::now();
  core.handle(request_v2("w0"), t0);  // j1 shard 0
  // Identical estimates converge at the 3rd accepted sample, so shard 0
  // already covers j1's stopping point: assembly is terminal.
  EXPECT_EQ(reply_kind(core.handle(shard_done("w0", "j1", 0, 0, 8), t0 + 1s)),
            md::MessageKind::kAck);
  EXPECT_EQ(core.phase("j1"), md::JobPhase::kDone);
  EXPECT_EQ(core.shards_done(), 1u);
  // A speculating loser reporting late is acked without a second append.
  EXPECT_EQ(reply_kind(core.handle(shard_done("w9", "j1", 0, 0, 8), t0 + 2s)),
            md::MessageKind::kAck);
  const auto ledger = mp::read_ledger_file(ledger_path);
  ASSERT_EQ(ledger.records.size(), 2u);
  EXPECT_TRUE(ledger.records[0].is_shard);
  EXPECT_EQ(ledger.records[1].job, "j1");
  EXPECT_EQ(ledger.records[1].status, "done");
  EXPECT_EQ(ledger.records[1].estimate, 5.0);
  EXPECT_TRUE(mp::audit_ledger(ledger).ok());
}

TEST(CoordinatorCore, StragglerGetsASpeculativeSecondHolderFirstResultWins) {
  auto config = sharded_config(fresh_dir("cs_spec"));
  config.jobs = {tiny_job("j1", 3)};
  config.shard_size = 200;  // one shard covering the whole attempt budget
  const std::string ledger_path = config.state_dir + "/campaign.jsonl";
  md::CoordinatorCore core(std::move(config));
  const std::uint64_t hi = mp::job_attempt_budget(tiny_job("j1", 3));
  const auto t0 = Clock::now();
  ASSERT_EQ(reply_kind(core.handle(request_v2("w0"), t0)),
            md::MessageKind::kShardLease);
  // w0 is alive (heartbeating at shard granularity) but slow.
  EXPECT_EQ(reply_kind(core.handle(shard_heartbeat("w0", "j1", 0), t0 + 4s)),
            md::MessageKind::kAck);
  // Too early for speculation (straggler_after defaults to 2x lease = 10s).
  EXPECT_EQ(reply_kind(core.handle(request_v2("w1"), t0 + 6s)),
            md::MessageKind::kWait);
  EXPECT_EQ(reply_kind(core.handle(shard_heartbeat("w0", "j1", 0), t0 + 8s)),
            md::MessageKind::kAck);
  // A worker never races itself...
  EXPECT_EQ(reply_kind(core.handle(request_v2("w0"), t0 + 11s)),
            md::MessageKind::kWait);
  // ...but past the straggler threshold another worker gets a speculative
  // copy of the oldest in-flight shard.
  const md::Message spec =
      md::decode_message(core.handle(request_v2("w1"), t0 + 11s));
  ASSERT_EQ(spec.kind, md::MessageKind::kShardLease);
  EXPECT_EQ(spec.shard, 0u);
  // Speculation is bounded at two holders: a third is refused.
  EXPECT_EQ(reply_kind(core.handle(shard_heartbeat("w9", "j1", 0), t0 + 11s)),
            md::MessageKind::kRevoke);
  // First valid result wins and completes the job...
  EXPECT_EQ(reply_kind(core.handle(shard_done("w1", "j1", 0, 0, hi), t0 + 12s)),
            md::MessageKind::kAck);
  EXPECT_EQ(core.phase("j1"), md::JobPhase::kDone);
  // ...and the loser's duplicate is swallowed by the exactly-once ledger.
  EXPECT_EQ(reply_kind(core.handle(shard_done("w0", "j1", 0, 0, hi), t0 + 13s)),
            md::MessageKind::kAck);
  const auto ledger = mp::read_ledger_file(ledger_path);
  ASSERT_EQ(ledger.records.size(), 2u);  // one shard record, one job record
  EXPECT_TRUE(mp::audit_ledger(ledger).ok());
}

TEST(CoordinatorCore, ExpiredShardIsRedispatchedUntilItsBudgetFailsTheJob) {
  auto config = sharded_config(fresh_dir("cs_budget"));
  config.jobs = {tiny_job("j1", 3)};
  config.shard_size = 200;
  config.max_assignments = 2;
  const std::string ledger_path = config.state_dir + "/campaign.jsonl";
  md::CoordinatorCore core(std::move(config));
  const auto t0 = Clock::now();
  ASSERT_EQ(reply_kind(core.handle(request_v2("w0"), t0)),
            md::MessageKind::kShardLease);
  core.tick(t0 + 6s);  // w0 died: every holder of the shard expired
  // Immediately after expiry the shard is backoff-gated...
  EXPECT_EQ(reply_kind(core.handle(request_v2("w1"), t0 + 6s)),
            md::MessageKind::kWait);
  // ...then regranted once the (<=440ms jittered) backoff elapses.
  const md::Message regrant =
      md::decode_message(core.handle(request_v2("w1"), t0 + 7s));
  ASSERT_EQ(regrant.kind, md::MessageKind::kShardLease);
  EXPECT_EQ(regrant.shard, 0u);
  // The second holder dies too: the shard's budget is spent and the job
  // fails terminally so the campaign can finish.
  core.tick(t0 + 13s);
  EXPECT_EQ(core.phase("j1"), md::JobPhase::kFailed);
  EXPECT_TRUE(core.finished());
  const auto ledger = mp::read_ledger_file(ledger_path);
  ASSERT_EQ(ledger.records.size(), 1u);
  EXPECT_EQ(ledger.records[0].status, "failed");
  EXPECT_TRUE(ledger.records[0].sealed);
}

TEST(CoordinatorCore, ShardHeartbeatRenewalKeepsTheShardLeased) {
  md::CoordinatorCore core(sharded_config(fresh_dir("cs_renew")));
  const auto t0 = Clock::now();
  core.handle(request_v2("w0"), t0);  // j1 shard 0, expiry t0+5s
  EXPECT_EQ(reply_kind(core.handle(shard_heartbeat("w0", "j1", 0), t0 + 4s)),
            md::MessageKind::kAck);
  core.tick(t0 + 8s);  // past original expiry; the renewal moved it to t0+9s
  // Shard 0 must still be held: the next grant skips to shard 1.
  const md::Message next =
      md::decode_message(core.handle(request_v2("w1"), t0 + 8s));
  ASSERT_EQ(next.kind, md::MessageKind::kShardLease);
  EXPECT_EQ(next.shard, 1u);
  // Once the renewed lease lapses the shard returns to the pool.
  core.tick(t0 + 10s);
  const md::Message regrant =
      md::decode_message(core.handle(request_v2("w2"), t0 + 11s));
  ASSERT_EQ(regrant.kind, md::MessageKind::kShardLease);
  EXPECT_EQ(regrant.shard, 0u);
}

TEST(CoordinatorCore, RestartRebuildsDoneShardsFromTheLedgerAlone) {
  const std::string dir = fresh_dir("cs_restart");
  {
    md::CoordinatorCore first(sharded_config(dir));
    const auto t0 = Clock::now();
    first.handle(request_v2("w0"), t0);  // j1 shard 0
    // A wide spread keeps j1 unconverged: shard 0 completes but the job
    // stays pending, owing shards.
    ASSERT_EQ(reply_kind(first.handle(
                  shard_done("w0", "j1", 0, 0, 8, /*spread=*/10.0), t0 + 1s)),
              md::MessageKind::kAck);
    EXPECT_EQ(first.phase("j1"), md::JobPhase::kPending);
    EXPECT_EQ(first.shards_done(), 1u);
  }  // coordinator killed mid-campaign
  md::CoordinatorCore second(sharded_config(dir));
  EXPECT_EQ(second.shards_done(), 1u);  // rebuilt from shard records
  EXPECT_EQ(second.phase("j1"), md::JobPhase::kPending);
  const auto t1 = Clock::now();
  // Work resumes at the first shard still owed, not at zero.
  const md::Message next =
      md::decode_message(second.handle(request_v2("w1"), t1));
  ASSERT_EQ(next.kind, md::MessageKind::kShardLease);
  EXPECT_EQ(next.job, "j1");
  EXPECT_EQ(next.shard, 1u);
  EXPECT_EQ(next.lo, 8u);
  // A holder from before the restart is adopted at shard granularity by
  // its own heartbeat...
  EXPECT_EQ(reply_kind(second.handle(shard_heartbeat("w5", "j1", 2), t1)),
            md::MessageKind::kAck);
  // ...which keeps that shard off the grant path.
  const md::Message after =
      md::decode_message(second.handle(request_v2("w6"), t1));
  ASSERT_EQ(after.kind, md::MessageKind::kShardLease);
  EXPECT_EQ(after.shard, 3u);
}

TEST(CoordinatorCore, V1WorkersStillGetWholeJobsInAShardedCampaign) {
  auto config = sharded_config(fresh_dir("cs_v1"));
  const std::string ledger_path = config.state_dir + "/campaign.jsonl";
  md::CoordinatorCore core(std::move(config));
  const auto t0 = Clock::now();
  // A v1 worker (no proto on its request) cannot run shard leases: it gets
  // the whole job while no shard has made progress.
  const md::Message whole = md::decode_message(core.handle(request("w0"), t0));
  ASSERT_EQ(whole.kind, md::MessageKind::kLease);
  EXPECT_EQ(whole.job, "j1");
  // j2 goes out sharded to a v2 worker...
  const md::Message sharded =
      md::decode_message(core.handle(request_v2("w1"), t0));
  ASSERT_EQ(sharded.kind, md::MessageKind::kShardLease);
  EXPECT_EQ(sharded.job, "j2");
  // ...after which v1 workers may not claim it whole: one wave index must
  // never be owned under two different lease structures at once.
  EXPECT_EQ(reply_kind(core.handle(request("w2"), t0)), md::MessageKind::kWait);
  EXPECT_EQ(reply_kind(core.handle(heartbeat("w9", "j2"), t0 + 1s)),
            md::MessageKind::kRevoke);
  // The v1 whole-job path still completes normally alongside.
  EXPECT_EQ(reply_kind(core.handle(done_result("w0", "j1", 7.25), t0 + 2s)),
            md::MessageKind::kAck);
  EXPECT_EQ(core.phase("j1"), md::JobPhase::kDone);
  // A whole-job done result is accepted even for a sharded job —
  // determinism makes it the same answer the shards would assemble to.
  EXPECT_EQ(reply_kind(core.handle(done_result("w5", "j2", 3.5), t0 + 3s)),
            md::MessageKind::kAck);
  EXPECT_EQ(core.phase("j2"), md::JobPhase::kDone);
  EXPECT_TRUE(core.finished());
  EXPECT_TRUE(mp::audit_ledger(mp::read_ledger_file(ledger_path)).ok());
}

TEST(CoordinatorCore, HelloNegotiatesTheSupportedProtocolRange) {
  md::CoordinatorCore core(sharded_config(fresh_dir("cs_hello")));
  md::Message hello;
  hello.kind = md::MessageKind::kHello;
  hello.worker = "w0";
  hello.proto = md::kMinProtocolVersion;
  EXPECT_EQ(reply_kind(core.handle(hello, Clock::now())),
            md::MessageKind::kAck);
  hello.proto = md::kProtocolVersion;
  EXPECT_EQ(reply_kind(core.handle(hello, Clock::now())),
            md::MessageKind::kAck);
  hello.proto = md::kProtocolVersion + 1;  // from the future
  EXPECT_EQ(reply_kind(core.handle(hello, Clock::now())),
            md::MessageKind::kError);
  hello.proto = 0;  // pre-handshake relic
  EXPECT_EQ(reply_kind(core.handle(hello, Clock::now())),
            md::MessageKind::kError);
}

// ---------------------- coordinator core: persistent / fleet-executor mode

TEST(CoordinatorCore, PersistentModeWaitsWhenIdleAndAcceptsAddedJobs) {
  // The fleet executor embeds the coordinator with a dynamic job set: it
  // starts empty, jobs arrive via add_job, and "nothing to do right now"
  // must read as wait — drain would send the whole worker fleet home.
  auto config = two_job_config(fresh_dir("cc_persist"));
  config.jobs.clear();
  config.persistent = true;
  md::CoordinatorCore core(std::move(config));
  const auto t0 = Clock::now();
  EXPECT_TRUE(core.finished());  // vacuously: no jobs yet
  EXPECT_EQ(reply_kind(core.handle(request("w0"), t0)), md::MessageKind::kWait);

  core.add_job(tiny_job("late", 7));
  const md::Message lease = md::decode_message(core.handle(request("w0"), t0));
  ASSERT_EQ(lease.kind, md::MessageKind::kLease);
  EXPECT_EQ(lease.job, "late");
  EXPECT_EQ(reply_kind(core.handle(done_result("w0", "late", 6.5), t0 + 1s)),
            md::MessageKind::kAck);

  // Terminal outcomes surface exactly once through take_completions.
  const auto completions = core.take_completions();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].name, "late");
  EXPECT_EQ(completions[0].status, mp::JobStatus::kDone);
  EXPECT_EQ(completions[0].result.estimate, 6.5);
  EXPECT_TRUE(core.take_completions().empty());

  // Finished again — and still waiting, never draining.
  EXPECT_EQ(reply_kind(core.handle(request("w1"), t0 + 2s)),
            md::MessageKind::kWait);
  EXPECT_THROW(core.add_job(tiny_job("late", 8)), mpe::Error);  // dup name
}

TEST(CoordinatorCore, AbandonRevokesTheLeaseAndRecordsStopped) {
  md::CoordinatorCore core(two_job_config(fresh_dir("cc_abandon")));
  const auto t0 = Clock::now();
  core.handle(request("w0"), t0);  // w0 runs j1
  EXPECT_FALSE(core.abandon("nope"));
  EXPECT_TRUE(core.abandon("j1"));
  // The holder learns on its next heartbeat that the job is gone.
  EXPECT_EQ(reply_kind(core.handle(heartbeat("w0", "j1"), t0 + 1s)),
            md::MessageKind::kRevoke);
  const auto completions = core.take_completions();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].name, "j1");
  EXPECT_EQ(completions[0].status, mp::JobStatus::kStopped);
  EXPECT_EQ(completions[0].error, mpe::ErrorCode::kCancelled);
  EXPECT_FALSE(core.abandon("j1"));  // already terminal
  // The grant path moves on to j2.
  const md::Message next = md::decode_message(core.handle(request("w1"), t0));
  ASSERT_EQ(next.kind, md::MessageKind::kLease);
  EXPECT_EQ(next.job, "j2");
}

TEST(CoordinatorCore, WholeJobFallbackOffKeepsShardedJobsOffTheV1Path) {
  // Fleet mode: only assembled shard prefixes carry the CI bounds and
  // diagnostics a server result line needs, so whole-job grants (and
  // whole-claim adoption) must be refused even to v1 workers.
  auto config = sharded_config(fresh_dir("cc_nofallback"));
  config.whole_job_fallback = false;
  md::CoordinatorCore core(std::move(config));
  const auto t0 = Clock::now();
  EXPECT_EQ(reply_kind(core.handle(request("w0"), t0)), md::MessageKind::kWait);
  EXPECT_EQ(reply_kind(core.handle(heartbeat("w0", "j1"), t0)),
            md::MessageKind::kRevoke);
  // v2 workers shard-lease normally.
  EXPECT_EQ(reply_kind(core.handle(request_v2("w1"), t0)),
            md::MessageKind::kShardLease);
}

TEST(CoordinatorCore, AutoShardSizingTracksObservedLatencyWithinBounds) {
  auto config = two_job_config(fresh_dir("cc_autoshard"));
  config.jobs = {tiny_job("j1", 3)};
  config.shard_size = 0;
  config.shard_auto = true;
  config.shard_size_floor = 2;
  config.shard_size_ceiling = 16;
  config.shard_target_latency = 1000ms;
  md::CoordinatorCore core(std::move(config));
  // Before any observation: the floor (small first shards converge the
  // latency estimate fast).
  EXPECT_EQ(core.shard_size_now(), 2u);

  const auto t0 = Clock::now();
  const md::Message l0 = md::decode_message(core.handle(request_v2("w0"), t0));
  ASSERT_EQ(l0.kind, md::MessageKind::kShardLease);
  ASSERT_EQ(l0.hi - l0.lo, 2u);  // partitioned at the pre-observation floor
  // Shard 0 finishes in 200ms -> 100ms/attempt -> target/ewma = 10.
  ASSERT_EQ(reply_kind(core.handle(
                shard_done("w0", "j1", 0, l0.lo, l0.hi, /*spread=*/10.0),
                t0 + 200ms)),
            md::MessageKind::kAck);
  EXPECT_EQ(core.shard_size_now(), 10u);

  // A much slower shard drags the EWMA up and the size back down:
  // 2000ms / 2 attempts = 1000ms/attempt; ewma = 0.2*1000 + 0.8*100 = 280;
  // 1000/280 -> 3.
  const auto t1 = t0 + 200ms;
  const md::Message l1 = md::decode_message(core.handle(request_v2("w0"), t1));
  ASSERT_EQ(l1.kind, md::MessageKind::kShardLease);
  ASSERT_EQ(reply_kind(core.handle(
                shard_done("w0", "j1", l1.shard, l1.lo, l1.hi,
                           /*spread=*/10.0),
                t1 + 2000ms)),
            md::MessageKind::kAck);
  EXPECT_EQ(core.shard_size_now(), 3u);

  // j1's partition was fixed at creation: its remaining shards still go out
  // at the original width even though the adaptive size moved.
  const md::Message frozen =
      md::decode_message(core.handle(request_v2("w1"), t1 + 2100ms));
  ASSERT_EQ(frozen.kind, md::MessageKind::kShardLease);
  EXPECT_EQ(frozen.job, "j1");
  EXPECT_EQ(frozen.hi - frozen.lo, 2u);

  // A job added NOW is partitioned at the current adaptive size.
  ASSERT_TRUE(core.abandon("j1"));
  core.add_job(tiny_job("j2", 4));
  const md::Message l2 =
      md::decode_message(core.handle(request_v2("w1"), t1 + 2100ms));
  ASSERT_EQ(l2.kind, md::MessageKind::kShardLease);
  EXPECT_EQ(l2.job, "j2");
  EXPECT_EQ(l2.hi - l2.lo, 3u);
}

// ------------------------------------------------- end-to-end over a socket

TEST(DistEndToEnd, FleetMergesByteIdenticalToSingleProcessCampaign) {
  // Single-process golden run.
  const std::string solo_dir = fresh_dir("e2e_solo");
  std::vector<mp::CampaignJob> solo_jobs = {tiny_job("a", 3), tiny_job("b", 4),
                                            tiny_job("c", 5)};
  mp::CampaignOptions solo_options;
  solo_options.state_dir = solo_dir;
  const auto solo = mp::run_campaign(solo_jobs, solo_options);
  ASSERT_EQ(solo.done, 3u);
  const std::string golden =
      mp::merge_ledger(mp::read_ledger_file(solo_dir + "/campaign.jsonl"));

  // Distributed run: one coordinator thread, two worker threads.
  const std::string dist_dir = fresh_dir("e2e_dist");
  const std::string sock = dist_dir + ".sock";
  md::CoordinatorConfig config;
  config.jobs = {tiny_job("a", 3), tiny_job("b", 4), tiny_job("c", 5)};
  config.state_dir = dist_dir;
  config.lease = 2000ms;
  md::CoordinatorCore core(std::move(config));
  md::CoordinatorServerOptions server;
  server.socket_path = sock;
  mp::CampaignResult dist_result;
  std::thread coordinator(
      [&] { dist_result = md::serve_campaign(core, server); });

  auto worker_main = [&](const std::string& id) {
    md::WorkerConfig worker;
    worker.socket_path = sock;
    worker.worker_id = id;
    worker.state_dir = dist_dir;
    worker.heartbeat = 100ms;
    return md::run_worker(worker);
  };
  md::WorkerSummary s0, s1;
  std::thread w0([&] { s0 = worker_main("w0"); });
  std::thread w1([&] { s1 = worker_main("w1"); });
  coordinator.join();
  w0.join();
  w1.join();

  EXPECT_EQ(dist_result.done, 3u);
  EXPECT_EQ(dist_result.failed, 0u);
  EXPECT_EQ(s0.done + s1.done, 3u);
  EXPECT_TRUE(s0.drained);
  EXPECT_TRUE(s1.drained);

  const auto ledger = mp::read_ledger_file(dist_dir + "/campaign.jsonl");
  const auto audit = mp::audit_ledger(ledger);
  EXPECT_TRUE(audit.ok()) << (audit.violations.empty()
                                  ? ""
                                  : audit.violations.front());
  // The tentpole guarantee: scheduling nondeterminism (which worker ran
  // what, in which order) must not leak into the merged results.
  EXPECT_EQ(mp::merge_ledger(ledger), golden);
}

TEST(DistEndToEnd, ShardedTcpFleetMergesByteIdenticalToSingleProcess) {
  // Single-process golden run.
  const std::string solo_dir = fresh_dir("e2e_tcp_solo");
  std::vector<mp::CampaignJob> solo_jobs = {tiny_job("a", 3), tiny_job("b", 4)};
  mp::CampaignOptions solo_options;
  solo_options.state_dir = solo_dir;
  const auto solo = mp::run_campaign(solo_jobs, solo_options);
  ASSERT_EQ(solo.done, 2u);
  const std::string golden =
      mp::merge_ledger(mp::read_ledger_file(solo_dir + "/campaign.jsonl"));

  // Distributed run over real TCP (the multi-host seam), jobs split into
  // shard leases that two workers compute and the coordinator assembles.
  const std::string dist_dir = fresh_dir("e2e_tcp_dist");
  md::CoordinatorConfig config;
  config.jobs = {tiny_job("a", 3), tiny_job("b", 4)};
  config.state_dir = dist_dir;
  config.lease = 2000ms;
  config.shard_size = 4;  // force multi-shard assembly over the wire
  md::CoordinatorCore core(std::move(config));
  md::TcpListener listener(0);  // kernel-assigned port: parallel-test safe
  md::CoordinatorServerOptions server;
  mp::CampaignResult dist_result;
  std::thread coordinator(
      [&] { dist_result = md::serve_campaign(core, listener, server); });

  auto worker_main = [&](const std::string& id) {
    md::WorkerConfig worker;
    worker.tcp_port = listener.port();
    worker.worker_id = id;
    worker.state_dir = dist_dir;
    worker.heartbeat = 100ms;
    return md::run_worker(worker);
  };
  md::WorkerSummary s0, s1;
  std::thread w0([&] { s0 = worker_main("w0"); });
  std::thread w1([&] { s1 = worker_main("w1"); });
  coordinator.join();
  w0.join();
  w1.join();

  EXPECT_EQ(dist_result.done, 2u);
  EXPECT_EQ(dist_result.failed, 0u);
  EXPECT_TRUE(s0.drained);
  EXPECT_TRUE(s1.drained);
  // Sharding was actually exercised, not silently degraded to whole jobs.
  EXPECT_GT(core.shards_done(), 0u);
  EXPECT_GT(s0.shards + s1.shards, 0u);

  const auto ledger = mp::read_ledger_file(dist_dir + "/campaign.jsonl");
  const auto audit = mp::audit_ledger(ledger);
  EXPECT_TRUE(audit.ok()) << (audit.violations.empty()
                                  ? ""
                                  : audit.violations.front());
  // The tentpole guarantee, one level deeper than whole-job distribution:
  // which worker computed which wave-index range must not leak into the
  // merged results.
  EXPECT_EQ(mp::merge_ledger(ledger), golden);
}

TEST(DistEndToEnd, DisjointWorkerStateDirsStayByteIdentical) {
  // Cross-host fleets share nothing but the protocol: each worker resolves
  // its shard checkpoints under its OWN state directory (a path under the
  // coordinator's dir would silently collide — or worse, not exist — on
  // another host). The merged ledger must still be byte-identical to a
  // single-process campaign.
  const std::string solo_dir = fresh_dir("e2e_disjoint_solo");
  std::vector<mp::CampaignJob> solo_jobs = {tiny_job("a", 3), tiny_job("b", 4)};
  mp::CampaignOptions solo_options;
  solo_options.state_dir = solo_dir;
  const auto solo = mp::run_campaign(solo_jobs, solo_options);
  ASSERT_EQ(solo.done, 2u);
  const std::string golden =
      mp::merge_ledger(mp::read_ledger_file(solo_dir + "/campaign.jsonl"));

  const std::string coord_dir = fresh_dir("e2e_disjoint_coord");
  md::CoordinatorConfig config;
  config.jobs = {tiny_job("a", 3), tiny_job("b", 4)};
  config.state_dir = coord_dir;
  config.lease = 2000ms;
  config.shard_size = 4;
  md::CoordinatorCore core(std::move(config));
  md::TcpListener listener(0);
  md::CoordinatorServerOptions server;
  mp::CampaignResult dist_result;
  std::thread coordinator(
      [&] { dist_result = md::serve_campaign(core, listener, server); });

  auto worker_main = [&](const std::string& id) {
    md::WorkerConfig worker;
    worker.tcp_port = listener.port();
    worker.worker_id = id;
    worker.state_dir = fresh_dir("e2e_disjoint_" + id);  // per-host dir
    worker.heartbeat = 100ms;
    return md::run_worker(worker);
  };
  md::WorkerSummary s0, s1;
  std::thread w0([&] { s0 = worker_main("w0"); });
  std::thread w1([&] { s1 = worker_main("w1"); });
  coordinator.join();
  w0.join();
  w1.join();

  EXPECT_EQ(dist_result.done, 2u);
  EXPECT_EQ(dist_result.failed, 0u);
  EXPECT_TRUE(s0.drained);
  EXPECT_TRUE(s1.drained);
  EXPECT_GT(core.shards_done(), 0u);
  const auto ledger = mp::read_ledger_file(coord_dir + "/campaign.jsonl");
  EXPECT_TRUE(mp::audit_ledger(ledger).ok());
  EXPECT_EQ(mp::merge_ledger(ledger), golden);
}

TEST(DistEndToEnd, WorkerGivesUpCleanlyWhenNoCoordinatorExists) {
  md::WorkerConfig worker;
  worker.socket_path = fresh_dir("e2e_nobody") + ".sock";
  worker.worker_id = "w0";
  worker.state_dir = fresh_dir("e2e_nobody_state");
  worker.connect_retry.max_attempts = 3;
  worker.connect_retry.initial_backoff = 10ms;
  worker.connect_retry.max_backoff = 20ms;
  const auto summary = md::run_worker(worker);
  EXPECT_EQ(summary.exit_error, mpe::ErrorCode::kIo);
  EXPECT_EQ(summary.leases, 0u);
}

}  // namespace
