// dist/: transport framing, protocol round-trips (including bit-exact
// doubles over the wire), the CoordinatorCore lease state machine under a
// synthetic clock (grant order, heartbeat renewal, expiry + bounded
// reassignment, adoption after coordinator restart, exactly-once result
// dedup, drain), and an in-process coordinator + worker fleet over a real
// Unix socket whose merged ledger must be byte-identical to a
// single-process campaign of the same manifest.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "dist/coordinator.hpp"
#include "dist/protocol.hpp"
#include "dist/transport.hpp"
#include "dist/worker.hpp"
#include "maxpower/campaign.hpp"
#include "maxpower/ledger.hpp"
#include "util/atomic_file.hpp"

namespace {

namespace mp = mpe::maxpower;
namespace md = mpe::dist;
using namespace std::chrono_literals;
using Clock = md::CoordinatorCore::Clock;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir;
}

mp::CampaignJob tiny_job(const std::string& name, std::uint64_t seed) {
  mp::CampaignJob job;
  job.name = name;
  job.circuit = "c432";
  job.seed = seed;
  job.epsilon = 0.2;
  job.confidence = 0.8;
  job.max_hyper_samples = 100;
  return job;
}

md::CoordinatorConfig two_job_config(const std::string& dir) {
  md::CoordinatorConfig config;
  config.jobs = {tiny_job("j1", 3), tiny_job("j2", 4)};
  config.state_dir = dir;
  config.lease = 5000ms;
  config.reassign.initial_backoff = 100ms;
  config.reassign.max_backoff = 400ms;
  return config;
}

md::Message request(const std::string& worker) {
  md::Message m;
  m.kind = md::MessageKind::kRequest;
  m.worker = worker;
  return m;
}

md::Message heartbeat(const std::string& worker, const std::string& job) {
  md::Message m;
  m.kind = md::MessageKind::kHeartbeat;
  m.worker = worker;
  m.job = job;
  return m;
}

md::Message done_result(const std::string& worker, const std::string& job,
                        double estimate) {
  md::Message m;
  m.kind = md::MessageKind::kResult;
  m.worker = worker;
  m.job = job;
  m.outcome.name = job;
  m.outcome.worker = worker;
  m.outcome.status = mp::JobStatus::kDone;
  m.outcome.attempts = 1;
  m.outcome.result.estimate = estimate;
  m.outcome.result.hyper_samples = 12;
  m.outcome.result.units_used = 3000;
  m.outcome.result.converged = true;
  return m;
}

md::MessageKind reply_kind(const std::string& line) {
  return md::decode_message(line).kind;
}

// ---------------------------------------------------------------- transport

TEST(Transport, LineFramingOverSocketpair) {
  auto [a, b] = md::socketpair_channel();
  ASSERT_TRUE(a->send_line("one"));
  ASSERT_TRUE(a->send_line("two"));
  std::string line;
  ASSERT_EQ(b->recv_line(line, 1000ms), md::LineChannel::RecvStatus::kLine);
  EXPECT_EQ(line, "one");
  EXPECT_TRUE(b->line_buffered());
  ASSERT_EQ(b->recv_line(line, 0ms), md::LineChannel::RecvStatus::kLine);
  EXPECT_EQ(line, "two");
  EXPECT_EQ(b->recv_line(line, 0ms), md::LineChannel::RecvStatus::kTimeout);
}

TEST(Transport, PeerDeathIsAStatusNotASignal) {
  auto [a, b] = md::socketpair_channel();
  b->close();
  std::string line;
  EXPECT_EQ(a->recv_line(line, 100ms), md::LineChannel::RecvStatus::kClosed);
  // send into a closed peer: false, not SIGPIPE (first send may succeed
  // into the kernel buffer; a follow-up must fail).
  a->send_line("x");
  EXPECT_FALSE(a->send_line("y") && a->send_line("z"));
}

TEST(Transport, UnixListenerAcceptTimesOutCleanly) {
  const std::string sock = fresh_dir("t_listen") + ".sock";
  md::UnixListener listener(sock);
  EXPECT_EQ(listener.accept(20ms), nullptr);
  auto dialer = md::connect_unix(sock);
  ASSERT_NE(dialer, nullptr);
  auto served = listener.accept(1000ms);
  ASSERT_NE(served, nullptr);
  ASSERT_TRUE(dialer->send_line("hi"));
  std::string line;
  ASSERT_EQ(served->recv_line(line, 1000ms),
            md::LineChannel::RecvStatus::kLine);
  EXPECT_EQ(line, "hi");
}

// ----------------------------------------------------------------- protocol

TEST(Protocol, ResultPayloadDoublesSurviveTheWireBitExactly) {
  mp::CampaignJobOutcome outcome;
  outcome.name = "j";
  outcome.worker = "w";
  outcome.status = mp::JobStatus::kDone;
  outcome.attempts = 2;
  outcome.result.estimate = 0.1 + 0.2;  // famously non-representable
  outcome.result.hyper_samples = 17;
  outcome.result.units_used = 4250;
  outcome.result.converged = true;
  const md::Message decoded =
      md::decode_message(md::encode_result("w", outcome));
  EXPECT_EQ(decoded.kind, md::MessageKind::kResult);
  EXPECT_EQ(decoded.outcome.result.estimate, outcome.result.estimate);
  EXPECT_EQ(decoded.outcome.result.hyper_samples, 17u);
  EXPECT_EQ(decoded.outcome.status, mp::JobStatus::kDone);
}

TEST(Protocol, LeaseCarriesSpecAsAParseableJobObject) {
  const mp::CampaignJob job = tiny_job("j9", 42);
  const md::Message lease = md::decode_message(
      md::encode_lease(job.name, mp::campaign_job_to_json(job), 5000, 0));
  EXPECT_EQ(lease.kind, md::MessageKind::kLease);
  EXPECT_EQ(lease.ms, 5000u);
  const mp::CampaignJob parsed = mp::parse_campaign_job_line(lease.spec);
  EXPECT_EQ(parsed.name, "j9");
  EXPECT_EQ(parsed.seed, 42u);
  EXPECT_EQ(parsed.epsilon, job.epsilon);
}

TEST(Protocol, MalformedAndMistypedMessagesThrow) {
  EXPECT_THROW((void)md::decode_message("not json"), mpe::Error);
  EXPECT_THROW((void)md::decode_message(R"({"type":"warp"})"), mpe::Error);
  EXPECT_THROW((void)md::decode_message(R"({"type":"heartbeat"})"),
               mpe::Error);  // missing worker/job
  EXPECT_THROW(
      (void)md::decode_message(
          R"({"type":"result","worker":"w","job":"j","status":"done"})"),
      mpe::Error);  // done without estimate
}

// ----------------------------------------- coordinator core (synthetic time)

TEST(CoordinatorCore, GrantsInManifestOrderThenWaits) {
  md::CoordinatorCore core(two_job_config(fresh_dir("cc_order")));
  const auto t0 = Clock::now();
  const md::Message l1 = md::decode_message(core.handle(request("w0"), t0));
  ASSERT_EQ(l1.kind, md::MessageKind::kLease);
  EXPECT_EQ(l1.job, "j1");
  const md::Message l2 = md::decode_message(core.handle(request("w1"), t0));
  ASSERT_EQ(l2.kind, md::MessageKind::kLease);
  EXPECT_EQ(l2.job, "j2");
  EXPECT_EQ(reply_kind(core.handle(request("w2"), t0)),
            md::MessageKind::kWait);
  EXPECT_EQ(core.leases_granted(), 2u);
}

TEST(CoordinatorCore, HeartbeatRenewsALeasePastItsOriginalExpiry) {
  md::CoordinatorCore core(two_job_config(fresh_dir("cc_renew")));
  const auto t0 = Clock::now();
  core.handle(request("w0"), t0);  // leases j1 for 5s
  EXPECT_EQ(reply_kind(core.handle(heartbeat("w0", "j1"), t0 + 4s)),
            md::MessageKind::kAck);
  core.tick(t0 + 8s);  // original expiry was t0+5s; renewal moved it to t0+9s
  EXPECT_EQ(core.phase("j1"), md::JobPhase::kLeased);
  core.tick(t0 + 10s);  // renewed lease now expired
  EXPECT_EQ(core.phase("j1"), md::JobPhase::kPending);
}

TEST(CoordinatorCore, ExpiredLeaseReassignsAfterBackoff) {
  md::CoordinatorCore core(two_job_config(fresh_dir("cc_expire")));
  const auto t0 = Clock::now();
  core.handle(request("w0"), t0);
  core.tick(t0 + 6s);  // w0 died: lease expired
  EXPECT_EQ(core.phase("j1"), md::JobPhase::kPending);
  // Immediately after expiry the job is backoff-gated; j2 is granted
  // instead, preserving overall progress.
  const md::Message next = md::decode_message(core.handle(request("w1"), t0 + 6s));
  ASSERT_EQ(next.kind, md::MessageKind::kLease);
  EXPECT_EQ(next.job, "j2");
  // Once the (jittered, <=440ms here) backoff elapses, j1 is regranted.
  const md::Message regrant =
      md::decode_message(core.handle(request("w1"), t0 + 7s));
  ASSERT_EQ(regrant.kind, md::MessageKind::kLease);
  EXPECT_EQ(regrant.job, "j1");
}

TEST(CoordinatorCore, AssignmentBudgetExhaustionFailsTheJob) {
  auto config = two_job_config(fresh_dir("cc_budget"));
  config.jobs = {tiny_job("j1", 3)};
  config.max_assignments = 2;
  const std::string ledger_path = config.state_dir + "/campaign.jsonl";
  md::CoordinatorCore core(std::move(config));
  auto t = Clock::now();
  for (int round = 0; round < 2; ++round) {
    t += 10s;
    core.tick(t);  // expires the previous lease; gates it behind backoff
    t += 1s;       // past the (<=440ms jittered) reassignment backoff
    ASSERT_EQ(reply_kind(core.handle(request("w0"), t)),
              md::MessageKind::kLease)
        << "round " << round;
    t += 6s;  // the worker dies; lease expires
  }
  core.tick(t);
  EXPECT_EQ(core.phase("j1"), md::JobPhase::kFailed);
  EXPECT_TRUE(core.finished());
  const auto ledger = mp::read_ledger_file(ledger_path);
  ASSERT_EQ(ledger.records.size(), 1u);
  EXPECT_EQ(ledger.records[0].status, "failed");
  EXPECT_TRUE(ledger.records[0].sealed);
  EXPECT_EQ(core.summary().failed, 1u);
}

TEST(CoordinatorCore, RestartedCoordinatorAdoptsHeartbeatedLeases) {
  const std::string dir = fresh_dir("cc_adopt");
  {
    md::CoordinatorCore first(two_job_config(dir));
    first.handle(request("w0"), Clock::now());  // w0 is running j1
  }  // coordinator killed; worker w0 never noticed
  md::CoordinatorCore second(two_job_config(dir));
  EXPECT_EQ(second.phase("j1"), md::JobPhase::kPending);
  const auto t1 = Clock::now();
  EXPECT_EQ(reply_kind(second.handle(heartbeat("w0", "j1"), t1)),
            md::MessageKind::kAck);
  EXPECT_EQ(second.phase("j1"), md::JobPhase::kLeased);
  // The adopted lease keeps j1 off the grant path for other workers.
  const md::Message other = md::decode_message(second.handle(request("w1"), t1));
  ASSERT_EQ(other.kind, md::MessageKind::kLease);
  EXPECT_EQ(other.job, "j2");
}

TEST(CoordinatorCore, DoneResultsAreDedupedToOneLedgerRecord) {
  auto config = two_job_config(fresh_dir("cc_dedupe"));
  const std::string ledger_path = config.state_dir + "/campaign.jsonl";
  md::CoordinatorCore core(std::move(config));
  const auto t0 = Clock::now();
  core.handle(request("w0"), t0);
  const md::Message result = done_result("w0", "j1", 7.25);
  EXPECT_EQ(reply_kind(core.handle(result, t0 + 1s)), md::MessageKind::kAck);
  // The worker never saw the ack and re-sends; at-least-once delivery must
  // not create a second ledger record.
  EXPECT_EQ(reply_kind(core.handle(result, t0 + 2s)), md::MessageKind::kAck);
  const auto ledger = mp::read_ledger_file(ledger_path);
  ASSERT_EQ(ledger.records.size(), 1u);
  EXPECT_EQ(ledger.records[0].job, "j1");
  EXPECT_EQ(ledger.records[0].estimate, 7.25);
  EXPECT_TRUE(mp::audit_ledger(ledger).ok());
}

TEST(CoordinatorCore, StaleHolderIsRevokedButItsDoneResultCounts) {
  auto config = two_job_config(fresh_dir("cc_stale"));
  const std::string ledger_path = config.state_dir + "/campaign.jsonl";
  md::CoordinatorCore core(std::move(config));
  const auto t0 = Clock::now();
  core.handle(request("w0"), t0);
  core.tick(t0 + 6s);                      // w0 presumed dead
  core.handle(request("w1"), t0 + 7s);     // j1 regranted to w1
  // w0 was only partitioned, not dead: its heartbeat is refused...
  EXPECT_EQ(reply_kind(core.handle(heartbeat("w0", "j1"), t0 + 8s)),
            md::MessageKind::kRevoke);
  // ...but its completed, deterministic result is accepted...
  EXPECT_EQ(reply_kind(core.handle(done_result("w0", "j1", 7.25), t0 + 8s)),
            md::MessageKind::kAck);
  EXPECT_EQ(core.phase("j1"), md::JobPhase::kDone);
  // ...and w1's identical result later dedupes silently.
  EXPECT_EQ(reply_kind(core.handle(done_result("w1", "j1", 7.25), t0 + 9s)),
            md::MessageKind::kAck);
  const auto ledger = mp::read_ledger_file(ledger_path);
  ASSERT_EQ(ledger.records.size(), 1u);
}

TEST(CoordinatorCore, LedgerDoneJobsAreSkippedOnConstruction) {
  auto config = two_job_config(fresh_dir("cc_resume"));
  const std::string ledger_path = config.state_dir + "/campaign.jsonl";
  {
    md::CoordinatorCore first(two_job_config(config.state_dir));
    first.handle(request("w0"), Clock::now());
    first.handle(done_result("w0", "j1", 7.25), Clock::now());
  }
  md::CoordinatorCore second(std::move(config));
  EXPECT_EQ(second.phase("j1"), md::JobPhase::kDone);
  const auto summary = second.summary();
  EXPECT_EQ(summary.skipped, 1u);
  // Only j2 is still owed work.
  const md::Message lease =
      md::decode_message(second.handle(request("w1"), Clock::now()));
  ASSERT_EQ(lease.kind, md::MessageKind::kLease);
  EXPECT_EQ(lease.job, "j2");
}

TEST(CoordinatorCore, CorruptLedgerRecordsAreQuarantinedAndJobsRerun) {
  auto config = two_job_config(fresh_dir("cc_corrupt"));
  const std::string ledger_path = config.state_dir + "/campaign.jsonl";
  {
    md::CoordinatorCore first(two_job_config(config.state_dir));
    first.handle(request("w0"), Clock::now());
    first.handle(done_result("w0", "j1", 7.25), Clock::now());
  }
  // Bit rot lands on j1's done record.
  std::string text = mpe::util::read_file(ledger_path);
  text[text.size() / 2] ^= 0x20;
  mpe::util::atomic_write_file(ledger_path, text);

  md::CoordinatorCore second(std::move(config));
  EXPECT_EQ(second.phase("j1"), md::JobPhase::kPending);  // must re-run
  EXPECT_EQ(second.summary().quarantined, 1u);
  EXPECT_TRUE(mpe::util::file_exists(ledger_path + ".quarantine"));
}

TEST(CoordinatorCore, DrainStopsGrantsButServesInFlightLeases) {
  md::CoordinatorCore core(two_job_config(fresh_dir("cc_drain")));
  const auto t0 = Clock::now();
  core.handle(request("w0"), t0);
  core.begin_drain();
  EXPECT_EQ(reply_kind(core.handle(request("w1"), t0)),
            md::MessageKind::kDrain);
  // The in-flight lease still heartbeats and completes normally.
  EXPECT_EQ(reply_kind(core.handle(heartbeat("w0", "j1"), t0 + 1s)),
            md::MessageKind::kAck);
  EXPECT_EQ(reply_kind(core.handle(done_result("w0", "j1", 7.25), t0 + 2s)),
            md::MessageKind::kAck);
  EXPECT_FALSE(core.finished());  // j2 never ran: drain cut it
  EXPECT_FALSE(core.any_leased());
}

TEST(CoordinatorCore, StoppedResultReleasesTheLeaseForImmediateRegrant) {
  md::CoordinatorCore core(two_job_config(fresh_dir("cc_release")));
  const auto t0 = Clock::now();
  core.handle(request("w0"), t0);
  md::Message stopped;
  stopped.kind = md::MessageKind::kResult;
  stopped.worker = "w0";
  stopped.job = "j1";
  stopped.outcome.name = "j1";
  stopped.outcome.status = mp::JobStatus::kStopped;
  EXPECT_EQ(reply_kind(core.handle(stopped, t0 + 1s)), md::MessageKind::kAck);
  EXPECT_EQ(core.phase("j1"), md::JobPhase::kPending);
  // Graceful hand-back carries no crash signal: no backoff gate.
  const md::Message regrant =
      md::decode_message(core.handle(request("w1"), t0 + 1s));
  ASSERT_EQ(regrant.kind, md::MessageKind::kLease);
  EXPECT_EQ(regrant.job, "j1");
}

// ------------------------------------------------- end-to-end over a socket

TEST(DistEndToEnd, FleetMergesByteIdenticalToSingleProcessCampaign) {
  // Single-process golden run.
  const std::string solo_dir = fresh_dir("e2e_solo");
  std::vector<mp::CampaignJob> solo_jobs = {tiny_job("a", 3), tiny_job("b", 4),
                                            tiny_job("c", 5)};
  mp::CampaignOptions solo_options;
  solo_options.state_dir = solo_dir;
  const auto solo = mp::run_campaign(solo_jobs, solo_options);
  ASSERT_EQ(solo.done, 3u);
  const std::string golden =
      mp::merge_ledger(mp::read_ledger_file(solo_dir + "/campaign.jsonl"));

  // Distributed run: one coordinator thread, two worker threads.
  const std::string dist_dir = fresh_dir("e2e_dist");
  const std::string sock = dist_dir + ".sock";
  md::CoordinatorConfig config;
  config.jobs = {tiny_job("a", 3), tiny_job("b", 4), tiny_job("c", 5)};
  config.state_dir = dist_dir;
  config.lease = 2000ms;
  md::CoordinatorCore core(std::move(config));
  md::CoordinatorServerOptions server;
  server.socket_path = sock;
  mp::CampaignResult dist_result;
  std::thread coordinator(
      [&] { dist_result = md::serve_campaign(core, server); });

  auto worker_main = [&](const std::string& id) {
    md::WorkerConfig worker;
    worker.socket_path = sock;
    worker.worker_id = id;
    worker.state_dir = dist_dir;
    worker.heartbeat = 100ms;
    return md::run_worker(worker);
  };
  md::WorkerSummary s0, s1;
  std::thread w0([&] { s0 = worker_main("w0"); });
  std::thread w1([&] { s1 = worker_main("w1"); });
  coordinator.join();
  w0.join();
  w1.join();

  EXPECT_EQ(dist_result.done, 3u);
  EXPECT_EQ(dist_result.failed, 0u);
  EXPECT_EQ(s0.done + s1.done, 3u);
  EXPECT_TRUE(s0.drained);
  EXPECT_TRUE(s1.drained);

  const auto ledger = mp::read_ledger_file(dist_dir + "/campaign.jsonl");
  const auto audit = mp::audit_ledger(ledger);
  EXPECT_TRUE(audit.ok()) << (audit.violations.empty()
                                  ? ""
                                  : audit.violations.front());
  // The tentpole guarantee: scheduling nondeterminism (which worker ran
  // what, in which order) must not leak into the merged results.
  EXPECT_EQ(mp::merge_ledger(ledger), golden);
}

TEST(DistEndToEnd, WorkerGivesUpCleanlyWhenNoCoordinatorExists) {
  md::WorkerConfig worker;
  worker.socket_path = fresh_dir("e2e_nobody") + ".sock";
  worker.worker_id = "w0";
  worker.state_dir = fresh_dir("e2e_nobody_state");
  worker.connect_retry.max_attempts = 3;
  worker.connect_retry.initial_backoff = 10ms;
  worker.connect_retry.max_backoff = 20ms;
  const auto summary = md::run_worker(worker);
  EXPECT_EQ(summary.exit_error, mpe::ErrorCode::kIo);
  EXPECT_EQ(summary.leases, 0u);
}

}  // namespace
