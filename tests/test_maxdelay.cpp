#include "maxdelay/delay_estimator.hpp"

#include <gtest/gtest.h>

#include "gen/arithmetic.hpp"
#include "gen/trees.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

namespace md = mpe::maxdelay;
namespace sim = mpe::sim;

sim::EventSimOptions unit_delay() {
  sim::EventSimOptions o;
  o.delay_model = sim::DelayModel::kUnit;
  return o;
}

TEST(DelayPopulation, DrawsSettleTimes) {
  auto nl = mpe::gen::ripple_carry_adder(8);
  sim::EventSimulator ev(nl, unit_delay());
  const mpe::vec::UniformPairGenerator gen(nl.num_inputs());
  md::DelayPopulation pop(gen, ev);
  EXPECT_FALSE(pop.size().has_value());
  mpe::Rng rng(1);
  for (int i = 0; i < 30; ++i) {
    const double d = pop.draw(rng);
    EXPECT_GE(d, 0.0);
    // Unit-delay settle time can never exceed depth * unit delay.
    EXPECT_LE(d, static_cast<double>(nl.depth()) *
                     unit_delay().tech.unit_delay_ns + 1e-9);
  }
  EXPECT_EQ(pop.draws(), 30u);
}

TEST(DelayPopulation, WidthMismatchRejected) {
  auto nl = mpe::gen::ripple_carry_adder(8);
  sim::EventSimulator ev(nl, unit_delay());
  const mpe::vec::UniformPairGenerator wrong(4);
  EXPECT_THROW(md::DelayPopulation(wrong, ev), mpe::ContractViolation);
}

TEST(EstimateMaxDelay, ApproachesStructuralDepthBound) {
  // For a ripple adder under unit delays the maximum sensitizable delay is
  // close to the full carry chain. The EVT estimate should land between the
  // typical random-pair settle time and the structural bound.
  auto nl = mpe::gen::ripple_carry_adder(12);
  sim::EventSimulator ev(nl, unit_delay());
  const mpe::vec::UniformPairGenerator gen(nl.num_inputs());
  mpe::maxpower::EstimatorOptions opt;
  opt.epsilon = 0.08;
  mpe::Rng rng(2);
  const auto r = md::estimate_max_delay(gen, ev, opt, rng);
  const double bound =
      static_cast<double>(nl.depth()) * unit_delay().tech.unit_delay_ns;
  EXPECT_GT(r.estimate, 0.4 * bound);
  EXPECT_LT(r.estimate, 1.3 * bound);
  EXPECT_GT(r.units_used, 0u);
}

TEST(EstimateMaxDelay, EstimateAtLeastObservedDelays) {
  auto nl = mpe::gen::array_multiplier(5);
  sim::EventSimOptions o;
  o.delay_model = sim::DelayModel::kFanoutLoaded;
  sim::EventSimulator ev(nl, o);
  const mpe::vec::UniformPairGenerator gen(nl.num_inputs());
  mpe::maxpower::EstimatorOptions opt;
  opt.epsilon = 0.10;
  mpe::Rng rng(3);
  const auto r = md::estimate_max_delay(gen, ev, opt, rng);

  // Sample some delays directly; none should exceed the estimate by much.
  md::DelayPopulation pop(gen, ev);
  mpe::Rng rng2(4);
  double observed_max = 0.0;
  for (int i = 0; i < 300; ++i) {
    observed_max = std::max(observed_max, pop.draw(rng2));
  }
  EXPECT_GT(r.estimate, 0.85 * observed_max);
}

}  // namespace
