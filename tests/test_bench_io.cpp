#include "circuit/bench_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "circuit/analysis.hpp"
#include "gen/arithmetic.hpp"

namespace {

namespace ckt = mpe::circuit;

const char* kSample = R"(
# ISCAS-85 style sample
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G8)
OUTPUT(G9)

G5 = NAND(G1, G2)
G6 = NOT(G3)
G8 = AND(G5, G6)
G9 = XOR(G5, G3)
)";

TEST(BenchIo, ParsesSample) {
  const auto nl = ckt::read_bench_string(kSample, "sample");
  EXPECT_EQ(nl.num_inputs(), 3u);
  EXPECT_EQ(nl.num_outputs(), 2u);
  EXPECT_EQ(nl.num_gates(), 4u);
  EXPECT_TRUE(nl.finalized());
  EXPECT_EQ(nl.gate(nl.driver(*nl.find("G5"))).type, ckt::GateType::kNand);
}

TEST(BenchIo, ParsedNetlistEvaluatesCorrectly) {
  auto nl = ckt::read_bench_string(kSample);
  // G1=1 G2=1 G3=0: G5=0, G6=1, G8=0, G9=0^0=0... G9 = XOR(G5,G3) = 0.
  auto vals = ckt::evaluate(nl, std::vector<std::uint8_t>{1, 1, 0});
  EXPECT_EQ(vals[*nl.find("G8")], 0);
  EXPECT_EQ(vals[*nl.find("G9")], 0);
  // G1=0: G5=1, G8 = AND(1, NOT G3).
  vals = ckt::evaluate(nl, std::vector<std::uint8_t>{0, 1, 0});
  EXPECT_EQ(vals[*nl.find("G8")], 1);
  EXPECT_EQ(vals[*nl.find("G9")], 1);
}

TEST(BenchIo, HandlesForwardReferences) {
  const char* fwd = R"(
INPUT(a)
OUTPUT(z)
z = NOT(m)
m = NOT(a)
)";
  const auto nl = ckt::read_bench_string(fwd);
  EXPECT_EQ(nl.num_gates(), 2u);
  EXPECT_EQ(nl.depth(), 2u);
}

TEST(BenchIo, RoundTripPreservesStructureAndFunction) {
  auto original = mpe::gen::ripple_carry_adder(4, "rca4");
  const std::string text = ckt::write_bench_string(original);
  auto reparsed = ckt::read_bench_string(text, "rca4");
  EXPECT_EQ(reparsed.num_inputs(), original.num_inputs());
  EXPECT_EQ(reparsed.num_outputs(), original.num_outputs());
  EXPECT_EQ(reparsed.num_gates(), original.num_gates());
  // Functional equivalence on a few vectors.
  for (int seed = 0; seed < 16; ++seed) {
    std::vector<std::uint8_t> in(original.num_inputs());
    for (std::size_t i = 0; i < in.size(); ++i) {
      in[i] = static_cast<std::uint8_t>((seed >> (i % 4)) & 1);
    }
    const auto v1 = ckt::evaluate(original, in);
    const auto v2 = ckt::evaluate(reparsed, in);
    for (std::size_t o = 0; o < original.outputs().size(); ++o) {
      EXPECT_EQ(v1[original.outputs()[o]], v2[reparsed.outputs()[o]]);
    }
  }
}

TEST(BenchIo, FileRoundTrip) {
  auto nl = mpe::gen::ripple_carry_adder(2, "rca2");
  const std::string path = ::testing::TempDir() + "/mpe_rca2.bench";
  {
    std::ofstream out(path);
    ckt::write_bench(out, nl);
  }
  const auto back = ckt::read_bench_file(path);
  EXPECT_EQ(back.num_gates(), nl.num_gates());
  EXPECT_EQ(back.name(), "mpe_rca2");
  std::remove(path.c_str());
}

TEST(BenchIo, MissingFileThrows) {
  EXPECT_THROW(ckt::read_bench_file("/nonexistent/path.bench"),
               std::runtime_error);
}

TEST(BenchIo, MalformedLinesReportLineNumbers) {
  try {
    ckt::read_bench_string("INPUT(a)\nbogus line here\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(BenchIo, RejectsUnknownGateType) {
  EXPECT_THROW(
      ckt::read_bench_string("INPUT(a)\nINPUT(b)\nz = FROB(a, b)\n"),
      std::runtime_error);
}

TEST(BenchIo, RejectsEmptyFanin) {
  EXPECT_THROW(ckt::read_bench_string("INPUT(a)\nz = AND()\n"),
               std::runtime_error);
}

TEST(BenchIo, CommentsAndBlankLinesIgnored) {
  const char* text = R"(
# full line comment
INPUT(a)   # trailing comment

OUTPUT(z)
z = NOT(a)  # another
)";
  const auto nl = ckt::read_bench_string(text);
  EXPECT_EQ(nl.num_gates(), 1u);
}

}  // namespace
