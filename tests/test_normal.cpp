#include "stats/normal.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

using mpe::stats::Normal;

TEST(Normal, StdCdfKnownValues) {
  EXPECT_NEAR(Normal::std_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(Normal::std_cdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(Normal::std_cdf(-1.959963984540054), 0.025, 1e-12);
  EXPECT_NEAR(Normal::std_cdf(3.0), 0.9986501019683699, 1e-12);
}

TEST(Normal, StdQuantileKnownValues) {
  EXPECT_NEAR(Normal::std_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(Normal::std_quantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(Normal::std_quantile(0.95), 1.6448536269514722, 1e-9);
  EXPECT_NEAR(Normal::std_quantile(0.01), -2.3263478740408408, 1e-9);
}

TEST(Normal, QuantileCdfRoundTrip) {
  for (double q : {0.001, 0.05, 0.3, 0.5, 0.77, 0.99, 0.9999}) {
    EXPECT_NEAR(Normal::std_cdf(Normal::std_quantile(q)), q, 1e-12);
  }
}

TEST(Normal, TwoSidedCriticalMatchesTables) {
  // Classic values: l=0.90 -> 1.645, l=0.95 -> 1.960, l=0.99 -> 2.576.
  EXPECT_NEAR(Normal::two_sided_critical(0.90), 1.6448536269514722, 1e-9);
  EXPECT_NEAR(Normal::two_sided_critical(0.95), 1.959963984540054, 1e-9);
  EXPECT_NEAR(Normal::two_sided_critical(0.99), 2.5758293035489004, 1e-9);
}

TEST(Normal, PdfIntegratesToCdfDifference) {
  const Normal nd(2.0, 3.0);
  // Trapezoidal integration of the pdf over [-4, 8].
  const int steps = 20000;
  const double a = -4.0, b = 8.0;
  double integral = 0.0;
  const double h = (b - a) / steps;
  for (int i = 0; i <= steps; ++i) {
    const double w = (i == 0 || i == steps) ? 0.5 : 1.0;
    integral += w * nd.pdf(a + i * h);
  }
  integral *= h;
  EXPECT_NEAR(integral, nd.cdf(b) - nd.cdf(a), 1e-8);
}

TEST(Normal, LocationScaleProperties) {
  const Normal nd(10.0, 2.0);
  EXPECT_NEAR(nd.cdf(10.0), 0.5, 1e-15);
  EXPECT_NEAR(nd.quantile(0.8413447460685429), 12.0, 1e-8);
}

TEST(Normal, SampleMomentsMatch) {
  const Normal nd(-3.0, 0.5);
  mpe::Rng rng(99);
  const int n = 100000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = nd.sample(rng);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, -3.0, 0.01);
  EXPECT_NEAR(sum2 / n - mean * mean, 0.25, 0.01);
}

TEST(Normal, RejectsBadParameters) {
  EXPECT_THROW(Normal(0.0, 0.0), mpe::ContractViolation);
  EXPECT_THROW(Normal(0.0, -1.0), mpe::ContractViolation);
  EXPECT_THROW(Normal::std_quantile(0.0), mpe::ContractViolation);
  EXPECT_THROW(Normal::std_quantile(1.0), mpe::ContractViolation);
  EXPECT_THROW(Normal::two_sided_critical(1.0), mpe::ContractViolation);
}

class NormalRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(NormalRoundTrip, QuantileIsInverseCdf) {
  const Normal nd(GetParam(), std::fabs(GetParam()) + 0.5);
  for (double q = 0.02; q < 1.0; q += 0.02) {
    EXPECT_NEAR(nd.cdf(nd.quantile(q)), q, 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Means, NormalRoundTrip,
                         ::testing::Values(-100.0, -1.0, 0.0, 2.5, 1e6));

}  // namespace
