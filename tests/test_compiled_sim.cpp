// Differential verification of the compiled gate-tape simulator: every
// kernel variant available on the host must produce toggle counts and
// energies bit-identical to the scalar zero-delay oracle and the 64-lane
// bit-parallel interpreter, over random DAGs covering every gate type, all
// circuit presets, partial batches, and the engine seam at several thread
// counts. Equality is exact (EXPECT_EQ on doubles): the backends share one
// accumulation order, so this is a bit-identity contract, not a tolerance.
#include "sim/simd_sim.hpp"

#include <gtest/gtest.h>

#include "gen/presets.hpp"
#include "gen/random_dag.hpp"
#include "gen/trees.hpp"
#include "maxpower/compiled_unit_source.hpp"
#include "maxpower/engine.hpp"
#include "maxpower/estimator.hpp"
#include "sim/bit_parallel_sim.hpp"
#include "sim/cpu_dispatch.hpp"
#include "sim/gate_program.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"
#include "vectors/generators.hpp"
#include "vectors/population.hpp"

namespace {

namespace sim = mpe::sim;
namespace vec = mpe::vec;
namespace mp = mpe::maxpower;

std::vector<vec::VectorPair> random_pairs(std::size_t width, std::size_t n,
                                          std::uint64_t seed) {
  mpe::Rng rng(seed);
  std::vector<vec::VectorPair> out(n);
  for (auto& p : out) {
    p.first = vec::random_vector(width, rng);
    p.second = vec::random_vector(width, rng);
  }
  return out;
}

/// Asserts that every available kernel reproduces the scalar zero-delay
/// oracle and the bit-parallel interpreter exactly on `n_pairs` random
/// pairs (split into lane-sized batches per kernel).
void expect_all_kernels_match(const mpe::circuit::Netlist& nl,
                              std::size_t n_pairs, std::uint64_t seed) {
  const sim::Technology tech;
  const auto program = sim::GateProgram::compile(nl, tech);
  sim::ZeroDelaySimulator oracle(nl, tech);
  sim::BitParallelSimulator interp(nl, tech);
  const auto pairs = random_pairs(nl.num_inputs(), n_pairs, seed);

  // Scalar oracle reference, one evaluate per pair.
  std::vector<sim::CycleResult> expect(pairs.size());
  for (std::size_t k = 0; k < pairs.size(); ++k) {
    expect[k] = oracle.evaluate(pairs[k].first, pairs[k].second);
  }

  for (const sim::SimdKernel kernel : sim::available_kernels()) {
    SCOPED_TRACE(sim::to_string(kernel));
    sim::CompiledSimulator csim(program, kernel);
    std::vector<sim::CycleResult> results;
    for (std::size_t done = 0; done < pairs.size();) {
      const std::size_t lanes =
          std::min(csim.lanes(), pairs.size() - done);
      csim.evaluate_batch(
          std::span<const vec::VectorPair>(pairs).subspan(done, lanes),
          results);
      ASSERT_EQ(results.size(), lanes);
      for (std::size_t k = 0; k < lanes; ++k) {
        SCOPED_TRACE(done + k);
        EXPECT_EQ(results[k].toggles, expect[done + k].toggles);
        EXPECT_EQ(results[k].energy_pj, expect[done + k].energy_pj);
        EXPECT_EQ(results[k].power_mw, expect[done + k].power_mw);
      }
      done += lanes;
    }
  }

  // The interpreter agrees too (64 pairs at a time).
  std::vector<sim::CycleResult> iresults;
  for (std::size_t done = 0; done < pairs.size();) {
    const std::size_t lanes =
        std::min(sim::BitParallelSimulator::kLanes, pairs.size() - done);
    interp.evaluate_batch(
        std::span<const vec::VectorPair>(pairs).subspan(done, lanes),
        iresults);
    for (std::size_t k = 0; k < lanes; ++k) {
      EXPECT_EQ(iresults[k].toggles, expect[done + k].toggles) << done + k;
      EXPECT_EQ(iresults[k].energy_pj, expect[done + k].energy_pj)
          << done + k;
    }
    done += lanes;
  }
}

TEST(CompiledSim, DifferentialFuzzRandomDags) {
  // Random DAGs spanning every gate type: default mix, XOR-heavy (stresses
  // the parity runs), unary-heavy (BUF/NOT segments), and wide fanin
  // (generic N-ary loops). Each seed produces a fresh structure.
  std::vector<mpe::gen::RandomDagParams> variants(4);
  variants[0].name = "fuzz_default";
  variants[1].name = "fuzz_xor";
  variants[1].type_weights = {0.2, 0.2, 0.2, 0.2, 3.0, 3.0};
  variants[2].name = "fuzz_unary";
  variants[2].unary_fraction = 0.45;
  variants[3].name = "fuzz_wide";
  variants[3].max_fanin = 9;
  variants[3].num_gates = 120;

  std::uint64_t seed = 1000;
  for (const auto& params : variants) {
    for (int trial = 0; trial < 3; ++trial) {
      SCOPED_TRACE(params.name + "/" + std::to_string(trial));
      mpe::Rng rng(seed);
      const auto nl = mpe::gen::random_dag(params, rng);
      expect_all_kernels_match(nl, 2 * sim::kernel_lanes(sim::best_kernel()),
                               seed);
      ++seed;
    }
  }
}

TEST(CompiledSim, AllPresetsAllKernels) {
  for (const auto& info : mpe::gen::preset_catalog()) {
    SCOPED_TRACE(info.name);
    const auto nl = mpe::gen::build_preset(info.name, 1);
    expect_all_kernels_match(nl, 64, 42);
  }
}

TEST(CompiledSim, PartialAndSingleLaneBatches) {
  auto nl = mpe::gen::parity_tree(12, 2);
  const auto program = sim::GateProgram::compile(nl, sim::Technology{});
  sim::ZeroDelaySimulator oracle(nl, sim::Technology{});
  for (const sim::SimdKernel kernel : sim::available_kernels()) {
    SCOPED_TRACE(sim::to_string(kernel));
    sim::CompiledSimulator csim(program, kernel);
    for (const std::size_t n : {std::size_t{1}, std::size_t{5},
                                csim.lanes() - 1, csim.lanes()}) {
      const auto pairs = random_pairs(nl.num_inputs(), n, 7 + n);
      const auto results = csim.evaluate_batch(pairs);
      ASSERT_EQ(results.size(), n);
      for (std::size_t k = 0; k < n; ++k) {
        const auto expect = oracle.evaluate(pairs[k].first, pairs[k].second);
        EXPECT_EQ(results[k].toggles, expect.toggles) << k;
        EXPECT_EQ(results[k].energy_pj, expect.energy_pj) << k;
      }
    }
  }
}

TEST(CompiledSim, ForcedDispatchEveryKernelAvailableOnHost) {
  // Every kernel the dispatcher reports must construct and run; the widest
  // one must be best_kernel() (absent MPE_FORCE_SCALAR, which CI sets for
  // the scalar leg — in that mode best_kernel() is pinned to scalar).
  const auto kernels = sim::available_kernels();
  ASSERT_FALSE(kernels.empty());
  EXPECT_EQ(kernels.back(), sim::SimdKernel::kScalar64);
  for (const sim::SimdKernel k : kernels) {
    EXPECT_TRUE(sim::kernel_available(k));
    EXPECT_GE(sim::kernel_lanes(k), 64u);
  }
  auto nl = mpe::gen::parity_tree(8, 2);
  const auto program = sim::GateProgram::compile(nl, sim::Technology{});
  for (const sim::SimdKernel k : kernels) {
    sim::CompiledSimulator csim(program, k);
    EXPECT_EQ(csim.kernel(), k);
    EXPECT_EQ(csim.lanes(), sim::kernel_lanes(k));
  }
}

TEST(CompiledSim, GateProgramStructure) {
  // The tape covers every gate exactly once, in level order, with segments
  // that never straddle a level boundary and never mix opcodes.
  const auto nl = mpe::gen::build_preset("c432", 1);
  const auto program = sim::GateProgram::compile(nl, sim::Technology{});
  EXPECT_EQ(program->num_gates(), nl.num_gates());
  EXPECT_EQ(program->num_nodes(), nl.num_nodes());

  std::size_t covered = 0;
  std::size_t prev_end = 0;
  for (const auto& seg : program->segments()) {
    EXPECT_EQ(seg.begin, prev_end);  // contiguous, no gaps or overlaps
    EXPECT_LT(seg.begin, seg.end);
    covered += seg.end - seg.begin;
    prev_end = seg.end;
  }
  EXPECT_EQ(covered, program->num_gates());

  // Evaluation order respects levelization: every fanin of gate record i
  // is either a primary input or the output of an earlier record.
  std::vector<bool> ready(program->num_nodes(), false);
  for (const auto in : nl.inputs()) ready[in] = true;
  for (std::size_t g = 0; g < program->num_gates(); ++g) {
    const std::size_t begin = program->fanin_begin()[g];
    for (std::size_t f = 0; f < program->fanin_count()[g]; ++f) {
      EXPECT_TRUE(ready[program->fanin()[begin + f]]) << "gate record " << g;
    }
    ready[program->output()[g]] = true;
  }
}

TEST(CompiledSim, ContractChecks) {
  auto nl = mpe::gen::parity_tree(8, 2);
  const auto program = sim::GateProgram::compile(nl, sim::Technology{});
  sim::CompiledSimulator csim(program, sim::SimdKernel::kScalar64);
  EXPECT_THROW(csim.evaluate_batch({}), mpe::ContractViolation);
  const auto too_many = random_pairs(nl.num_inputs(), csim.lanes() + 1, 1);
  EXPECT_THROW(csim.evaluate_batch(too_many), mpe::ContractViolation);
  const auto wrong_width = random_pairs(4, 2, 1);
  EXPECT_THROW(csim.evaluate_batch(wrong_width), mpe::ContractViolation);
}

TEST(StreamingCompiled, ValueStreamIdenticalAcrossBackends) {
  // One StreamingPopulation per backend, same seed: the draw_batch value
  // stream must be identical double-for-double (the backend is a speed
  // knob, never a statistical one).
  const auto nl = mpe::gen::build_preset("c880", 1);
  sim::PowerEvalOptions eval_opt;
  eval_opt.delay_model = sim::DelayModel::kZero;
  const vec::TransitionProbPairGenerator gen(nl.num_inputs(), 0.4);

  const auto draw_values = [&](auto&& enable) {
    sim::CyclePowerEvaluator eval(nl, eval_opt);
    vec::StreamingPopulation pop(gen, eval);
    enable(pop);
    std::vector<double> values(700);
    mpe::Rng rng(5);
    pop.draw_batch(values, rng);
    return values;
  };

  const auto scalar = draw_values([](vec::StreamingPopulation&) {});
  const auto interp = draw_values([](vec::StreamingPopulation& p) {
    ASSERT_TRUE(p.enable_bit_parallel());
  });
  EXPECT_EQ(scalar, interp);
  for (const sim::SimdKernel k : sim::available_kernels()) {
    SCOPED_TRACE(sim::to_string(k));
    const auto compiled = draw_values([&](vec::StreamingPopulation& p) {
      ASSERT_TRUE(p.enable_compiled(k));
      EXPECT_EQ(p.backend(), vec::StreamingPopulation::Backend::kCompiled);
      EXPECT_TRUE(p.concurrent_draw_safe());
    });
    EXPECT_EQ(scalar, compiled);
  }
}

TEST(StreamingCompiled, RequiresZeroDelay) {
  const auto nl = mpe::gen::parity_tree(8, 2);
  sim::CyclePowerEvaluator eval(nl);  // fanout-loaded: event timing
  const vec::UniformPairGenerator gen(nl.num_inputs());
  vec::StreamingPopulation pop(gen, eval);
  EXPECT_FALSE(pop.enable_compiled());
  EXPECT_FALSE(pop.enable_bit_parallel());
  EXPECT_EQ(pop.backend(), vec::StreamingPopulation::Backend::kScalar);
}

TEST(CompiledUnitSource, EngineBitIdenticalAcrossThreadCounts) {
  // The engine seam: a CompiledUnitSource must reproduce the bit-parallel
  // streaming population's estimate exactly, at every thread count.
  const auto nl = mpe::gen::build_preset("c432", 1);
  const vec::UniformPairGenerator gen(nl.num_inputs());

  sim::PowerEvalOptions eval_opt;
  eval_opt.delay_model = sim::DelayModel::kZero;
  sim::CyclePowerEvaluator eval(nl, eval_opt);
  vec::StreamingPopulation pop(gen, eval);
  ASSERT_TRUE(pop.enable_bit_parallel());

  mp::EstimatorOptions opt;
  opt.epsilon = 0.12;
  opt.max_hyper_samples = 40;
  const std::uint64_t seed = 9;
  const mp::Engine engine(mp::EngineConfig{.options = opt});
  const auto base = engine.run(pop, seed, mp::ParallelOptions{});

  mp::CompiledUnitSource source(nl, gen, sim::Technology{});
  EXPECT_TRUE(source.concurrent_fill_safe());
  for (unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE(threads);
    mp::ParallelOptions par;
    par.threads = threads;
    const auto r = engine.run(source, seed, par);
    EXPECT_EQ(r.estimate, base.estimate);
    EXPECT_EQ(r.ci.lower, base.ci.lower);
    EXPECT_EQ(r.ci.upper, base.ci.upper);
    EXPECT_EQ(r.units_used, base.units_used);
    EXPECT_EQ(r.hyper_samples, base.hyper_samples);
  }
  EXPECT_GT(source.draws(), 0u);
}

}  // namespace
