#include "evt/confidence.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/student_t.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

namespace evt = mpe::evt;

TEST(NormalInterval, MatchesClosedForm) {
  // 90% two-sided: u = 1.6449; half width = u * 2 / sqrt(16) = 0.8224.
  const auto ci = evt::normal_interval(10.0, 2.0, 16, 0.90);
  EXPECT_DOUBLE_EQ(ci.center, 10.0);
  EXPECT_NEAR(ci.half_width, 1.6448536269514722 * 2.0 / 4.0, 1e-9);
  EXPECT_NEAR(ci.lower, 10.0 - ci.half_width, 1e-12);
  EXPECT_NEAR(ci.upper, 10.0 + ci.half_width, 1e-12);
  EXPECT_DOUBLE_EQ(ci.confidence, 0.90);
}

TEST(NormalInterval, ShrinksWithSampleSize) {
  const auto small = evt::normal_interval(5.0, 1.0, 10, 0.95);
  const auto large = evt::normal_interval(5.0, 1.0, 1000, 0.95);
  EXPECT_GT(small.half_width, large.half_width);
  EXPECT_NEAR(small.half_width / large.half_width, 10.0, 1e-9);
}

TEST(TInterval, MatchesManualComputation) {
  const std::vector<double> xs = {9.0, 10.0, 11.0, 10.0};
  // mean 10, s = sqrt(2/3), k = 4, t_{0.9,3} = 2.3534.
  const auto ci = evt::t_interval(xs, 0.90);
  EXPECT_DOUBLE_EQ(ci.center, 10.0);
  const double s = std::sqrt(2.0 / 3.0);
  EXPECT_NEAR(ci.half_width, 2.3534 * s / 2.0, 1e-3);
}

TEST(TInterval, WiderThanNormalAtSmallK) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const auto tci = evt::t_interval(xs, 0.95);
  const auto nci = evt::normal_interval(2.0, 1.0, 3, 0.95);
  EXPECT_GT(tci.half_width, nci.half_width);
}

TEST(TInterval, CoverageSimulation) {
  // Draw k=10 normals repeatedly; the 90% t interval should cover the true
  // mean close to 90% of the time.
  mpe::Rng rng(2024);
  const int reps = 4000;
  int covered = 0;
  for (int r = 0; r < reps; ++r) {
    std::vector<double> xs(10);
    for (auto& x : xs) x = rng.normal(3.0, 2.0);
    const auto ci = evt::t_interval(xs, 0.90);
    if (ci.lower <= 3.0 && 3.0 <= ci.upper) ++covered;
  }
  EXPECT_NEAR(covered / static_cast<double>(reps), 0.90, 0.02);
}

TEST(RelativeHalfWidth, Computes) {
  evt::ConfidenceInterval ci;
  ci.center = 20.0;
  ci.half_width = 1.0;
  EXPECT_DOUBLE_EQ(evt::relative_half_width(ci), 0.05);
  ci.center = -20.0;
  EXPECT_DOUBLE_EQ(evt::relative_half_width(ci), 0.05);
}

TEST(Confidence, RejectsBadInputs) {
  EXPECT_THROW(evt::normal_interval(0.0, -1.0, 5, 0.9),
               mpe::ContractViolation);
  EXPECT_THROW(evt::normal_interval(0.0, 1.0, 5, 1.0),
               mpe::ContractViolation);
  EXPECT_THROW(evt::t_interval(std::vector<double>{1.0}, 0.9),
               mpe::ContractViolation);
  evt::ConfidenceInterval zero;
  EXPECT_THROW(evt::relative_half_width(zero), mpe::ContractViolation);
}

}  // namespace
