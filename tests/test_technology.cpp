#include "sim/technology.hpp"

#include <gtest/gtest.h>

#include "circuit/netlist.hpp"

namespace {

namespace ckt = mpe::circuit;
namespace sim = mpe::sim;

ckt::Netlist tiny() {
  ckt::Netlist nl("tiny");
  nl.add_input("a");
  nl.add_input("b");
  nl.add_gate(ckt::GateType::kNand, "c", {"a", "b"});
  nl.add_gate(ckt::GateType::kNot, "d", {"c"});
  nl.mark_output("d");
  nl.finalize();
  return nl;
}

TEST(Technology, ToggleEnergyFormula) {
  sim::Technology t;
  t.vdd = 2.0;
  // 0.5 * 10 fF * 4 V^2 = 20 fJ = 0.02 pJ.
  EXPECT_NEAR(t.toggle_energy_pj(10.0), 0.02, 1e-12);
}

TEST(Technology, NodeCapStructure) {
  const auto nl = tiny();
  sim::Technology tech;
  const auto caps = sim::node_capacitances(nl, tech);
  ASSERT_EQ(caps.size(), nl.num_nodes());

  const auto a = *nl.find("a");
  const auto c = *nl.find("c");
  const auto d = *nl.find("d");

  // Input a: no driver cap; one NAND sink + wire.
  const double nand_in =
      tech.unit_input_cap_ff *
      ckt::electrical(ckt::GateType::kNand).input_cap;
  EXPECT_NEAR(caps[a], nand_in + tech.wire_cap_per_fanout_ff, 1e-12);

  // Node c: driver cap + NOT sink + wire.
  const double not_in =
      tech.unit_input_cap_ff * ckt::electrical(ckt::GateType::kNot).input_cap;
  EXPECT_NEAR(caps[c],
              tech.unit_output_cap_ff + not_in + tech.wire_cap_per_fanout_ff,
              1e-12);

  // Node d: driver cap only (no sinks).
  EXPECT_NEAR(caps[d], tech.unit_output_cap_ff, 1e-12);
}

TEST(Technology, CapsScaleWithFanout) {
  ckt::Netlist nl("fan");
  nl.add_input("a");
  nl.add_input("b");
  nl.add_gate(ckt::GateType::kAnd, "x", {"a", "b"});
  for (int i = 0; i < 5; ++i) {
    nl.add_gate(ckt::GateType::kNot, "y" + std::to_string(i), {"x"});
  }
  nl.finalize();
  sim::Technology tech;
  const auto caps = sim::node_capacitances(nl, tech);
  const auto x = *nl.find("x");
  const auto y0 = *nl.find("y0");
  EXPECT_GT(caps[x], caps[y0]);  // fanout-5 node beats a sink-less node
}

TEST(Technology, AllCapsPositiveOnGeneratedCircuit) {
  const auto nl = tiny();
  const auto caps = sim::node_capacitances(nl, sim::Technology{});
  for (double c : caps) EXPECT_GT(c, 0.0);
}

}  // namespace
