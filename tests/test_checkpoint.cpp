// Durable run state (maxpower/checkpoint.hpp): byte-format round-trips,
// parser robustness against truncation and bit flips, and the headline
// guarantee — a resumed estimation run is bit-identical to an uninterrupted
// one, on both estimator paths, at any thread count.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "maxpower/checkpoint.hpp"
#include "maxpower/estimator.hpp"
#include "stats/weibull.hpp"
#include "util/atomic_file.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"
#include "vectors/fault_injection.hpp"
#include "vectors/population.hpp"

namespace {

namespace mp = mpe::maxpower;

mpe::vec::FinitePopulation weibull_population(std::size_t size,
                                              std::uint64_t seed,
                                              double alpha = 3.0,
                                              double mu = 10.0) {
  const mpe::stats::ReversedWeibull g(alpha, 1.0, mu);
  mpe::Rng rng(seed);
  std::vector<double> vals(size);
  for (auto& v : vals) v = g.sample(rng);
  return mpe::vec::FinitePopulation(std::move(vals), "synthetic weibull");
}

void expect_identical(const mp::EstimationResult& a,
                      const mp::EstimationResult& b) {
  EXPECT_EQ(a.estimate, b.estimate);
  EXPECT_EQ(a.ci.lower, b.ci.lower);
  EXPECT_EQ(a.ci.upper, b.ci.upper);
  EXPECT_EQ(a.relative_error_bound, b.relative_error_bound);
  EXPECT_EQ(a.units_used, b.units_used);
  EXPECT_EQ(a.hyper_samples, b.hyper_samples);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.stop_reason, b.stop_reason);
  ASSERT_EQ(a.hyper_values.size(), b.hyper_values.size());
  for (std::size_t i = 0; i < a.hyper_values.size(); ++i) {
    EXPECT_EQ(a.hyper_values[i], b.hyper_values[i]) << "hyper value " << i;
  }
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

mp::RunCheckpoint sample_checkpoint() {
  mp::RunCheckpoint c;
  c.fingerprint = 0x1234567890abcdefull;
  c.base_seed = 42;
  c.parallel_path = true;
  c.complete = false;
  c.next_index = 7;
  c.rng.s = {1, 2, 3, 4};
  c.rng.spare_normal = 0.5;
  c.rng.has_spare = true;
  c.accepted_indices = {0, 2, 6};
  c.result.estimate = 9.75;
  c.result.ci.lower = 9.5;
  c.result.ci.upper = 10.0;
  c.result.ci.confidence = 0.9;
  c.result.ci.center = 9.75;
  c.result.ci.half_width = 0.25;
  c.result.relative_error_bound = 0.0256;
  c.result.units_used = 900;
  c.result.hyper_samples = 3;
  c.result.converged = false;
  c.result.hyper_values = {9.7, 9.75, 9.8};
  c.result.degenerate_fits = 1;
  c.result.stop_reason = mp::StopReason::kMaxHyperSamples;
  c.result.diagnostics.degenerate_fits = 1;
  c.result.diagnostics.pwm_refits = 2;
  c.result.diagnostics.constant_samples = 0;
  c.result.diagnostics.discarded_hyper_samples = 4;
  c.result.diagnostics.nonfinite_units = 5;
  c.result.diagnostics.small_population = true;
  c.result.diagnostics.note(mpe::Severity::kWarning, mpe::ErrorCode::kBadData,
                            "a structured record", "key=value");
  return c;
}

TEST(CheckpointFormat, EncodeDecodeRoundTrip) {
  const auto original = sample_checkpoint();
  const std::string bytes = mp::encode_checkpoint(original);
  const auto decoded = mp::decode_checkpoint(bytes);

  EXPECT_EQ(decoded.fingerprint, original.fingerprint);
  EXPECT_EQ(decoded.base_seed, original.base_seed);
  EXPECT_EQ(decoded.parallel_path, original.parallel_path);
  EXPECT_EQ(decoded.complete, original.complete);
  EXPECT_EQ(decoded.next_index, original.next_index);
  EXPECT_EQ(decoded.rng.s, original.rng.s);
  EXPECT_EQ(decoded.rng.spare_normal, original.rng.spare_normal);
  EXPECT_EQ(decoded.rng.has_spare, original.rng.has_spare);
  EXPECT_EQ(decoded.accepted_indices, original.accepted_indices);
  EXPECT_EQ(decoded.result.estimate, original.result.estimate);
  EXPECT_EQ(decoded.result.ci.lower, original.result.ci.lower);
  EXPECT_EQ(decoded.result.ci.upper, original.result.ci.upper);
  EXPECT_EQ(decoded.result.hyper_values, original.result.hyper_values);
  EXPECT_EQ(decoded.result.stop_reason, original.result.stop_reason);
  EXPECT_EQ(decoded.result.diagnostics.discarded_hyper_samples,
            original.result.diagnostics.discarded_hyper_samples);
  EXPECT_EQ(decoded.result.diagnostics.small_population,
            original.result.diagnostics.small_population);
  ASSERT_EQ(decoded.result.diagnostics.records.size(), 1u);
  EXPECT_EQ(decoded.result.diagnostics.records[0].message,
            "a structured record");
  EXPECT_EQ(decoded.result.diagnostics.records[0].code,
            mpe::ErrorCode::kBadData);
}

TEST(CheckpointFormat, SaveLoadFileRoundTrip) {
  const std::string path = temp_path("ckpt_roundtrip.ckpt");
  const auto original = sample_checkpoint();
  mp::save_checkpoint_file(path, original);
  const auto loaded = mp::load_checkpoint_file(path);
  EXPECT_EQ(loaded.fingerprint, original.fingerprint);
  EXPECT_EQ(loaded.result.hyper_values, original.result.hyper_values);
  std::remove(path.c_str());
}

// The fuzz half of the robustness contract: a checkpoint truncated at EVERY
// byte offset must produce a clean typed diagnostic — never a crash, hang,
// huge allocation, or a silently wrong resume.
TEST(CheckpointFuzz, EveryTruncationThrowsTypedError) {
  const std::string bytes = mp::encode_checkpoint(sample_checkpoint());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    try {
      mp::decode_checkpoint(bytes.substr(0, len));
      FAIL() << "truncation at " << len << " bytes decoded successfully";
    } catch (const mpe::Error& e) {
      EXPECT_TRUE(e.code() == mpe::ErrorCode::kCorruptData ||
                  e.code() == mpe::ErrorCode::kParse)
          << "len=" << len << " code=" << mpe::to_string(e.code());
    }
  }
}

// Every single-bit flip lands inside the CRC-protected span (or in the CRC
// itself), so none may decode successfully.
TEST(CheckpointFuzz, EverySingleBitFlipRejected) {
  const std::string bytes = mp::encode_checkpoint(sample_checkpoint());
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = bytes;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      try {
        mp::decode_checkpoint(mutated);
        FAIL() << "bit flip at byte " << byte << " bit " << bit
               << " decoded successfully";
      } catch (const mpe::Error& e) {
        EXPECT_TRUE(e.code() == mpe::ErrorCode::kCorruptData ||
                    e.code() == mpe::ErrorCode::kParse)
            << "byte=" << byte << " bit=" << bit
            << " code=" << mpe::to_string(e.code());
      }
    }
  }
}

TEST(CheckpointFuzz, GarbageIsParseOrCorruptError) {
  EXPECT_THROW(mp::decode_checkpoint(""), mpe::Error);
  EXPECT_THROW(mp::decode_checkpoint("not a checkpoint at all"), mpe::Error);
  try {
    mp::decode_checkpoint("XXXXYYYYZZZZWWWWXXXXYYYYZZZZWWWW");
    FAIL();
  } catch (const mpe::Error& e) {
    EXPECT_EQ(e.code(), mpe::ErrorCode::kParse);
  }
}

TEST(CheckpointFingerprint, SensitiveToResultShapingOptionsOnly) {
  mp::EstimatorOptions a;
  const std::uint64_t fp =
      mp::run_fingerprint(a, 7, /*parallel_path=*/true, "pop");

  mp::EstimatorOptions b = a;
  b.epsilon = 0.01;
  EXPECT_NE(mp::run_fingerprint(b, 7, true, "pop"), fp);

  mp::EstimatorOptions c = a;
  c.max_hyper_samples += 100;  // budget: deliberately outside the print
  EXPECT_EQ(mp::run_fingerprint(c, 7, true, "pop"), fp);

  mp::EstimatorOptions d = a;
  d.control.deadline =
      mpe::util::Deadline::after(std::chrono::seconds(1));  // budget too
  EXPECT_EQ(mp::run_fingerprint(d, 7, true, "pop"), fp);

  EXPECT_NE(mp::run_fingerprint(a, 8, true, "pop"), fp);    // seed
  EXPECT_NE(mp::run_fingerprint(a, 7, false, "pop"), fp);   // path
  EXPECT_NE(mp::run_fingerprint(a, 7, true, "other"), fp);  // population
}

TEST(CheckpointFingerprint, VisitorFieldsMarkedFingerprintedAreFolded) {
  // The fingerprint is the fingerprinted subset of
  // visit_estimator_options — the same visitor that (de)serializes the
  // options — so this asserts the marks, not a hand-maintained list: a
  // deep fingerprinted field (the MLE grid) must perturb the print, and
  // the two fields marked non-fingerprinted (budget/cadence) must not.
  mp::EstimatorOptions a;
  const std::uint64_t fp = mp::run_fingerprint(a, 3, false, "pop");

  mp::EstimatorOptions grid = a;
  grid.hyper.mle.grid_points += 1;  // fingerprinted: shapes every fit
  EXPECT_NE(mp::run_fingerprint(grid, 3, false, "pop"), fp);

  mp::EstimatorOptions interval = a;
  interval.interval = mp::IntervalKind::kBootstrap;  // fingerprinted enum
  EXPECT_NE(mp::run_fingerprint(interval, 3, false, "pop"), fp);

  mp::EstimatorOptions budget = a;
  budget.max_hyper_samples *= 2;  // not fingerprinted: resumable budget
  budget.checkpoint_every_k += 4;  // not fingerprinted: write cadence
  EXPECT_EQ(mp::run_fingerprint(budget, 3, false, "pop"), fp);
}

// --- Resume bit-identity ----------------------------------------------------

TEST(CheckpointResume, SerialResumeBitIdentical) {
  auto pop = weibull_population(20000, 101);
  mp::EstimatorOptions opt;
  opt.epsilon = 0.005;  // converges at k = 33 here: well past the cap below

  mpe::Rng ref_rng(15);
  const auto reference = mp::estimate_max_power(pop, opt, ref_rng);
  ASSERT_TRUE(reference.converged);
  ASSERT_GT(reference.hyper_samples, 5u);

  // Interrupt by capping the budget below convergence, then resume with the
  // full budget. The fingerprint excludes max_hyper_samples, so this is the
  // supported restart-with-bigger-budget flow.
  const std::string path = temp_path("ckpt_serial_resume.ckpt");
  std::remove(path.c_str());
  mp::EstimatorOptions capped = opt;
  capped.checkpoint_path = path;
  capped.max_hyper_samples = 5;
  mpe::Rng rng1(15);
  const auto partial = mp::estimate_max_power(pop, capped, rng1);
  ASSERT_FALSE(partial.converged);
  ASSERT_EQ(partial.hyper_samples, 5u);

  mp::EstimatorOptions full = opt;
  full.checkpoint_path = path;
  mpe::Rng rng2(999);  // state comes from the checkpoint, not this seed
  const auto resumed = mp::estimate_max_power(pop, full, rng2);
  expect_identical(reference, resumed);
  std::remove(path.c_str());
}

TEST(CheckpointResume, ParallelResumeBitIdenticalAcrossThreadCounts) {
  auto pop = weibull_population(30000, 35);
  mp::EstimatorOptions opt;
  opt.epsilon = 0.01;  // converges at k = 18 here
  const std::uint64_t seed = 91;
  const auto reference = mp::estimate_max_power(pop, opt, seed);
  ASSERT_TRUE(reference.converged);
  ASSERT_GT(reference.hyper_samples, 5u);

  for (unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE(threads);
    const std::string path =
        temp_path("ckpt_par_resume_" + std::to_string(threads) + ".ckpt");
    std::remove(path.c_str());
    mp::ParallelOptions par;
    par.threads = threads;

    mp::EstimatorOptions capped = opt;
    capped.checkpoint_path = path;
    capped.max_hyper_samples = 5;
    const auto partial = mp::estimate_max_power(pop, capped, seed, par);
    ASSERT_FALSE(partial.converged);

    mp::EstimatorOptions full = opt;
    full.checkpoint_path = path;
    const auto resumed = mp::estimate_max_power(pop, full, seed, par);
    expect_identical(reference, resumed);
    std::remove(path.c_str());
  }
}

TEST(CheckpointResume, ResumeAtDifferentThreadCountBitIdentical) {
  // Checkpoint taken at 8 threads, resumed at 1 and 2: the pipelined
  // estimator's per-index streams make the schedule unobservable, so the
  // thread count is not part of the fingerprint and may change mid-run.
  auto pop = weibull_population(30000, 35);
  mp::EstimatorOptions opt;
  opt.epsilon = 0.01;
  const std::uint64_t seed = 91;
  const auto reference = mp::estimate_max_power(pop, opt, seed);
  ASSERT_GT(reference.hyper_samples, 5u);

  for (unsigned resume_threads : {1u, 2u}) {
    SCOPED_TRACE(resume_threads);
    const std::string path = temp_path(
        "ckpt_cross_threads_" + std::to_string(resume_threads) + ".ckpt");
    std::remove(path.c_str());
    mp::EstimatorOptions capped = opt;
    capped.checkpoint_path = path;
    capped.max_hyper_samples = 5;
    mp::ParallelOptions eight;
    eight.threads = 8;
    (void)mp::estimate_max_power(pop, capped, seed, eight);

    mp::EstimatorOptions full = opt;
    full.checkpoint_path = path;
    mp::ParallelOptions narrow;
    narrow.threads = resume_threads;
    const auto resumed = mp::estimate_max_power(pop, full, seed, narrow);
    expect_identical(reference, resumed);
    std::remove(path.c_str());
  }
}

TEST(CheckpointResume, BootstrapIntervalResumeBitIdentical) {
  // The bootstrap stopping rule consumes the interval RNG at every accept;
  // the checkpoint must restore that stream position exactly.
  auto pop = weibull_population(30000, 35);
  mp::EstimatorOptions opt;
  opt.interval = mp::IntervalKind::kBootstrap;
  opt.epsilon = 0.005;  // converges at k = 49 here
  const std::uint64_t seed = 91;
  const auto reference = mp::estimate_max_power(pop, opt, seed);
  ASSERT_GT(reference.hyper_samples, 5u);

  const std::string path = temp_path("ckpt_bootstrap_resume.ckpt");
  std::remove(path.c_str());
  mp::EstimatorOptions capped = opt;
  capped.checkpoint_path = path;
  capped.max_hyper_samples = 5;
  (void)mp::estimate_max_power(pop, capped, seed);

  mp::EstimatorOptions full = opt;
  full.checkpoint_path = path;
  const auto resumed = mp::estimate_max_power(pop, full, seed);
  expect_identical(reference, resumed);
  std::remove(path.c_str());
}

TEST(CheckpointResume, CompleteCheckpointShortCircuitsWithoutDrawing) {
  auto inner = weibull_population(20000, 55);
  // No faults installed: the decorator is used purely as a draw counter.
  mpe::vec::FaultInjectingPopulation pop(inner, {});
  const std::string path = temp_path("ckpt_complete.ckpt");
  std::remove(path.c_str());
  mp::EstimatorOptions opt;
  opt.checkpoint_path = path;
  const std::uint64_t seed = 7;
  const auto first = mp::estimate_max_power(pop, opt, seed);
  ASSERT_TRUE(first.converged);
  const std::uint64_t draws_after_first = pop.draws();

  const auto second = mp::estimate_max_power(pop, opt, seed);
  EXPECT_EQ(pop.draws(), draws_after_first) << "resume re-simulated the run";
  expect_identical(first, second);
  std::remove(path.c_str());
}

TEST(CheckpointResume, CheckpointEveryKStillResumesExactly) {
  auto pop = weibull_population(20000, 61);
  mp::EstimatorOptions opt;
  opt.epsilon = 0.01;  // converges at k = 9 here, so k=3 batching skips writes
  const std::uint64_t seed = 19;
  const auto reference = mp::estimate_max_power(pop, opt, seed);
  ASSERT_GT(reference.hyper_samples, 4u);

  const std::string path = temp_path("ckpt_every_k.ckpt");
  std::remove(path.c_str());
  mp::EstimatorOptions capped = opt;
  capped.checkpoint_path = path;
  capped.checkpoint_every_k = 3;
  capped.max_hyper_samples = 4;
  (void)mp::estimate_max_power(pop, capped, seed);

  mp::EstimatorOptions full = opt;
  full.checkpoint_path = path;
  full.checkpoint_every_k = 3;
  const auto resumed = mp::estimate_max_power(pop, full, seed);
  expect_identical(reference, resumed);
  std::remove(path.c_str());
}

// --- Refusals ---------------------------------------------------------------

TEST(CheckpointRefusal, FingerprintMismatchIsPrecondition) {
  auto pop = weibull_population(20000, 71);
  const std::string path = temp_path("ckpt_mismatch.ckpt");
  std::remove(path.c_str());
  mp::EstimatorOptions opt;
  opt.checkpoint_path = path;
  opt.max_hyper_samples = 3;
  const std::uint64_t seed = 3;
  (void)mp::estimate_max_power(pop, opt, seed);

  mp::EstimatorOptions other = opt;
  other.epsilon = 0.01;  // result-shaping change: different run
  try {
    (void)mp::estimate_max_power(pop, other, seed);
    FAIL() << "mismatched checkpoint resumed";
  } catch (const mpe::Error& e) {
    EXPECT_EQ(e.code(), mpe::ErrorCode::kPrecondition);
    EXPECT_NE(e.context().find("expected_fingerprint"), std::string::npos);
  }

  // A different seed is a different value sequence: also refused.
  try {
    (void)mp::estimate_max_power(pop, opt, seed + 1);
    FAIL() << "wrong-seed checkpoint resumed";
  } catch (const mpe::Error& e) {
    EXPECT_EQ(e.code(), mpe::ErrorCode::kPrecondition);
  }
  std::remove(path.c_str());
}

TEST(CheckpointRefusal, SerialCheckpointRefusedByParallelPath) {
  auto pop = weibull_population(20000, 73);
  const std::string path = temp_path("ckpt_pathkind.ckpt");
  std::remove(path.c_str());
  mp::EstimatorOptions opt;
  opt.checkpoint_path = path;
  opt.max_hyper_samples = 3;
  mpe::Rng rng(3);
  (void)mp::estimate_max_power(pop, opt, rng);  // serial writes it

  try {
    (void)mp::estimate_max_power(pop, opt, std::uint64_t{3});  // parallel
    FAIL() << "serial checkpoint resumed on the parallel path";
  } catch (const mpe::Error& e) {
    EXPECT_EQ(e.code(), mpe::ErrorCode::kPrecondition);
  }
  std::remove(path.c_str());
}

TEST(CheckpointRefusal, CorruptFileIsCorruptData) {
  auto pop = weibull_population(20000, 75);
  const std::string path = temp_path("ckpt_corrupt.ckpt");
  std::remove(path.c_str());
  mp::EstimatorOptions opt;
  opt.checkpoint_path = path;
  opt.max_hyper_samples = 3;
  const std::uint64_t seed = 3;
  (void)mp::estimate_max_power(pop, opt, seed);

  std::string bytes = mpe::util::read_file(path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  try {
    (void)mp::estimate_max_power(pop, opt, seed);
    FAIL() << "corrupt checkpoint resumed";
  } catch (const mpe::Error& e) {
    EXPECT_EQ(e.code(), mpe::ErrorCode::kCorruptData);
  }
  std::remove(path.c_str());
}

TEST(AtomicFile, WriteReadRoundTripAndOverwrite) {
  const std::string path = temp_path("atomic_file_rt.bin");
  std::string payload = "hello\0world", longer(4096, 'x');
  payload.resize(11);
  mpe::util::atomic_write_file(path, longer);
  mpe::util::atomic_write_file(path, payload);  // shrinking overwrite
  EXPECT_EQ(mpe::util::read_file(path), payload);
  EXPECT_TRUE(mpe::util::file_exists(path));
  std::remove(path.c_str());
  EXPECT_FALSE(mpe::util::file_exists(path));
}

TEST(AtomicFile, UnwritableDirectoryIsIoError) {
  try {
    mpe::util::atomic_write_file("/nonexistent-dir-mpe/x.bin", "data");
    FAIL() << "write into a missing directory succeeded";
  } catch (const mpe::Error& e) {
    EXPECT_EQ(e.code(), mpe::ErrorCode::kIo);
  }
}

}  // namespace
