// End-to-end integration tests: the full paper pipeline on real (generated)
// circuits — build circuit, simulate a finite population, run the EVT
// estimator, compare against ground truth and the SRS baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "evt/domain.hpp"
#include "gen/presets.hpp"
#include "maxpower/estimator.hpp"
#include "maxpower/srs.hpp"
#include "maxpower/theory.hpp"
#include "sim/power_eval.hpp"
#include "util/rng.hpp"
#include "vectors/power_db.hpp"

namespace {

namespace mp = mpe::maxpower;
namespace vec = mpe::vec;

vec::FinitePopulation build_population(const mpe::circuit::Netlist& nl,
                                       std::size_t size, std::uint64_t seed) {
  mpe::sim::CyclePowerEvaluator eval(nl);
  const vec::HighActivityPairGenerator gen(nl.num_inputs(), 0.3);
  vec::PowerDbOptions opt;
  opt.population_size = size;
  mpe::Rng rng(seed);
  return vec::build_power_database(gen, eval, opt, rng);
}

TEST(Integration, FullPipelineOnC432StandIn) {
  const auto nl = mpe::gen::build_preset("c432", 1);
  auto pop = build_population(nl, 16000, 2);
  ASSERT_GT(pop.true_max(), 0.0);

  mp::EstimatorOptions opt;
  mpe::Rng rng(3);
  int good = 0;
  const int reps = 15;
  std::size_t total_units = 0;
  for (int i = 0; i < reps; ++i) {
    const auto r = mp::estimate_max_power(pop, opt, rng);
    total_units += r.units_used;
    const double rel =
        std::fabs(r.estimate - pop.true_max()) / pop.true_max();
    if (rel < 0.10) ++good;
  }
  EXPECT_GE(good, reps * 2 / 3);
  // Efficiency: far fewer units than the population size, on average.
  EXPECT_LT(total_units / reps, pop.values().size());
}

TEST(Integration, SampleMaximaAreWeibullDomain) {
  // The paper's empirical premise (Figure 1): block maxima of cycle power
  // look reversed-Weibull. Verify via the domain classifier on a stand-in.
  const auto nl = mpe::gen::build_preset("c880", 1);
  auto pop = build_population(nl, 6000, 4);
  mpe::Rng rng(5);
  std::vector<double> maxima(300);
  for (auto& m : maxima) {
    double best = pop.draw(rng);
    for (int j = 1; j < 30; ++j) best = std::max(best, pop.draw(rng));
    m = best;
  }
  const auto c = mpe::evt::classify_domain(maxima);
  // Finite-endpoint data: the PWM shape must be negative (Weibull type).
  EXPECT_LT(c.pwm_xi, 0.05);
  EXPECT_LE(c.ks_weibull, c.ks_frechet + 0.02);
}

TEST(Integration, EvtBeatsSrsAtEqualBudget) {
  // Give SRS the same unit budget the EVT estimator used. SRS's structural
  // failure mode is downward bias (it can only approach the max from
  // below); EVT must show materially less of it while staying in the same
  // league on absolute error.
  const auto nl = mpe::gen::build_preset("c432", 2);
  auto pop = build_population(nl, 24000, 6);
  mp::EstimatorOptions opt;
  mpe::Rng rng(7);

  double evt_err = 0.0, srs_bias = 0.0, evt_bias = 0.0, srs_err = 0.0;
  const int reps = 12;
  for (int i = 0; i < reps; ++i) {
    const auto r = mp::estimate_max_power(pop, opt, rng);
    evt_err += std::fabs(r.estimate - pop.true_max());
    evt_bias += r.estimate - pop.true_max();
    const auto s = mp::srs_estimate(pop, r.units_used, rng);
    srs_err += std::fabs(s.estimate - pop.true_max());
    srs_bias += s.estimate - pop.true_max();
  }
  // SRS is always biased low; EVT must have materially less downward bias.
  EXPECT_LT(srs_bias, 0.0);
  EXPECT_GT(evt_bias / reps, srs_bias / reps - 1e-12);
  // And in absolute error, EVT must be in the same league or better.
  EXPECT_LT(evt_err, srs_err * 1.5);
}

TEST(Integration, ConstrainedPopulationsOrderedByActivity) {
  // Table 3 vs Table 4 premise: higher input transition probability =>
  // larger maximum power.
  const auto nl = mpe::gen::build_preset("c432", 3);
  mpe::sim::CyclePowerEvaluator e1(nl), e2(nl);
  const vec::TransitionProbPairGenerator high(nl.num_inputs(), 0.7);
  const vec::TransitionProbPairGenerator low(nl.num_inputs(), 0.3);
  vec::PowerDbOptions opt;
  opt.population_size = 4000;
  mpe::Rng r1(8), r2(8);
  const auto ph = vec::build_power_database(high, e1, opt, r1);
  const auto pl = vec::build_power_database(low, e2, opt, r2);
  EXPECT_GT(ph.true_max(), pl.true_max());
}

TEST(Integration, QualifiedFractionPredictsSrsDifficulty) {
  const auto nl = mpe::gen::build_preset("c432", 4);
  auto pop = build_population(nl, 8000, 9);
  const double y = pop.qualified_fraction(0.05);
  ASSERT_GT(y, 0.0);
  const double required = mp::srs_required_units(y, 0.9);
  // Empirically verify the formula: run SRS with `required` units and count
  // how often it lands within 5%.
  mpe::Rng rng(10);
  int hits = 0;
  const int reps = 60;
  for (int i = 0; i < reps; ++i) {
    const auto s = mp::srs_estimate(
        pop, static_cast<std::size_t>(std::min(required, 60000.0)), rng);
    if (s.estimate >= 0.95 * pop.true_max()) ++hits;
  }
  EXPECT_GT(hits, reps / 2);
}

}  // namespace
