#include <gtest/gtest.h>

#include <set>

#include "maxpower/estimator.hpp"
#include "seq/seq_gen.hpp"
#include "seq/seq_netlist.hpp"
#include "seq/seq_sim.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

namespace seq = mpe::seq;

std::uint64_t state_value(const seq::SequentialSimulator& sim) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < sim.state().size(); ++i) {
    v |= static_cast<std::uint64_t>(sim.state()[i]) << i;
  }
  return v;
}

TEST(SeqNetlist, CounterStructure) {
  const auto counter = seq::make_counter(4);
  EXPECT_EQ(counter.num_state_bits(), 4u);
  EXPECT_EQ(counter.num_free_inputs(), 1u);  // "en"
  EXPECT_TRUE(counter.finalized());
}

TEST(SeqNetlist, RejectsBadFlipFlops) {
  mpe::circuit::Netlist core("bad");
  core.add_input("q0");
  core.add_input("x");
  core.add_gate(mpe::circuit::GateType::kNot, "d0", {"q0"});
  core.finalize();
  seq::SequentialNetlist s(std::move(core));
  EXPECT_THROW(s.add_flip_flop("nope", "d0"), std::runtime_error);
  EXPECT_THROW(s.add_flip_flop("d0", "q0"), std::runtime_error);  // q not input
  s.add_flip_flop("q0", "d0");
  s.add_flip_flop("q0", "d0");  // duplicate Q: caught at finalize
  EXPECT_THROW(s.finalize(), std::runtime_error);
}

TEST(SeqSim, CounterCountsWhenEnabled) {
  // Inputs applied at step t are sampled into state at step t+1 (real
  // flip-flop timing), so the count lags the enable by one cycle.
  const auto counter = seq::make_counter(4);
  seq::SequentialSimulator sim(counter);
  sim.reset();
  const std::vector<std::uint8_t> en = {1};
  sim.step(en);  // latches en = 1; state still 0
  EXPECT_EQ(state_value(sim), 0u);
  for (std::uint64_t expect = 1; expect <= 20; ++expect) {
    sim.step(en);
    EXPECT_EQ(state_value(sim), expect & 0xf) << expect;
  }
}

TEST(SeqSim, CounterHoldsWhenDisabled) {
  const auto counter = seq::make_counter(4);
  seq::SequentialSimulator sim(counter);
  sim.reset();
  const std::vector<std::uint8_t> en = {1}, hold = {0};
  sim.step(en);   // latch enable
  sim.step(en);   // count to 1
  sim.step(hold); // count to 2 (enable was high last cycle), latch hold
  EXPECT_EQ(state_value(sim), 2u);
  sim.step(hold);
  sim.step(hold);
  EXPECT_EQ(state_value(sim), 2u);
}

TEST(SeqSim, MaxLengthLfsrPeriod) {
  // x^4 + x^3 + 1 is maximal: period 15 over nonzero states.
  auto lfsr = seq::make_lfsr(4, {4, 3});
  seq::SequentialSimulator sim(lfsr);
  std::vector<std::uint8_t> seed = {1, 0, 0, 0};
  sim.set_state(seed);
  std::set<std::uint64_t> seen;
  std::uint64_t cur = state_value(sim);
  for (int i = 0; i < 15; ++i) {
    EXPECT_TRUE(seen.insert(cur).second) << "state repeated early at " << i;
    EXPECT_NE(cur, 0u);
    sim.step({});
    cur = state_value(sim);
  }
  EXPECT_EQ(cur, state_value(sim));  // stable accessor
  EXPECT_EQ(seen.size(), 15u);
  // After 15 steps the initial state recurs.
  EXPECT_TRUE(seen.count(cur));
  std::vector<std::uint8_t> again = {1, 0, 0, 0};
  seq::SequentialSimulator sim2(lfsr);
  sim2.set_state(again);
  for (int i = 0; i < 15; ++i) sim2.step({});
  EXPECT_EQ(state_value(sim2), 1u);
}

TEST(SeqSim, ShiftRegisterShifts) {
  auto shreg = seq::make_shift_register(5);
  seq::SequentialSimulator sim(shreg);
  sim.reset();
  // Shift in the pattern 1,0,1,1 followed by a flush cycle (the bit given
  // at step t reaches q0 at step t+1).
  for (std::uint8_t bit : {1, 0, 1, 1, 0}) {
    sim.step(std::vector<std::uint8_t>{bit});
  }
  // q0 holds the newest latched bit (the fourth), q3 the first.
  EXPECT_EQ(sim.state()[0], 1);
  EXPECT_EQ(sim.state()[1], 1);
  EXPECT_EQ(sim.state()[2], 0);
  EXPECT_EQ(sim.state()[3], 1);
  EXPECT_EQ(sim.state()[4], 0);
}

TEST(SeqSim, AccumulatorAddsModulo) {
  auto acc = seq::make_accumulator(6);
  seq::SequentialSimulator sim(acc);
  sim.reset();
  // state after step t equals the sum of inputs given before step t
  // (one-cycle latency of the FF sampling).
  std::uint64_t running = 0;
  mpe::Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t x = rng.below(64);
    std::vector<std::uint8_t> in(6);
    for (int b = 0; b < 6; ++b) {
      in[static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>((x >> b) & 1);
    }
    sim.step(in);
    EXPECT_EQ(state_value(sim), running) << i;
    running = (running + x) & 63;
  }
}

TEST(SeqSim, PowerIncludesClockEnergy) {
  // Even a completely idle cycle (disabled counter, no toggles) burns the
  // per-FF clock energy.
  const auto counter = seq::make_counter(8);
  seq::SeqSimOptions opt;
  seq::SequentialSimulator sim(counter, opt);
  sim.reset();
  const std::vector<std::uint8_t> hold = {0};
  sim.step(hold);  // settle the enable line
  const auto r = sim.step(hold);
  EXPECT_GE(r.energy_pj, opt.ff_clock_energy_pj * 8 - 1e-12);
}

TEST(SeqSim, TogglingStateBurnsMore) {
  const auto counter = seq::make_counter(8);
  seq::SequentialSimulator sim(counter);
  sim.reset();
  const std::vector<std::uint8_t> en = {1}, hold = {0};
  sim.step(en);
  double counting = 0.0, holding = 0.0;
  for (int i = 0; i < 32; ++i) counting += sim.step(en).energy_pj;
  for (int i = 0; i < 32; ++i) holding += sim.step(hold).energy_pj;
  EXPECT_GT(counting, 2.0 * holding);
}

TEST(SeqPopulation, EstimatorConvergesOnAccumulator) {
  auto acc = seq::make_accumulator(8);
  seq::SequentialSimulator sim(acc);
  seq::SequencePopulation pop(sim);
  mpe::maxpower::EstimatorOptions opt;
  opt.epsilon = 0.08;
  mpe::Rng rng(9);
  const auto r = mpe::maxpower::estimate_max_power(pop, opt, rng);
  EXPECT_GT(r.estimate, 0.0);
  EXPECT_GT(r.units_used, 0u);
  // The estimate must be at least the largest cycle power sampled directly.
  seq::SequentialSimulator sim2(acc);
  seq::SequencePopulation probe(sim2);
  mpe::Rng rng2(10);
  double observed = 0.0;
  for (int i = 0; i < 200; ++i) observed = std::max(observed, probe.draw(rng2));
  EXPECT_GT(r.estimate, 0.7 * observed);
}

TEST(SeqSim, ContractChecks) {
  const auto counter = seq::make_counter(4);
  seq::SequentialSimulator sim(counter);
  const std::vector<std::uint8_t> too_many = {1, 0};
  EXPECT_THROW(sim.step(too_many), mpe::ContractViolation);
  const std::vector<std::uint8_t> bad_state = {1};
  EXPECT_THROW(sim.set_state(bad_state), mpe::ContractViolation);
}

}  // namespace
