#include "stats/student_t.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/normal.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

using mpe::stats::Normal;
using mpe::stats::StudentT;

TEST(StudentT, CdfSymmetry) {
  const StudentT t(5.0);
  for (double x : {0.5, 1.0, 2.0, 4.0}) {
    EXPECT_NEAR(t.cdf(x) + t.cdf(-x), 1.0, 1e-12);
  }
  EXPECT_NEAR(t.cdf(0.0), 0.5, 1e-12);
}

TEST(StudentT, CdfWithOneDofIsCauchy) {
  const StudentT t(1.0);
  for (double x : {-3.0, -1.0, 0.0, 1.0, 3.0}) {
    const double cauchy = 0.5 + std::atan(x) / M_PI;
    EXPECT_NEAR(t.cdf(x), cauchy, 1e-10) << "x=" << x;
  }
}

TEST(StudentT, TwoSidedCriticalMatchesClassicTables) {
  // Values from standard t tables (two-sided).
  EXPECT_NEAR(StudentT(1).two_sided_critical(0.90), 6.3138, 2e-3);
  EXPECT_NEAR(StudentT(4).two_sided_critical(0.90), 2.1318, 1e-3);
  EXPECT_NEAR(StudentT(9).two_sided_critical(0.90), 1.8331, 1e-3);
  EXPECT_NEAR(StudentT(9).two_sided_critical(0.95), 2.2622, 1e-3);
  EXPECT_NEAR(StudentT(29).two_sided_critical(0.99), 2.7564, 1e-3);
}

TEST(StudentT, QuantileCdfRoundTrip) {
  const StudentT t(7.0);
  for (double q : {0.01, 0.1, 0.5, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(t.cdf(t.quantile(q)), q, 1e-9) << "q=" << q;
  }
}

TEST(StudentT, ApproachesNormalForLargeDof) {
  const StudentT t(2000.0);
  for (double q : {0.05, 0.5, 0.95}) {
    EXPECT_NEAR(t.quantile(q), Normal::std_quantile(q), 2e-3);
  }
}

TEST(StudentT, PdfIntegratesToOne) {
  const StudentT t(3.0);
  const int steps = 40000;
  const double a = -60.0, b = 60.0;
  double integral = 0.0;
  const double h = (b - a) / steps;
  for (int i = 0; i <= steps; ++i) {
    const double w = (i == 0 || i == steps) ? 0.5 : 1.0;
    integral += w * t.pdf(a + i * h);
  }
  integral *= h;
  EXPECT_NEAR(integral, 1.0, 1e-3);  // heavy tails: generous tolerance
}

TEST(StudentT, SampleQuantilesMatchTheory) {
  const StudentT t(6.0);
  mpe::Rng rng(1234);
  std::vector<double> xs(60000);
  for (auto& x : xs) x = t.sample(rng);
  std::sort(xs.begin(), xs.end());
  const double q90 = xs[static_cast<std::size_t>(0.9 * xs.size())];
  EXPECT_NEAR(q90, t.quantile(0.9), 0.05);
}

TEST(StudentT, RejectsBadArgs) {
  EXPECT_THROW(StudentT(0.0), mpe::ContractViolation);
  EXPECT_THROW(StudentT(-1.0), mpe::ContractViolation);
  const StudentT t(3.0);
  EXPECT_THROW(t.quantile(0.0), mpe::ContractViolation);
  EXPECT_THROW(t.two_sided_critical(1.0), mpe::ContractViolation);
}

class TCriticalDecreasesWithDof : public ::testing::TestWithParam<double> {};

TEST_P(TCriticalDecreasesWithDof, MonotoneInDof) {
  const double l = GetParam();
  double prev = StudentT(1.0).two_sided_critical(l);
  for (double nu : {2.0, 3.0, 5.0, 10.0, 30.0, 100.0}) {
    const double cur = StudentT(nu).two_sided_critical(l);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
  // Limit from below: always above the normal critical value.
  EXPECT_GT(prev, Normal::two_sided_critical(l) - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Levels, TCriticalDecreasesWithDof,
                         ::testing::Values(0.8, 0.9, 0.95, 0.99));

}  // namespace
