#include "vectors/population.hpp"

#include <gtest/gtest.h>

#include "gen/trees.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

namespace vec = mpe::vec;

TEST(FinitePopulation, TrueMaxAndDraws) {
  vec::FinitePopulation pop({1.0, 5.0, 3.0, 2.0}, "test");
  EXPECT_DOUBLE_EQ(pop.true_max(), 5.0);
  ASSERT_TRUE(pop.size().has_value());
  EXPECT_EQ(*pop.size(), 4u);
  mpe::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const double v = pop.draw(rng);
    EXPECT_TRUE(v == 1.0 || v == 5.0 || v == 3.0 || v == 2.0);
  }
}

TEST(FinitePopulation, DrawsCoverAllUnits) {
  vec::FinitePopulation pop({1.0, 2.0, 3.0}, "test");
  mpe::Rng rng(2);
  std::set<double> seen;
  for (int i = 0; i < 200; ++i) seen.insert(pop.draw(rng));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(FinitePopulation, QualifiedFraction) {
  // Max 10; 5% threshold = 9.5. Two of five values qualify.
  vec::FinitePopulation pop({10.0, 9.6, 9.0, 5.0, 1.0}, "test");
  EXPECT_DOUBLE_EQ(pop.qualified_fraction(0.05), 2.0 / 5.0);
  EXPECT_DOUBLE_EQ(pop.qualified_fraction(0.5), 4.0 / 5.0);
}

TEST(FinitePopulation, DescriptionRoundTrip) {
  vec::FinitePopulation pop({1.0}, "my population");
  EXPECT_EQ(pop.description(), "my population");
}

TEST(FinitePopulation, ContractChecks) {
  EXPECT_THROW(vec::FinitePopulation({}, "empty"), mpe::ContractViolation);
  vec::FinitePopulation pop({1.0, 2.0}, "x");
  EXPECT_THROW(pop.qualified_fraction(0.0), mpe::ContractViolation);
}

TEST(StreamingPopulation, SimulatesFreshUnits) {
  auto nl = mpe::gen::parity_tree(12, 2);
  mpe::sim::CyclePowerEvaluator eval(nl);
  const vec::UniformPairGenerator gen(nl.num_inputs());
  vec::StreamingPopulation pop(gen, eval);
  EXPECT_FALSE(pop.size().has_value());
  mpe::Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 50; ++i) sum += pop.draw(rng);
  EXPECT_GT(sum, 0.0);
  EXPECT_EQ(pop.draws(), 50u);
  EXPECT_NE(pop.description().find("parity"), std::string::npos);
}

TEST(StreamingPopulation, WidthMismatchRejected) {
  auto nl = mpe::gen::parity_tree(12, 2);
  mpe::sim::CyclePowerEvaluator eval(nl);
  const vec::UniformPairGenerator wrong(8);
  EXPECT_THROW(vec::StreamingPopulation(wrong, eval),
               mpe::ContractViolation);
}

TEST(FinitePopulation, DrawBatchMatchesScalarDraws) {
  vec::FinitePopulation pop({1.0, 2.0, 3.0, 4.0, 5.0}, "test");
  mpe::Rng scalar_rng(7), batch_rng(7);
  std::vector<double> expected(257);
  for (auto& v : expected) v = pop.draw(scalar_rng);
  std::vector<double> batch(expected.size());
  pop.draw_batch(batch, batch_rng);
  EXPECT_EQ(batch, expected);
}

TEST(FinitePopulation, ConcurrentDrawSafe) {
  vec::FinitePopulation pop({1.0, 2.0}, "test");
  EXPECT_TRUE(pop.concurrent_draw_safe());
}

TEST(StreamingPopulation, ScalarBatchMatchesScalarDraws) {
  auto nl = mpe::gen::parity_tree(12, 2);
  mpe::sim::CyclePowerEvaluator eval(nl);
  const vec::UniformPairGenerator gen(nl.num_inputs());
  vec::StreamingPopulation pop(gen, eval);
  EXPECT_FALSE(pop.concurrent_draw_safe());
  mpe::Rng scalar_rng(5), batch_rng(5);
  std::vector<double> expected(40);
  for (auto& v : expected) v = pop.draw(scalar_rng);
  std::vector<double> batch(expected.size());
  pop.draw_batch(batch, batch_rng);
  EXPECT_EQ(batch, expected);
  EXPECT_EQ(pop.draws(), 80u);
}

TEST(StreamingPopulation, BitParallelBatchMatches64ScalarDraws) {
  // The acceptance contract of the bit-parallel backend: same stream, same
  // values, bit for bit — one levelized pass instead of 64.
  auto nl = mpe::gen::parity_tree(24, 2);
  mpe::sim::PowerEvalOptions opt;
  opt.delay_model = mpe::sim::DelayModel::kZero;
  mpe::sim::CyclePowerEvaluator scalar_eval(nl, opt);
  mpe::sim::CyclePowerEvaluator batch_eval(nl, opt);
  const vec::UniformPairGenerator gen(nl.num_inputs());
  vec::StreamingPopulation scalar_pop(gen, scalar_eval);
  vec::StreamingPopulation batch_pop(gen, batch_eval);
  ASSERT_TRUE(batch_pop.enable_bit_parallel());
  EXPECT_TRUE(batch_pop.bit_parallel());
  EXPECT_TRUE(batch_pop.concurrent_draw_safe());

  mpe::Rng scalar_rng(9), batch_rng(9);
  std::vector<double> expected(64);
  for (auto& v : expected) v = scalar_pop.draw(scalar_rng);
  std::vector<double> batch(64);
  batch_pop.draw_batch(batch, batch_rng);
  EXPECT_EQ(batch, expected);
  EXPECT_EQ(batch_pop.draws(), 64u);
}

TEST(StreamingPopulation, BitParallelHandlesPartialAndMultiWaveBatches) {
  auto nl = mpe::gen::parity_tree(16, 2);
  mpe::sim::PowerEvalOptions opt;
  opt.delay_model = mpe::sim::DelayModel::kZero;
  mpe::sim::CyclePowerEvaluator scalar_eval(nl, opt);
  mpe::sim::CyclePowerEvaluator batch_eval(nl, opt);
  const vec::UniformPairGenerator gen(nl.num_inputs());
  vec::StreamingPopulation scalar_pop(gen, scalar_eval);
  vec::StreamingPopulation batch_pop(gen, batch_eval);
  ASSERT_TRUE(batch_pop.enable_bit_parallel());

  for (std::size_t size : {1u, 63u, 65u, 200u}) {
    mpe::Rng scalar_rng(size), batch_rng(size);
    std::vector<double> expected(size);
    for (auto& v : expected) v = scalar_pop.draw(scalar_rng);
    std::vector<double> batch(size);
    batch_pop.draw_batch(batch, batch_rng);
    EXPECT_EQ(batch, expected) << "batch size " << size;
  }
}

TEST(StreamingPopulation, BitParallelRejectedForEventDrivenEvaluator) {
  auto nl = mpe::gen::parity_tree(12, 2);
  mpe::sim::CyclePowerEvaluator eval(nl);  // default: event-driven
  const vec::UniformPairGenerator gen(nl.num_inputs());
  vec::StreamingPopulation pop(gen, eval);
  EXPECT_FALSE(pop.enable_bit_parallel());
  EXPECT_FALSE(pop.bit_parallel());
  // Scalar batch still works.
  mpe::Rng rng(2);
  std::vector<double> batch(10);
  pop.draw_batch(batch, rng);
  EXPECT_EQ(pop.draws(), 10u);
}

}  // namespace
