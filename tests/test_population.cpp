#include "vectors/population.hpp"

#include <gtest/gtest.h>

#include "gen/trees.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

namespace vec = mpe::vec;

TEST(FinitePopulation, TrueMaxAndDraws) {
  vec::FinitePopulation pop({1.0, 5.0, 3.0, 2.0}, "test");
  EXPECT_DOUBLE_EQ(pop.true_max(), 5.0);
  ASSERT_TRUE(pop.size().has_value());
  EXPECT_EQ(*pop.size(), 4u);
  mpe::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const double v = pop.draw(rng);
    EXPECT_TRUE(v == 1.0 || v == 5.0 || v == 3.0 || v == 2.0);
  }
}

TEST(FinitePopulation, DrawsCoverAllUnits) {
  vec::FinitePopulation pop({1.0, 2.0, 3.0}, "test");
  mpe::Rng rng(2);
  std::set<double> seen;
  for (int i = 0; i < 200; ++i) seen.insert(pop.draw(rng));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(FinitePopulation, QualifiedFraction) {
  // Max 10; 5% threshold = 9.5. Two of five values qualify.
  vec::FinitePopulation pop({10.0, 9.6, 9.0, 5.0, 1.0}, "test");
  EXPECT_DOUBLE_EQ(pop.qualified_fraction(0.05), 2.0 / 5.0);
  EXPECT_DOUBLE_EQ(pop.qualified_fraction(0.5), 4.0 / 5.0);
}

TEST(FinitePopulation, DescriptionRoundTrip) {
  vec::FinitePopulation pop({1.0}, "my population");
  EXPECT_EQ(pop.description(), "my population");
}

TEST(FinitePopulation, ContractChecks) {
  EXPECT_THROW(vec::FinitePopulation({}, "empty"), mpe::ContractViolation);
  vec::FinitePopulation pop({1.0, 2.0}, "x");
  EXPECT_THROW(pop.qualified_fraction(0.0), mpe::ContractViolation);
}

TEST(StreamingPopulation, SimulatesFreshUnits) {
  auto nl = mpe::gen::parity_tree(12, 2);
  mpe::sim::CyclePowerEvaluator eval(nl);
  const vec::UniformPairGenerator gen(nl.num_inputs());
  vec::StreamingPopulation pop(gen, eval);
  EXPECT_FALSE(pop.size().has_value());
  mpe::Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 50; ++i) sum += pop.draw(rng);
  EXPECT_GT(sum, 0.0);
  EXPECT_EQ(pop.draws(), 50u);
  EXPECT_NE(pop.description().find("parity"), std::string::npos);
}

TEST(StreamingPopulation, WidthMismatchRejected) {
  auto nl = mpe::gen::parity_tree(12, 2);
  mpe::sim::CyclePowerEvaluator eval(nl);
  const vec::UniformPairGenerator wrong(8);
  EXPECT_THROW(vec::StreamingPopulation(wrong, eval),
               mpe::ContractViolation);
}

}  // namespace
