#include "vectors/power_db.hpp"

#include <gtest/gtest.h>

#include "gen/arithmetic.hpp"
#include "gen/trees.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

namespace vec = mpe::vec;

TEST(PowerDb, BuildsRequestedSize) {
  auto nl = mpe::gen::parity_tree(16, 2);
  mpe::sim::CyclePowerEvaluator eval(nl);
  const vec::UniformPairGenerator gen(nl.num_inputs());
  vec::PowerDbOptions opt;
  opt.population_size = 500;
  mpe::Rng rng(1);
  const auto pop = vec::build_power_database(gen, eval, opt, rng);
  ASSERT_TRUE(pop.size().has_value());
  EXPECT_EQ(*pop.size(), 500u);
  EXPECT_GT(pop.true_max(), 0.0);
  EXPECT_EQ(pop.values().size(), 500u);
}

TEST(PowerDb, ProgressCallbackFires) {
  auto nl = mpe::gen::parity_tree(8, 2);
  mpe::sim::CyclePowerEvaluator eval(nl);
  const vec::UniformPairGenerator gen(nl.num_inputs());
  vec::PowerDbOptions opt;
  opt.population_size = 100;
  opt.progress_stride = 25;
  std::vector<std::size_t> ticks;
  opt.on_progress = [&](std::size_t done, std::size_t total) {
    ticks.push_back(done);
    EXPECT_EQ(total, 100u);
  };
  mpe::Rng rng(2);
  vec::build_power_database(gen, eval, opt, rng);
  EXPECT_EQ(ticks, (std::vector<std::size_t>{25, 50, 75, 100}));
}

TEST(PowerDb, DeterministicForSeed) {
  auto nl = mpe::gen::ripple_carry_adder(6);
  mpe::sim::CyclePowerEvaluator e1(nl), e2(nl);
  const vec::UniformPairGenerator gen(nl.num_inputs());
  vec::PowerDbOptions opt;
  opt.population_size = 200;
  mpe::Rng r1(7), r2(7);
  const auto p1 = vec::build_power_database(gen, e1, opt, r1);
  const auto p2 = vec::build_power_database(gen, e2, opt, r2);
  ASSERT_EQ(p1.values().size(), p2.values().size());
  for (std::size_t i = 0; i < p1.values().size(); ++i) {
    EXPECT_DOUBLE_EQ(p1.values()[i], p2.values()[i]);
  }
}

TEST(PowerDb, HighActivityPopulationHasHigherMeanPower) {
  auto nl = mpe::gen::ripple_carry_adder(8);
  mpe::sim::CyclePowerEvaluator e1(nl), e2(nl);
  const vec::TransitionProbPairGenerator low(nl.num_inputs(), 0.1);
  const vec::TransitionProbPairGenerator high(nl.num_inputs(), 0.7);
  vec::PowerDbOptions opt;
  opt.population_size = 400;
  mpe::Rng r1(9), r2(9);
  const auto pl = vec::build_power_database(low, e1, opt, r1);
  const auto ph = vec::build_power_database(high, e2, opt, r2);
  double ml = 0.0, mh = 0.0;
  for (double v : pl.values()) ml += v;
  for (double v : ph.values()) mh += v;
  EXPECT_GT(mh, ml * 1.5);
}

TEST(PowerDb, DescriptionMentionsCircuitAndSize) {
  auto nl = mpe::gen::parity_tree(8, 2, "ptree");
  mpe::sim::CyclePowerEvaluator eval(nl);
  const vec::UniformPairGenerator gen(nl.num_inputs());
  vec::PowerDbOptions opt;
  opt.population_size = 50;
  mpe::Rng rng(3);
  const auto pop = vec::build_power_database(gen, eval, opt, rng);
  EXPECT_NE(pop.description().find("ptree"), std::string::npos);
  EXPECT_NE(pop.description().find("50"), std::string::npos);
}

TEST(PowerDb, ContractChecks) {
  auto nl = mpe::gen::parity_tree(8, 2);
  mpe::sim::CyclePowerEvaluator eval(nl);
  const vec::UniformPairGenerator gen(nl.num_inputs());
  vec::PowerDbOptions opt;
  opt.population_size = 0;
  mpe::Rng rng(4);
  EXPECT_THROW(vec::build_power_database(gen, eval, opt, rng),
               mpe::ContractViolation);
}

}  // namespace
