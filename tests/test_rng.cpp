#include "util/rng.hpp"

#include <gtest/gtest.h>

#include "util/contracts.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace {

using mpe::Rng;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.5);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.5);
  }
}

TEST(Rng, BelowIsUnbiasedAcrossSmallModulus) {
  Rng rng(11);
  std::vector<int> counts(7, 0);
  const int draws = 140000;
  for (int i = 0; i < draws; ++i) {
    ++counts[rng.below(7)];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), draws / 7.0, 5.0 * std::sqrt(draws / 7.0));
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusiveBounds) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.range(-2, 3);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all six values hit
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(draws), 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerate) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(23);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sum2 += z * z;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(Rng, NormalWithParams) {
  Rng rng(29);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, ExponentialMeanIsOne) {
  Rng rng(31);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double e = rng.exponential();
    ASSERT_GE(e, 0.0);
    sum += e;
  }
  EXPECT_NEAR(sum / n, 1.0, 0.02);
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(37);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, JumpChangesSequence) {
  Rng a(41), b(41);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, RejectsInvalidArguments) {
  Rng rng(1);
  EXPECT_THROW(rng.below(0), mpe::ContractViolation);
  EXPECT_THROW(rng.bernoulli(1.5), mpe::ContractViolation);
  EXPECT_THROW(rng.uniform(2.0, 1.0), mpe::ContractViolation);
  EXPECT_THROW(rng.range(3, 2), mpe::ContractViolation);
}

class RngChiSquare : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngChiSquare, ByteHistogramLooksUniform) {
  Rng rng(GetParam());
  std::vector<int> counts(256, 0);
  const int draws = 65536;
  for (int i = 0; i < draws / 8; ++i) {
    auto x = rng();
    for (int b = 0; b < 8; ++b) {
      ++counts[(x >> (8 * b)) & 0xff];
    }
  }
  const double expected = draws / 256.0;
  double chi2 = 0.0;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // 255 dof: mean 255, sd ~22.6. Allow +/- 6 sigma.
  EXPECT_GT(chi2, 255.0 - 6 * 22.6);
  EXPECT_LT(chi2, 255.0 + 6 * 22.6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngChiSquare,
                         ::testing::Values(1, 12345, 0xdeadbeef, 987654321));

}  // namespace
