#include "circuit/prob_analysis.hpp"

#include <gtest/gtest.h>

#include "circuit/analysis.hpp"
#include "gen/trees.hpp"
#include "maxpower/bounds.hpp"
#include "sim/zero_delay_sim.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

namespace ckt = mpe::circuit;

TEST(ProbAnalysis, BasicGateProbabilities) {
  ckt::Netlist nl("g");
  nl.add_input("a");
  nl.add_input("b");
  nl.add_gate(ckt::GateType::kAnd, "and_o", {"a", "b"});
  nl.add_gate(ckt::GateType::kOr, "or_o", {"a", "b"});
  nl.add_gate(ckt::GateType::kXor, "xor_o", {"a", "b"});
  nl.add_gate(ckt::GateType::kNand, "nand_o", {"a", "b"});
  nl.finalize();
  const auto r = ckt::propagate_probabilities(nl, 0.5, 0.5);
  EXPECT_NEAR(r.signal_prob[*nl.find("and_o")], 0.25, 1e-12);
  EXPECT_NEAR(r.signal_prob[*nl.find("or_o")], 0.75, 1e-12);
  EXPECT_NEAR(r.signal_prob[*nl.find("xor_o")], 0.5, 1e-12);
  EXPECT_NEAR(r.signal_prob[*nl.find("nand_o")], 0.75, 1e-12);
}

TEST(ProbAnalysis, BiasedInputs) {
  ckt::Netlist nl("g");
  nl.add_input("a");
  nl.add_input("b");
  nl.add_gate(ckt::GateType::kAnd, "z", {"a", "b"});
  nl.finalize();
  const std::vector<double> p1 = {0.9, 0.2};
  const std::vector<double> tg = {0.1, 0.3};
  const auto r = ckt::propagate_probabilities(nl, p1, tg);
  EXPECT_NEAR(r.signal_prob[*nl.find("z")], 0.18, 1e-12);
  // D(z) = p_b * D(a) + p_a * D(b) = 0.2*0.1 + 0.9*0.3 = 0.29.
  EXPECT_NEAR(r.toggle_prob[*nl.find("z")], 0.29, 1e-12);
}

TEST(ProbAnalysis, XorPropagatesFullDensity) {
  auto nl = mpe::gen::parity_tree(8, 2);
  const auto r = ckt::propagate_probabilities(nl, 0.5, 0.4);
  // Every XOR is sensitized to every input: density adds then saturates.
  EXPECT_NEAR(r.toggle_prob[*nl.find("parity")], 1.0, 1e-12);
}

TEST(ProbAnalysis, MatchesMonteCarloOnTree) {
  // On a fanout-free tree the independence assumption is exact: analytic
  // signal probabilities must match Monte-Carlo tightly.
  ckt::Netlist nl("tree");
  nl.add_input("a");
  nl.add_input("b");
  nl.add_input("c");
  nl.add_input("d");
  nl.add_gate(ckt::GateType::kAnd, "t1", {"a", "b"});
  nl.add_gate(ckt::GateType::kOr, "t2", {"c", "d"});
  nl.add_gate(ckt::GateType::kNand, "root", {"t1", "t2"});
  nl.finalize();

  const auto analytic = ckt::propagate_probabilities(nl, 0.5, 0.5);
  mpe::Rng rng(7);
  const auto mc = ckt::estimate_activity(nl, 60000, 0.5, 0.5, rng);
  for (const char* sig : {"t1", "t2", "root"}) {
    const auto n = *nl.find(sig);
    EXPECT_NEAR(analytic.signal_prob[n], mc.signal_prob[n], 0.01) << sig;
  }
}

TEST(ProbAnalysis, DensityOvercountsCoincidentToggles) {
  // The gate-local density sums per-input sensitized toggles, so cycles in
  // which several inputs switch together are counted once per input — the
  // analytic figure sits at or above the Monte-Carlo truth (the classic
  // bias of transition-density propagation), but within the coincidence
  // probability of it.
  ckt::Netlist nl("t2");
  nl.add_input("a");
  nl.add_input("b");
  nl.add_gate(ckt::GateType::kAnd, "z", {"a", "b"});
  nl.finalize();
  const auto analytic = ckt::propagate_probabilities(nl, 0.5, 0.3);
  mpe::Rng rng(9);
  const auto mc = ckt::estimate_activity(nl, 80000, 0.5, 0.3, rng);
  const auto z = *nl.find("z");
  EXPECT_GE(analytic.toggle_prob[z], mc.toggle_prob[z] - 0.01);
  // Over-count is bounded by the both-toggle probability 0.3 * 0.3.
  EXPECT_LE(analytic.toggle_prob[z], mc.toggle_prob[z] + 0.09 + 0.01);
}

TEST(ProbAnalysis, ContractChecks) {
  auto nl = mpe::gen::parity_tree(4, 2);
  const std::vector<double> wrong = {0.5};
  const std::vector<double> ok(nl.num_inputs(), 0.5);
  EXPECT_THROW(ckt::propagate_probabilities(nl, wrong, ok),
               mpe::ContractViolation);
  const std::vector<double> bad(nl.num_inputs(), 1.5);
  EXPECT_THROW(ckt::propagate_probabilities(nl, bad, ok),
               mpe::ContractViolation);
}

TEST(PowerBounds, BracketsSimulatedPower) {
  auto nl = mpe::gen::parity_tree(12, 2);
  const mpe::sim::Technology tech;
  const auto b = mpe::maxpower::power_bounds(nl, tech);
  EXPECT_GT(b.zero_delay_upper_mw, b.analytic_average_mw);
  EXPECT_GT(b.analytic_average_mw, 0.0);

  // The zero-delay upper bound must dominate every simulated zero-delay
  // cycle power.
  mpe::sim::ZeroDelaySimulator sim(nl, tech);
  mpe::Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    std::vector<std::uint8_t> v1(nl.num_inputs()), v2(nl.num_inputs());
    for (auto& x : v1) x = rng.bernoulli(0.5);
    for (auto& x : v2) x = rng.bernoulli(0.5);
    EXPECT_LE(sim.evaluate(v1, v2).power_mw,
              b.zero_delay_upper_mw + 1e-9);
  }
}

}  // namespace
