#include "gen/trees.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "circuit/analysis.hpp"
#include "util/contracts.hpp"

namespace {

namespace ckt = mpe::circuit;
namespace gen = mpe::gen;

TEST(ParityTree, ComputesParityExhaustive) {
  auto nl = gen::parity_tree(6, 2);
  for (int mask = 0; mask < 64; ++mask) {
    std::vector<std::uint8_t> in(6);
    int pop = 0;
    for (int i = 0; i < 6; ++i) {
      in[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>((mask >> i) & 1);
      pop += (mask >> i) & 1;
    }
    const auto values = ckt::evaluate(nl, in);
    EXPECT_EQ(values[*nl.find("parity")], pop & 1) << mask;
  }
}

TEST(ParityTree, WideFaninVariant) {
  auto nl = gen::parity_tree(9, 3);
  std::vector<std::uint8_t> in(9, 1);
  auto values = ckt::evaluate(nl, in);
  EXPECT_EQ(values[*nl.find("parity")], 1);  // 9 ones: odd
  in[0] = 0;
  values = ckt::evaluate(nl, in);
  EXPECT_EQ(values[*nl.find("parity")], 0);
}

TEST(ParityTree, DepthShrinksWithWiderFanin) {
  const auto narrow = gen::parity_tree(32, 2, "p2");
  const auto wide = gen::parity_tree(32, 4, "p4");
  EXPECT_GT(narrow.depth(), wide.depth());
}

TEST(Decoder, OneHotExhaustive) {
  auto nl = gen::decoder(3);
  for (std::uint64_t code = 0; code < 8; ++code) {
    std::vector<std::uint8_t> in(nl.num_inputs(), 0);
    // Inputs are s0, s1, s2, en in declaration order.
    for (int i = 0; i < 3; ++i) {
      in[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>((code >> i) & 1);
    }
    in[3] = 1;  // enable
    const auto values = ckt::evaluate(nl, in);
    for (std::uint64_t o = 0; o < 8; ++o) {
      EXPECT_EQ(values[*nl.find("y" + std::to_string(o))],
                o == code ? 1 : 0)
          << "code=" << code << " out=" << o;
    }
  }
}

TEST(Decoder, DisabledMeansAllZero) {
  auto nl = gen::decoder(2);
  std::vector<std::uint8_t> in(nl.num_inputs(), 0);
  in[0] = 1;  // s0 = 1 but en = 0
  const auto values = ckt::evaluate(nl, in);
  for (int o = 0; o < 4; ++o) {
    EXPECT_EQ(values[*nl.find("y" + std::to_string(o))], 0);
  }
}

TEST(MuxTree, SelectsCorrectDataLine) {
  auto nl = gen::mux_tree(3);
  // Inputs: d0..d7 then s0..s2.
  for (std::uint64_t sel = 0; sel < 8; ++sel) {
    for (std::uint64_t hot = 0; hot < 8; ++hot) {
      std::vector<std::uint8_t> in(nl.num_inputs(), 0);
      in[hot] = 1;
      for (int i = 0; i < 3; ++i) {
        in[8 + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>((sel >> i) & 1);
      }
      const auto values = ckt::evaluate(nl, in);
      EXPECT_EQ(values[*nl.find("y")], sel == hot ? 1 : 0)
          << "sel=" << sel << " hot=" << hot;
    }
  }
}

TEST(Trees, ContractChecks) {
  EXPECT_THROW(gen::parity_tree(1), mpe::ContractViolation);
  EXPECT_THROW(gen::decoder(0), mpe::ContractViolation);
  EXPECT_THROW(gen::decoder(11), mpe::ContractViolation);
  EXPECT_THROW(gen::mux_tree(0), mpe::ContractViolation);
}

}  // namespace
