#include "gen/datapath.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "circuit/analysis.hpp"
#include "gen/arithmetic.hpp"
#include "util/rng.hpp"

namespace {

namespace ckt = mpe::circuit;
namespace gen = mpe::gen;

void pack(const ckt::Netlist& nl, std::vector<std::uint8_t>& in,
          const std::string& prefix, std::uint64_t value, std::size_t bits) {
  const auto& inputs = nl.inputs();
  for (std::size_t i = 0; i < bits; ++i) {
    auto found = nl.find(prefix + std::to_string(i));
    if (!found && bits == 1) found = nl.find(prefix);
    ASSERT_TRUE(found.has_value()) << prefix << i;
    for (std::size_t k = 0; k < inputs.size(); ++k) {
      if (inputs[k] == *found) {
        in[k] = static_cast<std::uint8_t>((value >> i) & 1);
      }
    }
  }
}

std::uint64_t unpack(const ckt::Netlist& nl,
                     const std::vector<std::uint8_t>& values,
                     const std::string& prefix, std::size_t bits) {
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < bits; ++i) {
    out |= static_cast<std::uint64_t>(values[*nl.find(prefix + std::to_string(i))])
           << i;
  }
  return out;
}

class AdderArchitectures
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(AdderArchitectures, MatchesIntegerAddition) {
  const auto [arch, bits] = GetParam();
  ckt::Netlist nl =
      arch == 0   ? gen::carry_select_adder(bits)
      : arch == 1 ? gen::carry_lookahead_adder(bits)
                  : gen::ripple_carry_adder(bits);
  mpe::Rng rng(static_cast<std::uint64_t>(arch * 100 + bits));
  const std::uint64_t mask =
      bits >= 64 ? ~0ull : ((1ull << bits) - 1);
  for (int t = 0; t < 150; ++t) {
    const std::uint64_t a = rng.below(mask + 1);
    const std::uint64_t b = rng.below(mask + 1);
    const std::uint64_t cin = rng.below(2);
    std::vector<std::uint8_t> in(nl.num_inputs(), 0);
    pack(nl, in, "a", a, bits);
    pack(nl, in, "b", b, bits);
    pack(nl, in, "cin", cin, 1);
    if (::testing::Test::HasFatalFailure()) return;
    const auto values = ckt::evaluate(nl, in);
    const std::uint64_t sum = unpack(nl, values, "s", bits);
    const std::uint64_t cout = values[*nl.find("cout")];
    EXPECT_EQ(sum + (cout << bits), a + b + cin)
        << "arch=" << arch << " " << a << "+" << b << "+" << cin;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AdderArchitectures,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Values<std::size_t>(1, 4, 7, 16, 32)));

TEST(CarrySelectAdder, ExhaustiveFourBit) {
  auto nl = gen::carry_select_adder(4, 2);
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      for (std::uint64_t cin = 0; cin < 2; ++cin) {
        std::vector<std::uint8_t> in(nl.num_inputs(), 0);
        pack(nl, in, "a", a, 4);
        pack(nl, in, "b", b, 4);
        pack(nl, in, "cin", cin, 1);
        const auto values = ckt::evaluate(nl, in);
        const std::uint64_t sum = unpack(nl, values, "s", 4);
        const std::uint64_t cout = values[*nl.find("cout")];
        EXPECT_EQ(sum + (cout << 4), a + b + cin);
      }
    }
  }
}

TEST(CarryLookaheadAdder, ExhaustiveFiveBit) {
  // 5 bits spans a lookahead block boundary (4 + 1).
  auto nl = gen::carry_lookahead_adder(5);
  for (std::uint64_t a = 0; a < 32; ++a) {
    for (std::uint64_t b = 0; b < 32; ++b) {
      std::vector<std::uint8_t> in(nl.num_inputs(), 0);
      pack(nl, in, "a", a, 5);
      pack(nl, in, "b", b, 5);
      pack(nl, in, "cin", 1, 1);
      const auto values = ckt::evaluate(nl, in);
      const std::uint64_t sum = unpack(nl, values, "s", 5);
      const std::uint64_t cout = values[*nl.find("cout")];
      EXPECT_EQ(sum + (cout << 5), a + b + 1);
    }
  }
}

TEST(WallaceMultiplier, ExhaustiveFourBit) {
  auto nl = gen::wallace_multiplier(4);
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      std::vector<std::uint8_t> in(nl.num_inputs(), 0);
      pack(nl, in, "a", a, 4);
      pack(nl, in, "b", b, 4);
      const auto values = ckt::evaluate(nl, in);
      EXPECT_EQ(unpack(nl, values, "p", 8), a * b) << a << "*" << b;
    }
  }
}

TEST(WallaceMultiplier, RandomTwelveBitMatchesArray) {
  auto wallace = gen::wallace_multiplier(12);
  auto array = gen::array_multiplier(12);
  mpe::Rng rng(3);
  for (int t = 0; t < 60; ++t) {
    const std::uint64_t a = rng.below(1ull << 12);
    const std::uint64_t b = rng.below(1ull << 12);
    std::vector<std::uint8_t> in(wallace.num_inputs(), 0);
    pack(wallace, in, "a", a, 12);
    pack(wallace, in, "b", b, 12);
    const auto values = ckt::evaluate(wallace, in);
    EXPECT_EQ(unpack(wallace, values, "p", 24), a * b);
  }
  // The compression tree is logarithmic but the final carry-propagate stage
  // is a ripple adder, so overall depth is comparable to (not radically
  // below) the array structure; it must at least be in the same class.
  EXPECT_LT(wallace.depth(), 1.5 * static_cast<double>(array.depth()));
  EXPECT_GT(wallace.num_gates(), array.num_gates() / 2);
}

TEST(BarrelShifter, RotatesAllAmounts) {
  auto nl = gen::barrel_shifter(3);  // 8-bit rotator
  for (std::uint64_t rot = 0; rot < 8; ++rot) {
    for (std::uint64_t hot = 0; hot < 8; ++hot) {
      std::vector<std::uint8_t> in(nl.num_inputs(), 0);
      pack(nl, in, "d", 1ull << hot, 8);
      pack(nl, in, "s", rot, 3);
      const auto values = ckt::evaluate(nl, in);
      const std::uint64_t out = unpack(nl, values, "y", 8);
      EXPECT_EQ(out, 1ull << ((hot + rot) % 8))
          << "rot=" << rot << " hot=" << hot;
    }
  }
}

TEST(PriorityEncoder, HighestBitWins) {
  auto nl = gen::priority_encoder(8);
  for (std::uint64_t req = 0; req < 256; ++req) {
    std::vector<std::uint8_t> in(nl.num_inputs(), 0);
    pack(nl, in, "r", req, 8);
    const auto values = ckt::evaluate(nl, in);
    const std::uint64_t y = unpack(nl, values, "y", 3);
    const std::uint64_t valid = values[*nl.find("valid")];
    if (req == 0) {
      EXPECT_EQ(valid, 0u);
    } else {
      EXPECT_EQ(valid, 1u);
      std::uint64_t expect = 0;
      for (int i = 7; i >= 0; --i) {
        if ((req >> i) & 1) {
          expect = static_cast<std::uint64_t>(i);
          break;
        }
      }
      EXPECT_EQ(y, expect) << "req=" << req;
    }
  }
}

TEST(GrayCode, RoundTripThroughBothConverters) {
  auto b2g = gen::bin_to_gray(6);
  auto g2b = gen::gray_to_bin(6);
  for (std::uint64_t v = 0; v < 64; ++v) {
    std::vector<std::uint8_t> in(b2g.num_inputs(), 0);
    pack(b2g, in, "b", v, 6);
    const auto gv = ckt::evaluate(b2g, in);
    const std::uint64_t gray = unpack(b2g, gv, "g", 6);
    EXPECT_EQ(gray, v ^ (v >> 1)) << v;

    std::vector<std::uint8_t> gin(g2b.num_inputs(), 0);
    pack(g2b, gin, "g", gray, 6);
    const auto bv = ckt::evaluate(g2b, gin);
    EXPECT_EQ(unpack(g2b, bv, "b", 6), v) << v;
  }
}

TEST(GrayCode, AdjacentCodesDifferInOneBit) {
  auto b2g = gen::bin_to_gray(5);
  std::uint64_t prev_gray = 0;
  for (std::uint64_t v = 0; v < 32; ++v) {
    std::vector<std::uint8_t> in(b2g.num_inputs(), 0);
    pack(b2g, in, "b", v, 5);
    const auto values = ckt::evaluate(b2g, in);
    const std::uint64_t gray = unpack(b2g, values, "g", 5);
    if (v > 0) {
      EXPECT_EQ(__builtin_popcountll(gray ^ prev_gray), 1) << v;
    }
    prev_gray = gray;
  }
}

}  // namespace
