#include "maxpower/srs.hpp"

#include <gtest/gtest.h>

#include "maxpower/theory.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"
#include "vectors/population.hpp"

namespace {

namespace mp = mpe::maxpower;

mpe::vec::FinitePopulation uniform_population(std::size_t size,
                                              std::uint64_t seed) {
  mpe::Rng rng(seed);
  std::vector<double> vals(size);
  for (auto& v : vals) v = rng.uniform();
  return mpe::vec::FinitePopulation(std::move(vals), "uniform");
}

TEST(Srs, EstimateIsMaxOfSample) {
  mpe::vec::FinitePopulation pop({1.0, 2.0, 3.0}, "tiny");
  mpe::Rng rng(1);
  const auto r = mp::srs_estimate(pop, 200, rng);
  EXPECT_DOUBLE_EQ(r.estimate, 3.0);  // 200 draws from 3 values: hits the max
  EXPECT_EQ(r.units_used, 200u);
}

TEST(Srs, NeverExceedsTrueMax) {
  auto pop = uniform_population(10000, 2);
  mpe::Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_LE(mp::srs_estimate(pop, 100, rng).estimate, pop.true_max());
  }
}

TEST(Srs, MoreUnitsGetCloserOnAverage) {
  auto pop = uniform_population(100000, 4);
  mpe::Rng rng(5);
  double small_sum = 0.0, large_sum = 0.0;
  const int reps = 40;
  for (int i = 0; i < reps; ++i) {
    small_sum += mp::srs_estimate(pop, 50, rng).estimate;
    large_sum += mp::srs_estimate(pop, 5000, rng).estimate;
  }
  EXPECT_GT(large_sum / reps, small_sum / reps);
  EXPECT_NEAR(large_sum / reps, 1.0, 0.01);
}

TEST(Srs, HitRateMatchesTheoryPrediction) {
  // Uniform population: qualified fraction for eps=5% is ~0.05. With x =
  // srs_required_units(0.05, 0.9) units the hit rate should be ~90%.
  auto pop = uniform_population(100000, 6);
  const double y = pop.qualified_fraction(0.05);
  const auto x = static_cast<std::size_t>(mp::srs_required_units(y, 0.9));
  mpe::Rng rng(7);
  int hits = 0;
  const int reps = 300;
  for (int i = 0; i < reps; ++i) {
    const auto r = mp::srs_estimate(pop, x, rng);
    if (r.estimate >= 0.95 * pop.true_max()) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(reps), 0.9, 0.06);
}

TEST(Srs, SingleUnitDegenerates) {
  auto pop = uniform_population(1000, 8);
  mpe::Rng rng(9);
  const auto r = mp::srs_estimate(pop, 1, rng);
  EXPECT_EQ(r.units_used, 1u);
  EXPECT_GE(r.estimate, 0.0);
  EXPECT_LE(r.estimate, 1.0);
}

TEST(Srs, ContractChecks) {
  auto pop = uniform_population(100, 10);
  mpe::Rng rng(11);
  EXPECT_THROW(mp::srs_estimate(pop, 0, rng), mpe::ContractViolation);
}

}  // namespace
