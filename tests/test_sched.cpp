// Property tests for the shared scheduling substrate (src/sched/): the
// lease table invariants both control planes rely on — no double-grant to
// the same holder, the holder cap is never exceeded, adoption is
// idempotent, budgets are monotonic — and the admission queue's fairness
// and bookkeeping contracts.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "sched/admission.hpp"
#include "sched/lease.hpp"
#include "util/rng.hpp"

namespace mpe::sched {
namespace {

using std::chrono::milliseconds;

constexpr Clock::time_point kT0 = Clock::time_point{} + std::chrono::hours(1);

Clock::time_point at(std::int64_t ms) { return kT0 + milliseconds(ms); }

LeasePolicy exclusive_policy() {
  LeasePolicy policy;
  policy.lease = milliseconds(1000);
  policy.max_assignments = 3;
  policy.max_holders = 1;
  policy.reassign.initial_backoff = milliseconds(100);
  policy.reassign.multiplier = 2.0;
  policy.reassign.max_backoff = milliseconds(800);
  policy.reassign.jitter = 0.0;
  return policy;
}

LeasePolicy speculative_policy() {
  LeasePolicy policy = exclusive_policy();
  policy.max_holders = 2;
  policy.max_assignments = 6;
  policy.straggler_after = milliseconds(1500);
  return policy;
}

TEST(LeaseTest, GrantMakesHolderAndCountsAssignment) {
  const LeasePolicy policy = exclusive_policy();
  Lease lease;
  EXPECT_TRUE(grantable(lease, kT0));
  grant(lease, policy, "w1", kT0);
  EXPECT_EQ(lease.phase, LeasePhase::kLeased);
  ASSERT_EQ(lease.holders.size(), 1u);
  EXPECT_EQ(lease.holders[0].id, "w1");
  EXPECT_EQ(lease.holders[0].expiry, at(1000));
  EXPECT_EQ(lease.leased_since, kT0);
  EXPECT_EQ(lease.assignments, 1u);
  EXPECT_TRUE(holds(lease, "w1"));
  EXPECT_FALSE(holds(lease, "w2"));
  EXPECT_FALSE(grantable(lease, at(1)));
}

TEST(LeaseTest, HeartbeatRenewsKnownHolder) {
  const LeasePolicy policy = exclusive_policy();
  Lease lease;
  grant(lease, policy, "w1", kT0);
  EXPECT_EQ(heartbeat(lease, policy, "w1", at(400)),
            HeartbeatVerdict::kRenewed);
  ASSERT_EQ(lease.holders.size(), 1u);
  EXPECT_EQ(lease.holders[0].expiry, at(1400));
  // Renewal is not an assignment: the budget only burns on grants.
  EXPECT_EQ(lease.assignments, 1u);
}

TEST(LeaseTest, HeartbeatAdoptionIsIdempotent) {
  const LeasePolicy policy = exclusive_policy();
  Lease lease;  // restarted scheduler: pristine table, worker mid-flight
  EXPECT_EQ(heartbeat(lease, policy, "w1", at(100)),
            HeartbeatVerdict::kAdopted);
  EXPECT_EQ(lease.phase, LeasePhase::kLeased);
  EXPECT_EQ(lease.assignments, 1u);
  ASSERT_EQ(lease.holders.size(), 1u);
  // The same worker heartbeating again must renew, never re-adopt: holder
  // count and assignment budget stay put no matter how often it beats.
  for (int beat = 0; beat < 5; ++beat) {
    EXPECT_EQ(heartbeat(lease, policy, "w1", at(200 + beat)),
              HeartbeatVerdict::kRenewed);
    EXPECT_EQ(lease.holders.size(), 1u);
    EXPECT_EQ(lease.assignments, 1u);
  }
}

TEST(LeaseTest, HolderCapRejectsExtraClaimants) {
  const LeasePolicy policy = exclusive_policy();
  Lease lease;
  grant(lease, policy, "w1", kT0);
  // Exclusive lease: a second worker claiming it is stale, not adopted.
  EXPECT_EQ(heartbeat(lease, policy, "w2", at(100)),
            HeartbeatVerdict::kRejected);
  EXPECT_EQ(lease.holders.size(), 1u);
  EXPECT_FALSE(holds(lease, "w2"));
}

TEST(LeaseTest, DoneLeaseRejectsEveryHeartbeat) {
  const LeasePolicy policy = exclusive_policy();
  Lease lease;
  grant(lease, policy, "w1", kT0);
  complete(lease);
  EXPECT_EQ(lease.phase, LeasePhase::kDone);
  EXPECT_TRUE(lease.holders.empty());
  EXPECT_EQ(heartbeat(lease, policy, "w1", at(100)),
            HeartbeatVerdict::kRejected);
  EXPECT_EQ(heartbeat(lease, policy, "w2", at(100)),
            HeartbeatVerdict::kRejected);
  EXPECT_TRUE(lease.holders.empty());
}

TEST(LeaseTest, ExpiryReleasesUnderBackoffThenExhausts) {
  const LeasePolicy policy = exclusive_policy();  // max_assignments = 3
  Lease lease;
  Rng jitter(7);

  grant(lease, policy, "w1", kT0);
  EXPECT_EQ(expire(lease, policy, at(999), jitter), ExpiryVerdict::kNone);
  EXPECT_EQ(expire(lease, policy, at(1000), jitter),
            ExpiryVerdict::kReleased);
  EXPECT_EQ(lease.phase, LeasePhase::kPending);
  // backoff_delay(attempt=1) = initial * multiplier^0 = 100ms, no jitter.
  EXPECT_EQ(lease.earliest_grant, at(1100));
  EXPECT_FALSE(grantable(lease, at(1099)));
  EXPECT_TRUE(grantable(lease, at(1100)));

  grant(lease, policy, "w2", at(1100));
  EXPECT_EQ(expire(lease, policy, at(2100), jitter),
            ExpiryVerdict::kReleased);
  EXPECT_EQ(lease.earliest_grant, at(2300));  // attempt 2 -> 200ms

  grant(lease, policy, "w3", at(2300));
  EXPECT_EQ(lease.assignments, 3u);
  // Third silent holder: the budget is burned; the lease is NOT re-pooled.
  EXPECT_EQ(expire(lease, policy, at(3300), jitter),
            ExpiryVerdict::kExhausted);
  EXPECT_TRUE(lease.holders.empty());
  EXPECT_EQ(lease.phase, LeasePhase::kLeased);  // owner settles it
}

TEST(LeaseTest, ExpiryKeepsLiveSpeculativeHolder) {
  const LeasePolicy policy = speculative_policy();
  Lease lease;
  Rng jitter(7);
  grant(lease, policy, "w1", kT0);
  grant(lease, policy, "w2", at(500));  // straggler re-issue
  // w1's claim lapses at t+1000 but w2 is live until t+1500: the lease
  // stays leased with exactly the surviving holder.
  EXPECT_EQ(expire(lease, policy, at(1200), jitter), ExpiryVerdict::kNone);
  ASSERT_EQ(lease.holders.size(), 1u);
  EXPECT_EQ(lease.holders[0].id, "w2");
}

TEST(LeaseTest, GracefulReleaseSkipsBackoff) {
  const LeasePolicy policy = exclusive_policy();
  Lease lease;
  Rng jitter(7);
  grant(lease, policy, "w1", kT0);
  release(lease, policy, at(300), /*count_backoff=*/false, jitter);
  EXPECT_EQ(lease.phase, LeasePhase::kPending);
  EXPECT_TRUE(lease.holders.empty());
  EXPECT_TRUE(grantable(lease, at(300)));
  // Budget still counts the spent grant.
  EXPECT_EQ(lease.assignments, 1u);
}

TEST(LeaseTest, BackoffJitterDrawsExactlyOnce) {
  LeasePolicy policy = exclusive_policy();
  policy.reassign.jitter = 0.1;
  Lease lease;
  grant(lease, policy, "w1", kT0);

  Rng jitter(42);
  Rng probe(42);
  release(lease, policy, at(1000), /*count_backoff=*/true, jitter);
  // The decision-sequence contract: a backoff-counted release consumes
  // exactly one uniform draw when jitter > 0 (and the goldens depend on
  // it). Advance a probe stream by one draw and require convergence.
  probe.uniform();
  EXPECT_EQ(jitter(), probe());
}

TEST(LeaseTest, StragglerEligibility) {
  const LeasePolicy policy = speculative_policy();  // straggler_after 1500ms
  Lease lease;
  grant(lease, policy, "w1", kT0);

  // Too young.
  EXPECT_FALSE(straggler_eligible(lease, policy, "w2", at(1499)));
  // Old enough, idle second worker: eligible.
  EXPECT_TRUE(straggler_eligible(lease, policy, "w2", at(1500)));
  // Never races itself.
  EXPECT_FALSE(straggler_eligible(lease, policy, "w1", at(1500)));

  grant(lease, policy, "w2", at(1500));
  // Holder cap reached: a third worker is not eligible.
  EXPECT_FALSE(straggler_eligible(lease, policy, "w3", at(2000)));
  EXPECT_EQ(lease.holders.size(), 2u);
}

TEST(LeaseTest, StragglerAfterDefaultsToTwiceLease) {
  LeasePolicy policy = exclusive_policy();
  policy.straggler_after = milliseconds(0);
  EXPECT_EQ(policy.effective_straggler_after(), milliseconds(2000));
  policy.straggler_after = milliseconds(700);
  EXPECT_EQ(policy.effective_straggler_after(), milliseconds(700));
}

TEST(LeaseTest, DropHolderSettlesOneClaim) {
  const LeasePolicy policy = speculative_policy();
  Lease lease;
  grant(lease, policy, "w1", kT0);
  grant(lease, policy, "w2", at(100));
  drop_holder(lease, "w1");
  ASSERT_EQ(lease.holders.size(), 1u);
  EXPECT_EQ(lease.holders[0].id, "w2");
  drop_holder(lease, "w1");  // idempotent
  EXPECT_EQ(lease.holders.size(), 1u);
}

// Randomized invariant sweep: whatever interleaving of grants, heartbeats,
// expiries, releases and completions a scheduler produces, the table never
// double-grants one holder, never exceeds the holder cap, and never counts
// assignments down.
TEST(LeaseTest, RandomizedInvariants) {
  const std::vector<std::string> workers = {"w1", "w2", "w3", "w4"};
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    LeasePolicy policy = exclusive_policy();
    policy.max_holders = 1 + seed % 3;
    policy.max_assignments = 4 + seed % 5;
    policy.reassign.jitter = (seed % 2 == 0) ? 0.1 : 0.0;
    Rng rng(stream_seed(0xC0FFEE, seed));
    Rng jitter(stream_seed(0xBACC0FF, seed));
    Lease lease;
    std::int64_t now_ms = 0;
    std::size_t last_assignments = 0;
    for (int step = 0; step < 400; ++step) {
      now_ms += static_cast<std::int64_t>(rng.below(400));
      const Clock::time_point now = at(now_ms);
      const std::string& worker = workers[rng.below(workers.size())];
      switch (rng.below(6)) {
        case 0:
          if (grantable(lease, now) &&
              lease.assignments < policy.max_assignments) {
            grant(lease, policy, worker, now);
          }
          break;
        case 1:
          heartbeat(lease, policy, worker, now);
          break;
        case 2:
          expire(lease, policy, now, jitter);
          break;
        case 3:
          drop_holder(lease, worker);
          if (lease.phase == LeasePhase::kLeased && lease.holders.empty()) {
            release(lease, policy, now, rng.bernoulli(0.5), jitter);
          }
          break;
        case 4:
          if (lease.phase == LeasePhase::kLeased &&
              straggler_eligible(lease, policy, worker, now)) {
            grant(lease, policy, worker, now);
          }
          break;
        case 5:
          if (rng.bernoulli(0.02)) complete(lease);
          break;
      }

      // Invariant: holder ids are unique (no double-grant).
      std::set<std::string> ids;
      for (const LeaseHolder& h : lease.holders) {
        EXPECT_TRUE(ids.insert(h.id).second)
            << "double-granted holder " << h.id << " seed " << seed
            << " step " << step;
      }
      // Invariant: the holder cap is never exceeded.
      EXPECT_LE(lease.holders.size(), policy.max_holders)
          << "seed " << seed << " step " << step;
      // Invariant: assignments are monotonic and holders imply leased.
      EXPECT_GE(lease.assignments, last_assignments);
      last_assignments = lease.assignments;
      if (!lease.holders.empty()) {
        EXPECT_EQ(lease.phase, LeasePhase::kLeased);
      }
      if (lease.phase == LeasePhase::kDone) {
        EXPECT_TRUE(lease.holders.empty());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Admission queue.

TEST(AdmissionTest, ResolveDeadlineBudget) {
  const milliseconds kNone(0);
  // Explicit request passes through.
  EXPECT_EQ(resolve_deadline_budget(milliseconds(5000), milliseconds(60000),
                                    milliseconds(120000)),
            milliseconds(5000));
  // No request -> fallback.
  EXPECT_EQ(resolve_deadline_budget(kNone, milliseconds(60000),
                                    milliseconds(120000)),
            milliseconds(60000));
  // Over the cap -> clamped.
  EXPECT_EQ(resolve_deadline_budget(milliseconds(999999), milliseconds(60000),
                                    milliseconds(120000)),
            milliseconds(120000));
  // "Unlimited" (no request, no fallback) still hits the cap.
  EXPECT_EQ(resolve_deadline_budget(kNone, kNone, milliseconds(120000)),
            milliseconds(120000));
  // No cap at all: unlimited stays unlimited.
  EXPECT_EQ(resolve_deadline_budget(kNone, kNone, kNone), kNone);
}

TEST(AdmissionTest, RoundRobinIsFairAcrossClients) {
  AdmissionQueue<int> q({.max_queued_per_client = 8, .max_queued_total = 64});
  q.add_client(1);
  q.add_client(2);
  q.add_client(3);
  for (int i = 0; i < 3; ++i) q.enqueue(1, 100 + i);  // greedy client
  q.enqueue(2, 200);
  q.enqueue(3, 300);

  std::vector<int> order;
  while (auto job = q.next()) order.push_back(*job);
  // Client 1 cannot starve 2 and 3: one grant each per revolution.
  EXPECT_EQ(order, (std::vector<int>{100, 200, 300, 101, 102}));
  EXPECT_EQ(q.queued_total(), 0u);
}

TEST(AdmissionTest, CursorResumesPastLastGrant) {
  AdmissionQueue<int> q({.max_queued_per_client = 8, .max_queued_total = 64});
  q.add_client(1);
  q.add_client(2);
  q.enqueue(1, 10);
  EXPECT_EQ(q.next(), std::optional<int>(10));  // cursor now past client 1
  q.enqueue(1, 11);
  q.enqueue(2, 20);
  // Fairness: client 2 goes first even though 1 enqueued first.
  EXPECT_EQ(q.next(), std::optional<int>(20));
  EXPECT_EQ(q.next(), std::optional<int>(11));
}

TEST(AdmissionTest, CapsRejectBeforeEnqueue) {
  AdmissionQueue<int> q({.max_queued_per_client = 2, .max_queued_total = 3});
  q.add_client(1);
  q.add_client(2);
  q.enqueue(1, 10);
  q.enqueue(1, 11);
  EXPECT_TRUE(q.full(1));   // per-client cap
  EXPECT_FALSE(q.full(2));
  q.enqueue(2, 20);
  EXPECT_TRUE(q.full(2));   // total cap now binds every client
  EXPECT_EQ(q.queued_total(), 3u);
}

TEST(AdmissionTest, ZeroLimitsClampToOne) {
  AdmissionQueue<int> q({.max_queued_per_client = 0, .max_queued_total = 0});
  EXPECT_EQ(q.limits().max_queued_per_client, 1u);
  EXPECT_EQ(q.limits().max_queued_total, 1u);
}

TEST(AdmissionTest, RemoveClientKeepsCursorOnSurvivors) {
  AdmissionQueue<int> q({.max_queued_per_client = 8, .max_queued_total = 64});
  q.add_client(1);
  q.add_client(2);
  q.add_client(3);
  q.enqueue(1, 10);
  q.enqueue(2, 20);
  q.enqueue(3, 30);
  EXPECT_EQ(q.next(), std::optional<int>(10));  // cursor at client 2
  // Client 1 (before the cursor) leaves: the cursor must still point at 2.
  const auto dropped = q.remove_client(1);
  EXPECT_TRUE(dropped.empty());
  EXPECT_EQ(q.next(), std::optional<int>(20));
  EXPECT_EQ(q.next(), std::optional<int>(30));
}

TEST(AdmissionTest, RemoveClientReturnsQueuedJobs) {
  AdmissionQueue<int> q({.max_queued_per_client = 8, .max_queued_total = 64});
  q.add_client(1);
  q.add_client(2);
  q.enqueue(1, 10);
  q.enqueue(1, 11);
  q.enqueue(2, 20);
  const auto dropped = q.remove_client(1);
  ASSERT_EQ(dropped.size(), 2u);
  EXPECT_EQ(dropped[0], 10);
  EXPECT_EQ(dropped[1], 11);
  EXPECT_EQ(q.queued_total(), 1u);
  EXPECT_EQ(q.next(), std::optional<int>(20));
  // Unknown client: no-op.
  EXPECT_TRUE(q.remove_client(99).empty());
}

TEST(AdmissionTest, RemoveOneTargetsFirstMatchOnly) {
  AdmissionQueue<int> q({.max_queued_per_client = 8, .max_queued_total = 64});
  q.add_client(1);
  q.enqueue(1, 10);
  q.enqueue(1, 20);
  q.enqueue(1, 20);
  const auto removed = q.remove_one(1, [](int job) { return job == 20; });
  EXPECT_EQ(removed, std::optional<int>(20));
  EXPECT_EQ(q.queued_total(), 2u);
  // FIFO order of the rest is untouched: 10 then the second 20.
  EXPECT_EQ(q.next(), std::optional<int>(10));
  EXPECT_EQ(q.next(), std::optional<int>(20));
  EXPECT_EQ(q.remove_one(1, [](int) { return true; }), std::nullopt);
}

TEST(AdmissionTest, SweepVisitsClientOrderFifoWithin) {
  AdmissionQueue<int> q({.max_queued_per_client = 8, .max_queued_total = 64});
  q.add_client(3);
  q.add_client(1);
  q.add_client(2);
  q.enqueue(3, 31);
  q.enqueue(1, 11);
  q.enqueue(1, 12);
  q.enqueue(2, 21);
  const auto removed = q.sweep([](int job) { return job != 21; });
  // Client-id ascending, FIFO within: 11, 12, 31.
  EXPECT_EQ(removed, (std::vector<int>{11, 12, 31}));
  EXPECT_EQ(q.queued_total(), 1u);
  EXPECT_EQ(q.next(), std::optional<int>(21));
}

TEST(AdmissionTest, FlushClientEmptiesInFifoOrder) {
  AdmissionQueue<int> q({.max_queued_per_client = 8, .max_queued_total = 64});
  q.add_client(1);
  q.enqueue(1, 10);
  q.enqueue(1, 11);
  const auto flushed = q.flush_client(1);
  ASSERT_EQ(flushed.size(), 2u);
  EXPECT_EQ(flushed[0], 10);
  EXPECT_EQ(flushed[1], 11);
  EXPECT_EQ(q.queued_total(), 0u);
  const auto* view = q.queue(1);
  ASSERT_NE(view, nullptr);
  EXPECT_TRUE(view->empty());
  EXPECT_TRUE(q.flush_client(42).empty());
}

TEST(AdmissionTest, RandomizedBookkeeping) {
  // Whatever interleaving of enqueue/next/remove/sweep happens,
  // queued_total always equals the sum of queue depths and no grant ever
  // fabricates or loses a job.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(stream_seed(0xADA17, seed));
    AdmissionQueue<int> q(
        {.max_queued_per_client = 4, .max_queued_total = 12});
    std::vector<std::size_t> clients;
    int next_job = 0;
    std::size_t granted = 0, enqueued = 0, removed = 0;
    for (int step = 0; step < 500; ++step) {
      switch (rng.below(5)) {
        case 0: {
          const std::size_t id = 1 + rng.below(6);
          if (std::find(clients.begin(), clients.end(), id) ==
              clients.end()) {
            q.add_client(id);
            clients.push_back(id);
          }
          break;
        }
        case 1:
          if (!clients.empty()) {
            const std::size_t id = clients[rng.below(clients.size())];
            if (!q.full(id)) {
              q.enqueue(id, next_job++);
              ++enqueued;
            }
          }
          break;
        case 2:
          if (q.next()) ++granted;
          break;
        case 3:
          if (!clients.empty() && rng.bernoulli(0.2)) {
            const std::size_t idx = rng.below(clients.size());
            removed += q.remove_client(clients[idx]).size();
            clients.erase(clients.begin() +
                          static_cast<std::ptrdiff_t>(idx));
          }
          break;
        case 4:
          if (rng.bernoulli(0.1)) {
            removed += q.sweep([&](int job) {
                          return job % 7 == static_cast<int>(seed % 7);
                        }).size();
          }
          break;
      }
      std::size_t depth_sum = 0;
      for (const std::size_t id : clients) {
        if (const auto* view = q.queue(id)) depth_sum += view->size();
      }
      EXPECT_EQ(depth_sum, q.queued_total())
          << "seed " << seed << " step " << step;
      EXPECT_EQ(enqueued, granted + removed + q.queued_total())
          << "seed " << seed << " step " << step;
    }
  }
}

}  // namespace
}  // namespace mpe::sched
