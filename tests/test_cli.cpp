#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using mpe::Cli;

Cli make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, ParsesSpaceSeparatedValues) {
  const Cli cli = make({"--pop", "40000", "--runs", "25"});
  EXPECT_EQ(cli.get_int("pop", 0), 40000);
  EXPECT_EQ(cli.get_int("runs", 0), 25);
}

TEST(Cli, ParsesEqualsForm) {
  const Cli cli = make({"--epsilon=0.05", "--name=c3540"});
  EXPECT_DOUBLE_EQ(cli.get_double("epsilon", 0.0), 0.05);
  EXPECT_EQ(cli.get("name", ""), "c3540");
}

TEST(Cli, BareFlagActsAsBoolean) {
  const Cli cli = make({"--verbose"});
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_EQ(cli.get("verbose", ""), "1");
}

TEST(Cli, FallbacksUsedWhenAbsent) {
  const Cli cli = make({});
  EXPECT_EQ(cli.get_int("pop", 123), 123);
  EXPECT_DOUBLE_EQ(cli.get_double("eps", 0.5), 0.5);
  EXPECT_EQ(cli.get("name", "dflt"), "dflt");
  EXPECT_FALSE(cli.has("anything"));
}

TEST(Cli, NegativeNumbersAsValues) {
  const Cli cli = make({"--shift=-3"});
  EXPECT_EQ(cli.get_int("shift", 0), -3);
}

TEST(Cli, RejectsMalformedNumbers) {
  const Cli cli = make({"--pop", "12x"});
  EXPECT_THROW(cli.get_int("pop", 0), std::invalid_argument);
  const Cli cli2 = make({"--eps", "0.5y"});
  EXPECT_THROW(cli2.get_double("eps", 0.0), std::invalid_argument);
}

TEST(Cli, RejectsPositionalArguments) {
  EXPECT_THROW(make({"positional"}), std::invalid_argument);
}

TEST(Cli, CheckKnownFlagsUnknown) {
  const Cli cli = make({"--pop", "10", "--typo", "1"});
  EXPECT_THROW(cli.check_known({"pop"}), std::invalid_argument);
  EXPECT_NO_THROW(cli.check_known({"pop", "typo"}));
}

}  // namespace
