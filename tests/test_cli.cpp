#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/status.hpp"

namespace {

using mpe::Cli;
using mpe::Error;
using mpe::ErrorCode;

Cli make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, ParsesSpaceSeparatedValues) {
  const Cli cli = make({"--pop", "40000", "--runs", "25"});
  EXPECT_EQ(cli.get_int("pop", 0), 40000);
  EXPECT_EQ(cli.get_int("runs", 0), 25);
}

TEST(Cli, ParsesEqualsForm) {
  const Cli cli = make({"--epsilon=0.05", "--name=c3540"});
  EXPECT_DOUBLE_EQ(cli.get_double("epsilon", 0.0), 0.05);
  EXPECT_EQ(cli.get("name", ""), "c3540");
}

TEST(Cli, BareFlagActsAsBoolean) {
  const Cli cli = make({"--verbose"});
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_EQ(cli.get("verbose", ""), "1");
}

TEST(Cli, FallbacksUsedWhenAbsent) {
  const Cli cli = make({});
  EXPECT_EQ(cli.get_int("pop", 123), 123);
  EXPECT_DOUBLE_EQ(cli.get_double("eps", 0.5), 0.5);
  EXPECT_EQ(cli.get("name", "dflt"), "dflt");
  EXPECT_FALSE(cli.has("anything"));
}

TEST(Cli, NegativeNumbersAsValues) {
  const Cli cli = make({"--shift=-3"});
  EXPECT_EQ(cli.get_int("shift", 0), -3);
}

TEST(Cli, RejectsMalformedNumbers) {
  const Cli cli = make({"--pop", "12x"});
  EXPECT_THROW(cli.get_int("pop", 0), Error);
  const Cli cli2 = make({"--eps", "0.5y"});
  EXPECT_THROW(cli2.get_double("eps", 0.0), Error);
}

TEST(Cli, RejectsPositionalArguments) {
  EXPECT_THROW(make({"positional"}), Error);
}

TEST(Cli, CheckKnownFlagsUnknown) {
  const Cli cli = make({"--pop", "10", "--typo", "1"});
  EXPECT_THROW(cli.check_known({"pop"}), Error);
  EXPECT_NO_THROW(cli.check_known({"pop", "typo"}));
}

TEST(Cli, UsageErrorsCarryTypedCodeAndContext) {
  try {
    make({"--pop", "12x"}).get_int("pop", 0);
    FAIL() << "expected mpe::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUsage);
    EXPECT_EQ(mpe::exit_code(e.code()), 2);
    EXPECT_NE(e.context().find("value=12x"), std::string::npos) << e.context();
  }
}

TEST(Cli, ErrorsRemainRuntimeErrors) {
  // Typed errors stay catchable through the legacy std::runtime_error net.
  EXPECT_THROW(make({"oops"}), std::runtime_error);
}

}  // namespace
