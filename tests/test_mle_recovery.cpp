// Statistical self-validation of fit_weibull_mle: across a 50-seed sweep of
// synthetic reversed-Weibull samples with known (alpha, beta, mu), the fit
// must recover the true parameters within tolerance bands that tighten as
// the sample size m grows (root-m consistency, coarsely).
//
// The bands were calibrated empirically against this exact generator and
// seed set (median / worst-case errors measured, then given ~2x headroom),
// so the suite is deterministic: same seeds, same draws, same fits.
#include "evt/weibull_mle.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "maxpower/hyper_sample.hpp"
#include "stats/weibull.hpp"
#include "util/rng.hpp"

namespace {

constexpr double kAlpha = 3.0;
constexpr double kBeta = 1.0;
constexpr double kMu = 10.0;
constexpr std::uint64_t kSeeds = 50;

struct SweepErrors {
  std::vector<double> mu_abs;
  std::vector<double> alpha_abs;
  std::size_t nonconverged = 0;

  double median_mu() const { return median(mu_abs); }
  double median_alpha() const { return median(alpha_abs); }
  double max_mu() const {
    return *std::max_element(mu_abs.begin(), mu_abs.end());
  }

  static double median(std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  }
};

SweepErrors run_sweep(std::size_t m) {
  const mpe::stats::ReversedWeibull g(kAlpha, kBeta, kMu);
  SweepErrors errors;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    mpe::Rng rng(seed);
    std::vector<double> sample(m);
    for (auto& v : sample) v = g.sample(rng);
    const auto fit =
        mpe::evt::fit_weibull_mle(sample, mpe::maxpower::raw_mle_options());
    if (!fit.converged) ++errors.nonconverged;
    errors.mu_abs.push_back(std::fabs(fit.params.mu - kMu));
    errors.alpha_abs.push_back(std::fabs(fit.params.alpha - kAlpha));
  }
  return errors;
}

// Measured medians: m=50 -> 0.148, m=200 -> 0.056, m=800 -> 0.033; worst
// cases 0.34 / 0.24 / 0.13. Bands sit ~2x above those.
TEST(MleRecovery, EndpointWithinTighteningBands) {
  const SweepErrors e50 = run_sweep(50);
  const SweepErrors e200 = run_sweep(200);
  const SweepErrors e800 = run_sweep(800);

  EXPECT_LT(e50.median_mu(), 0.30);
  EXPECT_LT(e200.median_mu(), 0.12);
  EXPECT_LT(e800.median_mu(), 0.07);

  EXPECT_LT(e50.max_mu(), 0.70);
  EXPECT_LT(e200.max_mu(), 0.50);
  EXPECT_LT(e800.max_mu(), 0.30);

  // The bands must actually tighten, not just pass individually.
  EXPECT_LT(e800.median_mu(), e200.median_mu());
  EXPECT_LT(e200.median_mu(), e50.median_mu());
}

// Measured medians: m=50 -> 0.52, m=200 -> 0.19, m=800 -> 0.10.
TEST(MleRecovery, ShapeWithinTighteningBands) {
  const SweepErrors e50 = run_sweep(50);
  const SweepErrors e200 = run_sweep(200);
  const SweepErrors e800 = run_sweep(800);

  EXPECT_LT(e50.median_alpha(), 1.00);
  EXPECT_LT(e200.median_alpha(), 0.45);
  EXPECT_LT(e800.median_alpha(), 0.25);

  EXPECT_LT(e800.median_alpha(), e200.median_alpha());
  EXPECT_LT(e200.median_alpha(), e50.median_alpha());
}

TEST(MleRecovery, AllFitsConvergeOnCleanSamples) {
  for (std::size_t m : {50u, 200u, 800u}) {
    EXPECT_EQ(run_sweep(m).nonconverged, 0u) << "m = " << m;
  }
}

// Smith's regularity condition alpha > 2 holds at the true shape 3.0; the
// fits must land on the regular side too, or downstream confidence theory
// would silently not apply to these samples.
TEST(MleRecovery, FittedShapeSatisfiesSmithCondition) {
  for (std::size_t m : {200u, 800u}) {
    const mpe::stats::ReversedWeibull g(kAlpha, kBeta, kMu);
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      mpe::Rng rng(seed);
      std::vector<double> sample(m);
      for (auto& v : sample) v = g.sample(rng);
      const auto fit = mpe::evt::fit_weibull_mle(
          sample, mpe::maxpower::raw_mle_options());
      EXPECT_FALSE(fit.alpha_below_two) << "m = " << m << " seed = " << seed;
    }
  }
}

}  // namespace
