#include "vectors/input_vector.hpp"

#include <gtest/gtest.h>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

namespace vec = mpe::vec;

TEST(InputVector, RandomVectorHasRightWidth) {
  mpe::Rng rng(1);
  const auto v = vec::random_vector(37, rng);
  EXPECT_EQ(v.size(), 37u);
  for (auto b : v) EXPECT_LE(b, 1);
}

TEST(InputVector, RandomVectorBalanced) {
  mpe::Rng rng(2);
  std::size_t ones = 0;
  const int reps = 2000;
  for (int i = 0; i < reps; ++i) {
    for (auto b : vec::random_vector(10, rng)) ones += b;
  }
  EXPECT_NEAR(ones / (10.0 * reps), 0.5, 0.02);
}

TEST(InputVector, BiasedVectorMatchesP1) {
  mpe::Rng rng(3);
  std::size_t ones = 0;
  const int reps = 3000;
  for (int i = 0; i < reps; ++i) {
    for (auto b : vec::biased_vector(10, 0.2, rng)) ones += b;
  }
  EXPECT_NEAR(ones / (10.0 * reps), 0.2, 0.02);
}

TEST(InputVector, FlipProbabilityControlsHamming) {
  mpe::Rng rng(4);
  const auto base = vec::random_vector(50, rng);
  std::size_t flips = 0;
  const int reps = 2000;
  for (int i = 0; i < reps; ++i) {
    const auto flipped = vec::flip_with_probability(base, 0.3, rng);
    vec::VectorPair p{base, flipped};
    flips += p.hamming();
  }
  EXPECT_NEAR(flips / (50.0 * reps), 0.3, 0.02);
}

TEST(InputVector, FlipZeroAndOneDegenerate) {
  mpe::Rng rng(5);
  const auto base = vec::random_vector(16, rng);
  const auto same = vec::flip_with_probability(base, 0.0, rng);
  EXPECT_EQ(same, base);
  const auto all = vec::flip_with_probability(base, 1.0, rng);
  vec::VectorPair p{base, all};
  EXPECT_EQ(p.hamming(), 16u);
  EXPECT_DOUBLE_EQ(p.activity(), 1.0);
}

TEST(VectorPair, HammingAndActivity) {
  vec::VectorPair p;
  p.first = {0, 0, 1, 1};
  p.second = {0, 1, 1, 0};
  EXPECT_EQ(p.hamming(), 2u);
  EXPECT_DOUBLE_EQ(p.activity(), 0.5);
}

TEST(VectorPair, MismatchedWidthsRejected) {
  vec::VectorPair p;
  p.first = {0, 1};
  p.second = {0};
  EXPECT_THROW(p.hamming(), mpe::ContractViolation);
}

TEST(InputVector, ContractsOnArgs) {
  mpe::Rng rng(6);
  EXPECT_THROW(vec::random_vector(0, rng), mpe::ContractViolation);
  EXPECT_THROW(vec::biased_vector(4, 1.5, rng), mpe::ContractViolation);
  const vec::InputVector base = {0, 1};
  EXPECT_THROW(vec::flip_with_probability(base, -0.1, rng),
               mpe::ContractViolation);
}

}  // namespace
