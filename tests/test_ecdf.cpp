#include "stats/ecdf.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/contracts.hpp"

namespace {

using mpe::stats::Ecdf;

TEST(Ecdf, StepFunctionValues) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const Ecdf f(xs);
  EXPECT_DOUBLE_EQ(f(0.5), 0.0);
  EXPECT_DOUBLE_EQ(f(1.0), 0.25);  // right-continuous: includes the point
  EXPECT_DOUBLE_EQ(f(2.5), 0.5);
  EXPECT_DOUBLE_EQ(f(4.0), 1.0);
  EXPECT_DOUBLE_EQ(f(100.0), 1.0);
}

TEST(Ecdf, HandlesDuplicates) {
  const std::vector<double> xs = {2.0, 2.0, 2.0, 5.0};
  const Ecdf f(xs);
  EXPECT_DOUBLE_EQ(f(2.0), 0.75);
  EXPECT_DOUBLE_EQ(f(1.9), 0.0);
}

TEST(Ecdf, QuantileInvertsStep) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0, 50.0};
  const Ecdf f(xs);
  EXPECT_DOUBLE_EQ(f.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(f.quantile(0.2), 10.0);
  EXPECT_DOUBLE_EQ(f.quantile(0.21), 20.0);
  EXPECT_DOUBLE_EQ(f.quantile(1.0), 50.0);
}

TEST(Ecdf, SortedAccessor) {
  const std::vector<double> xs = {3.0, 1.0, 2.0};
  const Ecdf f(xs);
  EXPECT_EQ(f.sorted(), (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(f.size(), 3u);
}

TEST(Ecdf, GridSpansRangeAndIsMonotone) {
  const std::vector<double> xs = {0.0, 1.0, 2.0, 3.0, 10.0};
  const Ecdf f(xs);
  const auto g = f.grid(11);
  ASSERT_EQ(g.size(), 11u);
  EXPECT_DOUBLE_EQ(g.front().first, 0.0);
  EXPECT_DOUBLE_EQ(g.back().first, 10.0);
  EXPECT_DOUBLE_EQ(g.back().second, 1.0);
  for (std::size_t i = 1; i < g.size(); ++i) {
    EXPECT_GE(g[i].second, g[i - 1].second);
  }
}

TEST(Ecdf, RejectsEmptyAndBadArgs) {
  EXPECT_THROW(Ecdf(std::vector<double>{}), mpe::ContractViolation);
  const Ecdf f(std::vector<double>{1.0});
  EXPECT_THROW(f.quantile(-0.1), mpe::ContractViolation);
  EXPECT_THROW(f.grid(1), mpe::ContractViolation);
}

}  // namespace
