#include "stats/weibull.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

using mpe::stats::ReversedWeibull;
using mpe::stats::WeibullParams;

TEST(ReversedWeibull, CdfBasicShape) {
  const ReversedWeibull g(2.0, 1.0, 10.0);
  EXPECT_DOUBLE_EQ(g.cdf(10.0), 1.0);
  EXPECT_DOUBLE_EQ(g.cdf(11.0), 1.0);
  EXPECT_NEAR(g.cdf(9.0), std::exp(-1.0), 1e-15);
  EXPECT_NEAR(g.cdf(8.0), std::exp(-4.0), 1e-15);
  EXPECT_GT(g.cdf(9.5), g.cdf(9.0));
}

TEST(ReversedWeibull, PdfZeroAboveEndpoint) {
  const ReversedWeibull g(3.0, 0.5, 1.0);
  EXPECT_DOUBLE_EQ(g.pdf(1.0), 0.0);
  EXPECT_DOUBLE_EQ(g.pdf(2.0), 0.0);
  EXPECT_GT(g.pdf(0.5), 0.0);
}

TEST(ReversedWeibull, PdfIsCdfDerivative) {
  const ReversedWeibull g(3.5, 2.0, 5.0);
  const double h = 1e-6;
  for (double x : {2.0, 3.0, 4.0, 4.8}) {
    const double numeric = (g.cdf(x + h) - g.cdf(x - h)) / (2.0 * h);
    EXPECT_NEAR(g.pdf(x), numeric, 1e-5) << "x=" << x;
  }
}

TEST(ReversedWeibull, LogPdfConsistent) {
  const ReversedWeibull g(2.5, 1.5, 3.0);
  for (double x : {0.0, 1.0, 2.0, 2.9}) {
    EXPECT_NEAR(g.log_pdf(x), std::log(g.pdf(x)), 1e-10);
  }
  EXPECT_TRUE(std::isinf(g.log_pdf(3.0)));
}

TEST(ReversedWeibull, QuantileRoundTrip) {
  const ReversedWeibull g(4.0, 0.7, 2.0);
  for (double q : {0.01, 0.1, 0.5, 0.9, 0.999}) {
    EXPECT_NEAR(g.cdf(g.quantile(q)), q, 1e-12);
  }
  EXPECT_DOUBLE_EQ(g.quantile(1.0), 2.0);  // endpoint
}

TEST(ReversedWeibull, QuantileOneIsMu) {
  for (double mu : {-5.0, 0.0, 17.5}) {
    const ReversedWeibull g(3.0, 1.0, mu);
    EXPECT_DOUBLE_EQ(g.quantile(1.0), mu);
  }
}

TEST(ReversedWeibull, MeanVarianceAgainstSamples) {
  const ReversedWeibull g(3.0, 2.0, 10.0);
  mpe::Rng rng(4242);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = g.sample(rng);
    ASSERT_LE(x, 10.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, g.mean(), 0.005);
  EXPECT_NEAR(var, g.variance(), 0.005);
}

TEST(ReversedWeibull, SigmaMatchesBeta) {
  const ReversedWeibull g(2.0, 4.0, 0.0);
  // sigma = beta^{-1/alpha} = 4^{-1/2} = 0.5.
  EXPECT_NEAR(g.sigma(), 0.5, 1e-15);
}

TEST(ReversedWeibull, RejectsBadParams) {
  EXPECT_THROW(ReversedWeibull(0.0, 1.0, 0.0), mpe::ContractViolation);
  EXPECT_THROW(ReversedWeibull(1.0, 0.0, 0.0), mpe::ContractViolation);
  const ReversedWeibull g(2.0, 1.0, 0.0);
  EXPECT_THROW(g.quantile(0.0), mpe::ContractViolation);
  EXPECT_THROW(g.quantile(1.1), mpe::ContractViolation);
}

struct WeibullCase {
  double alpha, beta, mu;
};

class WeibullSampleCdf : public ::testing::TestWithParam<WeibullCase> {};

TEST_P(WeibullSampleCdf, EmpiricalCdfMatchesAnalytic) {
  const auto c = GetParam();
  const ReversedWeibull g(c.alpha, c.beta, c.mu);
  mpe::Rng rng(777);
  const int n = 50000;
  std::vector<double> xs(n);
  for (auto& x : xs) x = g.sample(rng);
  std::sort(xs.begin(), xs.end());
  // Check a few quantiles.
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    const double emp = xs[static_cast<std::size_t>(q * n)];
    const double theo = g.quantile(q);
    const double scale = g.sigma();
    EXPECT_NEAR(emp, theo, 0.05 * scale + 1e-9) << "q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Params, WeibullSampleCdf,
    ::testing::Values(WeibullCase{2.5, 1.0, 0.0}, WeibullCase{3.0, 0.1, 5.0},
                      WeibullCase{8.0, 2.0, -1.0},
                      WeibullCase{1.5, 4.0, 100.0}));

}  // namespace
