// Randomized round-trip properties across the interchange formats: any
// generated netlist must survive bench -> verilog -> bench conversion with
// its function intact, and the two simulators must agree on it. This is the
// closest thing to a fuzzer the deterministic test suite runs.
// The binary population format gets the same treatment: truncations,
// bit flips, and poisoned payloads must all surface as typed mpe::Error
// throws from the load path, never a crash or a huge allocation.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

#include "circuit/analysis.hpp"
#include "circuit/bench_io.hpp"
#include "circuit/verilog_io.hpp"
#include "gen/random_dag.hpp"
#include "sim/event_sim.hpp"
#include "sim/zero_delay_sim.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"
#include "vectors/population.hpp"
#include "vectors/serialize.hpp"

namespace {

namespace ckt = mpe::circuit;

class RoundTripFuzz : public ::testing::TestWithParam<std::uint64_t> {};

mpe::gen::RandomDagParams params_for(std::uint64_t seed) {
  mpe::gen::RandomDagParams p;
  p.name = "fuzz" + std::to_string(seed);
  mpe::Rng rng(seed);
  p.num_inputs = 4 + rng.below(24);
  p.num_outputs = 1 + rng.below(8);
  p.num_gates = std::max<std::size_t>(
      30 + rng.below(250), p.num_inputs / 3 + 2);
  p.max_fanin = 2 + rng.below(3);
  p.unary_fraction = rng.uniform(0.0, 0.3);
  p.locality = rng.uniform(0.0, 0.95);
  return p;
}

TEST_P(RoundTripFuzz, BenchToVerilogToBenchPreservesFunction) {
  mpe::Rng gen_rng(GetParam());
  auto p = params_for(GetParam());
  auto original = mpe::gen::random_dag(p, gen_rng);

  // bench -> netlist -> verilog -> netlist.
  const auto as_bench = ckt::write_bench_string(original);
  auto from_bench = ckt::read_bench_string(as_bench, p.name);
  const auto as_verilog = ckt::write_verilog_string(from_bench);
  auto from_verilog = ckt::read_verilog_string(as_verilog);

  ASSERT_EQ(from_verilog.num_inputs(), original.num_inputs());
  ASSERT_EQ(from_verilog.num_outputs(), original.num_outputs());
  ASSERT_EQ(from_verilog.num_gates(), original.num_gates());

  mpe::Rng vec_rng(GetParam() ^ 0xabcdef);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint8_t> in(original.num_inputs());
    for (auto& b : in) b = vec_rng.bernoulli(0.5) ? 1 : 0;
    const auto v1 = ckt::evaluate(original, in);
    const auto v2 = ckt::evaluate(from_verilog, in);
    for (std::size_t o = 0; o < original.outputs().size(); ++o) {
      ASSERT_EQ(v1[original.outputs()[o]], v2[from_verilog.outputs()[o]])
          << "seed=" << GetParam() << " trial=" << trial << " output " << o;
    }
  }
}

TEST_P(RoundTripFuzz, EventAndZeroDelaySimulatorsAgree) {
  mpe::Rng gen_rng(GetParam() + 1000);
  auto p = params_for(GetParam() + 1000);
  auto nl = mpe::gen::random_dag(p, gen_rng);

  mpe::sim::EventSimOptions eo;
  eo.delay_model = mpe::sim::DelayModel::kZero;
  mpe::sim::EventSimulator ev(nl, eo);
  mpe::sim::ZeroDelaySimulator zd(nl, mpe::sim::Technology{});

  mpe::Rng vec_rng(GetParam() ^ 0x123456);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<std::uint8_t> v1(nl.num_inputs()), v2(nl.num_inputs());
    for (auto& b : v1) b = vec_rng.bernoulli(0.5) ? 1 : 0;
    for (auto& b : v2) b = vec_rng.bernoulli(0.5) ? 1 : 0;
    const auto a = ev.evaluate(v1, v2);
    const auto b = zd.evaluate(v1, v2);
    ASSERT_EQ(a.toggles, b.toggles) << "seed=" << GetParam();
    ASSERT_NEAR(a.energy_pj, b.energy_pj, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

// --- Population serialization fuzz ------------------------------------------

namespace vec = mpe::vec;

std::string healthy_blob(std::size_t count, std::uint64_t seed) {
  mpe::Rng rng(seed);
  std::vector<double> vals(count);
  for (auto& v : vals) v = rng.uniform(0.5, 20.0);
  const vec::FinitePopulation pop(std::move(vals), "fuzz population");
  std::ostringstream out(std::ios::binary);
  vec::save_population(out, pop);
  return out.str();
}

TEST(SerializeFuzz, HealthyRoundTripSurvives) {
  const std::string blob = healthy_blob(64, 2024);
  std::istringstream in(blob, std::ios::binary);
  const auto pop = vec::load_population(in);
  EXPECT_EQ(pop.size(), 64u);
  EXPECT_EQ(pop.description(), "fuzz population");
}

TEST(SerializeFuzz, EveryTruncationThrowsTypedError) {
  const std::string blob = healthy_blob(16, 7);
  // Cutting off exactly the 8-byte integrity trailer produces a valid
  // legacy (pre-trailer) file, which must still load; every other prefix
  // must be rejected with a typed error.
  const std::size_t legacy_len = blob.size() - 8;
  for (std::size_t len = 0; len < blob.size(); ++len) {
    std::istringstream in(blob.substr(0, len), std::ios::binary);
    if (len == legacy_len) {
      const auto pop = vec::load_population(in);
      EXPECT_EQ(pop.size(), 16u);
      continue;
    }
    try {
      vec::load_population(in);
      FAIL() << "truncation at " << len << " bytes loaded successfully";
    } catch (const mpe::Error& e) {
      // Truncation surfaces as an I/O, bad-data, or corrupt-data error,
      // never internal.
      EXPECT_TRUE(e.code() == mpe::ErrorCode::kIo ||
                  e.code() == mpe::ErrorCode::kBadData ||
                  e.code() == mpe::ErrorCode::kParse ||
                  e.code() == mpe::ErrorCode::kCorruptData)
          << "len=" << len << " code=" << mpe::to_string(e.code());
    }
  }
}

TEST(SerializeFuzz, PayloadBitFlipCaughtByCrc) {
  const std::string blob = healthy_blob(16, 21);
  // Flip one bit inside a stored double. The value stays finite for almost
  // every flip, so without the CRC the load would silently succeed with a
  // wrong payload.
  const std::size_t desc_len = std::strlen("fuzz population");
  const std::size_t payload_off = 4 + 4 + 8 + desc_len + 8;
  ASSERT_LT(payload_off + 8, blob.size());
  std::string mutated = blob;
  mutated[payload_off + 3] = static_cast<char>(mutated[payload_off + 3] ^ 1);
  std::istringstream in(mutated, std::ios::binary);
  try {
    vec::load_population(in);
    FAIL() << "bit-flipped payload accepted";
  } catch (const mpe::Error& e) {
    // kBadData when the flip makes the double non-finite, kCorruptData
    // when the CRC catches it.
    EXPECT_TRUE(e.code() == mpe::ErrorCode::kCorruptData ||
                e.code() == mpe::ErrorCode::kBadData)
        << mpe::to_string(e.code());
  }
}

TEST(SerializeFuzz, HeaderBitFlipsNeverCrash) {
  const std::string blob = healthy_blob(16, 11);
  // Magic, version, desc_len, description, count: flip every bit of the
  // first 50 bytes. Each mutation must either load (payload-equivalent) or
  // throw a typed error.
  const std::size_t header_bytes = std::min<std::size_t>(50, blob.size());
  for (std::size_t byte = 0; byte < header_bytes; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = blob;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      std::istringstream in(mutated, std::ios::binary);
      try {
        vec::load_population(in);
      } catch (const mpe::Error&) {
        // Typed rejection is the expected outcome for most flips.
      }
      // Anything else escaping (bad_alloc, logic_error, segfault) fails the
      // test via the GTest uncaught-exception handler.
    }
  }
}

TEST(SerializeFuzz, ImplausibleCountRejectedBeforeAllocation) {
  std::string blob = healthy_blob(4, 3);
  // The count field sits right after the 4+4 byte magic/version, the 8-byte
  // desc_len and the description payload.
  const std::size_t desc_len = std::strlen("fuzz population");
  const std::size_t count_off = 4 + 4 + 8 + desc_len;
  ASSERT_LT(count_off + 8, blob.size());
  const std::uint64_t huge = std::uint64_t{1} << 60;
  for (int i = 0; i < 8; ++i) {
    blob[count_off + i] = static_cast<char>((huge >> (8 * i)) & 0xff);
  }
  std::istringstream in(blob, std::ios::binary);
  try {
    vec::load_population(in);
    FAIL() << "lying count accepted";
  } catch (const mpe::Error& e) {
    EXPECT_EQ(e.code(), mpe::ErrorCode::kBadData);
  }
}

TEST(SerializeFuzz, NanPayloadRejectedOnLoad) {
  std::string blob = healthy_blob(4, 5);
  const std::size_t desc_len = std::strlen("fuzz population");
  const std::size_t payload_off = 4 + 4 + 8 + desc_len + 8;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::uint64_t bits;
  std::memcpy(&bits, &nan, sizeof bits);
  for (int i = 0; i < 8; ++i) {
    blob[payload_off + 8 + i] = static_cast<char>((bits >> (8 * i)) & 0xff);
  }
  std::istringstream in(blob, std::ios::binary);
  try {
    vec::load_population(in);
    FAIL() << "NaN payload accepted";
  } catch (const mpe::Error& e) {
    EXPECT_EQ(e.code(), mpe::ErrorCode::kBadData);
    EXPECT_NE(e.context().find("index=1"), std::string::npos) << e.context();
  }
}

TEST(SerializeFuzz, SaveRejectsNonFiniteValues) {
  std::vector<double> vals = {1.0, std::numeric_limits<double>::infinity()};
  const vec::FinitePopulation pop(std::move(vals), "poisoned");
  std::ostringstream out(std::ios::binary);
  try {
    vec::save_population(out, pop);
    FAIL() << "non-finite value serialized";
  } catch (const mpe::Error& e) {
    EXPECT_EQ(e.code(), mpe::ErrorCode::kBadData);
  }
}

TEST(SerializeFuzz, WrongMagicIsParseError) {
  std::string blob = healthy_blob(4, 9);
  blob[0] = 'X';
  std::istringstream in(blob, std::ios::binary);
  try {
    vec::load_population(in);
    FAIL() << "bad magic accepted";
  } catch (const mpe::Error& e) {
    EXPECT_EQ(e.code(), mpe::ErrorCode::kParse);
  }
}

}  // namespace
