// Randomized round-trip properties across the interchange formats: any
// generated netlist must survive bench -> verilog -> bench conversion with
// its function intact, and the two simulators must agree on it. This is the
// closest thing to a fuzzer the deterministic test suite runs.
#include <gtest/gtest.h>

#include "circuit/analysis.hpp"
#include "circuit/bench_io.hpp"
#include "circuit/verilog_io.hpp"
#include "gen/random_dag.hpp"
#include "sim/event_sim.hpp"
#include "sim/zero_delay_sim.hpp"
#include "util/rng.hpp"

namespace {

namespace ckt = mpe::circuit;

class RoundTripFuzz : public ::testing::TestWithParam<std::uint64_t> {};

mpe::gen::RandomDagParams params_for(std::uint64_t seed) {
  mpe::gen::RandomDagParams p;
  p.name = "fuzz" + std::to_string(seed);
  mpe::Rng rng(seed);
  p.num_inputs = 4 + rng.below(24);
  p.num_outputs = 1 + rng.below(8);
  p.num_gates = std::max<std::size_t>(
      30 + rng.below(250), p.num_inputs / 3 + 2);
  p.max_fanin = 2 + rng.below(3);
  p.unary_fraction = rng.uniform(0.0, 0.3);
  p.locality = rng.uniform(0.0, 0.95);
  return p;
}

TEST_P(RoundTripFuzz, BenchToVerilogToBenchPreservesFunction) {
  mpe::Rng gen_rng(GetParam());
  auto p = params_for(GetParam());
  auto original = mpe::gen::random_dag(p, gen_rng);

  // bench -> netlist -> verilog -> netlist.
  const auto as_bench = ckt::write_bench_string(original);
  auto from_bench = ckt::read_bench_string(as_bench, p.name);
  const auto as_verilog = ckt::write_verilog_string(from_bench);
  auto from_verilog = ckt::read_verilog_string(as_verilog);

  ASSERT_EQ(from_verilog.num_inputs(), original.num_inputs());
  ASSERT_EQ(from_verilog.num_outputs(), original.num_outputs());
  ASSERT_EQ(from_verilog.num_gates(), original.num_gates());

  mpe::Rng vec_rng(GetParam() ^ 0xabcdef);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint8_t> in(original.num_inputs());
    for (auto& b : in) b = vec_rng.bernoulli(0.5) ? 1 : 0;
    const auto v1 = ckt::evaluate(original, in);
    const auto v2 = ckt::evaluate(from_verilog, in);
    for (std::size_t o = 0; o < original.outputs().size(); ++o) {
      ASSERT_EQ(v1[original.outputs()[o]], v2[from_verilog.outputs()[o]])
          << "seed=" << GetParam() << " trial=" << trial << " output " << o;
    }
  }
}

TEST_P(RoundTripFuzz, EventAndZeroDelaySimulatorsAgree) {
  mpe::Rng gen_rng(GetParam() + 1000);
  auto p = params_for(GetParam() + 1000);
  auto nl = mpe::gen::random_dag(p, gen_rng);

  mpe::sim::EventSimOptions eo;
  eo.delay_model = mpe::sim::DelayModel::kZero;
  mpe::sim::EventSimulator ev(nl, eo);
  mpe::sim::ZeroDelaySimulator zd(nl, mpe::sim::Technology{});

  mpe::Rng vec_rng(GetParam() ^ 0x123456);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<std::uint8_t> v1(nl.num_inputs()), v2(nl.num_inputs());
    for (auto& b : v1) b = vec_rng.bernoulli(0.5) ? 1 : 0;
    for (auto& b : v2) b = vec_rng.bernoulli(0.5) ? 1 : 0;
    const auto a = ev.evaluate(v1, v2);
    const auto b = zd.evaluate(v1, v2);
    ASSERT_EQ(a.toggles, b.toggles) << "seed=" << GetParam();
    ASSERT_NEAR(a.energy_pj, b.energy_pj, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
