#include <gtest/gtest.h>

#include <cmath>

#include "stats/frechet.hpp"
#include "stats/gumbel.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

using mpe::stats::Frechet;
using mpe::stats::Gumbel;

TEST(Gumbel, CdfKnownPoints) {
  const Gumbel g(0.0, 1.0);
  EXPECT_NEAR(g.cdf(0.0), std::exp(-1.0), 1e-15);
  EXPECT_NEAR(g.cdf(10.0), 1.0, 1e-4);
  EXPECT_LT(g.cdf(-3.0), 1e-8);
}

TEST(Gumbel, QuantileRoundTrip) {
  const Gumbel g(3.0, 2.0);
  for (double q : {0.01, 0.3, 0.5, 0.9, 0.999}) {
    EXPECT_NEAR(g.cdf(g.quantile(q)), q, 1e-12);
  }
}

TEST(Gumbel, MeanVarianceAgainstSamples) {
  const Gumbel g(1.0, 0.5);
  mpe::Rng rng(31337);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = g.sample(rng);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, g.mean(), 0.005);
  EXPECT_NEAR(sum2 / n - mean * mean, g.variance(), 0.01);
}

TEST(Gumbel, PdfMatchesDerivative) {
  const Gumbel g(-1.0, 1.5);
  const double h = 1e-6;
  for (double x : {-2.0, 0.0, 1.0, 4.0}) {
    EXPECT_NEAR(g.pdf(x), (g.cdf(x + h) - g.cdf(x - h)) / (2 * h), 1e-6);
  }
}

TEST(Gumbel, LogPdfConsistent) {
  const Gumbel g(0.0, 1.0);
  for (double x : {-1.0, 0.0, 2.0}) {
    EXPECT_NEAR(g.log_pdf(x), std::log(g.pdf(x)), 1e-12);
  }
}

TEST(Gumbel, RejectsBadScale) {
  EXPECT_THROW(Gumbel(0.0, 0.0), mpe::ContractViolation);
  EXPECT_THROW(Gumbel(0.0, -2.0), mpe::ContractViolation);
}

TEST(Frechet, CdfSupportsOnlyAboveLocation) {
  const Frechet f(2.0, 1.0, 5.0);
  EXPECT_DOUBLE_EQ(f.cdf(5.0), 0.0);
  EXPECT_DOUBLE_EQ(f.cdf(4.0), 0.0);
  EXPECT_NEAR(f.cdf(6.0), std::exp(-1.0), 1e-15);
  EXPECT_NEAR(f.cdf(1e6), 1.0, 1e-6);
}

TEST(Frechet, QuantileRoundTrip) {
  const Frechet f(3.0, 2.0, -1.0);
  for (double q : {0.05, 0.5, 0.95}) {
    EXPECT_NEAR(f.cdf(f.quantile(q)), q, 1e-12);
  }
}

TEST(Frechet, PdfMatchesDerivative) {
  const Frechet f(2.5, 1.0, 0.0);
  const double h = 1e-6;
  for (double x : {0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(f.pdf(x), (f.cdf(x + h) - f.cdf(x - h)) / (2 * h), 1e-6);
  }
}

TEST(Frechet, MeanRequiresAlphaAboveOne) {
  const Frechet ok(2.0, 1.0, 0.0);
  EXPECT_NEAR(ok.mean(), std::exp(std::lgamma(0.5)), 1e-10);  // Gamma(1/2)
  const Frechet heavy(0.8, 1.0, 0.0);
  EXPECT_THROW(heavy.mean(), mpe::ContractViolation);
}

TEST(Frechet, SamplesHeavyRightTail) {
  const Frechet f(1.5, 1.0, 0.0);
  mpe::Rng rng(555);
  int above10 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (f.sample(rng) > 10.0) ++above10;
  }
  // P(X > 10) = 1 - exp(-10^-1.5) ~ 0.0311.
  EXPECT_NEAR(above10 / static_cast<double>(n), 0.0311, 0.004);
}

TEST(Frechet, RejectsBadParams) {
  EXPECT_THROW(Frechet(0.0, 1.0), mpe::ContractViolation);
  EXPECT_THROW(Frechet(1.0, 0.0), mpe::ContractViolation);
}

}  // namespace
