#include "vectors/markov.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

namespace vec = mpe::vec;

TEST(MarkovGenerator, StationaryProbabilityFormula) {
  const vec::MarkovPairGenerator g(8, 0.2, 0.6);
  // p1 = p01 / (p01 + p10) = 0.25.
  EXPECT_NEAR(g.stationary_one(0), 0.25, 1e-12);
  // transition = (1-p1)*p01 + p1*p10 = 0.75*0.2 + 0.25*0.6 = 0.3.
  EXPECT_NEAR(g.transition_prob(0), 0.3, 1e-12);
}

TEST(MarkovGenerator, EmpiricalStationaryMatches) {
  const vec::MarkovPairGenerator g(20, 0.3, 0.1);
  mpe::Rng rng(1);
  double ones = 0.0, flips = 0.0;
  const int reps = 4000;
  for (int i = 0; i < reps; ++i) {
    const auto p = g.generate(rng);
    for (std::size_t j = 0; j < p.first.size(); ++j) {
      ones += p.first[j];
      flips += (p.first[j] != p.second[j]) ? 1.0 : 0.0;
    }
  }
  EXPECT_NEAR(ones / (20.0 * reps), 0.75, 0.01);  // 0.3/(0.3+0.1)
  EXPECT_NEAR(flips / (20.0 * reps), g.transition_prob(0), 0.01);
}

TEST(MarkovGenerator, PerLineParameters) {
  std::vector<double> p01 = {0.1, 0.9};
  std::vector<double> p10 = {0.1, 0.1};
  const vec::MarkovPairGenerator g(std::move(p01), std::move(p10));
  mpe::Rng rng(2);
  double ones0 = 0.0, ones1 = 0.0;
  const int reps = 5000;
  for (int i = 0; i < reps; ++i) {
    const auto p = g.generate(rng);
    ones0 += p.first[0];
    ones1 += p.first[1];
  }
  EXPECT_NEAR(ones0 / reps, 0.5, 0.02);
  EXPECT_NEAR(ones1 / reps, 0.9, 0.02);
}

TEST(MarkovGenerator, SymmetricChainMatchesTransitionProbGenerator) {
  // p01 = p10 = p gives the same pair statistics as the plain
  // transition-prob generator.
  const vec::MarkovPairGenerator markov(16, 0.4, 0.4);
  EXPECT_NEAR(markov.stationary_one(3), 0.5, 1e-12);
  EXPECT_NEAR(markov.transition_prob(3), 0.4, 1e-12);
}

TEST(MarkovGenerator, RejectsBadParameters) {
  EXPECT_THROW(vec::MarkovPairGenerator(4, 0.0, 0.0),
               mpe::ContractViolation);
  EXPECT_THROW(vec::MarkovPairGenerator(4, 1.5, 0.1),
               mpe::ContractViolation);
  EXPECT_THROW(vec::MarkovPairGenerator({0.5}, {0.5, 0.5}),
               mpe::ContractViolation);
}

TEST(CorrelatedGenerator, TransitionProbabilityFormula) {
  const vec::CorrelatedPairGenerator g({0, 0, 1, 1}, {0.5, 0.2}, 0.8);
  EXPECT_NEAR(g.transition_prob(0), 0.4, 1e-12);
  EXPECT_NEAR(g.transition_prob(2), 0.16, 1e-12);
  EXPECT_EQ(g.num_groups(), 2u);
  EXPECT_EQ(g.width(), 4u);
}

TEST(CorrelatedGenerator, EmpiricalTransitionRate) {
  const vec::CorrelatedPairGenerator g({0, 0, 0, 0}, {0.5}, 0.6);
  mpe::Rng rng(3);
  double flips = 0.0;
  const int reps = 10000;
  for (int i = 0; i < reps; ++i) {
    const auto p = g.generate(rng);
    for (std::size_t j = 0; j < 4; ++j) {
      flips += (p.first[j] != p.second[j]) ? 1.0 : 0.0;
    }
  }
  EXPECT_NEAR(flips / (4.0 * reps), 0.3, 0.01);
}

TEST(CorrelatedGenerator, WithinGroupTransitionsCorrelate) {
  // Two lines in the same group must flip together far more often than two
  // lines in different groups with the same marginal rate.
  const vec::CorrelatedPairGenerator same({0, 0}, {0.3}, 1.0);
  const vec::CorrelatedPairGenerator diff({0, 1}, {0.3, 0.3}, 1.0);
  mpe::Rng r1(4), r2(4);
  int same_both = 0, diff_both = 0;
  const int reps = 20000;
  for (int i = 0; i < reps; ++i) {
    const auto a = same.generate(r1);
    if (a.first[0] != a.second[0] && a.first[1] != a.second[1]) ++same_both;
    const auto b = diff.generate(r2);
    if (b.first[0] != b.second[0] && b.first[1] != b.second[1]) ++diff_both;
  }
  // P(both flip) = 0.3 when shared (cond prob 1), 0.09 when independent.
  EXPECT_NEAR(same_both / static_cast<double>(reps), 0.3, 0.02);
  EXPECT_NEAR(diff_both / static_cast<double>(reps), 0.09, 0.01);
}

TEST(CorrelatedGenerator, RejectsBadGroups) {
  EXPECT_THROW(vec::CorrelatedPairGenerator({0, 5}, {0.5}, 0.5),
               mpe::ContractViolation);
  EXPECT_THROW(vec::CorrelatedPairGenerator({0}, {1.5}, 0.5),
               mpe::ContractViolation);
  EXPECT_THROW(vec::CorrelatedPairGenerator({0}, {0.5}, -0.1),
               mpe::ContractViolation);
}

}  // namespace
