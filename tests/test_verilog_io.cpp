#include "circuit/verilog_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "circuit/analysis.hpp"
#include "gen/arithmetic.hpp"
#include "gen/presets.hpp"

namespace {

namespace ckt = mpe::circuit;

const char* kSample = R"(
// half adder
module half_adder (a, b, s, c);
  input a, b;
  output s, c;
  xor g1 (s, a, b);
  and g2 (c, a, b);
endmodule
)";

TEST(VerilogIo, ParsesSimpleModule) {
  const auto nl = ckt::read_verilog_string(kSample);
  EXPECT_EQ(nl.name(), "half_adder");
  EXPECT_EQ(nl.num_inputs(), 2u);
  EXPECT_EQ(nl.num_outputs(), 2u);
  EXPECT_EQ(nl.num_gates(), 2u);
}

TEST(VerilogIo, ParsedModuleComputes) {
  auto nl = ckt::read_verilog_string(kSample);
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      const auto values = ckt::evaluate(
          nl, std::vector<std::uint8_t>{static_cast<std::uint8_t>(a),
                                        static_cast<std::uint8_t>(b)});
      EXPECT_EQ(values[*nl.find("s")], a ^ b);
      EXPECT_EQ(values[*nl.find("c")], a & b);
    }
  }
}

TEST(VerilogIo, InstanceNamesOptional) {
  const char* text = R"(
module m (a, y);
  input a;
  output y;
  not (y, a);
endmodule
)";
  const auto nl = ckt::read_verilog_string(text);
  EXPECT_EQ(nl.num_gates(), 1u);
}

TEST(VerilogIo, BlockCommentsAndWires) {
  const char* text = R"(
module m (a, b, y);
  input a, b; /* two
  line comment */ output y;
  wire t;
  nand n1 (t, a, b);
  not n2 (y, t);
endmodule
)";
  const auto nl = ckt::read_verilog_string(text);
  EXPECT_EQ(nl.num_gates(), 2u);
  EXPECT_EQ(nl.depth(), 2u);
}

TEST(VerilogIo, RoundTripPreservesFunction) {
  auto original = mpe::gen::ripple_carry_adder(5, "rca5");
  const std::string text = ckt::write_verilog_string(original);
  auto back = ckt::read_verilog_string(text);
  EXPECT_EQ(back.num_inputs(), original.num_inputs());
  EXPECT_EQ(back.num_outputs(), original.num_outputs());
  EXPECT_EQ(back.num_gates(), original.num_gates());
  for (int trial = 0; trial < 32; ++trial) {
    std::vector<std::uint8_t> in(original.num_inputs());
    for (std::size_t i = 0; i < in.size(); ++i) {
      in[i] = static_cast<std::uint8_t>((trial >> (i % 5)) & 1);
    }
    const auto v1 = ckt::evaluate(original, in);
    const auto v2 = ckt::evaluate(back, in);
    for (std::size_t o = 0; o < original.outputs().size(); ++o) {
      EXPECT_EQ(v1[original.outputs()[o]], v2[back.outputs()[o]]);
    }
  }
}

TEST(VerilogIo, RoundTripLargeGeneratedCircuit) {
  auto original = mpe::gen::build_preset("c432", 3);
  const std::string text = ckt::write_verilog_string(original);
  auto back = ckt::read_verilog_string(text);
  EXPECT_EQ(back.num_gates(), original.num_gates());
  EXPECT_EQ(back.depth(), original.depth());
}

TEST(VerilogIo, OutputAliasForInputPort) {
  // A primary input marked as output becomes a buffered alias port.
  ckt::Netlist nl("passthru");
  nl.add_input("a");
  nl.add_gate(ckt::GateType::kNot, "y", {"a"});
  nl.mark_output("y");
  nl.mark_output("a");  // input doubling as observable output
  nl.finalize();
  const std::string text = ckt::write_verilog_string(nl);
  EXPECT_NE(text.find("a_out"), std::string::npos);
  auto back = ckt::read_verilog_string(text);
  EXPECT_EQ(back.num_outputs(), 2u);
}

TEST(VerilogIo, FileRoundTrip) {
  auto nl = mpe::gen::ripple_carry_adder(3, "rca3");
  const std::string path = ::testing::TempDir() + "/mpe_rca3.v";
  {
    std::ofstream out(path);
    ckt::write_verilog(out, nl);
  }
  const auto back = ckt::read_verilog_file(path);
  EXPECT_EQ(back.num_gates(), nl.num_gates());
  std::remove(path.c_str());
}

TEST(VerilogIo, ErrorsCarryLineNumbers) {
  try {
    ckt::read_verilog_string(
        "module m (a, y);\n  input a;\n  output y;\n  assign y = a;\n"
        "endmodule\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos);
  }
}

TEST(VerilogIo, RejectsUndeclaredSignals) {
  EXPECT_THROW(ckt::read_verilog_string(
                   "module m (a, y);\n  input a;\n  output y;\n"
                   "  not (y, ghost);\nendmodule\n"),
               std::runtime_error);
}

TEST(VerilogIo, RejectsVectors) {
  EXPECT_THROW(ckt::read_verilog_string(
                   "module m (a, y);\n  input [3:0] a;\n  output y;\n"
                   "endmodule\n"),
               std::runtime_error);
}

TEST(VerilogIo, RejectsMissingFile) {
  EXPECT_THROW(ckt::read_verilog_file("/no/such/file.v"),
               std::runtime_error);
}

}  // namespace
