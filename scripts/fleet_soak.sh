#!/usr/bin/env sh
# Fleet-scale sharded-campaign chaos soak (docs/ROBUSTNESS.md, "Sharded
# jobs"): a coordinator splits every job of a large manifest into wave-index
# shard leases and serves them over real TCP (the multi-host seam) to a
# 4-worker fleet, while a seeded kill schedule takes out random participants
# — workers AND the coordinator — with kill -9, restarting the fleet each
# round. The campaign must still converge, the ledger must pass the
# exactly-once audit (shard records included), sharding must actually have
# been exercised, and the canonical merged output must be BYTE-IDENTICAL to
# a single-process `campaign` run of the same manifest.
#
# This is the scale companion to dist_chaos_smoke.sh: that script proves the
# whole-job lease invariants on a 6-job manifest; this one drives shard
# leases across a fleet and a job count high enough (default 1000) that
# kills land in every phase of the shard lifecycle — between grant and first
# heartbeat, mid-shard-checkpoint, between shard result and assembly, and
# mid-ledger-append. Wherever the kill lands, durability rests on the same
# invariants the in-process tests assert: shard checkpoints make shard work
# resumable, assembly is a deterministic fold over recorded samples, and the
# sealed ledger + coordinator dedup make shard and job records exactly-once.
#
# The kill schedule is a seeded LCG, so a failing schedule reproduces with
# the same seed.
#
# usage: fleet_soak.sh [path-to-mpe_cli] [work-dir] [seed] [jobs]
#   jobs defaults to $MPE_FLEET_JOBS or 1000 (CI runs a reduced count).
set -eu

CLI=${1:-build/tools/mpe_cli}
WORK=${2:-build/fleet_soak}
SEED=${3:-20260808}
JOBS=${4:-${MPE_FLEET_JOBS:-1000}}
ORIG_SEED=$SEED

rm -rf "$WORK"
mkdir -p "$WORK/golden" "$WORK/dist"
MANIFEST="$WORK/jobs.jsonl"
# Fixed port derived from the seed: reruns of one schedule contend with
# themselves only, and SO_REUSEADDR lets a restarted coordinator rebind.
PORT=$(( 23000 + ORIG_SEED % 1000 ))

# Cheap, convergent jobs: at epsilon 0.25 each one stops after a handful of
# hyper-samples, so the soak's cost is dominated by fleet mechanics (grants,
# heartbeats, shard results, assembly), which is what it exercises.
: > "$MANIFEST"
i=0
while [ "$i" -lt "$JOBS" ]; do
  printf '{"job":"f%05d","circuit":"c432","seed":%d,"epsilon":0.25,"confidence":0.8,"max_hyper":40}\n' \
    "$i" $(( 100 + i )) >> "$MANIFEST"
  i=$(( i + 1 ))
done

# --- Golden: single-process campaign of the same manifest ------------------
"$CLI" campaign --manifest "$MANIFEST" --state-dir "$WORK/golden" > /dev/null
"$CLI" ledger-audit --report "$WORK/golden/campaign.jsonl" \
  --merged-out "$WORK/golden_merged.jsonl" > /dev/null

# --- Chaos rounds ----------------------------------------------------------
lcg() { SEED=$(( (SEED * 1103515245 + 12345) % 2147483648 )); }

COORD=""
W_PIDS=""

start_fleet() {
  "$CLI" campaign-coordinator --manifest "$MANIFEST" \
    --state-dir "$WORK/dist" --tcp-port "$PORT" --lease-ms 1000 \
    --shard-size 8 --max-assign 25 > /dev/null 2>&1 &
  COORD=$!
  W_PIDS=""
  for i in 0 1 2 3; do
    "$CLI" campaign-worker --tcp "127.0.0.1:$PORT" --state-dir "$WORK/dist" \
      --worker-id "w$i" --heartbeat-ms 200 > /dev/null 2>&1 &
    W_PIDS="$W_PIDS $!"
  done
}

kill_fleet() {
  kill -9 $COORD $W_PIDS 2> /dev/null || true
  for p in $COORD $W_PIDS; do
    wait "$p" 2> /dev/null || true
  done
}

sleep_ms() {
  awk "BEGIN { printf \"%.3f\", $1 / 1000 }" | xargs sleep
}

FINISHED=0
ROUND=0
CHAOS_ROUNDS=6
while [ "$ROUND" -lt "$CHAOS_ROUNDS" ] && [ "$FINISHED" -eq 0 ]; do
  ROUND=$(( ROUND + 1 ))
  start_fleet
  lcg; DELAY=$(( 200 + SEED % 800 ))
  lcg; VICTIM=$(( SEED % 5 ))
  sleep_ms "$DELAY"
  if [ "$VICTIM" -eq 4 ]; then
    kill -9 "$COORD" 2> /dev/null || true  # coordinator down mid-campaign
  else
    set -- $W_PIDS
    eval "kill -9 \$$(( VICTIM + 1 )) 2> /dev/null || true"  # one worker down
  fi
  # Let the survivors make progress (shard lease expiry, re-dispatch, shard
  # checkpoint resume) before the round is torn down — itself a second,
  # compound kill across the whole fleet.
  lcg; sleep_ms $(( 300 + SEED % 700 ))
  if ! kill -0 "$COORD" 2> /dev/null && [ "$VICTIM" -ne 4 ]; then
    set +e
    wait "$COORD"
    [ $? -eq 0 ] && FINISHED=1  # campaign completed under chaos
    set -e
  fi
  kill_fleet
done

# --- Clean final round: must converge on whatever state chaos left ---------
if [ "$FINISHED" -eq 0 ]; then
  start_fleet
  i=0
  while kill -0 "$COORD" 2> /dev/null && [ "$i" -lt 3000 ]; do
    i=$(( i + 1 ))
    sleep 0.1
  done
  set +e
  wait "$COORD"
  RC=$?
  set -e
  if [ "$RC" -ne 0 ]; then
    echo "fleet_soak: FAIL coordinator exit $RC after chaos" >&2
    kill_fleet
    exit 1
  fi
  # Workers drain on their own once the coordinator is done; reap residue.
  sleep 0.5
  kill_fleet
fi

# --- Verdict ---------------------------------------------------------------
# The audit proves exactly-once for jobs AND shards (divergent duplicates,
# done->failed regressions, and post-done shard records all exit 11); the
# byte-compare proves the sharded fleet computed exactly what one process
# would have.
"$CLI" ledger-audit --report "$WORK/dist/campaign.jsonl" \
  --merged-out "$WORK/dist_merged.jsonl" > /dev/null

if ! grep -q '"shard":' "$WORK/dist/campaign.jsonl"; then
  echo "fleet_soak: FAIL no shard records in the ledger (sharding degraded" \
    "to whole-job leases?)" >&2
  exit 1
fi

if ! cmp -s "$WORK/golden_merged.jsonl" "$WORK/dist_merged.jsonl"; then
  echo "fleet_soak: FAIL merged ledger differs from single-process run" >&2
  diff "$WORK/golden_merged.jsonl" "$WORK/dist_merged.jsonl" >&2 || true
  exit 1
fi
echo "fleet_soak: OK (seed $ORIG_SEED, $JOBS jobs, $ROUND chaos rounds," \
  "merged ledger byte-identical to single-process run)"
