#!/usr/bin/env sh
# Estimation-server smoke test (docs/SERVER.md): start one `mpe_cli serve`
# daemon, hit it with 4 concurrent `mpe_cli submit` clients x 3 requests
# each, and hold the daemon to its contract:
#
#   * exactly-once: every client sees exactly one `done` line per request;
#   * determinism: all 12 results (and their streamed run reports) are
#     byte-identical to each other AND to a batch `mpe_cli estimate` of the
#     same job — serving adds reuse, not variance;
#   * the shared circuit cache actually shares: stats report cache hits;
#   * the scrape endpoint serves the mpe_server_* counters;
#   * SIGTERM drains gracefully: "(drained)" in the log, exit code 0.
#
# Run reports carry a per-connection envelope sequence number, so the
# comparison strips `"seq":N` before byte-comparing result lines.
#
# usage: server_smoke.sh [path-to-mpe_cli] [work-dir]
set -eu

CLI=${1:-build/tools/mpe_cli}
WORK=${2:-build/server_smoke}

rm -rf "$WORK"
mkdir -p "$WORK/reports" "$WORK/state"
LOG="$WORK/serve.log"

CLIENTS=4
REQUESTS=3

fail() { echo "server_smoke: FAIL: $1" >&2; exit 1; }

# --- 1. Reference: the same job through the batch CLI ----------------------
"$CLI" estimate --circuit c432 --seed 7 --epsilon 0.1 --tprob 0.5 \
  --delay zero --threads 1 --metrics-out "$WORK/ref.jsonl" > /dev/null
grep '"type":"result"' "$WORK/ref.jsonl" | sed 's/"seq":[0-9]*,*//' \
  > "$WORK/ref_result.txt"
[ -s "$WORK/ref_result.txt" ] || fail "batch reference produced no result line"

# --- 2. Start the daemon on an ephemeral port ------------------------------
"$CLI" serve --tcp-port 0 --state-dir "$WORK/state" --max-active 2 \
  --cache-cap 8 > "$LOG" 2>&1 &
SERVER=$!
trap 'kill "$SERVER" 2> /dev/null || true' EXIT

PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/^listening tcp .*:\([0-9][0-9]*\)$/\1/p' "$LOG")
  [ -n "$PORT" ] && break
  kill -0 "$SERVER" 2> /dev/null || fail "server died on startup: $(cat "$LOG")"
  sleep 0.1
done
[ -n "$PORT" ] || fail "server never reported its port"

# --- 3. Concurrent clients -------------------------------------------------
# Unique job ids per client (ids key checkpoints server-side), same circuit
# and seed everywhere (that is what the cache and determinism claims need).
c=0
while [ "$c" -lt "$CLIENTS" ]; do
  : > "$WORK/m$c.jsonl"
  r=0
  while [ "$r" -lt "$REQUESTS" ]; do
    printf '{"job":"c%s-r%s","circuit":"c432","seed":7,"epsilon":0.1,"delay":"zero"}\n' \
      "$c" "$r" >> "$WORK/m$c.jsonl"
    r=$((r + 1))
  done
  c=$((c + 1))
done

PIDS=""
c=0
while [ "$c" -lt "$CLIENTS" ]; do
  "$CLI" submit --port "$PORT" --manifest "$WORK/m$c.jsonl" \
    --report-dir "$WORK/reports" --client-id "smoke-$c" \
    > "$WORK/client$c.out" 2> "$WORK/client$c.err" &
  PIDS="$PIDS $!"
  c=$((c + 1))
done
for pid in $PIDS; do
  wait "$pid" || fail "a submit client exited non-zero"
done

# --- 4. Exactly-once + byte-identical results ------------------------------
c=0
while [ "$c" -lt "$CLIENTS" ]; do
  n=$(grep -c ' done ' "$WORK/client$c.out" || true)
  [ "$n" -eq "$REQUESTS" ] || \
    fail "client $c: $n done lines, want $REQUESTS: $(cat "$WORK/client$c.out")"
  c=$((c + 1))
done
# Drop the (unique) id column; every remaining payload must be identical.
sed 's/^[^ ]* *//' "$WORK"/client*.out | sort -u > "$WORK/uniq_payloads.txt"
[ "$(wc -l < "$WORK/uniq_payloads.txt")" -eq 1 ] || \
  fail "results differ across clients: $(cat "$WORK/uniq_payloads.txt")"

n=$(ls "$WORK/reports" | wc -l)
[ "$n" -eq $((CLIENTS * REQUESTS)) ] || \
  fail "want $((CLIENTS * REQUESTS)) run reports, got $n"
for report in "$WORK/reports"/*.jsonl; do
  grep '"type":"result"' "$report" | sed 's/"seq":[0-9]*,*//' \
    > "$WORK/got_result.txt"
  cmp -s "$WORK/got_result.txt" "$WORK/ref_result.txt" || \
    fail "$report result line differs from the batch CLI reference"
done

# --- 5. Cache + scrape observability ---------------------------------------
"$CLI" submit --port "$PORT" --stats > "$WORK/stats.txt"
grep -q '"cache_hits":[1-9]' "$WORK/stats.txt" || \
  fail "no cache hits after repeated identical circuits: $(cat "$WORK/stats.txt")"
"$CLI" submit --port "$PORT" --scrape > "$WORK/scrape.txt"
grep -q '^mpe_server_jobs_done_total 12$' "$WORK/scrape.txt" || \
  fail "scrape missing jobs_done counter: $(cat "$WORK/scrape.txt")"
grep -q '^mpe_server_cache_hits_total' "$WORK/scrape.txt" || \
  fail "scrape missing cache counters"

# --- 6. Graceful SIGTERM drain ---------------------------------------------
kill -TERM "$SERVER"
STATUS=0
wait "$SERVER" || STATUS=$?
trap - EXIT
[ "$STATUS" -eq 0 ] || fail "server exited $STATUS on SIGTERM"
grep -q '(drained)' "$LOG" || fail "server did not report a drain: $(cat "$LOG")"

echo "server_smoke: OK (port $PORT, $((CLIENTS * REQUESTS)) jobs byte-identical)"
