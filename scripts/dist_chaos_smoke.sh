#!/usr/bin/env sh
# Distributed-campaign chaos smoke test (docs/ROBUSTNESS.md, "Distributed
# campaigns"): run a coordinator + 3 worker fleet over a small manifest and
# kill -9 random participants — workers AND the coordinator — at seeded
# random points, restarting the fleet each round. The campaign must still
# converge, its ledger must pass the exactly-once audit, and its canonical
# merged output must be BYTE-IDENTICAL to a single-process `campaign` run of
# the same manifest.
#
# The kill schedule is a seeded LCG, so a failing schedule reproduces with
# the same seed. Wherever a kill lands — mid-job, mid-ledger-append, between
# lease grant and first heartbeat — durability rests on the same two
# invariants the in-process tests assert: checkpoints make job work
# resumable, and the sealed ledger + coordinator dedup make completion
# records exactly-once.
#
# usage: dist_chaos_smoke.sh [path-to-mpe_cli] [work-dir] [seed]
set -eu

CLI=${1:-build/tools/mpe_cli}
WORK=${2:-build/dist_chaos_smoke}
SEED=${3:-20260808}
ORIG_SEED=$SEED

rm -rf "$WORK"
mkdir -p "$WORK/golden" "$WORK/dist"
SOCK="$WORK/coord.sock"
MANIFEST="$WORK/jobs.jsonl"

# Epsilons chosen so each job runs a few hundred milliseconds: long enough
# that kills land mid-job, short enough that the test stays a smoke test.
cat > "$MANIFEST" << 'EOF'
{"job":"a1","circuit":"c432","seed":3,"epsilon":0.03}
{"job":"a2","circuit":"c432","seed":4,"epsilon":0.03}
{"job":"a3","circuit":"c880","seed":5,"epsilon":0.03}
{"job":"a4","circuit":"c432","seed":6,"epsilon":0.025}
{"job":"a5","circuit":"c880","seed":7,"epsilon":0.03}
{"job":"a6","circuit":"c432","seed":8,"epsilon":0.03}
EOF

# --- Golden: single-process campaign of the same manifest ------------------
"$CLI" campaign --manifest "$MANIFEST" --state-dir "$WORK/golden" > /dev/null
"$CLI" ledger-audit --report "$WORK/golden/campaign.jsonl" \
  --merged-out "$WORK/golden_merged.jsonl" > /dev/null

# --- Chaos rounds ----------------------------------------------------------
lcg() { SEED=$(( (SEED * 1103515245 + 12345) % 2147483648 )); }

COORD=""
W_PIDS=""

start_fleet() {
  "$CLI" campaign-coordinator --manifest "$MANIFEST" \
    --state-dir "$WORK/dist" --socket "$SOCK" --lease-ms 1000 \
    > /dev/null 2>&1 &
  COORD=$!
  W_PIDS=""
  for i in 0 1 2; do
    "$CLI" campaign-worker --socket "$SOCK" --state-dir "$WORK/dist" \
      --worker-id "w$i" --heartbeat-ms 200 > /dev/null 2>&1 &
    W_PIDS="$W_PIDS $!"
  done
}

kill_fleet() {
  kill -9 $COORD $W_PIDS 2> /dev/null || true
  for p in $COORD $W_PIDS; do
    wait "$p" 2> /dev/null || true
  done
}

sleep_ms() {
  awk "BEGIN { printf \"%.3f\", $1 / 1000 }" | xargs sleep
}

FINISHED=0
ROUND=0
CHAOS_ROUNDS=6
while [ "$ROUND" -lt "$CHAOS_ROUNDS" ] && [ "$FINISHED" -eq 0 ]; do
  ROUND=$(( ROUND + 1 ))
  start_fleet
  lcg; DELAY=$(( 150 + SEED % 700 ))
  lcg; VICTIM=$(( SEED % 4 ))
  sleep_ms "$DELAY"
  if [ "$VICTIM" -eq 3 ]; then
    kill -9 "$COORD" 2> /dev/null || true  # coordinator down mid-campaign
  else
    set -- $W_PIDS
    eval "kill -9 \$$(( VICTIM + 1 )) 2> /dev/null || true"  # one worker down
  fi
  # Let the survivors make progress (lease expiry, reassignment, resume)
  # before the round is torn down — itself a second, compound kill.
  lcg; sleep_ms $(( 200 + SEED % 600 ))
  if ! kill -0 "$COORD" 2> /dev/null && [ "$VICTIM" -ne 3 ]; then
    set +e
    wait "$COORD"
    [ $? -eq 0 ] && FINISHED=1  # campaign completed under chaos
    set -e
  fi
  kill_fleet
done

# --- Clean final round: must converge on whatever state chaos left --------
if [ "$FINISHED" -eq 0 ]; then
  start_fleet
  i=0
  while kill -0 "$COORD" 2> /dev/null && [ "$i" -lt 1200 ]; do
    i=$(( i + 1 ))
    sleep 0.1
  done
  set +e
  wait "$COORD"
  RC=$?
  set -e
  if [ "$RC" -ne 0 ]; then
    echo "dist_chaos_smoke: FAIL coordinator exit $RC after chaos" >&2
    kill_fleet
    exit 1
  fi
  # Workers drain on their own once the coordinator is done; reap residue.
  sleep 0.5
  kill_fleet
fi

# --- Verdict ---------------------------------------------------------------
# The audit proves exactly-once (divergent duplicate "done" records or
# done->failed regressions exit 11); the byte-compare proves the fleet
# computed exactly what one process would have.
"$CLI" ledger-audit --report "$WORK/dist/campaign.jsonl" \
  --merged-out "$WORK/dist_merged.jsonl" > /dev/null

if ! cmp -s "$WORK/golden_merged.jsonl" "$WORK/dist_merged.jsonl"; then
  echo "dist_chaos_smoke: FAIL merged ledger differs from single-process run" >&2
  diff "$WORK/golden_merged.jsonl" "$WORK/dist_merged.jsonl" >&2 || true
  exit 1
fi
echo "dist_chaos_smoke: OK (seed $ORIG_SEED, $ROUND chaos rounds," \
  "merged ledger byte-identical to single-process run)"
