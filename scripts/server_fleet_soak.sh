#!/usr/bin/env sh
# serve --fleet chaos soak (docs/SERVER.md, "Fleet execution"): one `serve`
# daemon dispatching submitted jobs onto a 3-process campaign-worker fleet
# over TCP, while a seeded kill schedule takes workers out with kill -9 and
# replaces them mid-job. The contract under chaos:
#
#   * every submitted job still reaches exactly one `done` result line;
#   * every result line AND every streamed run report is BYTE-IDENTICAL to
#     the same server running jobs in-process (no fleet, --trace-capacity 0
#     so neither side carries tracer events) — worker death, shard-lease
#     expiry, re-dispatch, and partial recomputation must leave no trace in
#     what the client sees;
#   * the fleet actually computed shards (the fleet ledger under
#     <state-dir>/fleet/ holds shard records — execution did not silently
#     degrade to local);
#   * the adaptive shard sizer published its metric series (scrape shows
#     mpe_coord_shard_latency_ms / mpe_coord_shard_size);
#   * SIGTERM drains gracefully: "(drained)" in the log, exit code 0, and
#     surviving workers go home on the drain reply.
#
# Workers run with DISJOINT state directories — the cross-host posture:
# nothing is shared between fleet members but the protocol. A replacement
# worker starts from an empty directory and simply recomputes; determinism
# makes the result byte-identical either way.
#
# The kill schedule is a seeded LCG, so a failing schedule reproduces with
# the same seed.
#
# usage: server_fleet_soak.sh [path-to-mpe_cli] [work-dir] [seed] [jobs]
#   jobs defaults to $MPE_SERVER_FLEET_JOBS or 24.
set -eu

CLI=${1:-build/tools/mpe_cli}
WORK=${2:-build/server_fleet_soak}
SEED=${3:-20260808}
JOBS=${4:-${MPE_SERVER_FLEET_JOBS:-24}}
ORIG_SEED=$SEED

rm -rf "$WORK"
mkdir -p "$WORK/local_state" "$WORK/local_reports" \
  "$WORK/fleet_state" "$WORK/fleet_reports" "$WORK/workers"

fail() { echo "server_fleet_soak: FAIL: $1" >&2; exit 1; }

# Cheap, convergent jobs (epsilon 0.25 stops after a handful of
# hyper-samples): the soak's cost is fleet mechanics, which is the point.
MANIFEST="$WORK/jobs.jsonl"
: > "$MANIFEST"
i=0
while [ "$i" -lt "$JOBS" ]; do
  printf '{"job":"s%04d","circuit":"c432","seed":%d,"epsilon":0.25,"confidence":0.8,"max_hyper":40}\n' \
    "$i" $(( 100 + i )) >> "$MANIFEST"
  i=$(( i + 1 ))
done

wait_port() {
  # wait_port <log> <pid> <pattern-prefix> -> prints the port
  _port=""
  _n=0
  while [ "$_n" -lt 200 ]; do
    _port=$(sed -n "s/^$3 .*:\([0-9][0-9]*\)\$/\1/p" "$1")
    [ -n "$_port" ] && break
    kill -0 "$2" 2> /dev/null || fail "server died on startup: $(cat "$1")"
    _n=$(( _n + 1 ))
    sleep 0.1
  done
  [ -n "$_port" ] || fail "server never reported '$3'"
  printf '%s' "$_port"
}

sleep_ms() {
  awk "BEGIN { printf \"%.3f\", $1 / 1000 }" | xargs sleep
}

# --- 1. Reference: the SAME daemon binary running jobs in-process ----------
LOCAL_LOG="$WORK/local.log"
"$CLI" serve --tcp-port 0 --state-dir "$WORK/local_state" \
  --trace-capacity 0 --max-active 2 --max-queue 256 --queue-per-client 256 > "$LOCAL_LOG" 2>&1 &
LOCAL=$!
trap 'kill "$LOCAL" 2> /dev/null || true' EXIT
LOCAL_PORT=$(wait_port "$LOCAL_LOG" "$LOCAL" "listening tcp")
"$CLI" submit --port "$LOCAL_PORT" --manifest "$MANIFEST" \
  --report-dir "$WORK/local_reports" --timeout-ms 120000 \
  --client-id soak-local > "$WORK/local.out" \
  || fail "local submit client exited non-zero"
kill -TERM "$LOCAL"
wait "$LOCAL" || fail "local server exited non-zero on SIGTERM"
trap - EXIT
n=$(grep -c ' done ' "$WORK/local.out" || true)
[ "$n" -eq "$JOBS" ] || fail "local run: $n done lines, want $JOBS"

# --- 2. The fleet daemon + 3 workers ---------------------------------------
FLEET_LOG="$WORK/fleet.log"
"$CLI" serve --tcp-port 0 --worker-port 0 --state-dir "$WORK/fleet_state" \
  --trace-capacity 0 --max-active 2 --max-queue 256 --queue-per-client 256 --lease-ms 1000 --max-assign 25 \
  --shard-size auto --shard-floor 4 --shard-ceiling 64 --shard-target-ms 500 \
  --drain-grace-ms 60000 > "$FLEET_LOG" 2>&1 &
SERVER=$!
trap 'kill -9 "$SERVER" $W_PIDS 2> /dev/null || true' EXIT
CLIENT_PORT=$(wait_port "$FLEET_LOG" "$SERVER" "listening tcp")
WORKER_PORT=$(wait_port "$FLEET_LOG" "$SERVER" "listening worker tcp")

W_PIDS=""
start_worker() {
  # start_worker <name>: its own state dir — fleet members share nothing.
  mkdir -p "$WORK/workers/$1"
  "$CLI" campaign-worker --tcp "127.0.0.1:$WORKER_PORT" \
    --state-dir "$WORK/workers/$1" --worker-id "$1" --heartbeat-ms 200 \
    > /dev/null 2>&1 &
  W_PIDS="$W_PIDS $!"
}
start_worker w0
start_worker w1
start_worker w2

"$CLI" submit --port "$CLIENT_PORT" --manifest "$MANIFEST" \
  --report-dir "$WORK/fleet_reports" --timeout-ms 180000 \
  --client-id soak-fleet > "$WORK/fleet.out" 2> "$WORK/fleet.err" &
CLIENT=$!

# --- 3. Seeded kill -9 chaos against the worker fleet ----------------------
lcg() { SEED=$(( (SEED * 1103515245 + 12345) % 2147483648 )); }

ROUND=0
while [ "$ROUND" -lt 5 ] && kill -0 "$CLIENT" 2> /dev/null; do
  ROUND=$(( ROUND + 1 ))
  lcg; sleep_ms $(( 300 + SEED % 700 ))
  lcg; VICTIM=$(( SEED % 3 ))
  set -- $W_PIDS
  eval "V_PID=\$$(( VICTIM + 1 ))"
  kill -9 "$V_PID" 2> /dev/null || true   # a fleet member dies mid-shard
  wait "$V_PID" 2> /dev/null || true
  # A replacement joins from an EMPTY state dir (a fresh host).
  start_worker "r$ROUND"
done

wait "$CLIENT" || fail "fleet submit client exited non-zero: $(cat "$WORK/fleet.err")"
n=$(grep -c ' done ' "$WORK/fleet.out" || true)
[ "$n" -eq "$JOBS" ] || fail "fleet run: $n done lines, want $JOBS"

# --- 4. Observability: the adaptive sizer published its series -------------
"$CLI" submit --port "$CLIENT_PORT" --scrape > "$WORK/scrape.txt"
grep -q '^mpe_coord_shard_latency_ms_count' "$WORK/scrape.txt" || \
  fail "scrape missing shard latency histogram"
grep -q '^mpe_coord_shard_size' "$WORK/scrape.txt" || \
  fail "scrape missing adaptive shard size gauge"

# --- 5. Graceful drain: server AND surviving workers go home ---------------
kill -TERM "$SERVER"
wait "$SERVER" || fail "fleet server exited non-zero on SIGTERM"
grep -q '(drained)' "$FLEET_LOG" || \
  fail "fleet server did not drain: $(cat "$FLEET_LOG")"
for p in $W_PIDS; do
  wait "$p" 2> /dev/null || true  # dead victims and drained survivors
done
trap - EXIT

# --- 6. Verdict: byte-identical to in-process execution --------------------
sort "$WORK/local.out" > "$WORK/local.sorted"
sort "$WORK/fleet.out" > "$WORK/fleet.sorted"
cmp -s "$WORK/local.sorted" "$WORK/fleet.sorted" || {
  diff "$WORK/local.sorted" "$WORK/fleet.sorted" >&2 || true
  fail "fleet result lines differ from in-process execution"
}
i=0
while [ "$i" -lt "$JOBS" ]; do
  id=$(printf 's%04d' "$i")
  [ -s "$WORK/fleet_reports/$id.jsonl" ] || fail "missing fleet report $id"
  cmp -s "$WORK/local_reports/$id.jsonl" "$WORK/fleet_reports/$id.jsonl" || \
    fail "run report $id differs between fleet and in-process execution"
  i=$(( i + 1 ))
done

# Execution really happened on the fleet: shard records in the fleet ledger.
FLEET_LEDGER="$WORK/fleet_state/fleet/campaign.jsonl"
[ -s "$FLEET_LEDGER" ] || fail "no fleet ledger at $FLEET_LEDGER"
grep -q '"shard":' "$FLEET_LEDGER" || \
  fail "no shard records in the fleet ledger (execution degraded to local?)"

echo "server_fleet_soak: OK (seed $ORIG_SEED, $JOBS jobs, $ROUND kill rounds," \
  "results and reports byte-identical to in-process execution)"
