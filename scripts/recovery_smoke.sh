#!/usr/bin/env sh
# Durability smoke test (docs/ROBUSTNESS.md): start a checkpointed
# estimation, kill -9 it once the first checkpoint is durable, resume from
# the checkpoint, and require the resumed run to be byte-identical (stdout
# and exit code) to an uninterrupted run of the same configuration.
#
# The test is timing-tolerant by construction: wherever the kill lands —
# before the first checkpoint, mid-run, or after the run already finished —
# the re-invocation must still reproduce the uninterrupted result exactly
# (fresh start, mid-run resume, and complete-checkpoint short-circuit are
# all part of the resume contract).
#
# usage: recovery_smoke.sh [path-to-mpe_cli] [work-dir]
set -eu

CLI=${1:-build/tools/mpe_cli}
WORK=${2:-build/recovery_smoke}

rm -rf "$WORK"
mkdir -p "$WORK"

# --threads 1 pins the pipelined (checkpointable) estimator path so the
# reference and the checkpointed runs execute identical code.
ARGS="estimate --circuit c432 --epsilon 0.02 --seed 3 --threads 1"
CKPT=$WORK/run.ckpt

# Uninterrupted reference.
set +e
$CLI $ARGS > "$WORK/reference.txt" 2> /dev/null
REF_RC=$?
set -e

# Interrupted run: wait for the first durable checkpoint (or process exit),
# then kill -9 without any chance to clean up.
$CLI $ARGS --checkpoint "$CKPT" --checkpoint-every 1 \
  > "$WORK/interrupted.txt" 2> /dev/null &
PID=$!
i=0
while [ ! -f "$CKPT" ] && kill -0 "$PID" 2> /dev/null && [ "$i" -lt 500 ]; do
  i=$((i + 1))
  sleep 0.01
done
kill -9 "$PID" 2> /dev/null || true
wait "$PID" 2> /dev/null || true

# Resume to completion and compare against the reference.
set +e
$CLI $ARGS --checkpoint "$CKPT" --checkpoint-every 1 \
  > "$WORK/resumed.txt" 2> /dev/null
RES_RC=$?
set -e

if [ "$RES_RC" -ne "$REF_RC" ]; then
  echo "recovery_smoke: FAIL exit code mismatch" \
    "(reference $REF_RC, resumed $RES_RC)" >&2
  exit 1
fi
if ! cmp -s "$WORK/reference.txt" "$WORK/resumed.txt"; then
  echo "recovery_smoke: FAIL resumed output differs from reference" >&2
  diff "$WORK/reference.txt" "$WORK/resumed.txt" >&2 || true
  exit 1
fi
echo "recovery_smoke: OK (exit $RES_RC, resumed output identical to reference)"
