#!/usr/bin/env sh
# Build, test, and regenerate every paper table/figure into bench_output.txt,
# plus a machine-readable perf snapshot into BENCH_pipeline.json.
set -e

# Respect an existing build/ configuration (whatever generator it was set up
# with); configure with the default generator only when none exists yet.
if [ ! -f build/CMakeCache.txt ]; then
  cmake -B build -S .
fi
cmake --build build -j "$(nproc 2>/dev/null || echo 4)"
# Fast tier-1 suite first (everything unlabeled), then the slower
# statistical self-validation and durability legs (label catalog in
# tests/CMakeLists.txt). MPE_SKIP_STAT=1 / MPE_SKIP_RECOVERY=1 opt out of
# the labeled legs for quick iteration.
ctest --test-dir build --output-on-failure -LE 'stat|recovery'
if [ "${MPE_SKIP_STAT:-0}" != "1" ]; then
  echo "== statistical validation leg (MPE_SKIP_STAT=1 skips) =="
  ctest --test-dir build --output-on-failure -L stat
fi
if [ "${MPE_SKIP_RECOVERY:-0}" != "1" ]; then
  echo "== recovery / durability leg (MPE_SKIP_RECOVERY=1 skips) =="
  # Checkpoint/resume bit-identity, retry policy, campaign ledger and dist
  # coordinator/worker suites, plus the two script-driven kill -9 smokes:
  # single-process resume -> golden-compare (recovery_smoke.sh) and the
  # distributed chaos harness (dist_chaos_smoke.sh), which kills random
  # workers and coordinators under a seeded schedule and requires the
  # merged ledger to be byte-identical to a single-process campaign.
  ctest --test-dir build --output-on-failure -L recovery
fi

# Optional sanitizer leg (MPE_SANITIZERS=1): rebuild with ASan+UBSan and run
# the whole suite, then rebuild with TSan and run the concurrency- and
# fault-heavy tests. Separate build trees keep the main build warm.
if [ "${MPE_SANITIZERS:-0}" = "1" ]; then
  echo "== sanitizer leg: address,undefined =="
  cmake -B build-asan -S . -DMPE_SANITIZE=address,undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-asan -j "$(nproc 2>/dev/null || echo 4)"
  ctest --test-dir build-asan --output-on-failure

  echo "== sanitizer leg: thread =="
  cmake -B build-tsan -S . -DMPE_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan -j "$(nproc 2>/dev/null || echo 4)"
  ctest --test-dir build-tsan --output-on-failure \
    -R 'ThreadPool|ParallelEstimator|FaultInjection|RunControl|ParallelDb'
fi

# Perf trajectory: google-benchmark JSON (per-benchmark real/cpu ns and
# items_per_second) from the microbenchmark suite. See docs/PERF.md for how
# to read it.
build/bench/micro_perf --benchmark_format=json > BENCH_pipeline.json

{
  for b in build/bench/*; do
    if [ -x "$b" ] && [ -f "$b" ]; then
      echo "===== $(basename "$b") ====="
      "$b"
      echo
    fi
  done
} 2>&1 | tee bench_output.txt
