#!/usr/bin/env sh
# Build, test, and regenerate every paper table/figure into bench_output.txt.
set -e
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
{
  for b in build/bench/*; do
    if [ -x "$b" ] && [ -f "$b" ]; then
      echo "===== $(basename "$b") ====="
      "$b"
      echo
    fi
  done
} 2>&1 | tee bench_output.txt
