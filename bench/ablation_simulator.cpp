// Ablation bench for the power-simulation substrate: how the delay model
// and pulse semantics change the power population a circuit exhibits —
// and therefore the maximum the estimator targets. This quantifies the
// paper's argument that simple delay models (zero delay in ATPG-based
// methods) miss glitch power, and documents our inertial-by-default choice.
//
// Flags: --pop N (default 15000), --seed S, --circuits c880
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) try {
  using namespace mpe;
  bench::CampaignOptions defaults;
  defaults.population_size = 15'000;
  defaults.circuits = {"c880"};
  bench::CampaignOptions opt =
      bench::parse_common_flags(argc, argv, defaults);

  const auto circuits = bench::build_circuits(opt);
  const auto& netlist = circuits.front();
  std::printf(
      "=== Ablations: delay model & pulse semantics on %s (%zu gates, "
      "|V| = %zu) ===\n\n",
      netlist.name().c_str(), netlist.num_gates(), opt.population_size);

  struct Config {
    const char* label;
    sim::DelayModel model;
    bool inertial;
  };
  const Config configs[] = {
      {"zero delay (functional only)", sim::DelayModel::kZero, false},
      {"unit delay, inertial", sim::DelayModel::kUnit, true},
      {"unit delay, transport", sim::DelayModel::kUnit, false},
      {"fanout-loaded, inertial (default)", sim::DelayModel::kFanoutLoaded,
       true},
      {"fanout-loaded, transport", sim::DelayModel::kFanoutLoaded, false},
  };

  Table table({"delay model", "mean power (mW)", "max power (mW)",
               "max/q99.9", "glitch share of max"});
  double zero_max = 0.0;
  for (const auto& cfg : configs) {
    sim::PowerEvalOptions po;
    po.delay_model = cfg.model;
    po.inertial = cfg.inertial;
    sim::CyclePowerEvaluator evaluator(netlist, po);
    const vec::HighActivityPairGenerator gen(netlist.num_inputs(),
                                             opt.min_activity);
    vec::PowerDbOptions db;
    db.population_size = opt.population_size;
    Rng rng(opt.seed);
    std::fprintf(stderr, "[bench] simulating %s...\n", cfg.label);
    const auto pop = vec::build_power_database(gen, evaluator, db, rng);
    std::vector<double> v(pop.values().begin(), pop.values().end());
    std::sort(v.begin(), v.end());
    const double q999 = v[static_cast<std::size_t>(0.999 * (v.size() - 1))];
    if (cfg.model == sim::DelayModel::kZero) zero_max = pop.true_max();
    const double glitch_share =
        zero_max > 0.0 ? (pop.true_max() - zero_max) / pop.true_max() : 0.0;
    table.add_row({cfg.label, Table::num(stats::mean(pop.values()), 4),
                   Table::num(pop.true_max(), 4),
                   Table::num(pop.true_max() / q999, 3),
                   Table::pct(std::max(glitch_share, 0.0))});
  }
  std::cout << table;
  std::printf(
      "\nReading: real delays add substantial glitch power on top of the "
      "functional\n(zero-delay) value — the accuracy ceiling of zero-delay "
      "vector-search methods.\nTransport semantics without inertial "
      "filtering over-counts glitch trains and\ninflates the tail "
      "(max/q99.9), which is why inertial is the default.\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
