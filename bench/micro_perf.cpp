// Microbenchmarks (google-benchmark): raw throughput of the building
// blocks — zero-delay vs event-driven cycle simulation across circuit
// sizes, Weibull MLE fit latency, hyper-sample cost, and the statistical
// primitives on the estimator's hot path.
#include <benchmark/benchmark.h>

#include "mpe.hpp"

namespace {

using namespace mpe;

const circuit::Netlist& preset(const std::string& name) {
  static std::map<std::string, circuit::Netlist> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    it = cache.emplace(name, gen::build_preset(name, 1)).first;
  }
  return it->second;
}

void BM_ZeroDelayCycle(benchmark::State& state, const std::string& name) {
  const auto& nl = preset(name);
  sim::ZeroDelaySimulator sim(nl, sim::Technology{});
  Rng rng(7);
  std::vector<std::uint8_t> v1(nl.num_inputs()), v2(nl.num_inputs());
  for (auto _ : state) {
    for (auto& b : v1) b = rng.bernoulli(0.5);
    for (auto& b : v2) b = rng.bernoulli(0.5);
    benchmark::DoNotOptimize(sim.evaluate(v1, v2).power_mw);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_EventCycle(benchmark::State& state, const std::string& name,
                   bool inertial) {
  const auto& nl = preset(name);
  sim::EventSimOptions opt;
  opt.inertial = inertial;
  sim::EventSimulator sim(nl, opt);
  Rng rng(7);
  std::vector<std::uint8_t> v1(nl.num_inputs()), v2(nl.num_inputs());
  for (auto _ : state) {
    for (auto& b : v1) b = rng.bernoulli(0.5);
    for (auto& b : v2) b = rng.bernoulli(0.5);
    benchmark::DoNotOptimize(sim.evaluate(v1, v2).power_mw);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_BitParallelBatch(benchmark::State& state, const std::string& name) {
  const auto& nl = preset(name);
  sim::BitParallelSimulator sim(nl, sim::Technology{});
  Rng rng(7);
  std::vector<vec::VectorPair> pairs(64);
  for (auto& p : pairs) {
    p.first = vec::random_vector(nl.num_inputs(), rng);
    p.second = vec::random_vector(nl.num_inputs(), rng);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.evaluate_batch(pairs).front().power_mw);
  }
  state.SetItemsProcessed(state.iterations() * 64);  // pairs per pass
}

void BM_WeibullMle(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const stats::ReversedWeibull g(3.0, 1.0, 10.0);
  Rng rng(3);
  std::vector<double> xs(m);
  for (auto& x : xs) x = g.sample(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evt::fit_weibull_mle(xs).params.mu);
  }
}

void BM_PwmFit(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const stats::ReversedWeibull g(3.0, 1.0, 10.0);
  Rng rng(3);
  std::vector<double> xs(m);
  for (auto& x : xs) x = g.sample(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evt::fit_gev_pwm(xs).params.xi);
  }
}

void BM_HyperSample(benchmark::State& state) {
  const stats::ReversedWeibull g(3.0, 1.0, 10.0);
  Rng rng(9);
  std::vector<double> values(20000);
  for (auto& v : values) v = g.sample(rng);
  vec::FinitePopulation pop(std::move(values), "synthetic");
  maxpower::HyperSampleOptions opt;
  Rng draw_rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        maxpower::draw_hyper_sample(pop, opt, draw_rng).estimate);
  }
}

void BM_StudentTCritical(benchmark::State& state) {
  double k = 2.0;
  for (auto _ : state) {
    const stats::StudentT t(k);
    benchmark::DoNotOptimize(t.two_sided_critical(0.9));
    k = k >= 100.0 ? 2.0 : k + 1.0;
  }
}

void BM_NormalQuantile(benchmark::State& state) {
  double q = 0.001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::Normal::std_quantile(q));
    q += 0.0001;
    if (q >= 0.999) q = 0.001;
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_ZeroDelayCycle, c432, std::string("c432"));
BENCHMARK_CAPTURE(BM_ZeroDelayCycle, c3540, std::string("c3540"));
BENCHMARK_CAPTURE(BM_ZeroDelayCycle, c7552, std::string("c7552"));
BENCHMARK_CAPTURE(BM_EventCycle, c432_inertial, std::string("c432"), true);
BENCHMARK_CAPTURE(BM_EventCycle, c3540_inertial, std::string("c3540"), true);
BENCHMARK_CAPTURE(BM_EventCycle, c3540_transport, std::string("c3540"),
                  false);
BENCHMARK_CAPTURE(BM_EventCycle, c7552_inertial, std::string("c7552"), true);
BENCHMARK_CAPTURE(BM_BitParallelBatch, c3540, std::string("c3540"));
BENCHMARK_CAPTURE(BM_BitParallelBatch, c7552, std::string("c7552"));
BENCHMARK(BM_WeibullMle)->Arg(10)->Arg(50)->Arg(500);
BENCHMARK(BM_PwmFit)->Arg(10)->Arg(50)->Arg(500);
BENCHMARK(BM_HyperSample);
BENCHMARK(BM_StudentTCritical);
BENCHMARK(BM_NormalQuantile);

BENCHMARK_MAIN();
