// Microbenchmarks (google-benchmark): raw throughput of the building
// blocks — zero-delay vs event-driven cycle simulation across circuit
// sizes, Weibull MLE fit latency, hyper-sample cost, and the statistical
// primitives on the estimator's hot path.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "mpe.hpp"

namespace {

using namespace mpe;

const circuit::Netlist& preset(const std::string& name) {
  static std::map<std::string, circuit::Netlist> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    it = cache.emplace(name, gen::build_preset(name, 1)).first;
  }
  return it->second;
}

void BM_ZeroDelayCycle(benchmark::State& state, const std::string& name) {
  const auto& nl = preset(name);
  sim::ZeroDelaySimulator sim(nl, sim::Technology{});
  Rng rng(7);
  std::vector<std::uint8_t> v1(nl.num_inputs()), v2(nl.num_inputs());
  for (auto _ : state) {
    for (auto& b : v1) b = rng.bernoulli(0.5);
    for (auto& b : v2) b = rng.bernoulli(0.5);
    benchmark::DoNotOptimize(sim.evaluate(v1, v2).power_mw);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_EventCycle(benchmark::State& state, const std::string& name,
                   bool inertial) {
  const auto& nl = preset(name);
  sim::EventSimOptions opt;
  opt.inertial = inertial;
  sim::EventSimulator sim(nl, opt);
  Rng rng(7);
  std::vector<std::uint8_t> v1(nl.num_inputs()), v2(nl.num_inputs());
  for (auto _ : state) {
    for (auto& b : v1) b = rng.bernoulli(0.5);
    for (auto& b : v2) b = rng.bernoulli(0.5);
    benchmark::DoNotOptimize(sim.evaluate(v1, v2).power_mw);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_BitParallelBatch(benchmark::State& state, const std::string& name) {
  const auto& nl = preset(name);
  sim::BitParallelSimulator sim(nl, sim::Technology{});
  Rng rng(7);
  std::vector<vec::VectorPair> pairs(64);
  for (auto& p : pairs) {
    p.first = vec::random_vector(nl.num_inputs(), rng);
    p.second = vec::random_vector(nl.num_inputs(), rng);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.evaluate_batch(pairs).front().power_mw);
  }
  state.SetItemsProcessed(state.iterations() * 64);  // pairs per pass
}

// Raw compiled-tape throughput: one full-width evaluate_batch per
// iteration, per kernel variant. Compare against BM_BitParallelBatch to
// read the translate-don't-interpret gain at equal (64) lanes, and the
// scalar64 vs avx2x256 vs avx512x512 rows for the widening gain. Kernels
// the host cannot run are skipped, not failed.
void BM_CompiledBatch(benchmark::State& state, const std::string& name,
                      sim::SimdKernel kernel) {
  if (!sim::kernel_available(kernel)) {
    state.SkipWithError("kernel unavailable on this host");
    return;
  }
  const auto& nl = preset(name);
  const auto program = sim::GateProgram::compile(nl, sim::Technology{});
  sim::CompiledSimulator csim(program, kernel);
  Rng rng(7);
  std::vector<vec::VectorPair> pairs(csim.lanes());
  for (auto& p : pairs) {
    p.first = vec::random_vector(nl.num_inputs(), rng);
    p.second = vec::random_vector(nl.num_inputs(), rng);
  }
  std::vector<sim::CycleResult> results;
  for (auto _ : state) {
    csim.evaluate_batch(pairs, results);
    benchmark::DoNotOptimize(results.front().power_mw);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * pairs.size()));
}

// Streaming-population draw throughput: scalar (one netlist traversal per
// unit) vs the 64-lane bit-parallel backend (1/64th of a traversal per
// unit). Both paths produce identical value streams for the same seed.
void BM_StreamingDrawBatch(benchmark::State& state, const std::string& name,
                           bool bit_parallel) {
  const auto& nl = preset(name);
  sim::PowerEvalOptions eval_opt;
  eval_opt.delay_model = sim::DelayModel::kZero;
  sim::CyclePowerEvaluator eval(nl, eval_opt);
  const vec::UniformPairGenerator gen(nl.num_inputs());
  vec::StreamingPopulation pop(gen, eval);
  if (bit_parallel) pop.enable_bit_parallel();
  Rng rng(7);
  std::vector<double> batch(256);
  for (auto _ : state) {
    pop.draw_batch(batch, rng);
    benchmark::DoNotOptimize(batch.front());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * batch.size()));
}

// End-to-end draw throughput of the compiled backend (generation +
// simulation), directly comparable to BM_StreamingDrawBatch: the issue's
// acceptance bar is >= 2x units/s over the bit-parallel interpreter on
// c7552 with AVX2 or wider.
void BM_CompiledDrawBatch(benchmark::State& state, const std::string& name,
                          sim::SimdKernel kernel) {
  if (!sim::kernel_available(kernel)) {
    state.SkipWithError("kernel unavailable on this host");
    return;
  }
  const auto& nl = preset(name);
  sim::PowerEvalOptions eval_opt;
  eval_opt.delay_model = sim::DelayModel::kZero;
  sim::CyclePowerEvaluator eval(nl, eval_opt);
  const vec::UniformPairGenerator gen(nl.num_inputs());
  vec::StreamingPopulation pop(gen, eval);
  if (!pop.enable_compiled(kernel)) {
    state.SkipWithError("compiled backend rejected");
    return;
  }
  Rng rng(7);
  std::vector<double> batch(1024);
  for (auto _ : state) {
    pop.draw_batch(batch, rng);
    benchmark::DoNotOptimize(batch.front());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * batch.size()));
}

// Full pipelined estimator over a bit-parallel streaming population (the
// production configuration: every unit is freshly simulated): thread-count
// scaling of the speculative hyper-sample waves. Items = simulated units
// consumed by the stopping rule.
void BM_EstimatorPipeline(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  const auto& nl = preset("c7552");
  sim::PowerEvalOptions eval_opt;
  eval_opt.delay_model = sim::DelayModel::kZero;
  sim::CyclePowerEvaluator eval(nl, eval_opt);
  const vec::UniformPairGenerator gen(nl.num_inputs());
  vec::StreamingPopulation pop(gen, eval);
  pop.enable_bit_parallel();
  maxpower::EstimatorOptions opt;
  std::unique_ptr<util::ThreadPool> pool;
  maxpower::ParallelOptions par;
  par.threads = threads;
  if (threads > 1) {
    pool = std::make_unique<util::ThreadPool>(threads - 1);
    par.pool = pool.get();
  }
  std::uint64_t seed = 1;
  std::int64_t units = 0;
  for (auto _ : state) {
    const auto r = maxpower::estimate_max_power(pop, opt, seed++, par);
    units += static_cast<std::int64_t>(r.units_used);
    benchmark::DoNotOptimize(r.estimate);
  }
  state.SetItemsProcessed(units);
}

// Same pipeline with the observability layer fully on (global metrics
// registry enabled, a live tracer capturing every hyper-sample event):
// compare against BM_EstimatorPipeline/threads:1 to read the
// instrumentation overhead, which must stay within ~2%. Kept as a separate
// benchmark so the tracked BM_EstimatorPipeline series stays comparable
// across commits.
void BM_EstimatorPipelineInstrumented(benchmark::State& state) {
  const auto& nl = preset("c7552");
  sim::PowerEvalOptions eval_opt;
  eval_opt.delay_model = sim::DelayModel::kZero;
  sim::CyclePowerEvaluator eval(nl, eval_opt);
  const vec::UniformPairGenerator gen(nl.num_inputs());
  vec::StreamingPopulation pop(gen, eval);
  pop.enable_bit_parallel();
  auto& reg = util::MetricRegistry::global();
  const bool was_enabled = reg.enabled();
  reg.enable(true);
  std::uint64_t seed = 1;
  std::int64_t units = 0;
  for (auto _ : state) {
    util::Tracer tracer(4096);
    maxpower::EstimatorOptions opt;
    opt.tracer = &tracer;
    const auto r = maxpower::estimate_max_power(pop, opt, seed++, {});
    units += static_cast<std::int64_t>(r.units_used);
    benchmark::DoNotOptimize(r.estimate);
  }
  reg.enable(was_enabled);
  state.SetItemsProcessed(units);
}

// The raw cost of one enabled metric update and one trace event, for the
// overhead budget arithmetic in docs/OBSERVABILITY.md.
void BM_MetricCounterInc(benchmark::State& state) {
  util::MetricRegistry reg;
  reg.enable(true);
  util::Counter c = reg.counter("mpe_bench_total");
  for (auto _ : state) {
    c.inc();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_TraceEvent(benchmark::State& state) {
  util::Tracer tracer(4096);
  const std::string fields = util::JsonFields{}.add("k", 1).body();
  for (auto _ : state) {
    tracer.event("bench", fields);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_WeibullMle(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const stats::ReversedWeibull g(3.0, 1.0, 10.0);
  Rng rng(3);
  std::vector<double> xs(m);
  for (auto& x : xs) x = g.sample(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evt::fit_weibull_mle(xs).params.mu);
  }
}

void BM_PwmFit(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const stats::ReversedWeibull g(3.0, 1.0, 10.0);
  Rng rng(3);
  std::vector<double> xs(m);
  for (auto& x : xs) x = g.sample(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evt::fit_gev_pwm(xs).params.xi);
  }
}

void BM_HyperSample(benchmark::State& state) {
  const stats::ReversedWeibull g(3.0, 1.0, 10.0);
  Rng rng(9);
  std::vector<double> values(20000);
  for (auto& v : values) v = g.sample(rng);
  vec::FinitePopulation pop(std::move(values), "synthetic");
  maxpower::HyperSampleOptions opt;
  Rng draw_rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        maxpower::draw_hyper_sample(pop, opt, draw_rng).estimate);
  }
}

void BM_StudentTCritical(benchmark::State& state) {
  double k = 2.0;
  for (auto _ : state) {
    const stats::StudentT t(k);
    benchmark::DoNotOptimize(t.two_sided_critical(0.9));
    k = k >= 100.0 ? 2.0 : k + 1.0;
  }
}

// Coordinator control-plane overhead per job: drive the lease state machine
// through a full request -> grant -> done-result cycle for every job of an
// n-job campaign (message encode/decode and the sealed ledger append
// included, sockets excluded). This is the scheduling tax a distributed
// campaign pays on top of the jobs themselves; per-item time must stay
// negligible against even a millisecond-scale job.
void BM_CampaignScheduling(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<maxpower::CampaignJob> jobs(n);
  for (std::size_t i = 0; i < n; ++i) {
    jobs[i].name = "job-" + std::to_string(i);
    jobs[i].circuit = "c432";
    jobs[i].seed = i + 1;
  }
  const std::string dir = "bench_campaign_sched";
  for (auto _ : state) {
    state.PauseTiming();
    std::filesystem::remove_all(dir);
    state.ResumeTiming();
    dist::CoordinatorConfig config;
    config.jobs = jobs;
    config.state_dir = dir;
    dist::CoordinatorCore core(std::move(config));
    const auto now = dist::CoordinatorCore::Clock::now();
    dist::Message request;
    request.kind = dist::MessageKind::kRequest;
    request.worker = "w0";
    for (std::size_t i = 0; i < n; ++i) {
      const dist::Message lease =
          dist::decode_message(core.handle(request, now));
      dist::Message result;
      result.kind = dist::MessageKind::kResult;
      result.worker = "w0";
      result.job = lease.job;
      result.outcome.name = lease.job;
      result.outcome.status = maxpower::JobStatus::kDone;
      result.outcome.attempts = 1;
      result.outcome.result.estimate = 1.0;
      result.outcome.result.hyper_samples = 10;
      result.outcome.result.units_used = 2500;
      result.outcome.result.converged = true;
      benchmark::DoNotOptimize(core.handle(result, now));
    }
    benchmark::DoNotOptimize(core.finished());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n * state.iterations()));
}

// Shard-lease control-plane overhead per job: the v2 analogue of
// BM_CampaignScheduling — request -> shard grant -> shard partial result
// (sample payload decode, coverage validation, sealed shard append) ->
// assembly replay -> sealed job record, for every job of an n-job
// campaign. This is the extra tax of running a campaign sharded instead of
// whole-job; per-item time must stay negligible against a real shard's
// compute.
void BM_ShardScheduling(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<maxpower::CampaignJob> jobs(n);
  for (std::size_t i = 0; i < n; ++i) {
    jobs[i].name = "job-" + std::to_string(i);
    jobs[i].circuit = "c432";
    jobs[i].seed = i + 1;
  }
  // Identical estimates converge at the 3rd accepted sample, so one done
  // shard assembles straight to a terminal job record.
  std::vector<maxpower::ShardSample> samples(8);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples[i].index = i;
    samples[i].estimate = 5.0;
    samples[i].units = 100;
    samples[i].valid = true;
    samples[i].mle_converged = true;
  }
  const std::string payload = maxpower::encode_shard_samples(samples);
  const std::string dir = "bench_shard_sched";
  for (auto _ : state) {
    state.PauseTiming();
    std::filesystem::remove_all(dir);
    state.ResumeTiming();
    dist::CoordinatorConfig config;
    config.jobs = jobs;
    config.state_dir = dir;
    config.shard_size = 8;
    dist::CoordinatorCore core(std::move(config));
    const auto now = dist::CoordinatorCore::Clock::now();
    dist::Message request;
    request.kind = dist::MessageKind::kRequest;
    request.worker = "w0";
    request.proto = dist::kProtocolVersion;
    for (std::size_t i = 0; i < n; ++i) {
      const dist::Message lease =
          dist::decode_message(core.handle(request, now));
      dist::Message result;
      result.kind = dist::MessageKind::kShardResult;
      result.worker = "w0";
      result.job = lease.job;
      result.shard = lease.shard;
      result.lo = lease.lo;
      result.hi = lease.hi;
      result.shard_status = maxpower::JobStatus::kDone;
      result.samples = payload;
      benchmark::DoNotOptimize(core.handle(result, now));
    }
    benchmark::DoNotOptimize(core.finished());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n * state.iterations()));
}

void BM_NormalQuantile(benchmark::State& state) {
  double q = 0.001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::Normal::std_quantile(q));
    q += 0.0001;
    if (q >= 0.999) q = 0.001;
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_ZeroDelayCycle, c432, std::string("c432"));
BENCHMARK_CAPTURE(BM_ZeroDelayCycle, c3540, std::string("c3540"));
BENCHMARK_CAPTURE(BM_ZeroDelayCycle, c7552, std::string("c7552"));
BENCHMARK_CAPTURE(BM_EventCycle, c432_inertial, std::string("c432"), true);
BENCHMARK_CAPTURE(BM_EventCycle, c3540_inertial, std::string("c3540"), true);
BENCHMARK_CAPTURE(BM_EventCycle, c3540_transport, std::string("c3540"),
                  false);
BENCHMARK_CAPTURE(BM_EventCycle, c7552_inertial, std::string("c7552"), true);
BENCHMARK_CAPTURE(BM_BitParallelBatch, c3540, std::string("c3540"));
BENCHMARK_CAPTURE(BM_BitParallelBatch, c7552, std::string("c7552"));
BENCHMARK_CAPTURE(BM_CompiledBatch, c7552_scalar64, std::string("c7552"),
                  sim::SimdKernel::kScalar64);
BENCHMARK_CAPTURE(BM_CompiledBatch, c7552_avx2x256, std::string("c7552"),
                  sim::SimdKernel::kAvx2x256);
BENCHMARK_CAPTURE(BM_CompiledBatch, c7552_avx512x512, std::string("c7552"),
                  sim::SimdKernel::kAvx512x512);
BENCHMARK_CAPTURE(BM_StreamingDrawBatch, c7552_scalar, std::string("c7552"),
                  false);
BENCHMARK_CAPTURE(BM_StreamingDrawBatch, c7552_bitparallel,
                  std::string("c7552"), true);
BENCHMARK_CAPTURE(BM_CompiledDrawBatch, c7552_scalar64, std::string("c7552"),
                  sim::SimdKernel::kScalar64);
BENCHMARK_CAPTURE(BM_CompiledDrawBatch, c7552_avx2x256, std::string("c7552"),
                  sim::SimdKernel::kAvx2x256);
BENCHMARK_CAPTURE(BM_CompiledDrawBatch, c7552_avx512x512,
                  std::string("c7552"), sim::SimdKernel::kAvx512x512);
BENCHMARK(BM_EstimatorPipeline)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->MeasureProcessCPUTime()
    ->UseRealTime();
BENCHMARK(BM_EstimatorPipelineInstrumented)
    ->MeasureProcessCPUTime()
    ->UseRealTime();
BENCHMARK(BM_MetricCounterInc);
BENCHMARK(BM_TraceEvent);
BENCHMARK(BM_WeibullMle)->Arg(10)->Arg(50)->Arg(500);
BENCHMARK(BM_PwmFit)->Arg(10)->Arg(50)->Arg(500);
BENCHMARK(BM_HyperSample);
BENCHMARK(BM_StudentTCritical);
BENCHMARK(BM_NormalQuantile);
BENCHMARK(BM_CampaignScheduling)->Arg(64)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ShardScheduling)->Arg(64)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
