// Reproduces Figure 1 of the paper: the distribution of sample maxima
// converges to the (reversed) Weibull law as the sample size n grows. For
// n in {2, 20, 30, 50}, form 1000 sample maxima from the C3540 population,
// least-squares-fit a Weibull CDF (as the paper does), and print the two
// curves on a grid plus fit-quality metrics. The paper's visual conclusion
// — the difference near the maximum is negligible for n >= 30 — shows up
// here as the shrinking RMSE / KS columns.
//
// Flags: --pop N (default 40000), --seed S, --samples M (default 1000),
// --circuits c3540 (default; any preset works)
#include <cstdio>
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) try {
  using namespace mpe;
  bench::CampaignOptions defaults;
  defaults.circuits = {"c3540"};
  bench::CampaignOptions opt =
      bench::parse_common_flags(argc, argv, defaults);
  opt.kind = bench::PopulationKind::kHighActivity;
  const Cli cli(argc, argv);
  const auto num_samples =
      static_cast<std::size_t>(cli.get_int("samples", 1000));

  const auto circuits = bench::build_circuits(opt);
  const auto& netlist = circuits.front();
  std::fprintf(stderr, "[bench] %s: simulating %zu units...\n",
               netlist.name().c_str(), opt.population_size);
  auto population = bench::build_population(netlist, opt);
  std::printf(
      "=== Figure 1: sample-maxima distribution vs fitted Weibull (%s) ===\n"
      "%zu sample maxima per n, least-mean-squared-error CDF fit (as in the "
      "paper)\n\n",
      netlist.name().c_str(), num_samples);

  Rng rng(opt.seed + 99);
  Table quality({"n", "fit mu (mW)", "fit alpha", "RMSE", "max |dF|",
                 "KS p-value", "AD A^2", "pop max (mW)"});

  for (std::size_t n : {2u, 20u, 30u, 50u}) {
    std::vector<double> maxima(num_samples);
    for (auto& m : maxima) {
      double best = population.draw(rng);
      for (std::size_t j = 1; j < n; ++j) {
        best = std::max(best, population.draw(rng));
      }
      m = best;
    }
    const auto fit = stats::fit_weibull_lsq(maxima);
    const stats::ReversedWeibull g(fit.params);
    const auto ks =
        stats::ks_test(maxima, [&](double x) { return g.cdf(x); });
    const auto ad =
        stats::anderson_darling(maxima, [&](double x) { return g.cdf(x); });
    quality.add_row({Table::integer(static_cast<long long>(n)),
                     Table::num(fit.params.mu, 4),
                     Table::num(fit.params.alpha, 3),
                     Table::num(fit.quality.rmse, 4),
                     Table::num(fit.quality.max_abs, 4),
                     Table::num(ks.p_value, 3),
                     Table::num(ad.statistic, 3),
                     Table::num(population.true_max(), 4)});

    // Print the two CDFs on a 12-point grid over the maxima range — the
    // textual analogue of the paper's plotted curves.
    const stats::Ecdf ecdf(maxima);
    std::printf("n = %zu   x[mW]    empirical F   Weibull fit\n", n);
    for (const auto& [x, fe] : ecdf.grid(12)) {
      std::printf("        %8.4f   %10.4f   %10.4f\n", x, fe, g.cdf(x));
    }
    std::printf("\n");
  }
  std::cout << quality;
  std::printf(
      "\nReading: by n = 30 the Weibull CDF is indistinguishable from the "
      "empirical\ndistribution near the maximum (RMSE and max|dF| plateau), "
      "supporting the\npaper's choice of n = 30.\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
