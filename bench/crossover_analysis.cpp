// Crossover analysis (beyond the paper's tables, motivated by them):
//
//  Part A — the estimator's intrinsic target gap. The finite-population
//  estimator targets the parent's (1 - 1/|V|) quantile; the paper compares
//  against the *realized* maximum of the |V| simulated units. For
//  short-tailed populations the two coincide; the heavier the tail, the
//  further the realized maximum floats above the quantile, bounding any
//  quantile-based method's accuracy. We measure the gap directly by
//  building an oversized population and comparing disjoint |V|-blocks.
//
//  Part B — where EVT overtakes SRS. The EVT estimator's cost is roughly
//  |V|-independent (hyper-samples until the CI closes); SRS's cost scales
//  with 1/Y, and Y shrinks as |V| grows. Sweeping |V| shows the crossover.
//
// Flags: --pop N (block size for part A / max for part B, default 20000),
// --runs R (default 15), --seed S, --circuits c880
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) try {
  using namespace mpe;
  bench::CampaignOptions defaults;
  defaults.population_size = 20'000;
  defaults.runs = 15;
  defaults.circuits = {"c880"};
  bench::CampaignOptions opt =
      bench::parse_common_flags(argc, argv, defaults);
  opt.kind = bench::PopulationKind::kHighActivity;

  const auto circuits = bench::build_circuits(opt);
  const auto& netlist = circuits.front();
  const std::size_t v = opt.population_size;
  constexpr std::size_t kBlocks = 5;

  // ---- Part A: target gap ------------------------------------------------
  std::printf(
      "=== Part A: realized max vs (1 - 1/|V|) quantile on %s, |V| = %zu "
      "===\n",
      netlist.name().c_str(), v);
  std::fprintf(stderr, "[bench] simulating %zu units (%zu blocks)...\n",
               v * kBlocks, kBlocks);
  const vec::HighActivityPairGenerator gen(netlist.num_inputs(),
                                           opt.min_activity);
  vec::ParallelPowerDbOptions pdb;
  pdb.population_size = v * kBlocks;
  pdb.seed = opt.seed;
  const auto big =
      vec::build_power_database_parallel(netlist, gen, {}, pdb);

  std::vector<double> sorted(big.values().begin(), big.values().end());
  std::sort(sorted.begin(), sorted.end());
  const double quantile =
      sorted[static_cast<std::size_t>((1.0 - 1.0 / static_cast<double>(v)) *
                                      static_cast<double>(sorted.size() - 1))];
  Table gap({"block", "realized max (mW)", "gap above quantile"});
  double gap_sum = 0.0;
  for (std::size_t b = 0; b < kBlocks; ++b) {
    const auto begin = big.values().begin() +
                       static_cast<std::ptrdiff_t>(b * v);
    const double block_max = *std::max_element(
        begin, begin + static_cast<std::ptrdiff_t>(v));
    const double g = (block_max - quantile) / quantile;
    gap_sum += g;
    gap.add_row({Table::integer(static_cast<long long>(b)),
                 Table::num(block_max, 4), Table::pct(g)});
  }
  std::cout << gap;
  std::printf(
      "q(1 - 1/|V|) = %.4f mW; mean gap %+0.1f%%. This gap is the accuracy\n"
      "floor of ANY (1-1/|V|)-quantile estimator against the realized max —\n"
      "on the paper's short-tailed PowerMill populations it is ~0.\n\n",
      quantile, 100.0 * gap_sum / kBlocks);

  // ---- Part B: SRS crossover ----------------------------------------------
  std::printf("=== Part B: EVT vs SRS unit cost as |V| grows ===\n");
  Table cross({"|V|", "Y (qualified)", "SRS units (theory)",
               "EVT units (avg)", "EVT wins?"});
  for (std::size_t size : {v / 4, v / 2, v, 2 * v}) {
    // Reuse prefixes of the oversized pool instead of fresh simulation.
    std::vector<double> values(big.values().begin(),
                               big.values().begin() +
                                   static_cast<std::ptrdiff_t>(
                                       std::min(size, big.values().size())));
    vec::FinitePopulation pop(std::move(values), "prefix");
    const double y = pop.qualified_fraction(opt.epsilon);
    const double srs_units =
        (y > 0.0 && y < 1.0)
            ? maxpower::srs_required_units(y, opt.confidence)
            : 0.0;
    maxpower::EstimatorOptions est;
    est.epsilon = opt.epsilon;
    est.confidence = opt.confidence;
    Rng rng(opt.seed + size);
    double units = 0.0;
    for (std::size_t r = 0; r < opt.runs; ++r) {
      units += static_cast<double>(
          maxpower::estimate_max_power(pop, est, rng).units_used);
    }
    units /= static_cast<double>(opt.runs);
    cross.add_row({Table::integer(static_cast<long long>(size)),
                   Table::num(y, 6),
                   Table::integer(static_cast<long long>(srs_units)),
                   Table::integer(static_cast<long long>(units)),
                   units < srs_units ? "yes" : "no"});
  }
  std::cout << cross;
  std::printf(
      "\nReading: EVT's unit cost is roughly flat in |V| while SRS's "
      "requirement grows\nwith 1/Y — the crossover happens once the "
      "qualified fraction drops below ~1e-4,\nwhich is exactly the paper's "
      "regime (|V| = 160k).\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
