// Reproduces Table 1 of the paper: efficiency comparison between the EVT
// estimator ("our approach") and simple random sampling on unconstrained
// (high-activity) populations — qualified-unit fraction Y, min/avg/max units
// used by our approach across repeated runs, the theoretical SRS unit count
// for the same (5%, 90%) target, and our min/max relative error.
//
// Flags: --pop N (default 40000; paper 160000), --runs R (default 40;
// paper 100), --seed S, --circuits c432,c880,...
#include <cstdio>
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) try {
  using namespace mpe;
  bench::CampaignOptions defaults;
  defaults.population_size = 60000;
  defaults.runs = 50;
  bench::CampaignOptions opt =
      bench::parse_common_flags(argc, argv, defaults);
  opt.kind = bench::PopulationKind::kHighActivity;

  std::printf(
      "=== Table 1: efficiency, unconstrained input sequences ===\n"
      "population: %zu high-activity (>= %.1f) pairs per circuit, %zu runs, "
      "target error %.0f%% @ %.0f%% confidence\n"
      "(paper: |V| = 160000, 100 runs)\n\n",
      opt.population_size, opt.min_activity, opt.runs, opt.epsilon * 100,
      opt.confidence * 100);

  const auto results = bench::run_suite_campaign(opt);

  Table table({"Circuit", "Y (qualified)", "units MAX", "units MIN",
               "units AVE", "SRS AVE (theory)", "err MAX", "err MIN",
               "speedup"});
  double speedup_sum = 0.0;
  for (const auto& r : results) {
    const double speedup =
        r.units_avg > 0.0 ? r.srs_required / r.units_avg : 0.0;
    speedup_sum += speedup;
    table.add_row({r.name, Table::num(r.qualified_fraction, 6),
                   Table::integer(static_cast<long long>(r.units_max)),
                   Table::integer(static_cast<long long>(r.units_min)),
                   Table::integer(static_cast<long long>(r.units_avg)),
                   Table::integer(static_cast<long long>(r.srs_required)),
                   Table::pct(r.err_abs_max), Table::pct(r.err_abs_min),
                   Table::num(speedup, 1) + "x"});
  }
  std::cout << table;
  std::printf(
      "\naverage speedup over theoretical SRS: %.1fx (paper reports ~12x "
      "on the original ISCAS-85 netlists at |V| = 160k)\n",
      speedup_sum / static_cast<double>(results.size()));
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
