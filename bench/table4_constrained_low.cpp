// Reproduces Table 4 of the paper: constrained maximum power estimation
// with per-input transition probability 0.3 (low-activity constraint),
// |V| = 80000 in the paper. Same columns as Table 1. Lower activity means
// fewer qualified units and a harder problem — both unit counts rise,
// matching the paper's Table 3 vs Table 4 trend.
//
// Flags: --pop N (default 30000), --runs R (default 40), --seed S,
// --tprob P (default 0.3), --circuits ...
#include <cstdio>
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) try {
  using namespace mpe;
  bench::CampaignOptions defaults;
  defaults.population_size = 40'000;
  defaults.runs = 50;
  defaults.transition_prob = 0.3;
  bench::CampaignOptions opt =
      bench::parse_common_flags(argc, argv, defaults);
  opt.kind = bench::PopulationKind::kTransitionProb;

  std::printf(
      "=== Table 4: constrained input sequences (transition prob %.1f) ===\n"
      "population: %zu pairs per circuit, %zu runs (paper: |V| = 80000, "
      "100 runs)\n\n",
      opt.transition_prob, opt.population_size, opt.runs);

  const auto results = bench::run_suite_campaign(opt);

  Table table({"Circuit", "Y (qualified)", "units MAX", "units MIN",
               "units AVE", "SRS AVE (theory)", "err MAX", "err MIN"});
  for (const auto& r : results) {
    table.add_row({r.name, Table::num(r.qualified_fraction, 6),
                   Table::integer(static_cast<long long>(r.units_max)),
                   Table::integer(static_cast<long long>(r.units_min)),
                   Table::integer(static_cast<long long>(r.units_avg)),
                   Table::integer(static_cast<long long>(r.srs_required)),
                   Table::pct(r.err_abs_max), Table::pct(r.err_abs_min)});
  }
  std::cout << table;
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
