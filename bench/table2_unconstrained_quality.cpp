// Reproduces Table 2 of the paper: estimation quality comparison on
// unconstrained populations — the actual maximum power, the largest signed
// estimation error of our approach versus SRS with 2500 / 10k / 20k units,
// and the percentage of runs whose error exceeds 5%.
//
// Flags: --pop N (default 40000; paper 160000), --runs R (default 40;
// paper 100), --seed S, --circuits ...
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) try {
  using namespace mpe;
  bench::CampaignOptions defaults;
  defaults.population_size = 60000;
  defaults.runs = 50;
  bench::CampaignOptions opt =
      bench::parse_common_flags(argc, argv, defaults);
  opt.kind = bench::PopulationKind::kHighActivity;

  std::printf(
      "=== Table 2: estimation quality, unconstrained input sequences ===\n"
      "population: %zu high-activity pairs per circuit, %zu runs per "
      "technique (paper: |V| = 160000, 100 runs)\n\n",
      opt.population_size, opt.runs);

  const auto results = bench::run_suite_campaign(opt);

  constexpr std::size_t kSrsBudgets[] = {2500, 10'000, 20'000};

  Table table({"Circuit", "actual max (mW)", "ours worst", "SRS2500 worst",
               "SRS10K worst", "SRS20K worst", "ours >5%", "SRS2500 >5%",
               "SRS10K >5%", "SRS20K >5%"});

  for (const auto& r : results) {
    // SRS campaigns re-sample the stored population.
    vec::FinitePopulation population(r.population_values, r.name);
    Rng rng(opt.seed * 1315423911ULL + 3);
    double srs_worst[3] = {0.0, 0.0, 0.0};
    double srs_over[3] = {0.0, 0.0, 0.0};
    for (std::size_t b = 0; b < 3; ++b) {
      double worst_abs = -1.0, worst_signed = 0.0;
      std::size_t over = 0;
      for (std::size_t run = 0; run < opt.runs; ++run) {
        const auto s = maxpower::srs_estimate(population, kSrsBudgets[b], rng);
        const double rel = (s.estimate - r.true_max) / r.true_max;
        if (std::fabs(rel) > worst_abs) {
          worst_abs = std::fabs(rel);
          worst_signed = rel;
        }
        if (std::fabs(rel) > opt.epsilon) ++over;
      }
      srs_worst[b] = worst_signed;
      srs_over[b] = static_cast<double>(over) / static_cast<double>(opt.runs);
    }
    table.add_row({r.name, Table::num(r.true_max, 3),
                   Table::pct(r.err_signed_worst), Table::pct(srs_worst[0]),
                   Table::pct(srs_worst[1]), Table::pct(srs_worst[2]),
                   Table::pct(r.frac_err_gt_eps, 0), Table::pct(srs_over[0], 0),
                   Table::pct(srs_over[1], 0), Table::pct(srs_over[2], 0)});
  }
  std::cout << table;
  std::printf(
      "\nReading: SRS errors are always negative (it can only approach the "
      "max from below)\nand shrink slowly with budget; our approach meets "
      "the 5%% target in most runs at a\nfraction of the units (paper: ours "
      "4.3%% of runs >5%% vs 23%% for SRS@20k).\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
