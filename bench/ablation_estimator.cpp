// Ablation bench for the estimator's design choices (DESIGN.md section 5):
//   A. sample size n (the paper fixes n = 30 after Figure 1),
//   B. samples-per-fit m (the paper fixes m = 10 after Figure 2),
//   C. finite-population correction: off / paper tail-equivalence quantile /
//      exact-power quantile,
//   D. estimator core: Smith MLE vs probability-weighted moments (PWM).
// Each variant reports average |relative error| and average units consumed
// over repeated runs on one circuit population.
//
// Flags: --pop N (default 30000), --runs R (default 30), --seed S,
// --circuits c3540
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common.hpp"

namespace {

using namespace mpe;

struct Variant {
  std::string label;
  double avg_abs_err = 0.0;
  double avg_units = 0.0;
};

Variant run_variant(const std::string& label, vec::FinitePopulation& pop,
                    const maxpower::EstimatorOptions& est, std::size_t runs,
                    std::uint64_t seed) {
  Variant v;
  v.label = label;
  Rng rng(seed);
  for (std::size_t i = 0; i < runs; ++i) {
    const auto r = maxpower::estimate_max_power(pop, est, rng);
    v.avg_abs_err +=
        std::fabs(r.estimate - pop.true_max()) / pop.true_max();
    v.avg_units += static_cast<double>(r.units_used);
  }
  v.avg_abs_err /= static_cast<double>(runs);
  v.avg_units /= static_cast<double>(runs);
  return v;
}

// PWM-cored hyper-sample campaign: same sampling plan, endpoint from the
// Hosking probability-weighted-moments GEV fit instead of the Smith MLE.
Variant run_pwm_variant(vec::FinitePopulation& pop, std::size_t runs,
                        std::size_t n, std::size_t m, std::uint64_t seed) {
  Variant v;
  v.label = "PWM core (n=30, m=10, fixed k=10)";
  Rng rng(seed);
  const std::size_t k = 10;  // fixed hyper-sample count (no adaptive stop)
  for (std::size_t i = 0; i < runs; ++i) {
    double est_sum = 0.0;
    std::size_t units = 0;
    for (std::size_t hs = 0; hs < k; ++hs) {
      std::vector<double> maxima(m);
      double observed = 0.0;
      for (auto& mx : maxima) {
        double best = pop.draw(rng);
        for (std::size_t j = 1; j < n; ++j) best = std::max(best, pop.draw(rng));
        mx = best;
        observed = std::max(observed, best);
      }
      units += n * m;
      const auto fit = evt::fit_gev_pwm(maxima);
      double estimate = observed;
      if (fit.valid && fit.params.xi < 0.0) {
        const stats::Gev g(fit.params);
        estimate = std::max(
            observed,
            g.quantile(1.0 - 1.0 / static_cast<double>(*pop.size())));
      }
      est_sum += estimate;
    }
    const double est = est_sum / static_cast<double>(k);
    v.avg_abs_err += std::fabs(est - pop.true_max()) / pop.true_max();
    v.avg_units += static_cast<double>(units);
  }
  v.avg_abs_err /= static_cast<double>(runs);
  v.avg_units /= static_cast<double>(runs);
  return v;
}

}  // namespace

int main(int argc, char** argv) try {
  bench::CampaignOptions defaults;
  defaults.population_size = 30'000;
  defaults.runs = 30;
  defaults.circuits = {"c3540"};
  bench::CampaignOptions opt =
      bench::parse_common_flags(argc, argv, defaults);
  opt.kind = bench::PopulationKind::kHighActivity;

  const auto circuits = bench::build_circuits(opt);
  const auto& netlist = circuits.front();
  std::fprintf(stderr, "[bench] %s: simulating %zu units...\n",
               netlist.name().c_str(), opt.population_size);
  auto pop = bench::build_population(netlist, opt);

  std::printf(
      "=== Ablations: estimator design choices on %s (|V| = %zu, true max "
      "%.4f mW, %zu runs each) ===\n\n",
      netlist.name().c_str(), opt.population_size, pop.true_max(), opt.runs);

  std::vector<Variant> variants;

  // A: sample size n.
  for (std::size_t n : {10u, 20u, 30u, 50u, 100u}) {
    maxpower::EstimatorOptions est;
    est.hyper.n = n;
    variants.push_back(run_variant("n = " + std::to_string(n) + " (m = 10)",
                                   pop, est, opt.runs, opt.seed + n));
  }
  // B: samples per fit m.
  for (std::size_t m : {5u, 10u, 20u}) {
    maxpower::EstimatorOptions est;
    est.hyper.m = m;
    variants.push_back(run_variant("m = " + std::to_string(m) + " (n = 30)",
                                   pop, est, opt.runs, opt.seed + 100 + m));
  }
  // C: finite-population correction modes.
  {
    maxpower::EstimatorOptions est;
    est.hyper.finite_correction = false;
    variants.push_back(run_variant("no finite-pop correction (mu-hat)", pop,
                                   est, opt.runs, opt.seed + 201));
  }
  {
    maxpower::EstimatorOptions est;
    est.hyper.quantile_mode = maxpower::FiniteQuantileMode::kExactPower;
    variants.push_back(run_variant("exact-power quantile mode", pop, est,
                                   opt.runs, opt.seed + 202));
  }
  {
    maxpower::EstimatorOptions est;  // defaults = paper configuration
    variants.push_back(run_variant("paper default (n=30, m=10, tail q.)",
                                   pop, est, opt.runs, opt.seed + 203));
  }
  // D: PWM core.
  variants.push_back(run_pwm_variant(pop, opt.runs, 30, 10, opt.seed + 301));
  // E2: bootstrap stopping rule instead of the Student-t interval.
  {
    maxpower::EstimatorOptions est;
    est.interval = maxpower::IntervalKind::kBootstrap;
    variants.push_back(run_variant("bootstrap interval (vs Student-t)", pop,
                                   est, opt.runs, opt.seed + 500));
  }
  // E: minimum hyper-sample count before the stopping rule may fire.
  for (std::size_t mink : {2u, 3u, 5u}) {
    maxpower::EstimatorOptions est;
    est.min_hyper_samples = mink;
    variants.push_back(run_variant("min k = " + std::to_string(mink), pop,
                                   est, opt.runs, opt.seed + 400));
  }

  Table table({"variant", "avg |rel err|", "avg units"});
  for (const auto& v : variants) {
    table.add_row({v.label, Table::pct(v.avg_abs_err),
                   Table::integer(static_cast<long long>(v.avg_units))});
  }
  std::cout << table;
  std::printf(
      "\nReading: n = 30 / m = 10 (the paper's choice) balances error "
      "against units; the\nfinite-population quantile is what keeps the "
      "estimate unbiased; the MLE core\nbeats the PWM closed form at equal "
      "budget.\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
