#include "common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <sstream>

namespace mpe::bench {

CampaignOptions parse_common_flags(int argc, char** argv,
                                   CampaignOptions defaults) {
  const Cli cli(argc, argv);
  // "samples" / "reps" are consumed by the figure benches, which share
  // this parser for the population flags.
  cli.check_known({"pop", "runs", "seed", "epsilon", "confidence",
                   "circuits", "activity", "tprob", "samples", "reps",
                   "mink", "threads"});
  CampaignOptions opt = defaults;
  opt.population_size = static_cast<std::size_t>(
      cli.get_int("pop", static_cast<std::int64_t>(opt.population_size)));
  opt.runs = static_cast<std::size_t>(
      cli.get_int("runs", static_cast<std::int64_t>(opt.runs)));
  opt.seed = static_cast<std::uint64_t>(
      cli.get_int("seed", static_cast<std::int64_t>(opt.seed)));
  opt.epsilon = cli.get_double("epsilon", opt.epsilon);
  opt.min_hyper_samples = static_cast<std::size_t>(cli.get_int(
      "mink", static_cast<std::int64_t>(opt.min_hyper_samples)));
  opt.confidence = cli.get_double("confidence", opt.confidence);
  opt.threads = static_cast<unsigned>(
      cli.get_int("threads", static_cast<std::int64_t>(opt.threads)));
  opt.min_activity = cli.get_double("activity", opt.min_activity);
  opt.transition_prob = cli.get_double("tprob", opt.transition_prob);
  if (cli.has("circuits")) {
    opt.circuits.clear();
    std::stringstream ss(cli.get("circuits", ""));
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      if (!tok.empty()) opt.circuits.push_back(tok);
    }
  }
  return opt;
}

std::vector<circuit::Netlist> build_circuits(const CampaignOptions& opt) {
  std::vector<circuit::Netlist> out;
  if (opt.circuits.empty()) {
    return gen::build_suite(opt.seed);
  }
  out.reserve(opt.circuits.size());
  for (const auto& name : opt.circuits) {
    out.push_back(gen::build_preset(name, opt.seed));
  }
  return out;
}

namespace {

/// Per-circuit deterministic seed, independent of suite order.
std::uint64_t circuit_seed(const circuit::Netlist& netlist,
                           std::uint64_t seed) {
  std::uint64_t h = seed;
  for (char c : netlist.name()) {
    h = (h ^ static_cast<std::uint64_t>(c)) * 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

vec::FinitePopulation build_population(const circuit::Netlist& netlist,
                                       const CampaignOptions& opt) {
  std::unique_ptr<vec::PairGenerator> generator;
  if (opt.kind == PopulationKind::kHighActivity) {
    generator = std::make_unique<vec::HighActivityPairGenerator>(
        netlist.num_inputs(), opt.min_activity);
  } else {
    generator = std::make_unique<vec::TransitionProbPairGenerator>(
        netlist.num_inputs(), opt.transition_prob);
  }
  // Chunked multi-threaded simulation; values depend only on the seed, not
  // on opt.threads.
  vec::ParallelPowerDbOptions db;
  db.population_size = opt.population_size;
  db.seed = circuit_seed(netlist, opt.seed);
  db.threads = opt.threads;
  return vec::build_power_database_parallel(netlist, *generator,
                                            sim::PowerEvalOptions{}, db);
}

CircuitResult run_circuit_campaign(const circuit::Netlist& netlist,
                                   const CampaignOptions& opt) {
  CircuitResult res;
  res.name = netlist.name();

  auto population = build_population(netlist, opt);
  res.true_max = population.true_max();
  res.qualified_fraction = population.qualified_fraction(opt.epsilon);
  res.srs_required =
      res.qualified_fraction > 0.0 && res.qualified_fraction < 1.0
          ? maxpower::srs_required_units(res.qualified_fraction,
                                         opt.confidence)
          : 0.0;

  maxpower::EstimatorOptions est;
  est.epsilon = opt.epsilon;
  est.confidence = opt.confidence;
  est.min_hyper_samples = opt.min_hyper_samples;

  // One pool for all runs; each run gets a counter-derived seed so results
  // are reproducible regardless of the thread count.
  std::unique_ptr<util::ThreadPool> pool;
  maxpower::ParallelOptions par;
  par.threads = opt.threads;
  if (opt.threads != 1) {
    const unsigned total =
        opt.threads == 0 ? std::max(1u, std::thread::hardware_concurrency())
                         : opt.threads;
    if (total > 1) {
      pool = std::make_unique<util::ThreadPool>(total - 1);
      par.pool = pool.get();
    } else {
      par.threads = 1;
    }
  }
  const std::uint64_t est_seed = circuit_seed(netlist, opt.seed) ^
                                 (opt.seed * 0x9e3779b97f4a7c15ULL + 17);
  res.units_min = static_cast<std::size_t>(-1);
  double units_sum = 0.0;
  double worst_abs = -1.0;
  double best_abs = 1e300;
  std::size_t over_eps = 0;
  for (std::size_t run = 0; run < opt.runs; ++run) {
    const auto r = maxpower::estimate_max_power(
        population, est, stream_seed(est_seed, run), par);
    const double rel = (r.estimate - res.true_max) / res.true_max;
    res.estimates.push_back(r.estimate);
    res.units.push_back(static_cast<double>(r.units_used));
    res.units_min = std::min(res.units_min, r.units_used);
    res.units_max = std::max(res.units_max, r.units_used);
    units_sum += static_cast<double>(r.units_used);
    if (std::fabs(rel) > worst_abs) {
      worst_abs = std::fabs(rel);
      res.err_signed_worst = rel;
    }
    best_abs = std::min(best_abs, std::fabs(rel));
    if (std::fabs(rel) > opt.epsilon) ++over_eps;
  }
  res.units_avg = units_sum / static_cast<double>(opt.runs);
  res.err_abs_max = worst_abs;
  res.err_abs_min = best_abs;
  res.frac_err_gt_eps =
      static_cast<double>(over_eps) / static_cast<double>(opt.runs);
  res.population_values.assign(population.values().begin(),
                               population.values().end());
  return res;
}

std::vector<CircuitResult> run_suite_campaign(const CampaignOptions& opt) {
  std::vector<CircuitResult> results;
  for (const auto& netlist : build_circuits(opt)) {
    std::fprintf(stderr, "[bench] %s: simulating %zu units, %zu runs...\n",
                 netlist.name().c_str(), opt.population_size, opt.runs);
    results.push_back(run_circuit_campaign(netlist, opt));
  }
  return results;
}

}  // namespace mpe::bench
