// Shared harness for the paper-reproduction benches: builds the circuit
// suite, simulates finite populations (the paper's PowerMill step), runs
// repeated estimation campaigns, and aggregates the statistics the paper's
// tables report.
//
// Scale note: the paper uses |V| = 160k (unconstrained) / 80k (constrained)
// and 100 estimation runs per circuit. Defaults here are scaled down to keep
// a full bench run in minutes; pass --pop / --runs to reproduce full scale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mpe.hpp"

namespace mpe::bench {

/// Which population construction a campaign uses.
enum class PopulationKind {
  kHighActivity,     ///< uniform pairs filtered to activity >= 0.3 (Tables 1-2)
  kTransitionProb,   ///< per-line transition probability (Tables 3-4)
};

/// Campaign configuration (one table = one campaign over the suite).
struct CampaignOptions {
  std::size_t population_size = 40'000;
  std::size_t runs = 40;            ///< estimation repetitions per circuit
  std::uint64_t seed = 1;
  double epsilon = 0.05;
  double confidence = 0.90;
  /// Minimum hyper-samples before the stopping rule fires (paper: 2;
  /// library default 3 — see EstimatorOptions::min_hyper_samples).
  std::size_t min_hyper_samples = 3;
  PopulationKind kind = PopulationKind::kHighActivity;
  double min_activity = 0.3;        ///< for kHighActivity
  double transition_prob = 0.5;     ///< for kTransitionProb
  std::vector<std::string> circuits;  ///< empty = full 9-circuit suite
  /// Concurrency for population simulation and estimation runs
  /// (0 = hardware_concurrency, 1 = serial). Only affects wall-clock time:
  /// population values and estimates are seed-deterministic either way.
  unsigned threads = 0;
};

/// Parses the common bench flags (--pop, --runs, --seed, --epsilon,
/// --confidence, --circuits a,b,c) into options, starting from defaults.
CampaignOptions parse_common_flags(int argc, char** argv,
                                   CampaignOptions defaults = {});

/// Per-circuit campaign outcome.
struct CircuitResult {
  std::string name;
  double true_max = 0.0;            ///< simulated population maximum [mW]
  double qualified_fraction = 0.0;  ///< Y: units within 5% of the max
  double srs_required = 0.0;        ///< theoretical SRS units for (5%, 90%)
  std::size_t units_min = 0;        ///< min units over runs (our approach)
  std::size_t units_max = 0;
  double units_avg = 0.0;
  double err_abs_max = 0.0;         ///< max |relative error| over runs
  double err_abs_min = 0.0;         ///< min |relative error|
  double err_signed_worst = 0.0;    ///< signed error of the worst run
  double frac_err_gt_eps = 0.0;     ///< fraction of runs with |err| > eps
  std::vector<double> estimates;    ///< all run estimates [mW]
  std::vector<double> units;        ///< all run unit counts
  /// The materialized population values (kept for follow-up analyses like
  /// Table 2's SRS comparison and the figure benches).
  std::vector<double> population_values;
};

/// Builds the population for one circuit under the campaign options.
vec::FinitePopulation build_population(const circuit::Netlist& netlist,
                                       const CampaignOptions& opt);

/// Runs the estimation campaign for one circuit.
CircuitResult run_circuit_campaign(const circuit::Netlist& netlist,
                                   const CampaignOptions& opt);

/// Runs the campaign over the configured suite, printing progress to
/// stderr.
std::vector<CircuitResult> run_suite_campaign(const CampaignOptions& opt);

/// Builds the netlists selected by the options (default: all 9 presets).
std::vector<circuit::Netlist> build_circuits(const CampaignOptions& opt);

}  // namespace mpe::bench
