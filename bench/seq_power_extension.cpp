// Extension bench (beyond the paper): the EVT estimator applied to
// sequential circuits. Per-cycle power along a random input stream is
// state-correlated, so this exercises the method outside its i.i.d.
// comfort zone — the direction the paper's related work ([4], sequential
// maximum power cycles) points at. One row per s-series stand-in: average
// stream power, the EVT maximum estimate with its CI, and the cycle count.
//
// Flags: --seed S, --epsilon E, --circuits s27,s344,...
#include <cstdio>
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) try {
  using namespace mpe;
  const Cli cli(argc, argv);
  cli.check_known({"seed", "epsilon", "circuits"});
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const double epsilon = cli.get_double("epsilon", 0.08);
  std::vector<std::string> names = {"s27", "s298", "s344", "s386", "s526",
                                    "s641", "s820", "s1196", "s1423"};
  if (cli.has("circuits")) {
    names.clear();
    std::string list = cli.get("circuits", ""), tok;
    std::stringstream ss(list);
    while (std::getline(ss, tok, ',')) {
      if (!tok.empty()) names.push_back(tok);
    }
  }

  std::printf(
      "=== Extension: EVT max cycle power on sequential stand-ins "
      "(eps = %.0f%% @ 90%%) ===\n\n",
      epsilon * 100.0);

  Table table({"circuit", "PIs", "FFs", "gates", "avg power (mW)",
               "est. max (mW)", "90% CI (mW)", "cycles", "conv"});
  for (const auto& name : names) {
    std::fprintf(stderr, "[bench] %s...\n", name.c_str());
    auto netlist = seq::build_seq_preset(name, seed);

    seq::SequentialSimulator probe_sim(netlist);
    seq::SequencePopulation probe(probe_sim);
    Rng probe_rng(seed + 1);
    double avg = 0.0;
    const int probe_n = 300;
    for (int i = 0; i < probe_n; ++i) avg += probe.draw(probe_rng);
    avg /= probe_n;

    seq::SequentialSimulator est_sim(netlist);
    seq::SequencePopulation pop(est_sim);
    maxpower::EstimatorOptions opt;
    opt.epsilon = epsilon;
    Rng rng(seed);
    const auto r = maxpower::estimate_max_power(pop, opt, rng);

    table.add_row(
        {name,
         Table::integer(static_cast<long long>(netlist.num_free_inputs())),
         Table::integer(static_cast<long long>(netlist.num_state_bits())),
         Table::integer(static_cast<long long>(netlist.core().num_gates())),
         Table::num(avg, 4), Table::num(r.estimate, 4),
         "[" + Table::num(r.ci.lower, 3) + ", " + Table::num(r.ci.upper, 3) +
             "]",
         Table::integer(static_cast<long long>(r.units_used)),
         r.converged ? "yes" : "no"});
  }
  std::cout << table;
  std::printf(
      "\nReading: the estimator converges on state-correlated cycle-power "
      "streams; the\nmax/avg ratio quantifies how much headroom a purely "
      "average-power sign-off\nwould miss on clocked designs.\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
