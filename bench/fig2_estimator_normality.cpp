// Reproduces Figure 2 of the paper: the distribution of the maximum-
// likelihood maximum-power estimator is approximately normal once the
// number of samples m is moderate. For m in {10, 50}, repeat the
// sampling-estimation procedure (n = 30 per sample) 100 times on the C3540
// population, least-squares-fit a normal CDF to the estimates, and print
// both curves plus fit quality — the paper's justification for treating
// hyper-samples as normal draws in the Student-t stopping rule.
//
// Flags: --pop N (default 40000), --seed S, --reps R (default 100),
// --circuits c3540
#include <cstdio>
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) try {
  using namespace mpe;
  bench::CampaignOptions defaults;
  defaults.circuits = {"c3540"};
  bench::CampaignOptions opt =
      bench::parse_common_flags(argc, argv, defaults);
  opt.kind = bench::PopulationKind::kHighActivity;
  const Cli cli(argc, argv);
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 100));

  const auto circuits = bench::build_circuits(opt);
  const auto& netlist = circuits.front();
  std::fprintf(stderr, "[bench] %s: simulating %zu units...\n",
               netlist.name().c_str(), opt.population_size);
  auto population = bench::build_population(netlist, opt);

  std::printf(
      "=== Figure 2: distribution of the MLE max-power estimator (%s) ===\n"
      "n = 30, %zu repetitions per m, least-squares normal fit (as in the "
      "paper); population max = %.4f mW\n\n",
      netlist.name().c_str(), reps, population.true_max());

  Rng rng(opt.seed + 555);
  Table quality({"m", "mean est (mW)", "sd est (mW)", "normal-fit RMSE",
                 "KS p-value", "skewness"});

  for (std::size_t m : {10u, 50u}) {
    maxpower::HyperSampleOptions hyper;
    hyper.m = m;
    std::vector<double> estimates(reps);
    for (auto& e : estimates) {
      e = maxpower::draw_hyper_sample(population, hyper, rng).estimate;
    }
    const auto fit = stats::fit_normal_lsq(estimates);
    const stats::Normal nd(fit.mean, fit.stddev);
    const auto ks =
        stats::ks_test(estimates, [&](double x) { return nd.cdf(x); });
    quality.add_row({Table::integer(static_cast<long long>(m)),
                     Table::num(stats::mean(estimates), 4),
                     Table::num(stats::stddev(estimates), 4),
                     Table::num(fit.quality.rmse, 4),
                     Table::num(ks.p_value, 3),
                     Table::num(stats::skewness(estimates), 3)});

    const stats::Ecdf ecdf(estimates);
    std::printf("m = %zu   est[mW]   empirical F   normal fit\n", m);
    for (const auto& [x, fe] : ecdf.grid(12)) {
      std::printf("        %8.4f   %10.4f   %10.4f\n", x, fe, nd.cdf(x));
    }
    std::printf("\n");
  }
  std::cout << quality;
  std::printf(
      "\nReading: at m = 10 the normal law is a workable but rough "
      "approximation (some\nright skew remains from occasional "
      "near-Gumbel fits); by m = 50 the estimator\nis solidly normal and "
      "centered on the population max — the same qualitative\nconvergence "
      "the paper's Figure 2 shows, and the basis for treating "
      "hyper-samples\nas normal draws in the Student-t stopping rule.\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
