// Baseline shoot-out across the method families the paper's related-work
// section surveys, at equal simulation budget on the same population:
//   * SRS           — max of random units [9-ish]
//   * quantile est. — empirical high-quantile [10]
//   * greedy search — ATPG-flavored bit climbing [5][6]
//   * genetic       — K2-style GA [8]
//   * EVT (ours)    — the paper's estimator
// Vector-search methods produce lower bounds with no error control; the
// statistical methods produce estimates with confidence. The table reports
// each method's estimate relative to the population's true maximum.
//
// Flags: --pop N (default 30000), --runs R (default 10), --seed S,
// --circuits c3540
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) try {
  using namespace mpe;
  bench::CampaignOptions defaults;
  defaults.population_size = 30'000;
  defaults.runs = 10;
  defaults.circuits = {"c3540"};
  bench::CampaignOptions opt =
      bench::parse_common_flags(argc, argv, defaults);
  opt.kind = bench::PopulationKind::kHighActivity;

  const auto circuits = bench::build_circuits(opt);
  const auto& netlist = circuits.front();
  std::fprintf(stderr, "[bench] %s: simulating %zu units...\n",
               netlist.name().c_str(), opt.population_size);
  auto pop = bench::build_population(netlist, opt);
  std::printf(
      "=== Baselines at equal budget on %s (|V| = %zu, true max %.4f mW) "
      "===\n\n",
      netlist.name().c_str(), opt.population_size, pop.true_max());

  // First, establish the EVT budget: average units per converged run.
  maxpower::EstimatorOptions est;
  est.epsilon = opt.epsilon;
  est.confidence = opt.confidence;
  Rng rng(opt.seed);
  double evt_mean = 0.0, evt_bias = 0.0;
  std::size_t budget = 0;
  for (std::size_t r = 0; r < opt.runs; ++r) {
    const auto res = maxpower::estimate_max_power(pop, est, rng);
    evt_mean += std::fabs(res.estimate - pop.true_max());
    evt_bias += res.estimate - pop.true_max();
    budget += res.units_used;
  }
  budget /= opt.runs;
  evt_mean /= static_cast<double>(opt.runs);
  evt_bias /= static_cast<double>(opt.runs);

  Table table({"method", "mean |error|", "mean signed error",
               "units/run", "error control?"});
  const double tm = pop.true_max();
  table.add_row({"EVT estimator (ours)", Table::pct(evt_mean / tm),
                 Table::pct(evt_bias / tm),
                 Table::integer(static_cast<long long>(budget)),
                 "yes (eps, l)"});

  // SRS at the same budget.
  {
    Rng r2(opt.seed + 1);
    double abs_err = 0.0, bias = 0.0;
    for (std::size_t r = 0; r < opt.runs; ++r) {
      const auto s = maxpower::srs_estimate(pop, budget, r2);
      abs_err += std::fabs(s.estimate - tm);
      bias += s.estimate - tm;
    }
    table.add_row({"SRS", Table::pct(abs_err / opt.runs / tm),
                   Table::pct(bias / opt.runs / tm),
                   Table::integer(static_cast<long long>(budget)), "no"});
  }
  // Quantile baseline at the same budget (q = 1 - 1/|V|, its best shot).
  {
    Rng r2(opt.seed + 2);
    const double q =
        1.0 - 1.0 / static_cast<double>(opt.population_size);
    double abs_err = 0.0, bias = 0.0;
    for (std::size_t r = 0; r < opt.runs; ++r) {
      const auto s = maxpower::quantile_baseline(pop, budget, q, r2);
      abs_err += std::fabs(s.estimate - tm);
      bias += s.estimate - tm;
    }
    table.add_row({"empirical quantile [10]",
                   Table::pct(abs_err / opt.runs / tm),
                   Table::pct(bias / opt.runs / tm),
                   Table::integer(static_cast<long long>(budget)), "no"});
  }
  // Vector-search methods need the simulator, not the cached population.
  {
    sim::CyclePowerEvaluator evaluator(netlist);
    Rng r2(opt.seed + 3);
    maxpower::GreedyOptions gopt;
    gopt.max_evaluations = budget;
    double abs_err = 0.0, bias = 0.0;
    for (std::size_t r = 0; r < opt.runs; ++r) {
      const auto s = maxpower::greedy_search(evaluator, gopt, r2);
      abs_err += std::fabs(s.best_power_mw - tm);
      bias += s.best_power_mw - tm;
    }
    table.add_row({"greedy search [5][6]",
                   Table::pct(abs_err / opt.runs / tm),
                   Table::pct(bias / opt.runs / tm),
                   Table::integer(static_cast<long long>(budget)),
                   "no (lower bound)"});
  }
  {
    sim::CyclePowerEvaluator evaluator(netlist);
    Rng r2(opt.seed + 4);
    maxpower::GeneticOptions gopt;
    // Match the budget: population * generations ~ budget.
    gopt.population = 32;
    gopt.generations = std::max<std::size_t>(budget / gopt.population, 2);
    double abs_err = 0.0, bias = 0.0;
    for (std::size_t r = 0; r < opt.runs; ++r) {
      const auto s = maxpower::genetic_search(evaluator, gopt, r2);
      abs_err += std::fabs(s.best_power_mw - tm);
      bias += s.best_power_mw - tm;
    }
    table.add_row({"genetic search [8]",
                   Table::pct(abs_err / opt.runs / tm),
                   Table::pct(bias / opt.runs / tm),
                   Table::integer(static_cast<long long>(budget)),
                   "no (lower bound)"});
  }

  std::cout << table;

  // Closed-form bracket for context: the zero-delay upper bound (every node
  // toggles once) and the analytic average from transition-density
  // propagation.
  const auto bounds =
      maxpower::power_bounds(netlist, sim::Technology{}, 0.5, 0.5);
  std::printf(
      "\nclosed-form context: analytic average %.3f mW; zero-delay "
      "(functional) ceiling\n%.3f mW. The simulated population max %.3f mW "
      "EXCEEDS the functional ceiling —\nglitch power, exactly the "
      "component zero-delay bound-propagation methods [1]\ncannot see, "
      "which is the paper's core argument for simulation-based "
      "estimation.\n",
      bounds.analytic_average_mw, bounds.zero_delay_upper_mw,
      pop.true_max());
  std::printf(
      "\nReading: search methods can find strong pairs but certify nothing, "
      "and their\npositive 'error' shows the population max itself "
      "understates the full-space\nmaximum. SRS is competitive when the "
      "budget is a large fraction of |V| (as\nhere); the crossover_analysis "
      "bench shows it collapsing as |V| grows while the\nEVT cost stays "
      "flat. Only the EVT estimator ships an (epsilon, confidence)\n"
      "guarantee with its number.\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
